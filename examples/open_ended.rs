//! Open-ended question answering: the paper's headline capability.
//! Runs CoT, the pseudo-graph-only ablation, and the full pipeline on
//! Nature-Questions-style open-ended questions and shows how the
//! verified graph turns a partial, hallucination-prone enumeration into
//! a comprehensive one.
//!
//! ```text
//! cargo run --release --example open_ended
//! ```

use pmkg::prelude::*;
use std::sync::Arc;

fn main() {
    let world = Arc::new(worldgen::generate(&worldgen::WorldConfig::default()));
    let source = worldgen::derive(&world, &worldgen::SourceConfig::wikidata());
    let llm = SimLlm::new(world.clone(), ModelProfile::gpt4_sim());
    let dataset = worldgen::datasets::nature::generate(&world, 50, 303);
    let embedder = Embedder::paper();
    let cfg = PipelineConfig::default();

    let base = BaseIndex::for_questions(
        &source,
        &embedder,
        &cfg,
        dataset.questions.iter().map(|q| q.text.as_str()),
    );

    let methods: Vec<(&str, Box<dyn Method>)> = vec![
        ("CoT", Box::new(Cot)),
        (
            "Pseudo-graph only",
            Box::new(PseudoGraphPipeline::pseudo_only()),
        ),
        ("Full pipeline", Box::new(PseudoGraphPipeline::full())),
    ];

    let mut rows = Vec::new();
    let mut sample: Vec<(String, String)> = Vec::new();
    for (label, m) in &methods {
        let res = pipeline::run(
            m.as_ref(),
            &llm,
            Some(&source),
            Some(&base),
            &embedder,
            &cfg,
            &dataset,
            0,
        )
        .unwrap();
        rows.push((label.to_string(), res.score()));
        sample.push((label.to_string(), res.records[0].answer.clone()));
    }

    println!("Example question: {}\n", dataset.questions[0].text);
    for (label, answer) in &sample {
        println!("  {label:18} → {answer}");
    }
    if let worldgen::Gold::References(refs) = &dataset.questions[0].gold {
        println!("  {:18} → {}", "reference (1 of 3)", refs[0]);
    }

    let mut table = Table::new(
        "Open-ended answering, GPT-4 (ROUGE-L F1, n=50)",
        &["Method", "ROUGE-L"],
    );
    for (label, score) in rows {
        table.row(label, vec![evalkit::Cell::Value(score)]);
    }
    println!("\n{}", table.render());
}
