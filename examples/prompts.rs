//! Prints the paper's prompt templates (Figures 3–5) fully rendered for
//! one question — the exact strings the pipeline sends to the model.
//!
//! ```text
//! cargo run --release --example prompts
//! ```

use kgstore::StrTriple;
use simllm::prompt;

fn main() {
    let question = "What kind of chips does the Apple Vision Pro use?";

    println!("================ Figure 3: pseudo-graph generation ================");
    println!("{}", prompt::pseudo_graph_prompt(question));

    let pseudo = vec![
        StrTriple::new("Apple Vision Pro", "COMES_WITH", "A1 chip"),
        StrTriple::new("Apple Vision Pro", "DEVELOPED_BY", "Apple"),
    ];
    let ground = vec![(
        "Apple Vision Pro — mixed reality headset (score 0.84)".to_string(),
        vec![
            StrTriple::new("Apple Vision Pro", "has part", "Apple M2"),
            StrTriple::new("Apple Vision Pro", "has part", "Apple R1"),
            StrTriple::new("Apple Vision Pro", "developer", "Apple"),
        ],
    )];
    println!("================ Figure 4: pseudo-graph verification ===============");
    println!("{}", prompt::verify_prompt(question, &pseudo, &ground));

    let fixed = vec![
        StrTriple::new("Apple Vision Pro", "has part", "Apple M2"),
        StrTriple::new("Apple Vision Pro", "has part", "Apple R1"),
    ];
    println!("================ Figure 5: answer generation =======================");
    println!("{}", prompt::answer_prompt(question, &fixed));
}
