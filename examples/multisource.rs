//! Multisource generalization: the *same* pipeline, unchanged, answers
//! the *same* questions from two KG sources with entirely different
//! schemas — Wikidata-like ("place of birth", Q-ids, statement nodes)
//! and Freebase-like ("/people/person/place_of_birth", /m/ ids, CVT-free
//! single hops). This is the paper's Table-3 claim in miniature.
//!
//! ```text
//! cargo run --release --example multisource
//! ```

use pmkg::prelude::*;
use std::sync::Arc;

fn main() {
    let world = Arc::new(worldgen::generate(&worldgen::WorldConfig::default()));
    let wikidata = worldgen::derive(&world, &worldgen::SourceConfig::wikidata());
    let freebase = worldgen::derive(&world, &worldgen::SourceConfig::freebase());
    let llm = SimLlm::new(world.clone(), ModelProfile::gpt35_sim());
    let dataset = worldgen::datasets::simpleq::generate(&world, 60, 7);
    let embedder = Embedder::paper();
    let cfg = PipelineConfig::default();

    // Show how differently the two sources verbalise the same knowledge.
    println!("Schema flavour comparison (first triples of each source):");
    for src in [&wikidata, &freebase] {
        let t = src.store.iter().next().unwrap();
        println!("  {:13} {}", src.name, src.store.to_str_triple(t));
    }

    let mut table = Table::new(
        "Same questions, different KG sources (GPT-3.5, n=60)",
        &["Method / source", "Hit@1"],
    );
    let cot = pipeline::run(&Cot, &llm, None, None, &embedder, &cfg, &dataset, 0).unwrap();
    table.row("CoT (no KG)", vec![evalkit::Cell::Value(cot.score())]);
    for src in [&freebase, &wikidata] {
        let res = pipeline::run(
            &PseudoGraphPipeline::full(),
            &llm,
            Some(src),
            None,
            &embedder,
            &cfg,
            &dataset,
            0,
        )
        .unwrap();
        table.row(
            format!("Ours / {}", src.name),
            vec![evalkit::Cell::Value(res.score())],
        );
    }
    println!("\n{}", table.render());
    println!(
        "No entity linking, no per-source code: querying and verification are \
         atomic-level, so the schema never leaks into the pipeline."
    );
}
