//! Quickstart: run the full Pseudo-Graph Generation + Atomic Knowledge
//! Verification pipeline on a handful of questions and print what
//! happened at every stage.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pmkg::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. A deterministic synthetic world stands in for reality.
    let world = Arc::new(worldgen::generate(&worldgen::WorldConfig::default()));
    println!(
        "world: {} entities, {} facts",
        world.entity_count(),
        world.fact_count()
    );

    // 2. Render it into a Wikidata-like KG source (coverage gaps,
    //    opaque ids, mediator nodes — the pipeline never sees the world).
    let source = worldgen::derive(&world, &worldgen::SourceConfig::wikidata());
    println!("KG source '{}': {} triples", source.name, source.len());

    // 3. A simulated GPT-3.5 with calibrated parametric memory.
    let llm = SimLlm::new(world.clone(), ModelProfile::gpt35_sim());

    // 4. Ten single-hop questions.
    let dataset = worldgen::datasets::simpleq::generate(&world, 10, 42);

    // 5. Run the paper's method and a CoT baseline side by side.
    let embedder = Embedder::paper();
    let cfg = PipelineConfig::default();
    let ours = pipeline::run(
        &PseudoGraphPipeline::full(),
        &llm,
        Some(&source),
        None,
        &embedder,
        &cfg,
        &dataset,
        0,
    )
    .unwrap();
    let cot = pipeline::run(&Cot, &llm, None, None, &embedder, &cfg, &dataset, 0).unwrap();

    for (o, c) in ours.records.iter().zip(&cot.records) {
        println!("\nQ: {}", o.question);
        println!("  CoT : {} {}", mark(c.hit), c.answer);
        println!("  Ours: {} {}", mark(o.hit), o.answer);
        if !o.trace.ground_entities.is_empty() {
            println!(
                "        (pseudo-graph {} triples → ground graph {:?})",
                o.trace.pseudo_triples.len(),
                o.trace
                    .ground_entities
                    .iter()
                    .map(|(l, s)| format!("{l} {s:.2}"))
                    .collect::<Vec<_>>()
            );
        }
    }
    println!(
        "\nHit@1 — CoT: {:.1}%, Ours: {:.1}%  ({} LLM calls, ~{} tokens)",
        cot.score(),
        ours.score(),
        llm.call_count(),
        llm.tokens_processed()
    );
}

fn mark(hit: Option<bool>) -> &'static str {
    match hit {
        Some(true) => "✓",
        Some(false) => "✗",
        None => "?",
    }
}
