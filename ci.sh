#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full test suite.
#
# Run from the repo root. Every check must pass before merging:
#   ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> chaos smoke (fault rate 0.3: no panics, nonzero score)"
cargo run -q --release -p bench --bin chaos -- --smoke

echo "==> perf smoke (pruned retrieval + quantized scoring + batched engine bit-identical to the exact scan)"
cargo run -q --release -p bench --bin perf -- --smoke | tee /tmp/perf_smoke.out
grep -q "scoring bit-identical" /tmp/perf_smoke.out || {
    echo "ci.sh: perf smoke lost the scoring identity assertion" >&2
    exit 1
}
grep -q "batched kernel bit-identical" /tmp/perf_smoke.out || {
    echo "ci.sh: perf smoke lost the batched-identity assertion" >&2
    exit 1
}

echo "==> BENCH_perf.json carries scoring and batched sections"
grep -q '"scoring"' BENCH_perf.json || {
    echo "ci.sh: BENCH_perf.json lacks the \"scoring\" section — regenerate with: cargo run --release -p bench --bin perf" >&2
    exit 1
}
grep -q '"batched"' BENCH_perf.json || {
    echo "ci.sh: BENCH_perf.json lacks the \"batched\" section — regenerate with: cargo run --release -p bench --bin perf" >&2
    exit 1
}

echo "ci.sh: all checks passed"
