#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full test suite.
#
# Run from the repo root. Every check must pass before merging:
#   ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> detlint --workspace (determinism & unsafe-invariant gate)"
cargo run -q --release -p detlint -- --workspace

echo "==> detlint allowlist stays minimal (cap: 4 entries)"
allow_count=$(grep -c '^\[\[allow\]\]' detlint.toml || true)
echo "    detlint.toml entries: ${allow_count}"
if [ "${allow_count}" -gt 4 ]; then
    echo "ci.sh: detlint.toml has ${allow_count} entries (cap 4) — fix findings instead of allowlisting them" >&2
    exit 1
fi

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> miri smoke over the scalar quant kernels (UB gate)"
if rustup run nightly cargo miri --version >/dev/null 2>&1; then
    # Miri reports no AVX2, so runtime dispatch takes the scalar bodies
    # — exactly the reference side of the bit-identity twin tests. Any
    # UB (out-of-bounds load, invalid transmute) fails the build here.
    rustup run nightly cargo miri test -p semvec --lib quant:: || {
        echo "ci.sh: miri found undefined behavior in the quant kernels" >&2
        exit 1
    }
else
    echo "    miri unavailable (nightly component not installed) — skipping UB smoke"
fi

echo "==> chaos smoke (fault rate 0.3: no panics, nonzero score, thread identity under faults)"
cargo run -q --release -p bench --bin chaos -- --smoke | tee /tmp/chaos_smoke.out
grep -q "runner threads 1/8 identical" /tmp/chaos_smoke.out || {
    echo "ci.sh: chaos smoke lost the runner thread-identity assertion" >&2
    exit 1
}

echo "==> perf smoke (pruned retrieval + quantized scoring + batched engine bit-identical to the exact scan)"
cargo run -q --release -p bench --bin perf -- --smoke | tee /tmp/perf_smoke.out
grep -q "scoring bit-identical" /tmp/perf_smoke.out || {
    echo "ci.sh: perf smoke lost the scoring identity assertion" >&2
    exit 1
}
grep -q "batched kernel bit-identical" /tmp/perf_smoke.out || {
    echo "ci.sh: perf smoke lost the batched-identity assertion" >&2
    exit 1
}
grep -q "stage breakdown" /tmp/perf_smoke.out || {
    echo "ci.sh: perf smoke lost the per-stage timing breakdown" >&2
    exit 1
}
grep -q "runner thread-identity ok" /tmp/perf_smoke.out || {
    echo "ci.sh: perf smoke lost the 1/2/4/8 thread-identity gate" >&2
    exit 1
}
grep -q "perf smoke sharded base ok" /tmp/perf_smoke.out || {
    echo "ci.sh: perf smoke lost the sharded-base identity assertion (shards + on-disk reopen vs the in-RAM unsharded scan)" >&2
    exit 1
}
grep -q "perf smoke scaling ok" /tmp/perf_smoke.out || {
    echo "ci.sh: perf smoke lost the on-disk scaling row (build → write → checksum-verified reopen → top-k identity)" >&2
    exit 1
}
grep -q "perf smoke entity index ok" /tmp/perf_smoke.out || {
    echo "ci.sh: perf smoke lost the entity-index line (ceiling probe + fold stats + entity-routed identity)" >&2
    exit 1
}

echo "==> soak smoke (concurrent serving: contract holds, 1-vs-8-worker identity)"
cargo run -q --release -p bench --bin soak -- --smoke | tee /tmp/soak_smoke.out
grep -q "workers 1/8 identical" /tmp/soak_smoke.out || {
    echo "ci.sh: soak smoke lost the worker-count identity assertion" >&2
    exit 1
}

echo "==> BENCH_soak.json carries the soak sweep and its gates"
grep -q '"bench": "soak"' BENCH_soak.json || {
    echo "ci.sh: BENCH_soak.json missing or stale — regenerate with: cargo run --release -p bench --bin soak" >&2
    exit 1
}
grep -q '"worker_count_identity": true' BENCH_soak.json || {
    echo "ci.sh: BENCH_soak.json gates incomplete — regenerate with: cargo run --release -p bench --bin soak" >&2
    exit 1
}

echo "==> BENCH_perf.json carries scoring, batched, stages, threads_sweep, sharded, scaling, and entity sections"
grep -q '"scoring"' BENCH_perf.json || {
    echo "ci.sh: BENCH_perf.json lacks the \"scoring\" section — regenerate with: cargo run --release -p bench --bin perf" >&2
    exit 1
}
grep -q '"batched"' BENCH_perf.json || {
    echo "ci.sh: BENCH_perf.json lacks the \"batched\" section — regenerate with: cargo run --release -p bench --bin perf" >&2
    exit 1
}
grep -q '"stages"' BENCH_perf.json || {
    echo "ci.sh: BENCH_perf.json lacks the \"stages\" section — regenerate with: cargo run --release -p bench --bin perf" >&2
    exit 1
}
grep -q '"threads_sweep"' BENCH_perf.json || {
    echo "ci.sh: BENCH_perf.json lacks the \"threads_sweep\" section — regenerate with: cargo run --release -p bench --bin perf" >&2
    exit 1
}
grep -q '"sharded"' BENCH_perf.json || {
    echo "ci.sh: BENCH_perf.json lacks the \"sharded\" section — regenerate with: cargo run --release -p bench --bin perf" >&2
    exit 1
}
grep -q '"scaling"' BENCH_perf.json || {
    echo "ci.sh: BENCH_perf.json lacks the \"scaling\" section — regenerate with: cargo run --release -p bench --bin perf" >&2
    exit 1
}
grep -q '"entity"' BENCH_perf.json || {
    echo "ci.sh: BENCH_perf.json lacks the \"entity\" section (fold stats, ceiling probe, route counters) — regenerate with: cargo run --release -p bench --bin perf" >&2
    exit 1
}
grep -q '"sound": true' BENCH_perf.json || {
    echo "ci.sh: BENCH_perf.json entity ceiling probe is not sound — the measured entity-disjoint maximum crossed ENTITY_DISJOINT_CEILING" >&2
    exit 1
}
grep -q '"docs": 1000000' BENCH_perf.json || {
    echo "ci.sh: BENCH_perf.json scaling curve lost its 1M-doc row — regenerate with: cargo run --release -p bench --bin perf" >&2
    exit 1
}
grep -q '"warnings"' BENCH_perf.json || {
    echo "ci.sh: BENCH_perf.json lacks the \"warnings\" array — regenerate with: cargo run --release -p bench --bin perf" >&2
    exit 1
}
if grep -q "pruned e2e underperforms" BENCH_perf.json; then
    echo "ci.sh: BENCH_perf.json still carries the pruned-underperforms warning — the adaptive gate must keep the pruned arm within tolerance of exact" >&2
    exit 1
fi

echo "ci.sh: all checks passed"
