//! Tokenization and light normalisation for the semantic encoder.

/// Small English stopword list. Kept deliberately short: relation
/// verbalisations like "place of birth" lose "of" but keep the
/// content words that carry the semantics.
const STOPWORDS: &[&str] = &[
    "a", "an", "the", "of", "in", "on", "at", "to", "for", "by", "is", "are", "was", "were", "be",
    "been", "with", "and", "or", "that", "this", "it", "its", "as", "from", "which", "who", "whom",
    "what", "when", "where", "how", "does", "do", "did", "has", "have", "had",
];

/// Whether a token is a stopword.
pub fn is_stopword(tok: &str) -> bool {
    STOPWORDS.contains(&tok)
}

/// Conservative suffix-stripping stemmer.
///
/// Only high-precision transforms: plural `-s`/`-es`, `-ing`, `-ed`,
/// with guards against short stems ("born" must not become "bor").
pub fn stem(tok: &str) -> String {
    let t = tok;
    if t.len() > 4 && t.ends_with("ies") {
        return format!("{}y", &t[..t.len() - 3]);
    }
    if t.len() > 4 && t.ends_with("ing") {
        return t[..t.len() - 3].to_string();
    }
    if t.len() > 4 && t.ends_with("ed") && !t.ends_with("eed") {
        return t[..t.len() - 2].to_string();
    }
    // `-es` only after sibilants (boxes, watches, glasses); plain
    // `lakes` is handled by the general `-s` rule below.
    if t.len() > 4
        && (t.ends_with("xes")
            || t.ends_with("zes")
            || t.ends_with("ches")
            || t.ends_with("shes")
            || t.ends_with("sses"))
    {
        return t[..t.len() - 2].to_string();
    }
    if t.len() > 3 && t.ends_with('s') && !t.ends_with("ss") && !t.ends_with("us") {
        return t[..t.len() - 1].to_string();
    }
    t.to_string()
}

/// Split text into lowercase word tokens. Handles the schema forms both
/// KG styles produce:
/// * Freebase paths: `/people/person/place_of_birth` → `people person
///   place birth` (after stopword removal);
/// * SCREAMING_SNAKE relationship types: `COMES_WITH` → `comes with`;
/// * camelCase identifiers: `MountainRange` → `mountain range`.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut prev_lower = false;
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            // camelCase boundary: previous lowercase, current uppercase.
            if ch.is_uppercase() && prev_lower && !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
            prev_lower = ch.is_lowercase() || ch.is_numeric();
            cur.extend(ch.to_lowercase());
        } else {
            prev_lower = false;
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Full normalisation pipeline: tokenize → drop stopwords → stem.
pub fn normalize(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| !is_stopword(t))
        .map(|t| stem(&t))
        .collect()
}

/// Character n-grams of a token (used as sub-word features so near-miss
/// spellings still overlap).
pub fn char_ngrams(tok: &str, n: usize) -> Vec<String> {
    let chars: Vec<char> = tok.chars().collect();
    if chars.len() < n {
        return vec![tok.to_string()];
    }
    (0..=chars.len() - n)
        .map(|i| chars[i..i + n].iter().collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_freebase_path() {
        assert_eq!(
            tokenize("/people/person/place_of_birth"),
            ["people", "person", "place", "of", "birth"]
        );
    }

    #[test]
    fn tokenize_screaming_snake() {
        assert_eq!(tokenize("COMES_WITH"), ["comes", "with"]);
    }

    #[test]
    fn tokenize_camel_case() {
        assert_eq!(tokenize("MountainRange"), ["mountain", "range"]);
        assert_eq!(tokenize("placeOfBirth"), ["place", "of", "birth"]);
    }

    #[test]
    fn normalize_drops_stopwords_and_stems() {
        assert_eq!(normalize("the lakes of America"), ["lake", "america"]);
        assert_eq!(normalize("place of birth"), ["place", "birth"]);
    }

    #[test]
    fn stem_guards_short_words() {
        assert_eq!(stem("born"), "born");
        assert_eq!(stem("was"), "was"); // too short to strip
        assert_eq!(stem("glasses"), "glass");
        assert_eq!(stem("boxes"), "box");
        assert_eq!(stem("lakes"), "lake");
        assert_eq!(stem("countries"), "country");
        assert_eq!(stem("covering"), "cover");
        assert_eq!(stem("covered"), "cover");
        assert_eq!(stem("glass"), "glass");
        assert_eq!(stem("status"), "status");
    }

    #[test]
    fn char_ngrams_basic() {
        assert_eq!(char_ngrams("abcd", 3), ["abc", "bcd"]);
        assert_eq!(char_ngrams("ab", 3), ["ab"]);
    }

    #[test]
    fn unicode_tokens_survive() {
        assert_eq!(tokenize("Kovács Kati"), ["kovács", "kati"]);
    }
}
