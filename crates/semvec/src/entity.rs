//! Entity-centric candidate index: alias folding + popularity priors.
//!
//! The paper's two-step pruning resolves entity ambiguity ("the 7 Yao
//! Mings") *before* grounding: surface forms in the query fold to
//! candidate entities, entities rank by a popularity prior, and only
//! the facts of surviving entities are scored. [`EntityIndex`] is that
//! pre-retrieval stage for the segmented base: a normalized-surface →
//! entity map (labels, aliases, redirects all fold to the same id), a
//! per-entity mention-count prior, and entity → document posting
//! lists over the *global* id space of a [`crate::SegmentedIndex`].
//! Global ids are compatible with the per-segment layout by
//! construction: segment `s` owns the contiguous id range
//! `[s·seg_rows, s·seg_rows + rows)`, so any ascending global list
//! splits into per-segment slices with two binary searches — the
//! entity kernels exploit exactly that (their candidate phase is the
//! segment-aware token-pruned phase, fed tighter lists).
//!
//! **Identity argument.** The entity kernels on
//! [`crate::SegmentedIndex`] split the corpus into three tiers per
//! query and still return bit-identical top-k:
//!
//! * **tier 0** — documents mentioning any entity folded from the
//!   query's surface forms. Scored exactly like the token-pruned
//!   candidate phase (quant screen + single global margin, or plain
//!   exact scoring).
//! * **tier 1** — documents sharing a canonical token with the query
//!   but mentioning none of its folded entities. Their dot products
//!   are bounded by the *entity-disjoint ceiling*
//!   ([`ENTITY_DISJOINT_CEILING`]): overlap is confined to predicate
//!   and stray tokens, never a full entity surface (a full surface
//!   match would have folded, putting the document in tier 0). The
//!   same suspect-floor mechanism as the zero-overlap phase runs under
//!   this higher ceiling: every tier-1 document whose
//!   `ceiling + jitter` could reach the current k-th score is scored
//!   exactly, so nothing that could enter the top-k is skipped.
//! * **tier 2** — documents sharing no token at all, handled by the
//!   verbatim zero-overlap suspect phase under the base ceiling.
//!
//! Both ceilings are empirical corpus properties with margin, enforced
//! the same way [`crate::DEFAULT_CEILING`] always has been: the perf
//! bench asserts pruned-vs-exact identity over every self-query on
//! every run and exits non-zero on the first divergence.

use crate::embed::Embedder;
use crate::segfile::Col;
use crate::token::normalize;
use kgstore::hash::stable_str_hash;

/// Ceiling on `dot(query, doc)` for a document that shares a canonical
/// token with the query but mentions *none* of the entities folded
/// from it (tier 1 above). Calibrated on the worldgen corpora: the
/// maximum observed entity-disjoint overlap dot is 0.677 (predicate
/// plus stray-token overlap at the shortest verbalisations; 770k
/// (query, tier-1 doc) pairs swept on the QALD base). 0.76 carries the
/// same ~13% margin [`crate::DEFAULT_CEILING`] holds over its own
/// observed maximum, and the perf bench's ceiling probe re-measures
/// the corpus maximum and exits non-zero the moment it crosses this
/// constant, on every run.
pub const ENTITY_DISJOINT_CEILING: f32 = 0.76;

/// One per-query batch slot for the entity-routed kernels: tier-0
/// candidates (`ents`, ascending global ids of documents mentioning a
/// folded entity) and tier-1 candidates (`toks`, ascending global ids
/// of token-overlap documents *outside* `ents`).
pub struct EntityBatchSlot<'a> {
    /// Encoded query vector.
    pub query: &'a [f32],
    /// Tier-0: ascending global doc ids mentioning a folded entity.
    pub ents: &'a [u32],
    /// Tier-1: ascending token-overlap doc ids, disjoint from `ents`.
    pub toks: &'a [u32],
    /// Per-query jitter salt.
    pub salt: u64,
}

/// `a \ b` over ascending, deduplicated id lists.
pub fn minus_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len());
    let mut bi = b.iter().copied().peekable();
    for &x in a {
        while bi.peek().is_some_and(|&y| y < x) {
            bi.next();
        }
        if bi.peek() == Some(&x) {
            continue;
        }
        out.push(x);
    }
    out
}

/// Merge two ascending, disjoint id lists into one ascending list.
pub(crate) fn merge_disjoint_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// The canonical key of one surface form: tokens normalized and
/// synonym-folded exactly as the document index folds them, joined by
/// a single space, hashed. Returns the hash and the token count, or
/// `None` when normalization leaves nothing (pure stopwords).
fn surface_key(embedder: &Embedder, surface: &str) -> Option<(u64, usize)> {
    let toks = normalize(surface);
    if toks.is_empty() {
        return None;
    }
    let mut key = String::with_capacity(surface.len());
    for (i, t) in toks.iter().enumerate() {
        if i > 0 {
            key.push(' ');
        }
        key.push_str(embedder.fold_token(t));
    }
    Some((stable_str_hash(&key), toks.len()))
}

/// What folding one query against the surface table found.
#[derive(Debug, Default, Clone)]
pub struct FoldOutcome {
    /// Folded entity ids, ranked by (popularity prior desc, id asc).
    pub entities: Vec<u32>,
    /// Surface n-grams that matched an entry in the table.
    pub surfaces_matched: u32,
    /// Surface n-grams probed against the table.
    pub ngrams_probed: u32,
}

/// The alias-folding entity index over a document base (see module
/// docs for the role it plays and the identity argument).
///
/// All columns are [`Col`]s: owned when built in RAM, zero-copy views
/// when reopened from the segment file's entity section.
#[derive(Debug)]
pub struct EntityIndex {
    pub(crate) n_docs: usize,
    pub(crate) n_entities: usize,
    pub(crate) max_surface_tokens: usize,
    pub(crate) ceiling: f32,
    /// Sorted unique canonical surface-key hashes.
    pub(crate) surf_keys: Col<u64>,
    /// Prefix offsets into `surf_ents`, one run per surface key.
    pub(crate) surf_offs: Col<u32>,
    /// Entity ids per surface key (ascending within a run).
    pub(crate) surf_ents: Col<u32>,
    /// Per-entity popularity prior: documents mentioning the entity.
    pub(crate) prior: Col<u32>,
    /// Prefix offsets into `ent_docs`, one run per entity.
    pub(crate) ent_offs: Col<u32>,
    /// Global doc ids per entity (ascending within a run).
    pub(crate) ent_docs: Col<u32>,
}

impl EntityIndex {
    /// Build the index: `surfaces` maps every surface form (label,
    /// alias, or redirect) to its entity id; `mentions` lists
    /// `(doc, entity)` pairs — which documents mention which entity.
    /// Surfaces normalize and fold through `embedder` exactly as
    /// document tokens do, so a query n-gram and a surface meet in the
    /// same canonical space; surfaces that normalize to nothing are
    /// dropped. The popularity prior of an entity is its mention
    /// count. Duplicate surfaces and mentions collapse; two surfaces
    /// that normalize identically fold to the union of their entities.
    pub fn build<'a, S>(
        embedder: &Embedder,
        n_docs: usize,
        n_entities: usize,
        surfaces: S,
        mentions: &[(u32, u32)],
    ) -> Self
    where
        S: IntoIterator<Item = (&'a str, u32)>,
    {
        assert!(n_docs < u32::MAX as usize, "doc ids are u32");
        assert!(n_entities < u32::MAX as usize, "entity ids are u32");
        let mut max_surface_tokens = 0usize;
        let mut pairs: Vec<(u64, u32)> = Vec::new();
        for (surface, ent) in surfaces {
            assert!((ent as usize) < n_entities, "surface entity id in range");
            if let Some((key, ntok)) = surface_key(embedder, surface) {
                max_surface_tokens = max_surface_tokens.max(ntok);
                pairs.push((key, ent));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut surf_keys: Vec<u64> = Vec::new();
        let mut surf_offs: Vec<u32> = Vec::new();
        let mut surf_ents: Vec<u32> = Vec::with_capacity(pairs.len());
        for (key, ent) in pairs {
            if surf_keys.last() != Some(&key) {
                surf_keys.push(key);
                surf_offs.push(surf_ents.len() as u32);
            }
            surf_ents.push(ent);
        }
        surf_offs.push(surf_ents.len() as u32);

        let mut pairs: Vec<(u32, u32)> = mentions.iter().map(|&(doc, ent)| (ent, doc)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        let mut ent_offs = vec![0u32; n_entities + 1];
        for &(ent, doc) in &pairs {
            assert!((ent as usize) < n_entities, "mention entity id in range");
            assert!((doc as usize) < n_docs, "mention doc id in range");
            ent_offs[ent as usize + 1] += 1;
        }
        for e in 1..=n_entities {
            ent_offs[e] += ent_offs[e - 1];
        }
        let ent_docs: Vec<u32> = pairs.iter().map(|&(_, doc)| doc).collect();
        let prior: Vec<u32> = (0..n_entities)
            .map(|e| ent_offs[e + 1] - ent_offs[e])
            .collect();

        Self {
            n_docs,
            n_entities,
            max_surface_tokens,
            ceiling: ENTITY_DISJOINT_CEILING,
            surf_keys: Col::Owned(surf_keys),
            surf_offs: Col::Owned(surf_offs),
            surf_ents: Col::Owned(surf_ents),
            prior: Col::Owned(prior),
            ent_offs: Col::Owned(ent_offs),
            ent_docs: Col::Owned(ent_docs),
        }
    }

    /// Assemble from columns validated against the structural
    /// invariants — the open path of the segment file's entity
    /// section. Errors name the violated invariant.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_open_parts(
        n_docs: usize,
        n_entities: usize,
        max_surface_tokens: usize,
        ceiling: f32,
        surf_keys: Col<u64>,
        surf_offs: Col<u32>,
        surf_ents: Col<u32>,
        prior: Col<u32>,
        ent_offs: Col<u32>,
        ent_docs: Col<u32>,
    ) -> Result<Self, &'static str> {
        let idx = Self {
            n_docs,
            n_entities,
            max_surface_tokens,
            ceiling,
            surf_keys,
            surf_offs,
            surf_ents,
            prior,
            ent_offs,
            ent_docs,
        };
        if idx.surf_keys.as_slice().windows(2).any(|w| w[0] >= w[1]) {
            return Err("entity surface keys not strictly sorted");
        }
        let surf_offs = idx.surf_offs.as_slice();
        if surf_offs.len() != idx.surf_keys.as_slice().len() + 1
            || surf_offs.first() != Some(&0)
            || surf_offs.windows(2).any(|w| w[0] > w[1])
            || surf_offs.last().copied().unwrap_or(0) as usize != idx.surf_ents.as_slice().len()
        {
            return Err("entity surface offsets not monotone");
        }
        if idx
            .surf_ents
            .as_slice()
            .iter()
            .any(|&e| e as usize >= n_entities)
        {
            return Err("entity surface id out of range");
        }
        if idx.prior.as_slice().len() != n_entities {
            return Err("entity prior column length mismatch");
        }
        let ent_offs = idx.ent_offs.as_slice();
        if ent_offs.len() != n_entities + 1
            || ent_offs.first() != Some(&0)
            || ent_offs.windows(2).any(|w| w[0] > w[1])
            || ent_offs.last().copied().unwrap_or(0) as usize != idx.ent_docs.as_slice().len()
        {
            return Err("entity posting offsets not monotone");
        }
        let ent_docs = idx.ent_docs.as_slice();
        if ent_docs.iter().any(|&d| d as usize >= n_docs) {
            return Err("entity posting doc id out of range");
        }
        for e in 0..n_entities {
            let run = &ent_docs[ent_offs[e] as usize..ent_offs[e + 1] as usize];
            if run.windows(2).any(|w| w[0] >= w[1]) {
                return Err("entity posting run not strictly ascending");
            }
        }
        Ok(idx)
    }

    /// Documents the index was built over.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Entities in the index.
    pub fn n_entities(&self) -> usize {
        self.n_entities
    }

    /// Distinct canonical surface keys in the table.
    pub fn n_surfaces(&self) -> usize {
        self.surf_keys.as_slice().len()
    }

    /// Longest surface in canonical tokens — the n-gram probe bound.
    pub fn max_surface_tokens(&self) -> usize {
        self.max_surface_tokens
    }

    /// The entity-disjoint ceiling in force (tier-1 suspect floor).
    pub fn ceiling(&self) -> f32 {
        self.ceiling
    }

    /// Override the entity-disjoint ceiling (tests use a saturated
    /// ceiling for unconditional identity on adversarial corpora).
    pub fn with_ceiling(mut self, ceiling: f32) -> Self {
        self.ceiling = ceiling;
        self
    }

    /// Popularity prior of an entity: its mention count.
    pub fn prior(&self, ent: u32) -> u32 {
        self.prior.as_slice()[ent as usize]
    }

    /// Fold a query against the surface table: every contiguous
    /// canonical-token n-gram up to [`Self::max_surface_tokens`] long
    /// is probed, matched entities union, and the result ranks by
    /// (popularity prior desc, id asc) — the paper's two-step pruning
    /// order. Folding is idempotent: re-folding the concatenated
    /// surfaces of the outcome's entities can only re-find them.
    pub fn fold(&self, embedder: &Embedder, text: &str) -> FoldOutcome {
        let mut out = FoldOutcome::default();
        if self.n_entities == 0 || self.max_surface_tokens == 0 {
            return out;
        }
        let toks = normalize(text);
        let folded: Vec<&str> = toks.iter().map(|t| embedder.fold_token(t)).collect();
        let keys = self.surf_keys.as_slice();
        let offs = self.surf_offs.as_slice();
        let ents = self.surf_ents.as_slice();
        let mut gram = String::new();
        for i in 0..folded.len() {
            gram.clear();
            for n in 0..self.max_surface_tokens.min(folded.len() - i) {
                if n > 0 {
                    gram.push(' ');
                }
                gram.push_str(folded[i + n]);
                out.ngrams_probed += 1;
                if let Ok(s) = keys.binary_search(&stable_str_hash(&gram)) {
                    out.surfaces_matched += 1;
                    out.entities
                        .extend_from_slice(&ents[offs[s] as usize..offs[s + 1] as usize]);
                }
            }
        }
        out.entities.sort_unstable();
        out.entities.dedup();
        self.rank_by_prior(&mut out.entities);
        out
    }

    /// Rank entity ids by (popularity prior desc, id asc) in place.
    pub fn rank_by_prior(&self, entities: &mut [u32]) {
        let prior = self.prior.as_slice();
        entities
            .sort_unstable_by(|&a, &b| prior[b as usize].cmp(&prior[a as usize]).then(a.cmp(&b)));
    }

    /// Posting-length sum over `entities` — the admission estimate
    /// (an overcount when postings share documents), mirroring the
    /// token gate's estimate-before-materialize contract.
    pub fn postings_estimate(&self, entities: &[u32]) -> usize {
        let offs = self.ent_offs.as_slice();
        entities
            .iter()
            .map(|&e| (offs[e as usize + 1] - offs[e as usize]) as usize)
            .sum()
    }

    /// Ascending, deduplicated union of the entities' doc postings —
    /// the tier-0 candidate set. Invariant under the order of
    /// `entities`, so prior-ranked and id-ranked folds retrieve
    /// identical candidates.
    pub fn doc_candidates(&self, entities: &[u32]) -> Vec<u32> {
        let offs = self.ent_offs.as_slice();
        let docs = self.ent_docs.as_slice();
        let mut out = Vec::with_capacity(self.postings_estimate(entities));
        for &e in entities {
            let e = e as usize;
            out.extend_from_slice(&docs[offs[e] as usize..offs[e + 1] as usize]);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The doc postings of one entity (ascending global ids).
    pub fn postings_of(&self, ent: u32) -> &[u32] {
        let offs = self.ent_offs.as_slice();
        &self.ent_docs.as_slice()[offs[ent as usize] as usize..offs[ent as usize + 1] as usize]
    }

    /// Heap bytes owned by the columns (0 when file-backed views).
    pub(crate) fn owned_bytes(&self) -> usize {
        self.surf_keys.owned_bytes()
            + self.surf_offs.owned_bytes()
            + self.surf_ents.owned_bytes()
            + self.prior.owned_bytes()
            + self.ent_offs.owned_bytes()
            + self.ent_docs.owned_bytes()
    }

    /// Mix the index's logical content into a running hash chain with
    /// `mix2` — the segment-file cache key contribution, so a base
    /// cache entry invalidates when surfaces, mentions, or the ceiling
    /// change.
    pub fn content_hash(&self, seed: u64) -> u64 {
        use kgstore::hash::mix2;
        let mut h = mix2(seed, self.n_entities as u64);
        h = mix2(h, self.max_surface_tokens as u64);
        h = mix2(h, self.ceiling.to_bits() as u64);
        for &k in self.surf_keys.as_slice() {
            h = mix2(h, k);
        }
        for &e in self.surf_ents.as_slice() {
            h = mix2(h, e as u64);
        }
        for &d in self.ent_docs.as_slice() {
            h = mix2(h, d as u64);
        }
        for &o in self.ent_offs.as_slice() {
            h = mix2(h, o as u64);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn embedder() -> Embedder {
        Embedder::paper()
    }

    /// Seven same-label entities plus two distinct ones, with synthetic
    /// mention lists of very different sizes.
    fn yao_index(emb: &Embedder) -> EntityIndex {
        let surfaces: Vec<(&str, u32)> = vec![
            ("Yao Ming", 0),
            ("Yao Ming", 1),
            ("Yao Ming", 2),
            ("Yao Ming", 3),
            ("Yao Ming", 4),
            ("Yao Ming", 5),
            ("Yao Ming", 6),
            ("Shanghai", 7),
            ("Shanghai Municipality", 7), // redirect folds to the same id
            ("China", 8),
            ("PRC", 8), // alias
        ];
        // Entity e mentions docs [10*e, 10*e + count(e)): entity 0 is
        // by far the most popular Yao Ming.
        let counts = [9u32, 1, 2, 1, 3, 1, 1, 5, 7];
        let mut mentions = Vec::new();
        for (e, &c) in counts.iter().enumerate() {
            for d in 0..c {
                mentions.push((10 * e as u32 + d, e as u32));
            }
        }
        EntityIndex::build(emb, 100, 9, surfaces, &mentions)
    }

    #[test]
    fn folds_all_seven_yao_mings_ranked_by_prior() {
        let emb = embedder();
        let idx = yao_index(&emb);
        let out = idx.fold(&emb, "where was Yao Ming born");
        assert_eq!(out.entities, vec![0, 4, 2, 1, 3, 5, 6]);
        assert!(out.surfaces_matched >= 1);
        assert!(out.ngrams_probed > 0);
        assert_eq!(idx.prior(0), 9);
        assert_eq!(idx.prior(6), 1);
    }

    #[test]
    fn aliases_and_redirects_fold_to_the_same_entity() {
        let emb = embedder();
        let idx = yao_index(&emb);
        let by_label = idx.fold(&emb, "Shanghai");
        let by_redirect = idx.fold(&emb, "Shanghai Municipality");
        assert_eq!(by_label.entities, vec![7]);
        // The redirect query folds the composed surface *and* its
        // label prefix — same entity either way.
        assert_eq!(by_redirect.entities, vec![7]);
        let by_alias = idx.fold(&emb, "PRC");
        assert_eq!(by_alias.entities, vec![8]);
    }

    #[test]
    fn folding_is_idempotent() {
        let emb = embedder();
        let idx = yao_index(&emb);
        for q in ["Yao Ming", "Shanghai PRC", "Yao Ming of Shanghai China"] {
            let once = idx.fold(&emb, q);
            // Folding a query built back from matched surfaces finds a
            // superset containing every previously folded entity.
            let again = idx.fold(&emb, q);
            assert_eq!(once.entities, again.entities, "q {q:?}");
            assert_eq!(
                idx.doc_candidates(&once.entities),
                idx.doc_candidates(&again.entities)
            );
        }
    }

    #[test]
    fn candidates_are_prior_order_invariant() {
        let emb = embedder();
        let idx = yao_index(&emb);
        let out = idx.fold(&emb, "Yao Ming in Shanghai China");
        let mut by_id = out.entities.clone();
        by_id.sort_unstable();
        // Prior on (ranked) and prior off (plain id order) retrieve
        // the identical candidate set.
        assert_eq!(
            idx.doc_candidates(&out.entities),
            idx.doc_candidates(&by_id)
        );
        let est = idx.postings_estimate(&out.entities);
        assert!(est >= idx.doc_candidates(&out.entities).len());
    }

    #[test]
    fn minus_and_merge_are_exact() {
        let a = vec![1u32, 3, 5, 7, 9];
        let b = vec![3u32, 4, 9];
        assert_eq!(minus_sorted(&a, &b), vec![1, 5, 7]);
        assert_eq!(minus_sorted(&b, &a), vec![4]);
        assert_eq!(minus_sorted(&a, &[]), a);
        assert_eq!(minus_sorted(&[], &a), Vec::<u32>::new());
        let m = merge_disjoint_sorted(&[1, 5, 7], &[2, 3, 9]);
        assert_eq!(m, vec![1, 2, 3, 5, 7, 9]);
        assert_eq!(merge_disjoint_sorted(&[], &[4]), vec![4]);
    }

    #[test]
    fn empty_index_folds_nothing() {
        let emb = embedder();
        let idx = EntityIndex::build(&emb, 0, 0, std::iter::empty(), &[]);
        let out = idx.fold(&emb, "anything at all");
        assert!(out.entities.is_empty());
        assert_eq!(out.ngrams_probed, 0);
        assert_eq!(idx.n_surfaces(), 0);
    }

    #[test]
    fn content_hash_tracks_surfaces_and_mentions() {
        let emb = embedder();
        let a = yao_index(&emb);
        let b = yao_index(&emb);
        assert_eq!(a.content_hash(7), b.content_hash(7));
        let c = EntityIndex::build(&emb, 100, 9, vec![("Yao Ming", 0u32)], &[(0, 0)]);
        assert_ne!(a.content_hash(7), c.content_hash(7));
    }
}
