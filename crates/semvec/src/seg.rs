//! Sharded (segmented) hybrid index: the million-document face of the
//! store.
//!
//! [`SegmentedIndex`] splits the corpus into fixed-size segments of
//! [`seg_rows`](SegmentedIndex::seg_rows) documents. Each segment owns
//! its f32 rows, its *own* int8 quant shadow (per-segment scale and
//! max-norm), and its own token postings (flat sorted arrays — binary
//! search, no hash-map iteration). Segments are contiguous in global
//! id space: segment `s` holds ids `[s·seg_rows, s·seg_rows + rows)`,
//! so global id ↔ (segment, local row) is a division — no lookup
//! tables.
//!
//! **Bit-identity contract.** Every search mode — exact/quantized ×
//! sequential/batched × full/pruned — returns hits bit-identical to
//! the unsharded engines ([`VecIndex`] / [`crate::HybridIndex`]) over
//! the same rows, for *any* segment count:
//!
//! * Exact scans run the identical per-pair expression
//!   (`dot(query, row) + jitter(salt, global_id, sigma)`) — jitter is
//!   keyed on the **global** id, so shard geometry never enters a
//!   score — and the [`TopK`] total order (score desc, id asc) makes
//!   the kept set independent of offer order.
//! * Quantized scans screen each segment against its own scale, then
//!   rerank with a **single global margin** `θ̂ − 2·B_max`, where `θ̂`
//!   is the k-th best screened score across all segments and `B_max`
//!   the largest per-segment error bound for this query. Proof sketch:
//!   a skipped doc `j` in segment `s` has
//!   `exact_j ≤ screened_j + bound_s ≤ screened_j + B_max < θ̂ − B_max`,
//!   while each of the k screened-top docs `i` has
//!   `exact_i ≥ θ̂ − bound_seg(i) ≥ θ̂ − B_max > exact_j` — so k
//!   documents strictly beat every skipped one, the exact top-k
//!   survives the margin, and the reranked heap (exact scores, total
//!   order) equals the exact scan's. Screen/rerank *counters* may
//!   differ from the unsharded engine's at >1 segment (the margins
//!   differ); at 1 segment they are identical too.
//! * Pruned scans share the postings estimate (per-segment lists
//!   partition the global lists, so length sums are equal → identical
//!   gate decisions), the candidate phase runs in ascending global-id
//!   order, and the ceiling-suspect phase is the verbatim
//!   [`crate::HybridIndex`] loop over global ids.
//!
//! The on-disk face lives in [`crate::segfile`]: `write_to` serializes
//! a built index, `open` maps it back behind zero-copy column views,
//! and searches are layout-agnostic — RAM-built and disk-opened
//! indexes return identical bits.

use crate::embed::{dot, Embedder};
use crate::entity::{merge_disjoint_sorted, EntityBatchSlot, EntityIndex};
use crate::index::{Hit, NoisyQuery, TopK, VecIndex};
use crate::inverted::{suspect_hash_floor, BatchSlot, QueryStyle, DEFAULT_CEILING};
use crate::quant::{dot_i8, dot_i8_batch, dot_i8_block, pair_error_bound, quantize_block};
use crate::quant::{QuantQuery, ScreenStats};
use crate::segfile::{AlignedBuf, Col, SegFileError};
use crate::token::normalize;
use kgstore::hash::{stable_str_hash, FxHashMap};
use std::path::Path;
use std::sync::Arc;

/// Default documents per segment. At the seed corpus (~6k docs) this
/// yields one segment — the sharded engine degenerates to the
/// unsharded layout — while a 1M-doc base splits into ~123 segments
/// that build in parallel and stream tile-sized blocks.
pub const SEG_ROWS_DEFAULT: usize = 8192;

/// Below this many unique documents the parallel build runs serial:
/// thread spawn and chunk assembly overhead exceed the encode win
/// (the 6k-doc seed corpus measured 1.03× — inside noise).
pub const PARALLEL_BUILD_MIN_DOCS: usize = 4096;

/// Resolve the worker-thread count for a build over `unique_docs`
/// deduplicated documents: an explicit `requested` count is honored
/// verbatim; `0` self-tunes — serial below
/// [`PARALLEL_BUILD_MIN_DOCS`], all available cores at or above it.
pub fn resolve_build_threads(unique_docs: usize, requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    if unique_docs < PARALLEL_BUILD_MIN_DOCS {
        1
    } else {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    }
}

/// The chunk ranges a `threads`-worker build partitions `unique_docs`
/// encode slots into — exposed so the perf bench can time each chunk's
/// encode independently (the virtual-makespan model of a parallel
/// build on a machine with fewer real cores).
pub fn build_chunk_ranges(unique_docs: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    if unique_docs == 0 {
        return Vec::new();
    }
    let chunk = unique_docs.div_ceil(threads.min(unique_docs).max(1));
    (0..unique_docs)
        .step_by(chunk)
        .map(|s| s..(s + chunk).min(unique_docs))
        .collect()
}

/// Encode one document for indexing: its embedding plus its sorted,
/// deduplicated canonical-token hashes. The exact per-document work of
/// [`SegmentedIndex::build_parallel`] (and of
/// [`crate::HybridIndex::build_parallel`]), exposed for the perf
/// bench's per-chunk encode timing.
pub fn encode_doc(embedder: &Embedder, text: &str) -> (Vec<f32>, Vec<u64>) {
    let v = embedder.encode(text);
    let mut hashes: Vec<u64> = normalize(text)
        .iter()
        .map(|tok| stable_str_hash(embedder.fold_token(tok)))
        .collect();
    hashes.sort_unstable();
    hashes.dedup();
    (v, hashes)
}

/// One fixed-size shard: contiguous global ids `[base, base + rows)`,
/// f32 rows, an int8 shadow quantized against this segment's own
/// scale, and token postings as flat sorted arrays (`keys` sorted
/// unique hashes, `offs` prefix offsets, `ids` ascending local rows).
#[derive(Debug)]
pub struct Segment {
    pub(crate) base: usize,
    pub(crate) rows: usize,
    pub(crate) dim: usize,
    pub(crate) vectors: Col<f32>,
    pub(crate) quant: Col<i8>,
    pub(crate) scale: f32,
    pub(crate) max_norm: f32,
    pub(crate) keys: Col<u64>,
    pub(crate) offs: Col<u32>,
    pub(crate) ids: Col<u32>,
}

impl Segment {
    /// The f32 row at local index `r`.
    #[inline]
    fn row(&self, r: usize) -> &[f32] {
        &self.vectors.as_slice()[r * self.dim..(r + 1) * self.dim]
    }

    /// The int8 row at local index `r`.
    #[inline]
    fn qrow(&self, r: usize) -> &[i8] {
        &self.quant.as_slice()[r * self.dim..(r + 1) * self.dim]
    }

    /// Local postings list for a token hash, if any.
    #[inline]
    fn postings(&self, hash: u64) -> Option<&[u32]> {
        let i = self.keys.as_slice().binary_search(&hash).ok()?;
        let offs = self.offs.as_slice();
        Some(&self.ids.as_slice()[offs[i] as usize..offs[i + 1] as usize])
    }
}

/// Build one segment over its rows' encoded slots.
fn assemble_segment(
    dim: usize,
    base: usize,
    rows: usize,
    doc_slots: &[usize],
    encoded: &[(Vec<f32>, Vec<u64>)],
) -> Segment {
    let mut vecs: Vec<f32> = Vec::with_capacity(rows * dim);
    let mut pairs: Vec<(u64, u32)> = Vec::new();
    for r in 0..rows {
        let slot = doc_slots[base + r];
        vecs.extend_from_slice(&encoded[slot].0);
        for &h in &encoded[slot].1 {
            pairs.push((h, r as u32));
        }
    }
    // (hash, local) pairs are unique (hashes dedup per doc), so the
    // unstable sort yields one deterministic order; grouped runs give
    // ascending locals per key.
    pairs.sort_unstable();
    let mut keys: Vec<u64> = Vec::new();
    let mut offs: Vec<u32> = Vec::new();
    let mut ids: Vec<u32> = Vec::with_capacity(pairs.len());
    for (h, r) in pairs {
        if keys.last() != Some(&h) {
            keys.push(h);
            offs.push(ids.len() as u32);
        }
        ids.push(r);
    }
    offs.push(ids.len() as u32);
    let (qdata, scale, max_norm) = quantize_block(dim, rows, &vecs);
    Segment {
        base,
        rows,
        dim,
        vectors: Col::Owned(vecs),
        quant: Col::Owned(qdata),
        scale,
        max_norm,
        keys: Col::Owned(keys),
        offs: Col::Owned(offs),
        ids: Col::Owned(ids),
    }
}

/// The sharded hybrid index (see module docs for the layout and the
/// bit-identity contract).
#[derive(Debug)]
pub struct SegmentedIndex {
    dim: usize,
    seg_rows: usize,
    n_docs: usize,
    ceiling: f32,
    segments: Vec<Segment>,
    /// Entity-centric candidate index over the same global ids, when
    /// attached (see [`crate::entity`]).
    entity: Option<EntityIndex>,
    /// File buffer behind zero-copy views (open path), `None` when
    /// every column is owned (build path).
    backing: Option<Arc<AlignedBuf>>,
    build_threads_used: usize,
}

impl SegmentedIndex {
    /// Build from texts with [`SEG_ROWS_DEFAULT`]-row segments and
    /// self-tuned threads.
    pub fn build<'a, I: IntoIterator<Item = &'a str>>(embedder: &Embedder, texts: I) -> Self {
        let texts: Vec<&str> = texts.into_iter().collect();
        Self::build_parallel(embedder, &texts, SEG_ROWS_DEFAULT, 0)
    }

    /// Build with `seg_rows`-row segments and `threads` encode workers
    /// (`0` self-tunes via [`resolve_build_threads`]). Repeated
    /// identical texts are encoded once; output is byte-identical for
    /// every thread count (work is partitioned by index and segments
    /// assembled in order) and for every `seg_rows` (segmentation
    /// changes layout, never a row's bits).
    pub fn build_parallel(
        embedder: &Embedder,
        texts: &[&str],
        seg_rows: usize,
        threads: usize,
    ) -> Self {
        assert!(seg_rows > 0, "segments need at least one row");
        assert!(texts.len() < u32::MAX as usize, "doc ids are u32");
        let dim = embedder.dim();

        // Dedup identical texts — same slotting as the unsharded build.
        let mut slot_of_text: FxHashMap<&str, usize> = FxHashMap::default();
        let mut unique: Vec<&str> = Vec::new();
        let doc_slots: Vec<usize> = texts
            .iter()
            .map(|&t| {
                *slot_of_text.entry(t).or_insert_with(|| {
                    unique.push(t);
                    unique.len() - 1
                })
            })
            .collect();

        let threads = resolve_build_threads(unique.len(), threads);
        let encoded: Vec<(Vec<f32>, Vec<u64>)> = if threads <= 1 || unique.len() < 2 {
            unique.iter().map(|t| encode_doc(embedder, t)).collect()
        } else {
            let mut out: Vec<Option<(Vec<f32>, Vec<u64>)>> = Vec::with_capacity(unique.len());
            out.resize_with(unique.len(), || None);
            let chunk = unique.len().div_ceil(threads.min(unique.len()));
            std::thread::scope(|scope| {
                for (texts, slots) in unique.chunks(chunk).zip(out.chunks_mut(chunk)) {
                    scope.spawn(move || {
                        for (t, slot) in texts.iter().zip(slots) {
                            *slot = Some(encode_doc(embedder, t));
                        }
                    });
                }
            });
            out.into_iter().map(|o| o.expect("slot filled")).collect()
        };

        let n_docs = texts.len();
        let n_segments = n_docs.div_ceil(seg_rows);
        let mut segments: Vec<Segment> = Vec::with_capacity(n_segments);
        if threads <= 1 || n_segments < 2 {
            for s in 0..n_segments {
                let base = s * seg_rows;
                let rows = (n_docs - base).min(seg_rows);
                segments.push(assemble_segment(dim, base, rows, &doc_slots, &encoded));
            }
        } else {
            // Segments are independent; assemble them in parallel and
            // collect in order — deterministic because each slot is
            // written by exactly one worker.
            let mut out: Vec<Option<Segment>> = Vec::with_capacity(n_segments);
            out.resize_with(n_segments, || None);
            let chunk = n_segments.div_ceil(threads.min(n_segments));
            let doc_slots = &doc_slots;
            let encoded = &encoded;
            std::thread::scope(|scope| {
                for (c, slots) in out.chunks_mut(chunk).enumerate() {
                    scope.spawn(move || {
                        for (i, slot) in slots.iter_mut().enumerate() {
                            let s = c * chunk + i;
                            let base = s * seg_rows;
                            let rows = (n_docs - base).min(seg_rows);
                            *slot = Some(assemble_segment(dim, base, rows, doc_slots, encoded));
                        }
                    });
                }
            });
            segments.extend(out.into_iter().map(|o| o.expect("segment assembled")));
        }

        Self {
            dim,
            seg_rows,
            n_docs,
            ceiling: DEFAULT_CEILING,
            segments,
            entity: None,
            backing: None,
            build_threads_used: threads,
        }
    }

    /// Assemble an index from parts validated by [`crate::segfile::open`].
    pub(crate) fn from_open_parts(
        dim: usize,
        seg_rows: usize,
        n_docs: usize,
        ceiling: f32,
        segments: Vec<Segment>,
        entity: Option<EntityIndex>,
        backing: Arc<AlignedBuf>,
    ) -> Self {
        Self {
            dim,
            seg_rows,
            n_docs,
            ceiling,
            segments,
            entity,
            backing: Some(backing),
            build_threads_used: 0,
        }
    }

    /// Serialize into the on-disk format (see [`crate::segfile`]).
    pub fn write_to(&self, path: &Path) -> Result<(), SegFileError> {
        crate::segfile::write_to(self, path)
    }

    /// Reopen a file written by [`write_to`](SegmentedIndex::write_to):
    /// checksum-verified, zero-copy on little-endian targets.
    pub fn open(path: &Path) -> Result<Self, SegFileError> {
        crate::segfile::open(path)
    }

    /// Override the zero-overlap ceiling (see [`crate::HybridIndex`]).
    pub fn with_ceiling(mut self, ceiling: f32) -> Self {
        self.ceiling = ceiling;
        self
    }

    /// The zero-overlap ceiling in force.
    pub fn ceiling(&self) -> f32 {
        self.ceiling
    }

    /// Attach an entity-centric candidate index (see
    /// [`crate::entity`]). The entity index must cover exactly this
    /// base's documents.
    pub fn with_entity(mut self, entity: EntityIndex) -> Self {
        assert_eq!(
            entity.n_docs(),
            self.n_docs,
            "entity index must cover the base"
        );
        self.entity = Some(entity);
        self
    }

    /// The attached entity index, if any.
    pub fn entity_index(&self) -> Option<&EntityIndex> {
        self.entity.as_ref()
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.n_docs
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.n_docs == 0
    }

    /// Row dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Documents per segment (the last segment may hold fewer).
    pub fn seg_rows(&self) -> usize {
        self.seg_rows
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Rows in segment `s`.
    pub fn segment_rows(&self, s: usize) -> usize {
        self.segments[s].rows
    }

    /// Quantization scale of segment `s`'s int8 shadow.
    pub fn segment_scale(&self, s: usize) -> f32 {
        self.segments[s].scale
    }

    /// Largest row L2 norm in segment `s`.
    pub fn segment_max_norm(&self, s: usize) -> f32 {
        self.segments[s].max_norm
    }

    /// Encode-worker threads the build used (0 for a file-opened
    /// index, which never encoded anything).
    pub fn build_threads_used(&self) -> usize {
        self.build_threads_used
    }

    /// Whether this index reads zero-copy out of a file buffer.
    pub fn is_file_backed(&self) -> bool {
        self.backing.is_some()
    }

    pub(crate) fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The stored f32 vector with a given global id.
    #[inline]
    pub fn vector(&self, id: usize) -> &[f32] {
        let seg = &self.segments[id / self.seg_rows];
        seg.row(id - seg.base)
    }

    /// Global ascending postings list for a token hash (used by the
    /// roundtrip tests; per-segment lists partition this list).
    pub fn postings(&self, token_hash: u64) -> Vec<u32> {
        let mut out = Vec::new();
        for seg in &self.segments {
            if let Some(list) = seg.postings(token_hash) {
                out.extend(list.iter().map(|&l| seg.base as u32 + l));
            }
        }
        out
    }

    /// Bytes of the f32 rows.
    pub fn bytes_f32(&self) -> usize {
        self.n_docs * self.dim * std::mem::size_of::<f32>()
    }

    /// Bytes of the f32 rows plus the int8 shadows.
    pub fn bytes_with_quant(&self) -> usize {
        self.bytes_f32() + self.n_docs * self.dim
    }

    /// Resident heap bytes: the shared file buffer when file-backed
    /// (columns are views into it), otherwise the sum of owned column
    /// bytes.
    pub fn resident_bytes(&self) -> usize {
        if let Some(b) = &self.backing {
            return b.len();
        }
        self.segments
            .iter()
            .map(|s| {
                s.vectors.owned_bytes()
                    + s.quant.owned_bytes()
                    + s.keys.owned_bytes()
                    + s.offs.owned_bytes()
                    + s.ids.owned_bytes()
            })
            .sum::<usize>()
            + self.entity.as_ref().map_or(0, |e| e.owned_bytes())
    }

    // ------------------------------------------------------------------
    // Full scans.
    // ------------------------------------------------------------------

    /// Exact noisy top-k over all segments — bit-identical to
    /// [`VecIndex::top_k_noisy`] over the same rows (identical per-pair
    /// expression, global-id jitter, total-order heap).
    pub fn top_k_noisy(&self, query: &[f32], k: usize, sigma: f32, salt: u64) -> Vec<Hit> {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        if k == 0 || self.n_docs == 0 {
            return Vec::new();
        }
        let mut top = TopK::new(k);
        for seg in &self.segments {
            for r in 0..seg.rows {
                let id = seg.base + r;
                let mut score = dot(query, seg.row(r));
                if sigma > 0.0 {
                    score += VecIndex::jitter(salt, id, sigma);
                }
                top.offer(Hit { id, score });
            }
        }
        top.into_sorted()
    }

    /// Quantized two-stage noisy top-k over all segments: per-segment
    /// int8 screen, single global margin `θ̂ − 2·B_max`, exact f32
    /// rerank. Hits bit-identical to [`VecIndex::top_k_noisy_quant`]
    /// (see the module-level proof sketch); counters may differ at >1
    /// segment.
    pub fn top_k_noisy_quant(
        &self,
        query: &[f32],
        k: usize,
        sigma: f32,
        salt: u64,
    ) -> (Vec<Hit>, ScreenStats) {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        let n = self.n_docs;
        if k == 0 || n == 0 {
            return (Vec::new(), ScreenStats::default());
        }
        let sigma = sigma.max(0.0);
        let qq = QuantQuery::new(query);
        let mut screened = Vec::with_capacity(n);
        let mut quant_top = TopK::new(k);
        let mut b_max = 0.0f64;
        let mut raw: Vec<i32> = Vec::new();
        for seg in &self.segments {
            let factor = qq.scale() * seg.scale;
            b_max = b_max.max(self.seg_bound(&qq, seg));
            raw.clear();
            raw.reserve(seg.rows);
            dot_i8_block(qq.row(), seg.quant.as_slice(), self.dim, &mut raw);
            for (r, &d) in raw.iter().enumerate() {
                let id = seg.base + r;
                let mut s = d as f32 * factor;
                if sigma > 0.0 {
                    s += VecIndex::jitter(salt, id, sigma);
                }
                screened.push(s);
                quant_top.offer(Hit { id, score: s });
            }
        }
        let margin = match quant_top.bound() {
            Some(kth) => kth.score as f64 - 2.0 * b_max,
            None => f64::NEG_INFINITY,
        };
        let mut top = TopK::new(k);
        let mut reranked = 0u64;
        for seg in &self.segments {
            for r in 0..seg.rows {
                let id = seg.base + r;
                if (screened[id] as f64) < margin {
                    continue;
                }
                reranked += 1;
                let mut score = dot(query, seg.row(r));
                if sigma > 0.0 {
                    score += VecIndex::jitter(salt, id, sigma);
                }
                top.offer(Hit { id, score });
            }
        }
        (
            top.into_sorted(),
            ScreenStats {
                screened: n as u64,
                reranked,
            },
        )
    }

    /// Per-(query, segment) quantization error bound.
    #[inline]
    fn seg_bound(&self, qq: &QuantQuery, seg: &Segment) -> f64 {
        pair_error_bound(
            qq.scale() as f64,
            qq.norm() as f64,
            seg.scale as f64,
            seg.max_norm as f64,
            self.dim,
        )
    }

    /// Batched exact noisy top-k: each segment's block is streamed once
    /// for the whole batch. Slot `i` is bit-identical to the sequential
    /// [`top_k_noisy`](SegmentedIndex::top_k_noisy) with that slot's
    /// query and salt (the batch kernel replays `dot` per pair).
    pub fn top_k_noisy_batch(
        &self,
        queries: &[NoisyQuery<'_>],
        k: usize,
        sigma: f32,
    ) -> Vec<Vec<Hit>> {
        for q in queries {
            assert_eq!(q.vector.len(), self.dim, "dimension mismatch");
        }
        if k == 0 || self.n_docs == 0 {
            return vec![Vec::new(); queries.len()];
        }
        let refs: Vec<&[f32]> = queries.iter().map(|q| q.vector).collect();
        let mut tops: Vec<TopK> = queries.iter().map(|_| TopK::new(k)).collect();
        let mut dots: Vec<Vec<f32>> = vec![Vec::new(); queries.len()];
        for seg in &self.segments {
            for d in dots.iter_mut() {
                d.clear();
                d.reserve(seg.rows);
            }
            crate::embed::dot_batch(&refs, seg.vectors.as_slice(), self.dim, &mut dots);
            for ((q, d), top) in queries.iter().zip(&dots).zip(tops.iter_mut()) {
                for (r, &s) in d.iter().enumerate() {
                    let id = seg.base + r;
                    let score = if sigma > 0.0 {
                        s + VecIndex::jitter(q.salt, id, sigma)
                    } else {
                        s
                    };
                    top.offer(Hit { id, score });
                }
            }
        }
        tops.into_iter().map(|t| t.into_sorted()).collect()
    }

    /// Batched quantized noisy top-k: per-segment batched int8 screen,
    /// then each query's global margin and exact rerank exactly as in
    /// the sequential path. Slot `i`'s hits and counters are
    /// bit-identical to
    /// [`top_k_noisy_quant`](SegmentedIndex::top_k_noisy_quant) for
    /// that slot.
    pub fn top_k_noisy_quant_batch(
        &self,
        queries: &[NoisyQuery<'_>],
        k: usize,
        sigma: f32,
    ) -> Vec<(Vec<Hit>, ScreenStats)> {
        for q in queries {
            assert_eq!(q.vector.len(), self.dim, "dimension mismatch");
        }
        let n = self.n_docs;
        if k == 0 || n == 0 {
            return vec![(Vec::new(), ScreenStats::default()); queries.len()];
        }
        let sigma = sigma.max(0.0);
        let qqs: Vec<QuantQuery> = queries.iter().map(|q| QuantQuery::new(q.vector)).collect();
        let qrows: Vec<&[i8]> = qqs.iter().map(|qq| qq.row()).collect();
        let mut screened: Vec<Vec<f32>> = queries.iter().map(|_| Vec::with_capacity(n)).collect();
        let mut quant_tops: Vec<TopK> = queries.iter().map(|_| TopK::new(k)).collect();
        let mut b_max = vec![0.0f64; queries.len()];
        let mut raw: Vec<Vec<i32>> = vec![Vec::new(); queries.len()];
        for seg in &self.segments {
            for r in raw.iter_mut() {
                r.clear();
                r.reserve(seg.rows);
            }
            dot_i8_batch(&qrows, seg.quant.as_slice(), self.dim, &mut raw);
            for (slot, ((q, qq), seg_raw)) in queries.iter().zip(&qqs).zip(raw.iter()).enumerate() {
                let factor = qq.scale() * seg.scale;
                b_max[slot] = b_max[slot].max(self.seg_bound(qq, seg));
                for (r, &d) in seg_raw.iter().enumerate() {
                    let id = seg.base + r;
                    let mut s = d as f32 * factor;
                    if sigma > 0.0 {
                        s += VecIndex::jitter(q.salt, id, sigma);
                    }
                    screened[slot].push(s);
                    quant_tops[slot].offer(Hit { id, score: s });
                }
            }
        }
        queries
            .iter()
            .enumerate()
            .zip(quant_tops)
            .map(|((slot, q), quant_top)| {
                let margin = match quant_top.bound() {
                    Some(kth) => kth.score as f64 - 2.0 * b_max[slot],
                    None => f64::NEG_INFINITY,
                };
                let mut top = TopK::new(k);
                let mut reranked = 0u64;
                for seg in &self.segments {
                    for r in 0..seg.rows {
                        let id = seg.base + r;
                        if (screened[slot][id] as f64) < margin {
                            continue;
                        }
                        reranked += 1;
                        let mut score = dot(q.vector, seg.row(r));
                        if sigma > 0.0 {
                            score += VecIndex::jitter(q.salt, id, sigma);
                        }
                        top.offer(Hit { id, score });
                    }
                }
                (
                    top.into_sorted(),
                    ScreenStats {
                        screened: n as u64,
                        reranked,
                    },
                )
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Pruned scans.
    // ------------------------------------------------------------------

    /// Candidate ids (global, ascending, deduplicated) sharing a
    /// canonical token with the query — the sharded
    /// [`crate::HybridIndex::candidates`].
    pub fn candidates(&self, embedder: &Embedder, query_text: &str, style: QueryStyle) -> Vec<u32> {
        self.candidates_if_under(embedder, query_text, style, usize::MAX)
            .expect("a usize::MAX budget admits every candidate set")
    }

    /// [`Self::candidates`] behind the same admission estimate as
    /// [`crate::HybridIndex::candidates_if_under`]. Per-segment lists
    /// partition the global postings lists, so the length sums — and
    /// therefore every gate admit/refuse decision — are identical to
    /// the unsharded index's.
    pub fn candidates_if_under(
        &self,
        embedder: &Embedder,
        query_text: &str,
        style: QueryStyle,
        max_cands: usize,
    ) -> Result<Vec<u32>, usize> {
        let mut hashes: Vec<u64> = Vec::new();
        let mut estimate = 0usize;
        for tok in normalize(query_text) {
            let key = match style {
                QueryStyle::Folded => embedder.fold_token(&tok),
                QueryStyle::Unfolded => tok.as_str(),
            };
            let h = stable_str_hash(key);
            let mut any = false;
            for seg in &self.segments {
                if let Some(list) = seg.postings(h) {
                    estimate += list.len();
                    any = true;
                }
            }
            if any {
                hashes.push(h);
            }
        }
        if estimate > max_cands {
            return Err(estimate);
        }
        let mut out: Vec<u32> = Vec::with_capacity(estimate);
        for &h in &hashes {
            for seg in &self.segments {
                if let Some(list) = seg.postings(h) {
                    out.extend(list.iter().map(|&l| seg.base as u32 + l));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// Pruned noisy top-k over global candidate ids — the sharded
    /// [`crate::HybridIndex::top_k_noisy_encoded`], bit-identical to it
    /// (and to the exact scan) under the same ceiling contract.
    pub fn top_k_noisy_encoded(
        &self,
        query: &[f32],
        cands: &[u32],
        k: usize,
        sigma: f32,
        salt: u64,
    ) -> Vec<Hit> {
        self.pruned_scored(query, cands, k, sigma, salt, false).0
    }

    /// Pruned noisy top-k with the quantized candidate phase — the
    /// sharded [`crate::HybridIndex::top_k_noisy_encoded_quant`]:
    /// candidates screen against their own segment's shadow, the margin
    /// uses the per-query `B_max` over candidate segments, the suspect
    /// phase is exact. Hits carry the full bit-identity contract.
    pub fn top_k_noisy_encoded_quant(
        &self,
        query: &[f32],
        cands: &[u32],
        k: usize,
        sigma: f32,
        salt: u64,
    ) -> (Vec<Hit>, ScreenStats) {
        self.pruned_scored(query, cands, k, sigma, salt, true)
    }

    fn pruned_scored(
        &self,
        query: &[f32],
        cands: &[u32],
        k: usize,
        sigma: f32,
        salt: u64,
        quantized: bool,
    ) -> (Vec<Hit>, ScreenStats) {
        if k == 0 || self.n_docs == 0 {
            return (Vec::new(), ScreenStats::default());
        }
        if cands.len() < k {
            // Documented fallback, as in the unsharded engine: fewer
            // candidates than k → scan everything.
            return if quantized {
                self.top_k_noisy_quant(query, k, sigma, salt)
            } else {
                (
                    self.top_k_noisy(query, k, sigma, salt),
                    ScreenStats::default(),
                )
            };
        }
        let sigma = sigma.max(0.0);
        let mut top = TopK::new(k);
        let mut stats = ScreenStats::default();
        let qq = if quantized {
            Some(QuantQuery::new(query))
        } else {
            None
        };
        if let Some(qq) = &qq {
            let mut screened = Vec::with_capacity(cands.len());
            let mut quant_top = TopK::new(k);
            let mut b_max = 0.0f64;
            let mut cur_seg = usize::MAX;
            let mut factor = 0.0f32;
            for &id in cands {
                let id = id as usize;
                let s_idx = id / self.seg_rows;
                if s_idx != cur_seg {
                    cur_seg = s_idx;
                    let seg = &self.segments[s_idx];
                    factor = qq.scale() * seg.scale;
                    b_max = b_max.max(self.seg_bound(qq, seg));
                }
                let seg = &self.segments[s_idx];
                let mut s = dot_i8(qq.row(), seg.qrow(id - seg.base)) as f32 * factor;
                if sigma > 0.0 {
                    s += VecIndex::jitter(salt, id, sigma);
                }
                screened.push(s);
                quant_top.offer(Hit { id, score: s });
            }
            stats.screened = cands.len() as u64;
            let kth = quant_top.bound().expect("k candidates screened").score;
            let margin = kth as f64 - 2.0 * b_max;
            for (&id, &s) in cands.iter().zip(&screened) {
                if (s as f64) < margin {
                    continue;
                }
                stats.reranked += 1;
                let id = id as usize;
                let mut score = dot(query, self.vector(id));
                if sigma > 0.0 {
                    score += VecIndex::jitter(salt, id, sigma);
                }
                top.offer(Hit { id, score });
            }
        } else {
            for &id in cands {
                let id = id as usize;
                let mut score = dot(query, self.vector(id));
                if sigma > 0.0 {
                    score += VecIndex::jitter(salt, id, sigma);
                }
                top.offer(Hit { id, score });
            }
        }
        self.verify_non_candidates(query, qq.as_ref(), cands, sigma, salt, &mut top);
        (top.into_sorted(), stats)
    }

    /// The verbatim ceiling-suspect phase of
    /// [`crate::HybridIndex`], over global ids: every non-candidate
    /// whose `ceiling + jitter` could reach the current k-th score is
    /// scored exactly. Identical hash floors, identical scores,
    /// identical offers — shard geometry never appears.
    fn verify_non_candidates(
        &self,
        query: &[f32],
        qq: Option<&QuantQuery>,
        cands: &[u32],
        sigma: f32,
        salt: u64,
        top: &mut TopK,
    ) {
        let mut cand_iter = cands.iter().copied().peekable();
        let ids = (0..self.n_docs).filter(move |&id| {
            if cand_iter.peek() == Some(&(id as u32)) {
                cand_iter.next();
                return false;
            }
            true
        });
        self.suspect_walk(query, qq, ids, self.ceiling, sigma, salt, top);
    }

    /// The suspect-floor loop shared by the zero-overlap phase and the
    /// entity kernel's tier-1 phase: walk ascending suspect ids, skip
    /// any whose hash-derived jitter cannot bridge `kth − ceiling`,
    /// score the rest exactly. With a quantized query the survivor is
    /// additionally int8-pre-screened against the *exact* current k-th
    /// score before its f32 row is touched: the true noisy score sits
    /// within the segment's quantization bound of the screened value
    /// (identical jitter on both sides), so anything screening below
    /// `kth − 2·B_seg` provably cannot displace a held hit. Offers are
    /// exact f32 either way — hits stay bit-identical with or without
    /// the pre-screen; only the memory traffic changes (one int8 row
    /// instead of one f32 row for the overwhelming skip majority).
    #[allow(clippy::too_many_arguments)]
    fn suspect_walk<I>(
        &self,
        query: &[f32],
        qq: Option<&QuantQuery>,
        ids: I,
        ceiling: f32,
        sigma: f32,
        salt: u64,
        top: &mut TopK,
    ) where
        I: Iterator<Item = usize>,
    {
        let mut kth = top.bound().expect("k candidates offered").score;
        let mut hash_floor = suspect_hash_floor(kth, ceiling, sigma);
        let mut cur_seg = usize::MAX;
        let mut factor = 0.0f32;
        let mut bseg = 0.0f64;
        for id in ids {
            let floor = match hash_floor {
                Some(f) => f,
                None => break,
            };
            let hash = kgstore::hash::mix2(salt, id as u64);
            if (hash >> 11) < floor {
                continue;
            }
            if let Some(qq) = qq {
                let s_idx = id / self.seg_rows;
                if s_idx != cur_seg {
                    cur_seg = s_idx;
                    let seg = &self.segments[s_idx];
                    factor = qq.scale() * seg.scale;
                    bseg = self.seg_bound(qq, seg);
                }
                let seg = &self.segments[s_idx];
                let mut s = dot_i8(qq.row(), seg.qrow(id - seg.base)) as f32 * factor;
                if sigma > 0.0 {
                    s += VecIndex::jitter_of(hash, sigma);
                }
                if (s as f64) < kth as f64 - 2.0 * bseg {
                    continue;
                }
            }
            let mut score = dot(query, self.vector(id));
            if sigma > 0.0 {
                score += VecIndex::jitter_of(hash, sigma);
            }
            top.offer(Hit { id, score });
            let new_kth = top.bound().expect("still k hits").score;
            if new_kth != kth {
                kth = new_kth;
                hash_floor = suspect_hash_floor(kth, ceiling, sigma);
            }
        }
    }

    /// Batched pruned scan — the sharded
    /// [`crate::HybridIndex::top_k_noisy_encoded_batch`]. Slots with
    /// fewer candidates than `k` take the full-scan fallback together
    /// through the batched engines; the rest run the sequential pruned
    /// path per slot (candidate sets are gate-bounded small — there is
    /// no block to tile). Every slot is bit-identical to its sequential
    /// twin.
    pub fn top_k_noisy_encoded_batch(
        &self,
        slots: &[BatchSlot<'_>],
        k: usize,
        sigma: f32,
    ) -> Vec<Vec<Hit>> {
        self.pruned_scored_batch(slots, k, sigma, false).0
    }

    /// Batched pruned scan with the quantized candidate phase — the
    /// sharded [`crate::HybridIndex::top_k_noisy_encoded_quant_batch`];
    /// per-slot hits and counters bit-identical to the sequential call.
    pub fn top_k_noisy_encoded_quant_batch(
        &self,
        slots: &[BatchSlot<'_>],
        k: usize,
        sigma: f32,
    ) -> (Vec<Vec<Hit>>, Vec<ScreenStats>) {
        self.pruned_scored_batch(slots, k, sigma, true)
    }

    fn pruned_scored_batch(
        &self,
        slots: &[BatchSlot<'_>],
        k: usize,
        sigma: f32,
        quantized: bool,
    ) -> (Vec<Vec<Hit>>, Vec<ScreenStats>) {
        let mut hits: Vec<Vec<Hit>> = vec![Vec::new(); slots.len()];
        let mut stats: Vec<ScreenStats> = vec![ScreenStats::default(); slots.len()];
        if k == 0 || self.n_docs == 0 {
            return (hits, stats);
        }
        let full: Vec<usize> = (0..slots.len())
            .filter(|&i| slots[i].cands.len() < k)
            .collect();
        if !full.is_empty() {
            let queries: Vec<NoisyQuery> = full
                .iter()
                .map(|&i| NoisyQuery {
                    vector: slots[i].query,
                    salt: slots[i].salt,
                })
                .collect();
            if quantized {
                for (&i, (h, s)) in full
                    .iter()
                    .zip(self.top_k_noisy_quant_batch(&queries, k, sigma))
                {
                    hits[i] = h;
                    stats[i] = s;
                }
            } else {
                for (&i, h) in full.iter().zip(self.top_k_noisy_batch(&queries, k, sigma)) {
                    hits[i] = h;
                }
            }
        }
        for i in 0..slots.len() {
            if slots[i].cands.len() < k {
                continue;
            }
            let (h, s) = self.pruned_scored(
                slots[i].query,
                slots[i].cands,
                k,
                sigma,
                slots[i].salt,
                quantized,
            );
            hits[i] = h;
            stats[i] = s;
        }
        (hits, stats)
    }

    // ------------------------------------------------------------------
    // Entity-routed scans (see crate::entity for the tier layout and
    // the identity argument).
    // ------------------------------------------------------------------

    /// Entity-routed noisy top-k with exact tier-0 scoring: `ents` is
    /// the tier-0 candidate set (ascending global ids of documents
    /// mentioning a folded query entity), `toks` the tier-1 set
    /// (ascending token-overlap ids disjoint from `ents`). Requires an
    /// attached entity index (its ceiling drives the tier-1 floor);
    /// bit-identical to the exact scan under the two-ceiling contract.
    pub fn top_k_noisy_entity(
        &self,
        query: &[f32],
        ents: &[u32],
        toks: &[u32],
        k: usize,
        sigma: f32,
        salt: u64,
    ) -> Vec<Hit> {
        self.entity_scored(query, ents, toks, k, sigma, salt, false)
            .0
    }

    /// [`Self::top_k_noisy_entity`] with the quantized tier-0 phase
    /// (per-segment int8 screen + single global margin, exactly as in
    /// the token-pruned kernel). Same bit-identity contract.
    pub fn top_k_noisy_entity_quant(
        &self,
        query: &[f32],
        ents: &[u32],
        toks: &[u32],
        k: usize,
        sigma: f32,
        salt: u64,
    ) -> (Vec<Hit>, ScreenStats) {
        self.entity_scored(query, ents, toks, k, sigma, salt, true)
    }

    /// The three-phase entity kernel. Phase A scores `ents` exactly
    /// like the token-pruned candidate phase; phase B runs the
    /// suspect-floor loop over `toks` under the entity-disjoint
    /// ceiling; phase C is the verbatim zero-overlap phase over
    /// everything else. With fewer than `k` tier-0 docs the floors
    /// cannot seed, so the merged union takes the token-pruned path
    /// (which below `k` candidates full-scans) — still bit-identical.
    #[allow(clippy::too_many_arguments)]
    fn entity_scored(
        &self,
        query: &[f32],
        ents: &[u32],
        toks: &[u32],
        k: usize,
        sigma: f32,
        salt: u64,
        quantized: bool,
    ) -> (Vec<Hit>, ScreenStats) {
        if k == 0 || self.n_docs == 0 {
            return (Vec::new(), ScreenStats::default());
        }
        let eceiling = self
            .entity
            .as_ref()
            .expect("entity kernels need an attached entity index")
            .ceiling();
        let merged = merge_disjoint_sorted(ents, toks);
        if ents.len() < k {
            return self.pruned_scored(query, &merged, k, sigma, salt, quantized);
        }
        let sigma = sigma.max(0.0);
        let mut top = TopK::new(k);
        let mut stats = ScreenStats::default();
        let qq = if quantized {
            Some(QuantQuery::new(query))
        } else {
            None
        };
        if let Some(qq) = &qq {
            let mut screened = Vec::with_capacity(ents.len());
            let mut quant_top = TopK::new(k);
            let mut b_max = 0.0f64;
            let mut cur_seg = usize::MAX;
            let mut factor = 0.0f32;
            for &id in ents {
                let id = id as usize;
                let s_idx = id / self.seg_rows;
                if s_idx != cur_seg {
                    cur_seg = s_idx;
                    let seg = &self.segments[s_idx];
                    factor = qq.scale() * seg.scale;
                    b_max = b_max.max(self.seg_bound(qq, seg));
                }
                let seg = &self.segments[s_idx];
                let mut s = dot_i8(qq.row(), seg.qrow(id - seg.base)) as f32 * factor;
                if sigma > 0.0 {
                    s += VecIndex::jitter(salt, id, sigma);
                }
                screened.push(s);
                quant_top.offer(Hit { id, score: s });
            }
            stats.screened = ents.len() as u64;
            let kth = quant_top.bound().expect("k tier-0 docs screened").score;
            let margin = kth as f64 - 2.0 * b_max;
            for (&id, &s) in ents.iter().zip(&screened) {
                if (s as f64) < margin {
                    continue;
                }
                stats.reranked += 1;
                let id = id as usize;
                let mut score = dot(query, self.vector(id));
                if sigma > 0.0 {
                    score += VecIndex::jitter(salt, id, sigma);
                }
                top.offer(Hit { id, score });
            }
        } else {
            for &id in ents {
                let id = id as usize;
                let mut score = dot(query, self.vector(id));
                if sigma > 0.0 {
                    score += VecIndex::jitter(salt, id, sigma);
                }
                top.offer(Hit { id, score });
            }
        }
        // Phase B: token-overlap docs outside every folded entity's
        // postings. Their dots are bounded by the entity-disjoint
        // ceiling, so the zero-overlap suspect mechanism applies
        // verbatim under the higher ceiling: anything that could reach
        // the current k-th score is scored exactly.
        self.suspect_walk(
            query,
            qq.as_ref(),
            toks.iter().map(|&id| id as usize),
            eceiling,
            sigma,
            salt,
            &mut top,
        );
        self.verify_non_candidates(query, qq.as_ref(), &merged, sigma, salt, &mut top);
        (top.into_sorted(), stats)
    }

    /// Batched entity-routed scan: slots with fewer than `k` tier-0
    /// docs merge their tiers and ride the token-pruned batch path
    /// (whose below-`k` slots full-scan through the batched engines);
    /// the rest run the sequential three-phase kernel per slot. Every
    /// slot is bit-identical to its sequential twin.
    pub fn top_k_noisy_entity_batch(
        &self,
        slots: &[EntityBatchSlot<'_>],
        k: usize,
        sigma: f32,
    ) -> Vec<Vec<Hit>> {
        self.entity_scored_batch(slots, k, sigma, false).0
    }

    /// [`Self::top_k_noisy_entity_batch`] with the quantized tier-0
    /// phase; per-slot hits and counters bit-identical to
    /// [`Self::top_k_noisy_entity_quant`].
    pub fn top_k_noisy_entity_quant_batch(
        &self,
        slots: &[EntityBatchSlot<'_>],
        k: usize,
        sigma: f32,
    ) -> (Vec<Vec<Hit>>, Vec<ScreenStats>) {
        self.entity_scored_batch(slots, k, sigma, true)
    }

    fn entity_scored_batch(
        &self,
        slots: &[EntityBatchSlot<'_>],
        k: usize,
        sigma: f32,
        quantized: bool,
    ) -> (Vec<Vec<Hit>>, Vec<ScreenStats>) {
        let mut hits: Vec<Vec<Hit>> = vec![Vec::new(); slots.len()];
        let mut stats: Vec<ScreenStats> = vec![ScreenStats::default(); slots.len()];
        if k == 0 || self.n_docs == 0 {
            return (hits, stats);
        }
        let small: Vec<usize> = (0..slots.len())
            .filter(|&i| slots[i].ents.len() < k)
            .collect();
        if !small.is_empty() {
            let merged: Vec<Vec<u32>> = small
                .iter()
                .map(|&i| merge_disjoint_sorted(slots[i].ents, slots[i].toks))
                .collect();
            let bslots: Vec<BatchSlot> = small
                .iter()
                .zip(&merged)
                .map(|(&i, m)| BatchSlot {
                    query: slots[i].query,
                    cands: m,
                    salt: slots[i].salt,
                })
                .collect();
            let (h, s) = self.pruned_scored_batch(&bslots, k, sigma, quantized);
            for ((&i, hh), ss) in small.iter().zip(h).zip(s) {
                hits[i] = hh;
                stats[i] = ss;
            }
        }
        for i in 0..slots.len() {
            if slots[i].ents.len() < k {
                continue;
            }
            let (h, s) = self.entity_scored(
                slots[i].query,
                slots[i].ents,
                slots[i].toks,
                k,
                sigma,
                slots[i].salt,
                quantized,
            );
            hits[i] = h;
            stats[i] = s;
        }
        (hits, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverted::HybridIndex;

    fn corpus(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| format!("entity{} relation{} value{}", i, i % 7, i % 13))
            .collect()
    }

    fn queries() -> Vec<&'static str> {
        vec![
            "entity42 relation0 value3",
            "entity7 relation3",
            "value11 relation5 entity100",
            "zzz qqq totally unseen",
        ]
    }

    /// Shard counts under test: 1 segment (degenerate), 2, 7 (uneven
    /// tail), and tiny segments (many shards).
    fn seg_rows_for(n: usize) -> Vec<usize> {
        vec![n, n.div_ceil(2), n.div_ceil(7), 64]
    }

    #[test]
    fn full_scans_match_unsharded_engines_bitwise() {
        let emb = Embedder::paper();
        let texts = corpus(500);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let unsharded = HybridIndex::build_parallel(&emb, &refs, 1);
        let vecs = unsharded.vectors();
        for seg_rows in seg_rows_for(texts.len()) {
            let idx = SegmentedIndex::build_parallel(&emb, &refs, seg_rows, 1);
            for q in queries() {
                let qv = emb.encode(q);
                let salt = stable_str_hash(q);
                for sigma in [0.0f32, 0.3, 0.6] {
                    let exact = vecs.top_k_noisy(&qv, 10, sigma, salt);
                    assert_eq!(
                        idx.top_k_noisy(&qv, 10, sigma, salt),
                        exact,
                        "exact seg_rows {seg_rows} q {q:?} sigma {sigma}"
                    );
                    let (qhits, qstats) = idx.top_k_noisy_quant(&qv, 10, sigma, salt);
                    assert_eq!(
                        qhits, exact,
                        "quant seg_rows {seg_rows} q {q:?} sigma {sigma}"
                    );
                    assert_eq!(qstats.screened, texts.len() as u64);
                    if idx.num_segments() == 1 {
                        let (_, ustats) = vecs.top_k_noisy_quant(&qv, 10, sigma, salt);
                        assert_eq!(qstats, ustats, "1-segment counters must match");
                    }
                }
            }
        }
    }

    #[test]
    fn batched_scans_match_sequential_per_slot() {
        let emb = Embedder::paper();
        let texts = corpus(400);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let idx = SegmentedIndex::build_parallel(&emb, &refs, 150, 1);
        let encoded: Vec<Vec<f32>> = queries().iter().map(|q| emb.encode(q)).collect();
        let noisy: Vec<NoisyQuery> = queries()
            .iter()
            .zip(&encoded)
            .map(|(q, v)| NoisyQuery {
                vector: v,
                salt: stable_str_hash(q),
            })
            .collect();
        for sigma in [0.0f32, 0.3] {
            let batch = idx.top_k_noisy_batch(&noisy, 10, sigma);
            let qbatch = idx.top_k_noisy_quant_batch(&noisy, 10, sigma);
            for (i, q) in noisy.iter().enumerate() {
                assert_eq!(
                    batch[i],
                    idx.top_k_noisy(q.vector, 10, sigma, q.salt),
                    "exact slot {i} sigma {sigma}"
                );
                let seq = idx.top_k_noisy_quant(q.vector, 10, sigma, q.salt);
                assert_eq!(qbatch[i].0, seq.0, "quant slot {i} sigma {sigma}");
                assert_eq!(qbatch[i].1, seq.1, "stats slot {i} sigma {sigma}");
            }
        }
    }

    #[test]
    fn pruned_scans_match_unsharded_pruned_and_exact() {
        let emb = Embedder::paper();
        let texts = corpus(500);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let unsharded = HybridIndex::build_parallel(&emb, &refs, 1);
        for seg_rows in seg_rows_for(texts.len()) {
            let idx = SegmentedIndex::build_parallel(&emb, &refs, seg_rows, 1);
            for q in queries() {
                let qv = emb.encode(q);
                let salt = stable_str_hash(q);
                let ucands = unsharded.candidates(&emb, q, QueryStyle::Folded);
                let scands = idx.candidates(&emb, q, QueryStyle::Folded);
                assert_eq!(scands, ucands, "candidates seg_rows {seg_rows} q {q:?}");
                for sigma in [0.0f32, 0.3, 0.6] {
                    let reference = unsharded.top_k_noisy_encoded(&qv, &ucands, 10, sigma, salt);
                    assert_eq!(
                        idx.top_k_noisy_encoded(&qv, &scands, 10, sigma, salt),
                        reference,
                        "pruned seg_rows {seg_rows} q {q:?} sigma {sigma}"
                    );
                    let (qhits, _) = idx.top_k_noisy_encoded_quant(&qv, &scands, 10, sigma, salt);
                    assert_eq!(
                        qhits, reference,
                        "pruned-quant seg_rows {seg_rows} q {q:?} sigma {sigma}"
                    );
                }
            }
        }
    }

    #[test]
    fn pruned_batches_match_sequential_per_slot() {
        let emb = Embedder::paper();
        let texts = corpus(400);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let idx = SegmentedIndex::build_parallel(&emb, &refs, 90, 1);
        let encoded: Vec<Vec<f32>> = queries().iter().map(|q| emb.encode(q)).collect();
        let cands: Vec<Vec<u32>> = queries()
            .iter()
            .map(|q| idx.candidates(&emb, q, QueryStyle::Folded))
            .collect();
        let slots: Vec<BatchSlot> = queries()
            .iter()
            .enumerate()
            .map(|(i, q)| BatchSlot {
                query: &encoded[i],
                cands: &cands[i],
                salt: stable_str_hash(q),
            })
            .collect();
        for sigma in [0.0f32, 0.3] {
            let exact = idx.top_k_noisy_encoded_batch(&slots, 10, sigma);
            let (quant, qstats) = idx.top_k_noisy_encoded_quant_batch(&slots, 10, sigma);
            for (i, slot) in slots.iter().enumerate() {
                assert_eq!(
                    exact[i],
                    idx.top_k_noisy_encoded(slot.query, slot.cands, 10, sigma, slot.salt),
                    "slot {i} sigma {sigma}"
                );
                let (sh, ss) =
                    idx.top_k_noisy_encoded_quant(slot.query, slot.cands, 10, sigma, slot.salt);
                assert_eq!(quant[i], sh, "quant slot {i} sigma {sigma}");
                assert_eq!(qstats[i], ss, "stats slot {i} sigma {sigma}");
            }
        }
    }

    #[test]
    fn candidate_gate_estimates_match_unsharded() {
        let emb = Embedder::paper();
        let texts = corpus(300);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let unsharded = HybridIndex::build_parallel(&emb, &refs, 1);
        let idx = SegmentedIndex::build_parallel(&emb, &refs, 70, 1);
        for q in queries() {
            for budget in [0usize, 5, 50, 10_000] {
                let u = unsharded.candidates_if_under(&emb, q, QueryStyle::Folded, budget);
                let s = idx.candidates_if_under(&emb, q, QueryStyle::Folded, budget);
                assert_eq!(u, s, "q {q:?} budget {budget}");
            }
        }
    }

    #[test]
    fn parallel_build_is_byte_identical_to_serial() {
        let emb = Embedder::paper();
        let texts: Vec<String> = corpus(300).into_iter().chain(corpus(300)).collect();
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let serial = SegmentedIndex::build_parallel(&emb, &refs, 128, 1);
        let parallel = SegmentedIndex::build_parallel(&emb, &refs, 128, 8);
        assert_eq!(serial.len(), parallel.len());
        assert_eq!(serial.num_segments(), parallel.num_segments());
        for id in 0..serial.len() {
            assert_eq!(serial.vector(id), parallel.vector(id), "row {id}");
        }
        for s in 0..serial.num_segments() {
            assert_eq!(
                serial.segment_scale(s).to_bits(),
                parallel.segment_scale(s).to_bits()
            );
            assert_eq!(
                serial.segment_max_norm(s).to_bits(),
                parallel.segment_max_norm(s).to_bits()
            );
        }
        assert_eq!(serial.build_threads_used(), 1);
        assert_eq!(parallel.build_threads_used(), 8);
    }

    #[test]
    fn self_tuning_build_goes_serial_below_threshold() {
        assert_eq!(resolve_build_threads(PARALLEL_BUILD_MIN_DOCS - 1, 0), 1);
        assert!(resolve_build_threads(PARALLEL_BUILD_MIN_DOCS, 0) >= 1);
        assert_eq!(resolve_build_threads(10, 3), 3);
        assert_eq!(resolve_build_threads(1_000_000, 2), 2);
    }

    #[test]
    fn build_chunk_ranges_cover_exactly() {
        for (n, t) in [(0usize, 4usize), (1, 4), (10, 3), (100, 8), (7, 100)] {
            let ranges = build_chunk_ranges(n, t);
            let mut covered = 0;
            for r in &ranges {
                assert_eq!(r.start, covered, "contiguous");
                covered = r.end;
            }
            assert_eq!(covered, n, "n {n} t {t}");
        }
    }

    #[test]
    fn roundtrip_through_disk_is_bit_identical() {
        let emb = Embedder::paper();
        let texts = corpus(300);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let built = SegmentedIndex::build_parallel(&emb, &refs, 70, 1);
        let dir = std::env::temp_dir().join("seg-roundtrip-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("base.seg");
        built.write_to(&path).unwrap();
        let opened = SegmentedIndex::open(&path).unwrap();
        assert!(opened.is_file_backed());
        assert_eq!(opened.len(), built.len());
        assert_eq!(opened.num_segments(), built.num_segments());
        for id in 0..built.len() {
            let a: Vec<u32> = built.vector(id).iter().map(|x| x.to_bits()).collect();
            let b: Vec<u32> = opened.vector(id).iter().map(|x| x.to_bits()).collect();
            assert_eq!(a, b, "row {id}");
        }
        for s in 0..built.num_segments() {
            assert_eq!(
                built.segment_scale(s).to_bits(),
                opened.segment_scale(s).to_bits()
            );
        }
        for q in queries() {
            let qv = emb.encode(q);
            let salt = stable_str_hash(q);
            assert_eq!(
                built.top_k_noisy(&qv, 10, 0.3, salt),
                opened.top_k_noisy(&qv, 10, 0.3, salt),
                "q {q:?}"
            );
            let cands = built.candidates(&emb, q, QueryStyle::Folded);
            assert_eq!(cands, opened.candidates(&emb, q, QueryStyle::Folded));
            assert_eq!(
                built.top_k_noisy_encoded_quant(&qv, &cands, 10, 0.3, salt),
                opened.top_k_noisy_encoded_quant(&qv, &cands, 10, 0.3, salt),
            );
        }
    }

    #[test]
    fn corrupted_file_is_rejected_never_garbage() {
        let emb = Embedder::paper();
        let texts = corpus(60);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let built = SegmentedIndex::build_parallel(&emb, &refs, 25, 1);
        let dir = std::env::temp_dir().join("seg-corrupt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("base.seg");
        built.write_to(&path).unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Flip one byte at positions across header, table, payload.
        for pos in [0usize, 9, 30, 70, 200, clean.len() / 2, clean.len() - 1] {
            let mut bad = clean.clone();
            bad[pos] ^= 0x40;
            let p = dir.join("bad.seg");
            std::fs::write(&p, &bad).unwrap();
            assert!(
                SegmentedIndex::open(&p).is_err(),
                "flipped byte at {pos} must be rejected"
            );
        }
        // Truncation is rejected too.
        std::fs::write(dir.join("trunc.seg"), &clean[..clean.len() - 8]).unwrap();
        assert!(SegmentedIndex::open(&dir.join("trunc.seg")).is_err());
    }

    #[test]
    fn empty_index_works_and_roundtrips() {
        let emb = Embedder::paper();
        let idx = SegmentedIndex::build(&emb, std::iter::empty());
        assert!(idx.is_empty());
        assert_eq!(idx.num_segments(), 0);
        assert!(idx.top_k_noisy(&vec![0.0; emb.dim()], 5, 0.3, 1).is_empty());
        let dir = std::env::temp_dir().join("seg-empty-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.seg");
        idx.write_to(&path).unwrap();
        let opened = SegmentedIndex::open(&path).unwrap();
        assert!(opened.is_empty());
    }

    /// One entity per distinct corpus token passing `keep`, with the
    /// token itself as the sole surface and the docs carrying it as
    /// postings. `keep = |_| true` gives full surface coverage (empty
    /// tier-1); a partial filter leaves a real tier-1 for phase B.
    fn entity_over(emb: &Embedder, texts: &[String], keep: fn(&str) -> bool) -> EntityIndex {
        let mut vocab: Vec<&str> = texts
            .iter()
            .flat_map(|t| t.split(' '))
            .filter(|w| keep(w))
            .collect();
        vocab.sort_unstable();
        vocab.dedup();
        let surfaces: Vec<(&str, u32)> = vocab
            .iter()
            .enumerate()
            .map(|(i, w)| (*w, i as u32))
            .collect();
        let mut mentions: Vec<(u32, u32)> = Vec::new();
        for (d, t) in texts.iter().enumerate() {
            for w in t.split(' ') {
                if let Ok(e) = vocab.binary_search(&w) {
                    mentions.push((d as u32, e as u32));
                }
            }
        }
        EntityIndex::build(emb, texts.len(), vocab.len(), surfaces, &mentions)
    }

    #[test]
    fn entity_scans_match_exact_across_shards_and_modes() {
        let emb = Embedder::paper();
        let texts = corpus(500);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let unsharded = HybridIndex::build_parallel(&emb, &refs, 1);
        let vecs = unsharded.vectors();
        // Full coverage (tier-1 empty by construction) and value*-only
        // coverage (~38-doc postings per entity, real tier-1). The
        // saturated ceiling makes identity unconditional in both.
        let filters: [fn(&str) -> bool; 2] = [|_| true, |w| w.starts_with("value")];
        for keep in filters {
            for seg_rows in seg_rows_for(texts.len()) {
                let ent = entity_over(&emb, &texts, keep).with_ceiling(2.0);
                let idx = SegmentedIndex::build_parallel(&emb, &refs, seg_rows, 1).with_entity(ent);
                let e = idx.entity_index().unwrap();
                for q in queries() {
                    let qv = emb.encode(q);
                    let salt = stable_str_hash(q);
                    let fold = e.fold(&emb, q);
                    let ents = e.doc_candidates(&fold.entities);
                    let cands = idx.candidates(&emb, q, QueryStyle::Folded);
                    let toks = crate::entity::minus_sorted(&cands, &ents);
                    for sigma in [0.0f32, 0.3, 0.6] {
                        let exact = vecs.top_k_noisy(&qv, 10, sigma, salt);
                        assert_eq!(
                            idx.top_k_noisy_entity(&qv, &ents, &toks, 10, sigma, salt),
                            exact,
                            "entity seg_rows {seg_rows} q {q:?} sigma {sigma}"
                        );
                        let (qhits, qstats) =
                            idx.top_k_noisy_entity_quant(&qv, &ents, &toks, 10, sigma, salt);
                        assert_eq!(
                            qhits, exact,
                            "entity-quant seg_rows {seg_rows} q {q:?} sigma {sigma}"
                        );
                        if ents.len() >= 10 {
                            assert_eq!(qstats.screened, ents.len() as u64);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn entity_batches_match_sequential_per_slot() {
        let emb = Embedder::paper();
        let texts = corpus(400);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let ent = entity_over(&emb, &texts, |w| w.starts_with("value")).with_ceiling(2.0);
        let idx = SegmentedIndex::build_parallel(&emb, &refs, 90, 1).with_entity(ent);
        let e = idx.entity_index().unwrap();
        let encoded: Vec<Vec<f32>> = queries().iter().map(|q| emb.encode(q)).collect();
        let ents: Vec<Vec<u32>> = queries()
            .iter()
            .map(|q| e.doc_candidates(&e.fold(&emb, q).entities))
            .collect();
        let toks: Vec<Vec<u32>> = queries()
            .iter()
            .zip(&ents)
            .map(|(q, en)| {
                crate::entity::minus_sorted(&idx.candidates(&emb, q, QueryStyle::Folded), en)
            })
            .collect();
        // The query mix covers both batch branches: slots whose tier-0
        // is below k ride the token-pruned batch path, the rest run
        // the three-phase kernel.
        let slots: Vec<EntityBatchSlot> = queries()
            .iter()
            .enumerate()
            .map(|(i, q)| EntityBatchSlot {
                query: &encoded[i],
                ents: &ents[i],
                toks: &toks[i],
                salt: stable_str_hash(q),
            })
            .collect();
        for sigma in [0.0f32, 0.3] {
            let batch = idx.top_k_noisy_entity_batch(&slots, 10, sigma);
            let (qbatch, qstats) = idx.top_k_noisy_entity_quant_batch(&slots, 10, sigma);
            for (i, s) in slots.iter().enumerate() {
                assert_eq!(
                    batch[i],
                    idx.top_k_noisy_entity(s.query, s.ents, s.toks, 10, sigma, s.salt),
                    "slot {i} sigma {sigma}"
                );
                let (sh, ss) =
                    idx.top_k_noisy_entity_quant(s.query, s.ents, s.toks, 10, sigma, s.salt);
                assert_eq!(qbatch[i], sh, "quant slot {i} sigma {sigma}");
                assert_eq!(qstats[i], ss, "stats slot {i} sigma {sigma}");
            }
        }
    }

    #[test]
    fn entity_kernel_with_few_tier0_docs_falls_back_bitwise() {
        // entity{i} tokens are unique per doc, so every query's tier-0
        // set is below k and the kernel must ride the token-pruned
        // path over the merged union — bit-identical to calling it
        // directly.
        let emb = Embedder::paper();
        let texts = corpus(300);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let ent = entity_over(&emb, &texts, |w| w.starts_with("entity"));
        let idx = SegmentedIndex::build_parallel(&emb, &refs, 70, 1).with_entity(ent);
        let e = idx.entity_index().unwrap();
        for q in queries() {
            let qv = emb.encode(q);
            let salt = stable_str_hash(q);
            let ents = e.doc_candidates(&e.fold(&emb, q).entities);
            assert!(ents.len() < 10, "q {q:?} must exercise the fallback");
            let cands = idx.candidates(&emb, q, QueryStyle::Folded);
            let toks = crate::entity::minus_sorted(&cands, &ents);
            let merged = merge_disjoint_sorted(&ents, &toks);
            for sigma in [0.0f32, 0.3] {
                assert_eq!(
                    idx.top_k_noisy_entity(&qv, &ents, &toks, 10, sigma, salt),
                    idx.top_k_noisy_encoded(&qv, &merged, 10, sigma, salt),
                    "q {q:?} sigma {sigma}"
                );
                let (eh, es) = idx.top_k_noisy_entity_quant(&qv, &ents, &toks, 10, sigma, salt);
                let (ph, ps) = idx.top_k_noisy_encoded_quant(&qv, &merged, 10, sigma, salt);
                assert_eq!(eh, ph, "quant q {q:?} sigma {sigma}");
                assert_eq!(es, ps, "stats q {q:?} sigma {sigma}");
            }
        }
    }

    #[test]
    fn entity_section_roundtrips_and_rejects_corruption() {
        let emb = Embedder::paper();
        let texts = corpus(120);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let ent = entity_over(&emb, &texts, |_| true).with_ceiling(0.75);
        let built = SegmentedIndex::build_parallel(&emb, &refs, 50, 1).with_entity(ent);
        let dir = std::env::temp_dir().join("seg-entity-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("base.seg");
        built.write_to(&path).unwrap();
        let opened = SegmentedIndex::open(&path).unwrap();
        let be = built.entity_index().unwrap();
        let oe = opened.entity_index().unwrap();
        assert_eq!(oe.n_docs(), be.n_docs());
        assert_eq!(oe.n_entities(), be.n_entities());
        assert_eq!(oe.n_surfaces(), be.n_surfaces());
        assert_eq!(oe.max_surface_tokens(), be.max_surface_tokens());
        assert_eq!(oe.ceiling().to_bits(), be.ceiling().to_bits());
        assert_eq!(oe.content_hash(7), be.content_hash(7));
        for id in 0..be.n_entities() as u32 {
            assert_eq!(oe.prior(id), be.prior(id), "prior of entity {id}");
            assert_eq!(oe.postings_of(id), be.postings_of(id), "postings of {id}");
        }
        for q in queries() {
            let bf = be.fold(&emb, q);
            let of = oe.fold(&emb, q);
            assert_eq!(bf.entities, of.entities, "fold {q:?}");
            assert_eq!(bf.surfaces_matched, of.surfaces_matched);
            assert_eq!(bf.ngrams_probed, of.ngrams_probed);
            let qv = emb.encode(q);
            let salt = stable_str_hash(q);
            let ents = be.doc_candidates(&bf.entities);
            let cands = built.candidates(&emb, q, QueryStyle::Folded);
            let toks = crate::entity::minus_sorted(&cands, &ents);
            assert_eq!(
                built.top_k_noisy_entity(&qv, &ents, &toks, 10, 0.3, salt),
                opened.top_k_noisy_entity(&qv, &ents, &toks, 10, 0.3, salt),
                "kernel diverged after reopen, q {q:?}"
            );
        }
        // Single-byte corruption inside the entity section is rejected.
        let clean = std::fs::read(&path).unwrap();
        let eoff = u64::from_le_bytes(clean[56..64].try_into().unwrap()) as usize;
        assert!(eoff > 0 && eoff < clean.len(), "entity section present");
        for pos in [
            eoff,
            eoff + 8,
            eoff + 40,
            eoff + 48,
            (eoff + clean.len()) / 2,
            clean.len() - 1,
        ] {
            let mut bad = clean.clone();
            bad[pos] ^= 0x40;
            let p = dir.join("bad.seg");
            std::fs::write(&p, &bad).unwrap();
            assert!(
                SegmentedIndex::open(&p).is_err(),
                "flipped byte at {pos} must be rejected"
            );
        }
        // No entity section: header slot stays 0, reopen attaches none.
        let bare = SegmentedIndex::build_parallel(&emb, &refs, 50, 1);
        let p2 = dir.join("bare.seg");
        bare.write_to(&p2).unwrap();
        let raw = std::fs::read(&p2).unwrap();
        assert_eq!(u64::from_le_bytes(raw[56..64].try_into().unwrap()), 0);
        assert!(SegmentedIndex::open(&p2).unwrap().entity_index().is_none());
        // A zero-entity index still roundtrips as a valid section.
        let empty = EntityIndex::build(&emb, texts.len(), 0, std::iter::empty(), &[]);
        let withe = SegmentedIndex::build_parallel(&emb, &refs, 50, 1).with_entity(empty);
        let p3 = dir.join("zero.seg");
        withe.write_to(&p3).unwrap();
        let ze = SegmentedIndex::open(&p3).unwrap();
        let zi = ze.entity_index().unwrap();
        assert_eq!(zi.n_entities(), 0);
        assert!(zi.fold(&emb, "entity3 relation0").entities.is_empty());
    }
}
