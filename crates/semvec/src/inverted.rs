//! Token-postings candidate generation over the vector index.
//!
//! Exact top-k is O(N·d) per query. Since hashing embeddings mostly
//! score documents that share canonical tokens with the query, an
//! inverted index over canonical tokens prunes the scan to the
//! documents that can score meaningfully — the standard
//! lexical-candidates + dense-rerank architecture. The pruned search
//! returns *identical* hits to the full scan under a documented
//! contract:
//!
//! **Zero-overlap ceiling.** A document sharing no canonical token with
//! the query has no word-feature mass in common with it; its dot
//! product comes only from char-trigram overlap, hash collisions, and
//! encoder noise — the noise floor of the encoder. The index assumes
//! that floor is bounded by [`HybridIndex::ceiling`] (default
//! [`DEFAULT_CEILING`], calibrated with a wide margin against the
//! worldgen corpora; see DESIGN.md). Every pruned query *verifies* its
//! own result against that bound: any non-candidate whose ceiling plus
//! (exactly computed, cheap) retrieval jitter could reach the current
//! k-th score is scored in full, and when fewer than `k` candidates
//! exist at all the query falls back to the exact scan. So result
//! length and ordering always match [`VecIndex`], and the hits are
//! bit-identical whenever the ceiling holds — which the perf bench and
//! the CI smoke assert on every full run.

use crate::embed::Embedder;
use crate::index::{Hit, NoisyQuery, TopK, VecIndex};
use crate::quant::{dot_i8, QuantQuery, ScreenStats};
use crate::token::normalize;
use kgstore::hash::{stable_str_hash, FxHashMap};

/// Default bound on the dot product between a query and a document that
/// share no canonical token. Calibrated against the worldgen corpora
/// under both the clean and the `Embedder::paper` (noise 0.6) encoders
/// (max observed zero-overlap dot 0.424 across all three source ×
/// dataset corpora; see DESIGN.md); raise it (via
/// [`HybridIndex::with_ceiling`]) for adversarial corpora, at the cost
/// of pruning less.
pub const DEFAULT_CEILING: f32 = 0.48;

/// How the query text was (or will be) encoded, which decides which
/// postings a token can match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStyle {
    /// Query tokens are synonym-folded before hashing (the encoder's
    /// [`Embedder::encode`] path): look up postings by folded token.
    Folded,
    /// Query tokens are hashed raw ([`Embedder::encode_unfolded`]):
    /// a word feature can only overlap a document whose *canonical*
    /// token equals the raw query token, so look up postings by the
    /// unfolded token.
    Unfolded,
}

/// A vector index paired with token postings for candidate pruning.
pub struct HybridIndex {
    vec: VecIndex,
    /// Canonical-token hash → ascending doc ids containing it.
    postings: FxHashMap<u64, Vec<u32>>,
    doc_count: usize,
    ceiling: f32,
}

impl HybridIndex {
    /// Build from texts: encodes each with `embedder` and indexes its
    /// canonical tokens (folded with the *embedder's* synonym table, so
    /// candidate overlap agrees with the encoder under custom or empty
    /// synonym configurations).
    pub fn build<'a, I: IntoIterator<Item = &'a str>>(embedder: &Embedder, texts: I) -> Self {
        let texts: Vec<&str> = texts.into_iter().collect();
        Self::build_parallel(embedder, &texts, 1)
    }

    /// Build with `threads` encoder workers (0 = all cores). Repeated
    /// identical texts are encoded and tokenized once and their results
    /// reused; output is byte-identical to the serial build regardless
    /// of thread count (work is partitioned by index and reassembled in
    /// order).
    pub fn build_parallel(embedder: &Embedder, texts: &[&str], threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            threads
        };

        // Dedup: unique texts, and for each doc the unique slot it maps
        // to. Duplicate verbalisations (same sentence from different
        // triples) cost one encode instead of many.
        let mut slot_of_text: FxHashMap<&str, usize> = FxHashMap::default();
        let mut unique: Vec<&str> = Vec::new();
        let doc_slots: Vec<usize> = texts
            .iter()
            .map(|&t| {
                *slot_of_text.entry(t).or_insert_with(|| {
                    unique.push(t);
                    unique.len() - 1
                })
            })
            .collect();

        // Encode + tokenize each unique text, in parallel when asked.
        let encode_one = |text: &str| -> (Vec<f32>, Vec<u64>) {
            let v = embedder.encode(text);
            let mut hashes: Vec<u64> = normalize(text)
                .iter()
                .map(|tok| stable_str_hash(embedder.fold_token(tok)))
                .collect();
            hashes.sort_unstable();
            hashes.dedup();
            (v, hashes)
        };
        let encoded: Vec<(Vec<f32>, Vec<u64>)> = if threads <= 1 || unique.len() < 2 {
            unique.iter().map(|t| encode_one(t)).collect()
        } else {
            let mut out: Vec<Option<(Vec<f32>, Vec<u64>)>> = Vec::with_capacity(unique.len());
            out.resize_with(unique.len(), || None);
            let chunk = unique.len().div_ceil(threads.min(unique.len()));
            let encode_one = &encode_one;
            std::thread::scope(|scope| {
                for (texts, slots) in unique.chunks(chunk).zip(out.chunks_mut(chunk)) {
                    scope.spawn(move || {
                        for (t, slot) in texts.iter().zip(slots) {
                            *slot = Some(encode_one(t));
                        }
                    });
                }
            });
            out.into_iter().map(|o| o.expect("slot filled")).collect()
        };

        // Assemble in doc order: flat vectors plus postings (ascending
        // ids by construction).
        let mut vec = VecIndex::new(embedder.dim());
        let mut postings: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for (id, &slot) in doc_slots.iter().enumerate() {
            vec.add(&encoded[slot].0);
            for &h in &encoded[slot].1 {
                postings.entry(h).or_default().push(id as u32);
            }
        }
        Self {
            vec,
            postings,
            doc_count: texts.len(),
            ceiling: DEFAULT_CEILING,
        }
    }

    /// Override the zero-overlap ceiling (see module docs).
    pub fn with_ceiling(mut self, ceiling: f32) -> Self {
        self.ceiling = ceiling;
        self
    }

    /// The zero-overlap ceiling in force.
    pub fn ceiling(&self) -> f32 {
        self.ceiling
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.doc_count
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.doc_count == 0
    }

    /// The underlying exact index.
    pub fn vectors(&self) -> &VecIndex {
        &self.vec
    }

    /// Candidate document ids sharing at least one canonical token with
    /// the query text (sorted, deduplicated). `style` must match how
    /// the query vector is encoded — folded queries look up folded
    /// tokens, unfolded queries their raw tokens (a raw word feature
    /// can only collide with a document token that folds to itself).
    pub fn candidates(&self, embedder: &Embedder, query_text: &str, style: QueryStyle) -> Vec<u32> {
        self.candidates_if_under(embedder, query_text, style, usize::MAX)
            .expect("a usize::MAX budget admits every candidate set")
    }

    /// [`Self::candidates`] behind an admission estimate: sum the
    /// postings-list lengths for the query's tokens *before*
    /// materializing the union, and refuse with `Err(estimate)` when
    /// the sum exceeds `max_cands`. The sum is a cheap upper bound on
    /// the union size (duplicates across lists are counted twice), so
    /// a pass here guarantees the true candidate set is within budget;
    /// a refusal costs only the token hashing and map probes — no
    /// allocation, no sort — which is what makes it safe to consult on
    /// every query.
    pub fn candidates_if_under(
        &self,
        embedder: &Embedder,
        query_text: &str,
        style: QueryStyle,
        max_cands: usize,
    ) -> Result<Vec<u32>, usize> {
        let mut lists: Vec<&[u32]> = Vec::new();
        let mut estimate = 0usize;
        for tok in normalize(query_text) {
            let key = match style {
                QueryStyle::Folded => embedder.fold_token(&tok),
                QueryStyle::Unfolded => tok.as_str(),
            };
            if let Some(list) = self.postings.get(&stable_str_hash(key)) {
                estimate += list.len();
                lists.push(list);
            }
        }
        if estimate > max_cands {
            return Err(estimate);
        }
        let mut out: Vec<u32> = Vec::with_capacity(estimate);
        for list in lists {
            out.extend_from_slice(list);
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// Top-k via candidate pruning + exact rerank, given the already
    /// encoded query vector. Falls back to the full scan when
    /// candidates are fewer than `k`, and scores every non-candidate
    /// the ceiling contract cannot exclude, so the result is identical
    /// to [`VecIndex::top_k`] whenever the ceiling holds — and always
    /// has the exact-scan's length and ordering.
    pub fn top_k_encoded(&self, query: &[f32], cands: &[u32], k: usize) -> Vec<Hit> {
        self.top_k_noisy_encoded(query, cands, k, 0.0, 0)
    }

    /// Top-k with the deterministic per-(query, doc) score jitter of
    /// [`VecIndex::top_k_noisy`], via candidate pruning. Returns hits
    /// bit-identical to the exact noisy scan under the ceiling
    /// contract: candidates are scored exactly (dot + jitter, same
    /// float order as the full scan), and every non-candidate whose
    /// `ceiling + jitter` could still reach the current k-th hit is
    /// scored in full rather than trusted.
    pub fn top_k_noisy_encoded(
        &self,
        query: &[f32],
        cands: &[u32],
        k: usize,
        sigma: f32,
        salt: u64,
    ) -> Vec<Hit> {
        self.top_k_noisy_scored(query, cands, k, sigma, salt, false)
            .0
    }

    /// [`top_k_noisy_encoded`] with the candidate phase run through the
    /// quantized two-stage engine: candidates are *screened* with the
    /// int8 kernel and only those within the per-pair error bound of
    /// the quantized k-th score pay the exact f32 dot (see
    /// [`VecIndex::top_k_noisy_quant`] for the proof sketch). The
    /// ceiling-suspect phase is unchanged and exact, so the result
    /// keeps the full bit-identity contract. Returns the hits plus the
    /// screen/rerank counters of the quantized stage (suspects scored
    /// by the ceiling phase are not part of either counter).
    ///
    /// [`top_k_noisy_encoded`]: HybridIndex::top_k_noisy_encoded
    pub fn top_k_noisy_encoded_quant(
        &self,
        query: &[f32],
        cands: &[u32],
        k: usize,
        sigma: f32,
        salt: u64,
    ) -> (Vec<Hit>, ScreenStats) {
        self.top_k_noisy_scored(query, cands, k, sigma, salt, true)
    }

    /// Shared pruned scan: candidate phase (exact, or quantized screen
    /// + margin rerank), then the ceiling-verified suspect phase.
    fn top_k_noisy_scored(
        &self,
        query: &[f32],
        cands: &[u32],
        k: usize,
        sigma: f32,
        salt: u64,
        quantized: bool,
    ) -> (Vec<Hit>, ScreenStats) {
        if k == 0 || self.doc_count == 0 {
            return (Vec::new(), ScreenStats::default());
        }
        if cands.len() < k {
            // Documented fallback: fewer candidates than k means the
            // tail of the exact result is below the noise floor, where
            // pruning cannot reproduce it — scan everything.
            return if quantized {
                self.vec.top_k_noisy_quant(query, k, sigma, salt)
            } else {
                (
                    self.vec.top_k_noisy(query, k, sigma, salt),
                    ScreenStats::default(),
                )
            };
        }
        let sigma = sigma.max(0.0);
        let mut top = TopK::new(k);
        let mut stats = ScreenStats::default();
        // Phase 1: candidates. Exact mode scores each with the f32 dot
        // the full scan uses; quantized mode screens all of them with
        // the int8 kernel first and exact-scores only the margin.
        if quantized {
            let quant = self.vec.store().quant();
            let qq = QuantQuery::new(query);
            let factor = qq.dequant_factor(quant);
            let bound = qq.error_bound(quant, self.vec.store().dim());
            let mut screened = Vec::with_capacity(cands.len());
            let mut quant_top = TopK::new(k);
            for &id in cands {
                let id = id as usize;
                let mut s = dot_i8(qq.row(), quant.row(id)) as f32 * factor;
                if sigma > 0.0 {
                    s += VecIndex::jitter(salt, id, sigma);
                }
                screened.push(s);
                quant_top.offer(Hit { id, score: s });
            }
            stats.screened = cands.len() as u64;
            let kth = quant_top.bound().expect("k candidates screened").score;
            let margin = kth as f64 - 2.0 * bound;
            self.rerank_candidates(
                query, cands, &screened, margin, sigma, salt, &mut top, &mut stats,
            );
        } else {
            for &id in cands {
                let id = id as usize;
                let mut score = crate::embed::dot(query, self.vec.vector(id));
                if sigma > 0.0 {
                    score += VecIndex::jitter(salt, id, sigma);
                }
                top.offer(Hit { id, score });
            }
        }
        self.verify_non_candidates(query, cands, sigma, salt, &mut top);
        (top.into_sorted(), stats)
    }

    /// Margin epilogue of the quantized candidate screen: every
    /// candidate whose screened score lands inside the margin pays the
    /// exact f32 dot (+ jitter) and is offered to `top`. Shared by the
    /// sequential and batched pruned scans so both run the identical
    /// float expressions in the identical per-query order.
    #[allow(clippy::too_many_arguments)]
    fn rerank_candidates(
        &self,
        query: &[f32],
        cands: &[u32],
        screened: &[f32],
        margin: f64,
        sigma: f32,
        salt: u64,
        top: &mut TopK,
        stats: &mut ScreenStats,
    ) {
        for (&id, &s) in cands.iter().zip(screened) {
            if (s as f64) < margin {
                continue;
            }
            stats.reranked += 1;
            let id = id as usize;
            let mut score = crate::embed::dot(query, self.vec.vector(id));
            if sigma > 0.0 {
                score += VecIndex::jitter(salt, id, sigma);
            }
            top.offer(Hit { id, score });
        }
    }

    /// Phase 2 of the pruned scan: verify the exclusion of every
    /// non-candidate. Its dot is at most `ceiling` (zero token overlap
    /// → noise floor); its jitter is a pure function of one hash, so
    /// the suspect test `ceiling + jitter >= kth` reduces to an integer
    /// compare on the hash's top 53 bits against a precomputed
    /// threshold (conservatively padded, so rounding can only admit
    /// extra suspects — each then scored with the exact f32
    /// expression). Only suspects pay the d-dimensional dot. The k-th
    /// score never decreases, so the threshold only rises: once it
    /// exceeds every possible hash the remaining docs are excluded
    /// wholesale. Shared verbatim by the sequential and the batched
    /// pruned scans — per query this phase is hash compares, not block
    /// streaming, so the batch has nothing to tile here.
    fn verify_non_candidates(
        &self,
        query: &[f32],
        cands: &[u32],
        sigma: f32,
        salt: u64,
        top: &mut TopK,
    ) {
        let mut kth = top.bound().expect("k candidates offered").score;
        let mut hash_floor = suspect_hash_floor(kth, self.ceiling, sigma);
        let mut cand_iter = cands.iter().copied().peekable();
        for id in 0..self.doc_count {
            if cand_iter.peek() == Some(&(id as u32)) {
                cand_iter.next();
                continue;
            }
            let floor = match hash_floor {
                Some(f) => f,
                // No jitter can lift a zero-overlap doc to the bound,
                // and the bound only tightens: done.
                None => break,
            };
            let hash = kgstore::hash::mix2(salt, id as u64);
            if (hash >> 11) < floor {
                continue;
            }
            let mut score = crate::embed::dot(query, self.vec.vector(id));
            if sigma > 0.0 {
                score += VecIndex::jitter_of(hash, sigma);
            }
            top.offer(Hit { id, score });
            let new_kth = top.bound().expect("still k hits").score;
            if new_kth != kth {
                kth = new_kth;
                hash_floor = suspect_hash_floor(kth, self.ceiling, sigma);
            }
        }
    }

    /// Top-k via candidate pruning + exact rerank from query text
    /// (folded-query style). Result contract as [`top_k_encoded`].
    ///
    /// [`top_k_encoded`]: HybridIndex::top_k_encoded
    pub fn top_k(&self, embedder: &Embedder, query_text: &str, k: usize) -> Vec<Hit> {
        let cands = self.candidates(embedder, query_text, QueryStyle::Folded);
        let q = embedder.encode(query_text);
        self.top_k_encoded(&q, &cands, k)
    }

    /// Noisy top-k from query text (folded-query style). Result
    /// contract as [`top_k_noisy_encoded`].
    ///
    /// [`top_k_noisy_encoded`]: HybridIndex::top_k_noisy_encoded
    pub fn top_k_noisy(
        &self,
        embedder: &Embedder,
        query_text: &str,
        k: usize,
        sigma: f32,
        salt: u64,
    ) -> Vec<Hit> {
        let cands = self.candidates(embedder, query_text, QueryStyle::Folded);
        let q = embedder.encode(query_text);
        self.top_k_noisy_encoded(&q, &cands, k, sigma, salt)
    }

    /// [`top_k_noisy_encoded`](HybridIndex::top_k_noisy_encoded) for a
    /// batch of queries sharing one block traversal. Slot `i`'s hits
    /// are bit-identical to the sequential call with that slot's query,
    /// candidates, and salt.
    pub fn top_k_noisy_encoded_batch(
        &self,
        slots: &[BatchSlot<'_>],
        k: usize,
        sigma: f32,
    ) -> Vec<Vec<Hit>> {
        self.top_k_noisy_scored_batch(slots, k, sigma, false).0
    }

    /// [`top_k_noisy_encoded_quant`](HybridIndex::top_k_noisy_encoded_quant)
    /// for a batch of queries sharing one block traversal; returns each
    /// slot's hits and screen/rerank counters, both bit-identical to
    /// the sequential call for that slot.
    pub fn top_k_noisy_encoded_quant_batch(
        &self,
        slots: &[BatchSlot<'_>],
        k: usize,
        sigma: f32,
    ) -> (Vec<Vec<Hit>>, Vec<ScreenStats>) {
        self.top_k_noisy_scored_batch(slots, k, sigma, true)
    }

    /// Shared batched pruned scan. Per slot it runs exactly the
    /// sequential [`top_k_noisy_scored`](HybridIndex::top_k_noisy_scored)
    /// computation; what the batch changes is *traversal*:
    ///
    /// * slots with fewer candidates than `k` take the documented
    ///   full-scan fallback together, through the [`VecIndex`] batch
    ///   engine (query-tiled over the whole block);
    /// * the remaining slots run the candidate phase cache-tiled —
    ///   every slot advances its candidate cursor through the same
    ///   document chunk before the traversal moves on, so a chunk's
    ///   rows are loaded once for the whole batch while each slot still
    ///   scores its own candidates in ascending-id (i.e. sequential)
    ///   order;
    /// * the margin rerank and the ceiling-suspect phase then run per
    ///   slot via the same helpers the sequential path uses (phase 2 is
    ///   hash compares, not block streaming — nothing to tile).
    ///
    /// Each slot's scores, heap offers, and counters are therefore
    /// bit-identical to its sequential counterpart.
    fn top_k_noisy_scored_batch(
        &self,
        slots: &[BatchSlot<'_>],
        k: usize,
        sigma: f32,
        quantized: bool,
    ) -> (Vec<Vec<Hit>>, Vec<ScreenStats>) {
        let mut hits: Vec<Vec<Hit>> = vec![Vec::new(); slots.len()];
        let mut stats: Vec<ScreenStats> = vec![ScreenStats::default(); slots.len()];
        if k == 0 || self.doc_count == 0 {
            return (hits, stats);
        }
        let full: Vec<usize> = (0..slots.len())
            .filter(|&i| slots[i].cands.len() < k)
            .collect();
        if !full.is_empty() {
            let queries: Vec<NoisyQuery> = full
                .iter()
                .map(|&i| NoisyQuery {
                    vector: slots[i].query,
                    salt: slots[i].salt,
                })
                .collect();
            if quantized {
                for (&i, (h, s)) in full
                    .iter()
                    .zip(self.vec.top_k_noisy_quant_batch(&queries, k, sigma))
                {
                    hits[i] = h;
                    stats[i] = s;
                }
            } else {
                for (&i, h) in full
                    .iter()
                    .zip(self.vec.top_k_noisy_batch(&queries, k, sigma))
                {
                    hits[i] = h;
                }
            }
        }
        let pruned: Vec<usize> = (0..slots.len())
            .filter(|&i| slots[i].cands.len() >= k)
            .collect();
        if pruned.is_empty() {
            return (hits, stats);
        }
        let sigma = sigma.max(0.0);
        let dim = self.vec.store().dim();
        // Rows per cache tile: 16 KiB of the block being streamed (int8
        // rows for the quantized screen, f32 rows for the exact phase).
        let row_bytes = if quantized {
            dim
        } else {
            dim * std::mem::size_of::<f32>()
        };
        let tile_rows = (16 * 1024 / row_bytes.max(1)).max(1);
        if quantized {
            let quant = self.vec.store().quant();
            struct QState {
                qq: QuantQuery,
                factor: f32,
                bound: f64,
                screened: Vec<f32>,
                quant_top: TopK,
                cursor: usize,
            }
            let mut states: Vec<QState> = pruned
                .iter()
                .map(|&i| {
                    let qq = QuantQuery::new(slots[i].query);
                    let factor = qq.dequant_factor(quant);
                    let bound = qq.error_bound(quant, dim);
                    QState {
                        qq,
                        factor,
                        bound,
                        screened: Vec::with_capacity(slots[i].cands.len()),
                        quant_top: TopK::new(k),
                        cursor: 0,
                    }
                })
                .collect();
            let mut lo = 0usize;
            while lo < self.doc_count {
                let hi = (lo + tile_rows).min(self.doc_count);
                for (st, &i) in states.iter_mut().zip(&pruned) {
                    let slot = &slots[i];
                    while st.cursor < slot.cands.len() && (slot.cands[st.cursor] as usize) < hi {
                        let id = slot.cands[st.cursor] as usize;
                        let mut s = dot_i8(st.qq.row(), quant.row(id)) as f32 * st.factor;
                        if sigma > 0.0 {
                            s += VecIndex::jitter(slot.salt, id, sigma);
                        }
                        st.screened.push(s);
                        st.quant_top.offer(Hit { id, score: s });
                        st.cursor += 1;
                    }
                }
                lo = hi;
            }
            for (st, &i) in states.into_iter().zip(&pruned) {
                let slot = &slots[i];
                let mut top = TopK::new(k);
                let mut st_out = ScreenStats {
                    screened: slot.cands.len() as u64,
                    reranked: 0,
                };
                let kth = st.quant_top.bound().expect("k candidates screened").score;
                let margin = kth as f64 - 2.0 * st.bound;
                self.rerank_candidates(
                    slot.query,
                    slot.cands,
                    &st.screened,
                    margin,
                    sigma,
                    slot.salt,
                    &mut top,
                    &mut st_out,
                );
                self.verify_non_candidates(slot.query, slot.cands, sigma, slot.salt, &mut top);
                hits[i] = top.into_sorted();
                stats[i] = st_out;
            }
        } else {
            let mut tops: Vec<TopK> = pruned.iter().map(|_| TopK::new(k)).collect();
            let mut cursors: Vec<usize> = vec![0; pruned.len()];
            let mut lo = 0usize;
            while lo < self.doc_count {
                let hi = (lo + tile_rows).min(self.doc_count);
                for ((top, cursor), &i) in tops.iter_mut().zip(&mut cursors).zip(&pruned) {
                    let slot = &slots[i];
                    while *cursor < slot.cands.len() && (slot.cands[*cursor] as usize) < hi {
                        let id = slot.cands[*cursor] as usize;
                        let mut score = crate::embed::dot(slot.query, self.vec.vector(id));
                        if sigma > 0.0 {
                            score += VecIndex::jitter(slot.salt, id, sigma);
                        }
                        top.offer(Hit { id, score });
                        *cursor += 1;
                    }
                }
                lo = hi;
            }
            for (mut top, &i) in tops.into_iter().zip(&pruned) {
                let slot = &slots[i];
                self.verify_non_candidates(slot.query, slot.cands, sigma, slot.salt, &mut top);
                hits[i] = top.into_sorted();
            }
        }
        (hits, stats)
    }
}

/// One slot of a batched pruned search: the encoded query vector, its
/// candidate ids (ascending, as produced by
/// [`HybridIndex::candidates`]), and the per-query jitter salt.
#[derive(Debug, Clone, Copy)]
pub struct BatchSlot<'a> {
    /// The encoded query vector (dimension must match the index).
    pub query: &'a [f32],
    /// Candidate doc ids for this query, sorted ascending.
    pub cands: &'a [u32],
    /// Per-query jitter salt (a hash of the query text).
    pub salt: u64,
}

/// Smallest `hash >> 11` value (the 53-bit mantissa source of
/// [`kgstore::hash::unit_f64`]) whose jitter could lift a zero-overlap
/// document from `ceiling` to the current `kth` score. `Some(0)` means
/// every document is a suspect, `None` means none can ever be (and
/// since the k-th score only rises, the caller may stop scanning). The
/// boundary is computed in f64 and padded down by 1e-5 in unit space —
/// orders of magnitude more than the f32 rounding of the real jitter
/// expression — so it can only admit *extra* suspects, never miss one.
pub(crate) fn suspect_hash_floor(kth: f32, ceiling: f32, sigma: f32) -> Option<u64> {
    if sigma <= 0.0 {
        return (ceiling >= kth).then_some(0);
    }
    // jitter = (2u − 1)·σ·1.732 for unit u ∈ [0, 1); suspect iff
    // ceiling + jitter ≥ kth, i.e. u ≥ ((kth − ceiling)/(σ·1.732) + 1)/2.
    let u = (((kth - ceiling) as f64) / (sigma as f64 * 1.732) + 1.0) / 2.0 - 1e-5;
    if u <= 0.0 {
        Some(0)
    } else if u >= 1.0 {
        None
    } else {
        Some((u * (1u64 << 53) as f64) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synonym::SynonymTable;
    use crate::EmbedConfig;

    fn corpus() -> Vec<String> {
        (0..500)
            .map(|i| format!("entity{} relation{} value{}", i, i % 7, i % 13))
            .collect()
    }

    fn exact(emb: &Embedder, texts: &[String]) -> VecIndex {
        VecIndex::from_vectors(emb.dim(), texts.iter().map(|t| emb.encode(t)))
    }

    #[test]
    fn hybrid_matches_exact_scan_exactly() {
        for emb in [Embedder::default(), Embedder::paper()] {
            let texts = corpus();
            let hybrid = HybridIndex::build(&emb, texts.iter().map(|s| s.as_str()));
            let exact = exact(&emb, &texts);
            for query in [
                "entity42 relation0 value3",
                "entity7 relation3",
                "value11 relation5 entity100",
            ] {
                let h = hybrid.top_k(&emb, query, 10);
                let e = exact.top_k(&emb.encode(query), 10);
                assert_eq!(h, e, "pruned != exact for {query:?}");
            }
        }
    }

    #[test]
    fn hybrid_noisy_matches_exact_noisy_scan_exactly() {
        for emb in [Embedder::default(), Embedder::paper()] {
            let texts = corpus();
            let hybrid = HybridIndex::build(&emb, texts.iter().map(|s| s.as_str()));
            let exact = exact(&emb, &texts);
            for (salt, query) in [
                (7u64, "entity42 relation0 value3"),
                (42, "entity7 relation3"),
                (1337, "value11 relation5 entity100"),
            ] {
                for sigma in [0.0f32, 0.1, 0.3, 0.6] {
                    let cands = hybrid.candidates(&emb, query, QueryStyle::Folded);
                    let q = emb.encode(query);
                    let h = hybrid.top_k_noisy_encoded(&q, &cands, 10, sigma, salt);
                    let e = exact.top_k_noisy(&q, 10, sigma, salt);
                    assert_eq!(h, e, "pruned != exact for {query:?} sigma {sigma}");
                }
            }
        }
    }

    #[test]
    fn candidates_prune_most_of_the_corpus() {
        let emb = Embedder::default();
        let texts = corpus();
        let hybrid = HybridIndex::build(&emb, texts.iter().map(|s| s.as_str()));
        let cands = hybrid.candidates(&emb, "entity42 relation0 value3", QueryStyle::Folded);
        assert!(!cands.is_empty());
        assert!(
            cands.len() < texts.len() / 2,
            "pruning should discard most docs: {}",
            cands.len()
        );
    }

    #[test]
    fn gated_candidates_match_ungated_when_admitted() {
        let emb = Embedder::default();
        let texts = corpus();
        let hybrid = HybridIndex::build(&emb, texts.iter().map(|s| s.as_str()));
        for q in ["entity42 relation0 value3", "entity7 relation1", "nothing"] {
            let plain = hybrid.candidates(&emb, q, QueryStyle::Folded);
            let gated = hybrid
                .candidates_if_under(&emb, q, QueryStyle::Folded, texts.len() * 4)
                .expect("a whole-corpus budget must admit");
            assert_eq!(plain, gated, "query {q:?}");
        }
    }

    #[test]
    fn gate_refusal_reports_an_upper_bound_without_materializing() {
        let emb = Embedder::default();
        let texts = corpus();
        let hybrid = HybridIndex::build(&emb, texts.iter().map(|s| s.as_str()));
        let q = "entity42 relation0 value3";
        let union = hybrid.candidates(&emb, q, QueryStyle::Folded).len();
        assert!(union > 0);
        // A budget one below the union size must refuse, and the
        // estimate it reports is an upper bound on the union.
        let est = hybrid
            .candidates_if_under(&emb, q, QueryStyle::Folded, union - 1)
            .expect_err("budget below the union must refuse");
        assert!(est >= union, "estimate {est} must bound union {union}");
        // A zero budget admits only queries with no postings at all.
        assert_eq!(
            hybrid.candidates_if_under(&emb, "zz qq xx", QueryStyle::Folded, 0),
            Ok(Vec::new()),
            "no-overlap queries pass any budget with an empty set"
        );
    }

    #[test]
    fn candidate_generation_respects_the_embedder_synonyms() {
        // A custom table folding "born" → "birth": candidate lookup
        // must use it, not the builtin table.
        let mut table = SynonymTable::empty();
        table.add("born", "birth");
        let emb = Embedder::new(EmbedConfig::default(), table);
        let texts = ["yao birth shanghai", "lake area huge"];
        let hybrid = HybridIndex::build(&emb, texts.iter().copied());
        let cands = hybrid.candidates(&emb, "born yao", QueryStyle::Folded);
        assert_eq!(cands, vec![0], "custom fold must reach the birth doc");

        // Under an *empty* table the same query folds to nothing
        // shared with doc 0's "birth" token except "yao".
        let emb_plain = Embedder::new(EmbedConfig::default(), SynonymTable::empty());
        let hybrid_plain = HybridIndex::build(&emb_plain, texts.iter().copied());
        let cands_plain = hybrid_plain.candidates(&emb_plain, "born yao", QueryStyle::Folded);
        assert_eq!(cands_plain, vec![0], "matches only via yao");
        assert!(hybrid_plain
            .candidates(&emb_plain, "born", QueryStyle::Folded)
            .is_empty());
    }

    #[test]
    fn unfolded_queries_look_up_raw_tokens() {
        let emb = Embedder::default(); // builtin table folds born→birth
        let texts = ["yao birth shanghai", "born free"];
        let hybrid = HybridIndex::build(&emb, texts.iter().copied());
        // Both docs index the canonical token "birth" ("born" folds at
        // build time), so the folded query reaches both — but a raw
        // "born" query feature overlaps neither doc's word features.
        assert_eq!(
            hybrid.candidates(&emb, "born", QueryStyle::Folded),
            vec![0, 1]
        );
        assert!(hybrid
            .candidates(&emb, "born", QueryStyle::Unfolded)
            .is_empty());
        // A raw token that is its own canonical form matches normally.
        assert_eq!(
            hybrid.candidates(&emb, "shanghai", QueryStyle::Unfolded),
            vec![0]
        );
    }

    #[test]
    fn falls_back_to_full_scan_when_no_overlap() {
        let emb = Embedder::default();
        let texts = corpus();
        let hybrid = HybridIndex::build(&emb, texts.iter().map(|s| s.as_str()));
        let hits = hybrid.top_k(&emb, "zzz qqq totally unseen", 5);
        assert_eq!(hits.len(), 5, "fallback must still return k hits");
        let e = exact(&emb, &texts);
        assert_eq!(hits, e.top_k(&emb.encode("zzz qqq totally unseen"), 5));
    }

    #[test]
    fn parallel_build_is_byte_identical_to_serial() {
        let emb = Embedder::paper();
        let texts: Vec<String> = corpus().into_iter().chain(corpus()).collect(); // dupes
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let serial = HybridIndex::build_parallel(&emb, &refs, 1);
        let parallel = HybridIndex::build_parallel(&emb, &refs, 8);
        assert_eq!(serial.len(), parallel.len());
        for id in 0..serial.len() {
            assert_eq!(serial.vectors().vector(id), parallel.vectors().vector(id));
        }
        let q = emb.encode("entity42 relation0 value3");
        assert_eq!(
            serial.top_k_noisy_encoded(
                &q,
                &serial.candidates(&emb, "entity42 relation0 value3", QueryStyle::Folded),
                10,
                0.3,
                9
            ),
            parallel.top_k_noisy_encoded(
                &q,
                &parallel.candidates(&emb, "entity42 relation0 value3", QueryStyle::Folded),
                10,
                0.3,
                9
            ),
        );
    }

    #[test]
    fn batched_pruned_scan_matches_sequential_per_slot() {
        for emb in [Embedder::default(), Embedder::paper()] {
            let texts = corpus();
            let hybrid = HybridIndex::build(&emb, texts.iter().map(|s| s.as_str()));
            // A batch mixing well-covered queries, a duplicate slot,
            // and a no-overlap query that takes the full-scan fallback.
            let queries = [
                "entity42 relation0 value3",
                "entity7 relation3",
                "entity42 relation0 value3",
                "zzz qqq totally unseen",
                "value11 relation5 entity100",
            ];
            let encoded: Vec<Vec<f32>> = queries.iter().map(|q| emb.encode(q)).collect();
            let cands: Vec<Vec<u32>> = queries
                .iter()
                .map(|q| hybrid.candidates(&emb, q, QueryStyle::Folded))
                .collect();
            let slots: Vec<BatchSlot> = (0..queries.len())
                .map(|i| BatchSlot {
                    query: &encoded[i],
                    cands: &cands[i],
                    salt: stable_str_hash(queries[i]),
                })
                .collect();
            for sigma in [0.0f32, 0.3, 0.6] {
                let exact = hybrid.top_k_noisy_encoded_batch(&slots, 10, sigma);
                let (quant, qstats) = hybrid.top_k_noisy_encoded_quant_batch(&slots, 10, sigma);
                for (i, slot) in slots.iter().enumerate() {
                    let seq =
                        hybrid.top_k_noisy_encoded(slot.query, slot.cands, 10, sigma, slot.salt);
                    assert_eq!(exact[i], seq, "exact slot {i} sigma {sigma}");
                    let (seq_q, seq_s) = hybrid
                        .top_k_noisy_encoded_quant(slot.query, slot.cands, 10, sigma, slot.salt);
                    assert_eq!(quant[i], seq_q, "quant slot {i} sigma {sigma}");
                    assert_eq!(qstats[i], seq_s, "stats slot {i} sigma {sigma}");
                }
                // Duplicate slots fan out identical hit lists.
                assert_eq!(exact[0], exact[2]);
                assert_eq!(quant[0], quant[2]);
            }
        }
    }

    #[test]
    fn batched_pruned_scan_edge_batches() {
        let emb = Embedder::default();
        let texts = corpus();
        let hybrid = HybridIndex::build(&emb, texts.iter().map(|s| s.as_str()));
        assert!(hybrid.top_k_noisy_encoded_batch(&[], 5, 0.3).is_empty());
        let q = emb.encode("entity42 relation0 value3");
        let cands = hybrid.candidates(&emb, "entity42 relation0 value3", QueryStyle::Folded);
        let one = [BatchSlot {
            query: &q,
            cands: &cands,
            salt: 9,
        }];
        assert_eq!(
            hybrid.top_k_noisy_encoded_batch(&one, 5, 0.3),
            vec![hybrid.top_k_noisy_encoded(&q, &cands, 5, 0.3, 9)]
        );
        // k == 0 returns an empty list per slot.
        assert_eq!(
            hybrid.top_k_noisy_encoded_batch(&one, 0, 0.3),
            vec![Vec::new()]
        );
        // Empty index: every slot comes back empty.
        let empty = HybridIndex::build(&emb, std::iter::empty());
        let no_cands: Vec<u32> = Vec::new();
        let slot = [BatchSlot {
            query: &q,
            cands: &no_cands,
            salt: 1,
        }];
        assert_eq!(
            empty.top_k_noisy_encoded_batch(&slot, 3, 0.3),
            vec![Vec::new()]
        );
    }

    #[test]
    fn ceiling_is_configurable() {
        let emb = Embedder::default();
        let hybrid = HybridIndex::build(&emb, ["a b c"].iter().copied()).with_ceiling(0.9);
        assert_eq!(hybrid.ceiling(), 0.9);
    }

    #[test]
    fn empty_index() {
        let emb = Embedder::default();
        let hybrid = HybridIndex::build(&emb, std::iter::empty());
        assert!(hybrid.is_empty());
        assert!(hybrid.top_k(&emb, "anything", 3).is_empty());
    }
}
