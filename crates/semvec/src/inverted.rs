//! Token-postings candidate generation over the vector index.
//!
//! Exact top-k is O(N·d) per query. Since hashing embeddings mostly
//! score documents that share canonical tokens with the query, an
//! inverted index over canonical tokens prunes the scan to the
//! documents that can score meaningfully — the standard
//! lexical-candidates + dense-rerank architecture. The pruned search
//! returns *identical* hits to the full scan under a documented
//! contract:
//!
//! **Zero-overlap ceiling.** A document sharing no canonical token with
//! the query has no word-feature mass in common with it; its dot
//! product comes only from char-trigram overlap, hash collisions, and
//! encoder noise — the noise floor of the encoder. The index assumes
//! that floor is bounded by [`HybridIndex::ceiling`] (default
//! [`DEFAULT_CEILING`], calibrated with a wide margin against the
//! worldgen corpora; see DESIGN.md). Every pruned query *verifies* its
//! own result against that bound: any non-candidate whose ceiling plus
//! (exactly computed, cheap) retrieval jitter could reach the current
//! k-th score is scored in full, and when fewer than `k` candidates
//! exist at all the query falls back to the exact scan. So result
//! length and ordering always match [`VecIndex`], and the hits are
//! bit-identical whenever the ceiling holds — which the perf bench and
//! the CI smoke assert on every full run.

use crate::embed::Embedder;
use crate::index::{Hit, TopK, VecIndex};
use crate::quant::{dot_i8, QuantQuery, ScreenStats};
use crate::token::normalize;
use kgstore::hash::{stable_str_hash, FxHashMap};

/// Default bound on the dot product between a query and a document that
/// share no canonical token. Calibrated against the worldgen corpora
/// under both the clean and the `Embedder::paper` (noise 0.6) encoders
/// (max observed zero-overlap dot 0.424 across all three source ×
/// dataset corpora; see DESIGN.md); raise it (via
/// [`HybridIndex::with_ceiling`]) for adversarial corpora, at the cost
/// of pruning less.
pub const DEFAULT_CEILING: f32 = 0.48;

/// How the query text was (or will be) encoded, which decides which
/// postings a token can match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStyle {
    /// Query tokens are synonym-folded before hashing (the encoder's
    /// [`Embedder::encode`] path): look up postings by folded token.
    Folded,
    /// Query tokens are hashed raw ([`Embedder::encode_unfolded`]):
    /// a word feature can only overlap a document whose *canonical*
    /// token equals the raw query token, so look up postings by the
    /// unfolded token.
    Unfolded,
}

/// A vector index paired with token postings for candidate pruning.
pub struct HybridIndex {
    vec: VecIndex,
    /// Canonical-token hash → ascending doc ids containing it.
    postings: FxHashMap<u64, Vec<u32>>,
    doc_count: usize,
    ceiling: f32,
}

impl HybridIndex {
    /// Build from texts: encodes each with `embedder` and indexes its
    /// canonical tokens (folded with the *embedder's* synonym table, so
    /// candidate overlap agrees with the encoder under custom or empty
    /// synonym configurations).
    pub fn build<'a, I: IntoIterator<Item = &'a str>>(embedder: &Embedder, texts: I) -> Self {
        let texts: Vec<&str> = texts.into_iter().collect();
        Self::build_parallel(embedder, &texts, 1)
    }

    /// Build with `threads` encoder workers (0 = all cores). Repeated
    /// identical texts are encoded and tokenized once and their results
    /// reused; output is byte-identical to the serial build regardless
    /// of thread count (work is partitioned by index and reassembled in
    /// order).
    pub fn build_parallel(embedder: &Embedder, texts: &[&str], threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            threads
        };

        // Dedup: unique texts, and for each doc the unique slot it maps
        // to. Duplicate verbalisations (same sentence from different
        // triples) cost one encode instead of many.
        let mut slot_of_text: FxHashMap<&str, usize> = FxHashMap::default();
        let mut unique: Vec<&str> = Vec::new();
        let doc_slots: Vec<usize> = texts
            .iter()
            .map(|&t| {
                *slot_of_text.entry(t).or_insert_with(|| {
                    unique.push(t);
                    unique.len() - 1
                })
            })
            .collect();

        // Encode + tokenize each unique text, in parallel when asked.
        let encode_one = |text: &str| -> (Vec<f32>, Vec<u64>) {
            let v = embedder.encode(text);
            let mut hashes: Vec<u64> = normalize(text)
                .iter()
                .map(|tok| stable_str_hash(embedder.fold_token(tok)))
                .collect();
            hashes.sort_unstable();
            hashes.dedup();
            (v, hashes)
        };
        let encoded: Vec<(Vec<f32>, Vec<u64>)> = if threads <= 1 || unique.len() < 2 {
            unique.iter().map(|t| encode_one(t)).collect()
        } else {
            let mut out: Vec<Option<(Vec<f32>, Vec<u64>)>> = Vec::with_capacity(unique.len());
            out.resize_with(unique.len(), || None);
            let chunk = unique.len().div_ceil(threads.min(unique.len()));
            let encode_one = &encode_one;
            std::thread::scope(|scope| {
                for (texts, slots) in unique.chunks(chunk).zip(out.chunks_mut(chunk)) {
                    scope.spawn(move || {
                        for (t, slot) in texts.iter().zip(slots) {
                            *slot = Some(encode_one(t));
                        }
                    });
                }
            });
            out.into_iter().map(|o| o.expect("slot filled")).collect()
        };

        // Assemble in doc order: flat vectors plus postings (ascending
        // ids by construction).
        let mut vec = VecIndex::new(embedder.dim());
        let mut postings: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for (id, &slot) in doc_slots.iter().enumerate() {
            vec.add(&encoded[slot].0);
            for &h in &encoded[slot].1 {
                postings.entry(h).or_default().push(id as u32);
            }
        }
        Self {
            vec,
            postings,
            doc_count: texts.len(),
            ceiling: DEFAULT_CEILING,
        }
    }

    /// Override the zero-overlap ceiling (see module docs).
    pub fn with_ceiling(mut self, ceiling: f32) -> Self {
        self.ceiling = ceiling;
        self
    }

    /// The zero-overlap ceiling in force.
    pub fn ceiling(&self) -> f32 {
        self.ceiling
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.doc_count
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.doc_count == 0
    }

    /// The underlying exact index.
    pub fn vectors(&self) -> &VecIndex {
        &self.vec
    }

    /// Candidate document ids sharing at least one canonical token with
    /// the query text (sorted, deduplicated). `style` must match how
    /// the query vector is encoded — folded queries look up folded
    /// tokens, unfolded queries their raw tokens (a raw word feature
    /// can only collide with a document token that folds to itself).
    pub fn candidates(&self, embedder: &Embedder, query_text: &str, style: QueryStyle) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for tok in normalize(query_text) {
            let key = match style {
                QueryStyle::Folded => embedder.fold_token(&tok),
                QueryStyle::Unfolded => tok.as_str(),
            };
            if let Some(list) = self.postings.get(&stable_str_hash(key)) {
                out.extend_from_slice(list);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Top-k via candidate pruning + exact rerank, given the already
    /// encoded query vector. Falls back to the full scan when
    /// candidates are fewer than `k`, and scores every non-candidate
    /// the ceiling contract cannot exclude, so the result is identical
    /// to [`VecIndex::top_k`] whenever the ceiling holds — and always
    /// has the exact-scan's length and ordering.
    pub fn top_k_encoded(&self, query: &[f32], cands: &[u32], k: usize) -> Vec<Hit> {
        self.top_k_noisy_encoded(query, cands, k, 0.0, 0)
    }

    /// Top-k with the deterministic per-(query, doc) score jitter of
    /// [`VecIndex::top_k_noisy`], via candidate pruning. Returns hits
    /// bit-identical to the exact noisy scan under the ceiling
    /// contract: candidates are scored exactly (dot + jitter, same
    /// float order as the full scan), and every non-candidate whose
    /// `ceiling + jitter` could still reach the current k-th hit is
    /// scored in full rather than trusted.
    pub fn top_k_noisy_encoded(
        &self,
        query: &[f32],
        cands: &[u32],
        k: usize,
        sigma: f32,
        salt: u64,
    ) -> Vec<Hit> {
        self.top_k_noisy_scored(query, cands, k, sigma, salt, false)
            .0
    }

    /// [`top_k_noisy_encoded`] with the candidate phase run through the
    /// quantized two-stage engine: candidates are *screened* with the
    /// int8 kernel and only those within the per-pair error bound of
    /// the quantized k-th score pay the exact f32 dot (see
    /// [`VecIndex::top_k_noisy_quant`] for the proof sketch). The
    /// ceiling-suspect phase is unchanged and exact, so the result
    /// keeps the full bit-identity contract. Returns the hits plus the
    /// screen/rerank counters of the quantized stage (suspects scored
    /// by the ceiling phase are not part of either counter).
    ///
    /// [`top_k_noisy_encoded`]: HybridIndex::top_k_noisy_encoded
    pub fn top_k_noisy_encoded_quant(
        &self,
        query: &[f32],
        cands: &[u32],
        k: usize,
        sigma: f32,
        salt: u64,
    ) -> (Vec<Hit>, ScreenStats) {
        self.top_k_noisy_scored(query, cands, k, sigma, salt, true)
    }

    /// Shared pruned scan: candidate phase (exact, or quantized screen
    /// + margin rerank), then the ceiling-verified suspect phase.
    fn top_k_noisy_scored(
        &self,
        query: &[f32],
        cands: &[u32],
        k: usize,
        sigma: f32,
        salt: u64,
        quantized: bool,
    ) -> (Vec<Hit>, ScreenStats) {
        if k == 0 || self.doc_count == 0 {
            return (Vec::new(), ScreenStats::default());
        }
        if cands.len() < k {
            // Documented fallback: fewer candidates than k means the
            // tail of the exact result is below the noise floor, where
            // pruning cannot reproduce it — scan everything.
            return if quantized {
                self.vec.top_k_noisy_quant(query, k, sigma, salt)
            } else {
                (
                    self.vec.top_k_noisy(query, k, sigma, salt),
                    ScreenStats::default(),
                )
            };
        }
        let sigma = sigma.max(0.0);
        let mut top = TopK::new(k);
        let mut stats = ScreenStats::default();
        // Phase 1: candidates. Exact mode scores each with the f32 dot
        // the full scan uses; quantized mode screens all of them with
        // the int8 kernel first and exact-scores only the margin.
        if quantized {
            let quant = self.vec.store().quant();
            let qq = QuantQuery::new(query);
            let factor = qq.dequant_factor(quant);
            let bound = qq.error_bound(quant, self.vec.store().dim());
            let mut screened = Vec::with_capacity(cands.len());
            let mut quant_top = TopK::new(k);
            for &id in cands {
                let id = id as usize;
                let mut s = dot_i8(qq.row(), quant.row(id)) as f32 * factor;
                if sigma > 0.0 {
                    s += VecIndex::jitter(salt, id, sigma);
                }
                screened.push(s);
                quant_top.offer(Hit { id, score: s });
            }
            stats.screened = cands.len() as u64;
            let kth = quant_top.bound().expect("k candidates screened").score;
            let margin = kth as f64 - 2.0 * bound;
            for (&id, &s) in cands.iter().zip(&screened) {
                if (s as f64) < margin {
                    continue;
                }
                stats.reranked += 1;
                let id = id as usize;
                let mut score = crate::embed::dot(query, self.vec.vector(id));
                if sigma > 0.0 {
                    score += VecIndex::jitter(salt, id, sigma);
                }
                top.offer(Hit { id, score });
            }
        } else {
            for &id in cands {
                let id = id as usize;
                let mut score = crate::embed::dot(query, self.vec.vector(id));
                if sigma > 0.0 {
                    score += VecIndex::jitter(salt, id, sigma);
                }
                top.offer(Hit { id, score });
            }
        }
        // Phase 2: verify the exclusion of every non-candidate. Its dot
        // is at most `ceiling` (zero token overlap → noise floor); its
        // jitter is a pure function of one hash, so the suspect test
        // `ceiling + jitter >= kth` reduces to an integer compare on
        // the hash's top 53 bits against a precomputed threshold
        // (conservatively padded, so rounding can only admit extra
        // suspects — each then scored with the exact f32 expression).
        // Only suspects pay the d-dimensional dot. The k-th score never
        // decreases, so the threshold only rises: once it exceeds every
        // possible hash the remaining docs are excluded wholesale.
        let mut kth = top.bound().expect("k candidates offered").score;
        let mut hash_floor = suspect_hash_floor(kth, self.ceiling, sigma);
        let mut cand_iter = cands.iter().copied().peekable();
        for id in 0..self.doc_count {
            if cand_iter.peek() == Some(&(id as u32)) {
                cand_iter.next();
                continue;
            }
            let floor = match hash_floor {
                Some(f) => f,
                // No jitter can lift a zero-overlap doc to the bound,
                // and the bound only tightens: done.
                None => break,
            };
            let hash = kgstore::hash::mix2(salt, id as u64);
            if (hash >> 11) < floor {
                continue;
            }
            let mut score = crate::embed::dot(query, self.vec.vector(id));
            if sigma > 0.0 {
                score += VecIndex::jitter_of(hash, sigma);
            }
            top.offer(Hit { id, score });
            let new_kth = top.bound().expect("still k hits").score;
            if new_kth != kth {
                kth = new_kth;
                hash_floor = suspect_hash_floor(kth, self.ceiling, sigma);
            }
        }
        (top.into_sorted(), stats)
    }

    /// Top-k via candidate pruning + exact rerank from query text
    /// (folded-query style). Result contract as [`top_k_encoded`].
    ///
    /// [`top_k_encoded`]: HybridIndex::top_k_encoded
    pub fn top_k(&self, embedder: &Embedder, query_text: &str, k: usize) -> Vec<Hit> {
        let cands = self.candidates(embedder, query_text, QueryStyle::Folded);
        let q = embedder.encode(query_text);
        self.top_k_encoded(&q, &cands, k)
    }

    /// Noisy top-k from query text (folded-query style). Result
    /// contract as [`top_k_noisy_encoded`].
    ///
    /// [`top_k_noisy_encoded`]: HybridIndex::top_k_noisy_encoded
    pub fn top_k_noisy(
        &self,
        embedder: &Embedder,
        query_text: &str,
        k: usize,
        sigma: f32,
        salt: u64,
    ) -> Vec<Hit> {
        let cands = self.candidates(embedder, query_text, QueryStyle::Folded);
        let q = embedder.encode(query_text);
        self.top_k_noisy_encoded(&q, &cands, k, sigma, salt)
    }
}

/// Smallest `hash >> 11` value (the 53-bit mantissa source of
/// [`kgstore::hash::unit_f64`]) whose jitter could lift a zero-overlap
/// document from `ceiling` to the current `kth` score. `Some(0)` means
/// every document is a suspect, `None` means none can ever be (and
/// since the k-th score only rises, the caller may stop scanning). The
/// boundary is computed in f64 and padded down by 1e-5 in unit space —
/// orders of magnitude more than the f32 rounding of the real jitter
/// expression — so it can only admit *extra* suspects, never miss one.
fn suspect_hash_floor(kth: f32, ceiling: f32, sigma: f32) -> Option<u64> {
    if sigma <= 0.0 {
        return (ceiling >= kth).then_some(0);
    }
    // jitter = (2u − 1)·σ·1.732 for unit u ∈ [0, 1); suspect iff
    // ceiling + jitter ≥ kth, i.e. u ≥ ((kth − ceiling)/(σ·1.732) + 1)/2.
    let u = (((kth - ceiling) as f64) / (sigma as f64 * 1.732) + 1.0) / 2.0 - 1e-5;
    if u <= 0.0 {
        Some(0)
    } else if u >= 1.0 {
        None
    } else {
        Some((u * (1u64 << 53) as f64) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synonym::SynonymTable;
    use crate::EmbedConfig;

    fn corpus() -> Vec<String> {
        (0..500)
            .map(|i| format!("entity{} relation{} value{}", i, i % 7, i % 13))
            .collect()
    }

    fn exact(emb: &Embedder, texts: &[String]) -> VecIndex {
        VecIndex::from_vectors(emb.dim(), texts.iter().map(|t| emb.encode(t)))
    }

    #[test]
    fn hybrid_matches_exact_scan_exactly() {
        for emb in [Embedder::default(), Embedder::paper()] {
            let texts = corpus();
            let hybrid = HybridIndex::build(&emb, texts.iter().map(|s| s.as_str()));
            let exact = exact(&emb, &texts);
            for query in [
                "entity42 relation0 value3",
                "entity7 relation3",
                "value11 relation5 entity100",
            ] {
                let h = hybrid.top_k(&emb, query, 10);
                let e = exact.top_k(&emb.encode(query), 10);
                assert_eq!(h, e, "pruned != exact for {query:?}");
            }
        }
    }

    #[test]
    fn hybrid_noisy_matches_exact_noisy_scan_exactly() {
        for emb in [Embedder::default(), Embedder::paper()] {
            let texts = corpus();
            let hybrid = HybridIndex::build(&emb, texts.iter().map(|s| s.as_str()));
            let exact = exact(&emb, &texts);
            for (salt, query) in [
                (7u64, "entity42 relation0 value3"),
                (42, "entity7 relation3"),
                (1337, "value11 relation5 entity100"),
            ] {
                for sigma in [0.0f32, 0.1, 0.3, 0.6] {
                    let cands = hybrid.candidates(&emb, query, QueryStyle::Folded);
                    let q = emb.encode(query);
                    let h = hybrid.top_k_noisy_encoded(&q, &cands, 10, sigma, salt);
                    let e = exact.top_k_noisy(&q, 10, sigma, salt);
                    assert_eq!(h, e, "pruned != exact for {query:?} sigma {sigma}");
                }
            }
        }
    }

    #[test]
    fn candidates_prune_most_of_the_corpus() {
        let emb = Embedder::default();
        let texts = corpus();
        let hybrid = HybridIndex::build(&emb, texts.iter().map(|s| s.as_str()));
        let cands = hybrid.candidates(&emb, "entity42 relation0 value3", QueryStyle::Folded);
        assert!(!cands.is_empty());
        assert!(
            cands.len() < texts.len() / 2,
            "pruning should discard most docs: {}",
            cands.len()
        );
    }

    #[test]
    fn candidate_generation_respects_the_embedder_synonyms() {
        // A custom table folding "born" → "birth": candidate lookup
        // must use it, not the builtin table.
        let mut table = SynonymTable::empty();
        table.add("born", "birth");
        let emb = Embedder::new(EmbedConfig::default(), table);
        let texts = ["yao birth shanghai", "lake area huge"];
        let hybrid = HybridIndex::build(&emb, texts.iter().copied());
        let cands = hybrid.candidates(&emb, "born yao", QueryStyle::Folded);
        assert_eq!(cands, vec![0], "custom fold must reach the birth doc");

        // Under an *empty* table the same query folds to nothing
        // shared with doc 0's "birth" token except "yao".
        let emb_plain = Embedder::new(EmbedConfig::default(), SynonymTable::empty());
        let hybrid_plain = HybridIndex::build(&emb_plain, texts.iter().copied());
        let cands_plain = hybrid_plain.candidates(&emb_plain, "born yao", QueryStyle::Folded);
        assert_eq!(cands_plain, vec![0], "matches only via yao");
        assert!(hybrid_plain
            .candidates(&emb_plain, "born", QueryStyle::Folded)
            .is_empty());
    }

    #[test]
    fn unfolded_queries_look_up_raw_tokens() {
        let emb = Embedder::default(); // builtin table folds born→birth
        let texts = ["yao birth shanghai", "born free"];
        let hybrid = HybridIndex::build(&emb, texts.iter().copied());
        // Both docs index the canonical token "birth" ("born" folds at
        // build time), so the folded query reaches both — but a raw
        // "born" query feature overlaps neither doc's word features.
        assert_eq!(
            hybrid.candidates(&emb, "born", QueryStyle::Folded),
            vec![0, 1]
        );
        assert!(hybrid
            .candidates(&emb, "born", QueryStyle::Unfolded)
            .is_empty());
        // A raw token that is its own canonical form matches normally.
        assert_eq!(
            hybrid.candidates(&emb, "shanghai", QueryStyle::Unfolded),
            vec![0]
        );
    }

    #[test]
    fn falls_back_to_full_scan_when_no_overlap() {
        let emb = Embedder::default();
        let texts = corpus();
        let hybrid = HybridIndex::build(&emb, texts.iter().map(|s| s.as_str()));
        let hits = hybrid.top_k(&emb, "zzz qqq totally unseen", 5);
        assert_eq!(hits.len(), 5, "fallback must still return k hits");
        let e = exact(&emb, &texts);
        assert_eq!(hits, e.top_k(&emb.encode("zzz qqq totally unseen"), 5));
    }

    #[test]
    fn parallel_build_is_byte_identical_to_serial() {
        let emb = Embedder::paper();
        let texts: Vec<String> = corpus().into_iter().chain(corpus()).collect(); // dupes
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let serial = HybridIndex::build_parallel(&emb, &refs, 1);
        let parallel = HybridIndex::build_parallel(&emb, &refs, 8);
        assert_eq!(serial.len(), parallel.len());
        for id in 0..serial.len() {
            assert_eq!(serial.vectors().vector(id), parallel.vectors().vector(id));
        }
        let q = emb.encode("entity42 relation0 value3");
        assert_eq!(
            serial.top_k_noisy_encoded(
                &q,
                &serial.candidates(&emb, "entity42 relation0 value3", QueryStyle::Folded),
                10,
                0.3,
                9
            ),
            parallel.top_k_noisy_encoded(
                &q,
                &parallel.candidates(&emb, "entity42 relation0 value3", QueryStyle::Folded),
                10,
                0.3,
                9
            ),
        );
    }

    #[test]
    fn ceiling_is_configurable() {
        let emb = Embedder::default();
        let hybrid = HybridIndex::build(&emb, ["a b c"].iter().copied()).with_ceiling(0.9);
        assert_eq!(hybrid.ceiling(), 0.9);
    }

    #[test]
    fn empty_index() {
        let emb = Embedder::default();
        let hybrid = HybridIndex::build(&emb, std::iter::empty());
        assert!(hybrid.is_empty());
        assert!(hybrid.top_k(&emb, "anything", 3).is_empty());
    }
}
