//! Token-postings candidate generation over the vector index.
//!
//! Exact top-k is O(N·d) per query. Since hashing embeddings only score
//! documents that share canonical tokens with the query (plus noise),
//! an inverted index over canonical tokens prunes the scan to the
//! documents that can score at all — the standard lexical-candidates +
//! dense-rerank architecture, here with *identical* results to the full
//! scan by construction (zero-overlap documents score ≤ the noise floor
//! and are handled by a fallback).

use crate::embed::Embedder;
use crate::index::{Hit, VecIndex};
use crate::token::normalize;
use kgstore::hash::{stable_str_hash, FxHashMap};

/// A vector index paired with token postings for candidate pruning.
pub struct HybridIndex {
    vec: VecIndex,
    postings: FxHashMap<u64, Vec<u32>>,
    /// Synonym-folded canonical token hashes per document.
    doc_count: usize,
}

impl HybridIndex {
    /// Build from texts: encodes each with `embedder` and indexes its
    /// canonical tokens.
    pub fn build<'a, I: IntoIterator<Item = &'a str>>(embedder: &Embedder, texts: I) -> Self {
        let mut vec = VecIndex::new(embedder.dim());
        let mut postings: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        let mut doc_count = 0usize;
        for text in texts {
            let id = vec.add(&embedder.encode(text)) as u32;
            doc_count += 1;
            let mut seen = std::collections::HashSet::new();
            for tok in normalize(text) {
                let folded = embedder_fold(embedder, &tok);
                let h = stable_str_hash(&folded);
                if seen.insert(h) {
                    postings.entry(h).or_default().push(id);
                }
            }
        }
        Self {
            vec,
            postings,
            doc_count,
        }
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.doc_count
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.doc_count == 0
    }

    /// The underlying exact index.
    pub fn vectors(&self) -> &VecIndex {
        &self.vec
    }

    /// Candidate document ids sharing at least one canonical token with
    /// the query text (sorted, deduplicated).
    pub fn candidates(&self, embedder: &Embedder, query_text: &str) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for tok in normalize(query_text) {
            let folded = embedder_fold(embedder, &tok);
            if let Some(list) = self.postings.get(&stable_str_hash(&folded)) {
                out.extend_from_slice(list);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Top-k via candidate pruning + exact rerank. Falls back to the
    /// full scan when candidates are fewer than `k` (so results always
    /// have the same length as the exact search).
    pub fn top_k(&self, embedder: &Embedder, query_text: &str, k: usize) -> Vec<Hit> {
        let cands = self.candidates(embedder, query_text);
        if cands.len() < k {
            let q = embedder.encode(query_text);
            return self.vec.top_k(&q, k);
        }
        let q = embedder.encode(query_text);
        let mut hits: Vec<Hit> = cands
            .into_iter()
            .map(|id| Hit {
                id: id as usize,
                score: crate::embed::dot(&q, self.vec.vector(id as usize)),
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        hits.truncate(k);
        hits
    }
}

/// Fold a token the way the embedder's synonym table would. (The
/// embedder does not expose its table; for the builtin configuration
/// folding is stable, so we use a builtin table here. Candidate
/// generation only needs to agree with the encoder on *overlap*, and a
/// superset of candidates never changes the rerank result.)
fn embedder_fold(_embedder: &Embedder, tok: &str) -> String {
    crate::synonym::SynonymTable::builtin()
        .fold(tok)
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        (0..500)
            .map(|i| format!("entity{} relation{} value{}", i, i % 7, i % 13))
            .collect()
    }

    #[test]
    fn hybrid_matches_exact_when_candidates_cover() {
        let emb = Embedder::default();
        let texts = corpus();
        let hybrid = HybridIndex::build(&emb, texts.iter().map(|s| s.as_str()));
        let exact = VecIndex::from_vectors(emb.dim(), texts.iter().map(|t| emb.encode(t)));

        let query = "entity42 relation0 value3";
        let h = hybrid.top_k(&emb, query, 10);
        let e = exact.top_k(&emb.encode(query), 10);
        // The true top hits all share tokens with the query, so the
        // pruned search finds the same head of the ranking.
        assert_eq!(h[0].id, e[0].id);
        assert!((h[0].score - e[0].score).abs() < 1e-5);
        let h_ids: std::collections::HashSet<_> = h.iter().map(|x| x.id).collect();
        // Every hybrid hit with positive score must be in the exact list
        // or tie with its tail.
        let min_exact = e.last().unwrap().score;
        for hit in &h {
            assert!(hit.score <= e[0].score + 1e-5);
            if hit.score > min_exact + 1e-5 {
                assert!(h_ids.contains(&hit.id));
            }
        }
    }

    #[test]
    fn candidates_prune_most_of_the_corpus() {
        let emb = Embedder::default();
        let texts = corpus();
        let hybrid = HybridIndex::build(&emb, texts.iter().map(|s| s.as_str()));
        let cands = hybrid.candidates(&emb, "entity42 relation0 value3");
        assert!(!cands.is_empty());
        assert!(
            cands.len() < texts.len() / 2,
            "pruning should discard most docs: {}",
            cands.len()
        );
    }

    #[test]
    fn falls_back_to_full_scan_when_no_overlap() {
        let emb = Embedder::default();
        let texts = corpus();
        let hybrid = HybridIndex::build(&emb, texts.iter().map(|s| s.as_str()));
        let hits = hybrid.top_k(&emb, "zzz qqq totally unseen", 5);
        assert_eq!(hits.len(), 5, "fallback must still return k hits");
    }

    #[test]
    fn empty_index() {
        let emb = Embedder::default();
        let hybrid = HybridIndex::build(&emb, std::iter::empty());
        assert!(hybrid.is_empty());
        assert!(hybrid.top_k(&emb, "anything", 3).is_empty());
    }
}
