//! Triple verbalisation: turn schema-flavoured triples into the plain
//! "semantic form" sentence that gets encoded.
//!
//! The encoder's tokenizer already splits Freebase paths and
//! SCREAMING_SNAKE types, but verbalisation is also needed as *display*
//! text (prompts show triples to the LLM) so it lives here as an
//! explicit, testable step.

use kgstore::StrTriple;

/// Humanise one schema-flavoured term:
/// * `/people/person/place_of_birth` → `place of birth` (last path
///   segment, underscores to spaces);
/// * `COMES_WITH` → `comes with`;
/// * `placeOfBirth` → `place of birth`;
/// * plain text passes through unchanged.
pub fn humanize_term(term: &str) -> String {
    let last = if term.contains('/') {
        term.rsplit('/').next().unwrap_or(term)
    } else {
        term
    };
    let mut out = String::with_capacity(last.len());
    let mut prev_lower = false;
    for ch in last.chars() {
        if ch == '_' {
            out.push(' ');
            prev_lower = false;
        } else if ch.is_uppercase() && prev_lower {
            out.push(' ');
            out.extend(ch.to_lowercase());
            prev_lower = false;
        } else {
            let lower_in_screaming = term.chars().all(|c| !c.is_lowercase());
            if ch.is_uppercase() && lower_in_screaming {
                out.extend(ch.to_lowercase());
            } else {
                out.push(ch);
            }
            prev_lower = ch.is_lowercase() || ch.is_numeric();
        }
    }
    out
}

/// Verbalise a triple into the sentence form fed to the encoder:
/// subject and object as-is, predicate humanised.
pub fn verbalize_triple(t: &StrTriple) -> String {
    let mut out = String::with_capacity(t.s.len() + t.p.len() + t.o.len() + 2);
    out.push_str(&t.s);
    out.push(' ');
    out.push_str(&humanize_term(&t.p));
    out.push(' ');
    out.push_str(&t.o);
    out
}

/// Render a triple for prompt display: `<s> <humanised p> <o>`, the
/// notation the paper's prompt figures use.
pub fn display_triple(t: &StrTriple) -> String {
    format!("<{}> <{}> <{}>", t.s, humanize_term(&t.p), t.o)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn humanizes_freebase_paths() {
        assert_eq!(
            humanize_term("/people/person/place_of_birth"),
            "place of birth"
        );
    }

    #[test]
    fn humanizes_screaming_snake() {
        assert_eq!(humanize_term("COMES_WITH"), "comes with");
        assert_eq!(humanize_term("HAS_PROPERTY"), "has property");
    }

    #[test]
    fn humanizes_camel_case() {
        assert_eq!(humanize_term("placeOfBirth"), "place of birth");
    }

    #[test]
    fn plain_text_unchanged() {
        assert_eq!(humanize_term("place of birth"), "place of birth");
        assert_eq!(humanize_term("born in"), "born in");
    }

    #[test]
    fn verbalize_and_display() {
        let t = StrTriple::new("Yao Ming", "/people/person/place_of_birth", "Shanghai");
        assert_eq!(verbalize_triple(&t), "Yao Ming place of birth Shanghai");
        assert_eq!(display_triple(&t), "<Yao Ming> <place of birth> <Shanghai>");
    }
}
