//! The deterministic sentence encoder (Sentence-BERT stand-in).
//!
//! Feature-hashing bag of normalised tokens plus character-trigram
//! sub-word features, signed-hashed into a fixed-dimension dense vector
//! and L2-normalised. Cosine similarity over these vectors has the one
//! property the pipeline depends on: verbalisations sharing content
//! words (after stemming and synonym folding) score high; unrelated text
//! scores near zero.

use crate::idf::IdfModel;
use crate::synonym::SynonymTable;
use crate::token::{char_ngrams, normalize};
use kgstore::hash::{mix2, stable_str_hash};
use std::sync::Arc;

/// Dense embedding vector.
pub type Vector = Vec<f32>;

/// Configuration of the encoder.
#[derive(Debug, Clone)]
pub struct EmbedConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Weight of word-level features.
    pub word_weight: f32,
    /// Weight of character-trigram features (0 disables them).
    pub char_weight: f32,
    /// Number of hash probes per feature (each adds a signed component).
    pub probes: usize,
    /// Semantic-geometry noise in `[0, 1)`: each text receives a
    /// deterministic pseudo-random component of this relative magnitude.
    /// Models the imperfect geometry of a real sentence encoder — two
    /// paraphrases of the same fact do not score cosine 1.0, and
    /// retrieval recall@k degrades as the index grows. 0 disables.
    pub noise: f32,
}

impl Default for EmbedConfig {
    fn default() -> Self {
        Self {
            dim: 256,
            word_weight: 1.0,
            char_weight: 0.25,
            probes: 2,
            noise: 0.0,
        }
    }
}

/// The encoder. Cheap to clone; all state is the config and synonym
/// table.
#[derive(Debug, Clone)]
pub struct Embedder {
    cfg: EmbedConfig,
    synonyms: SynonymTable,
    idf: Option<Arc<IdfModel>>,
}

impl Default for Embedder {
    fn default() -> Self {
        Self::new(EmbedConfig::default(), SynonymTable::builtin())
    }
}

impl Embedder {
    /// The calibrated "paper" encoder: builtin synonyms plus the noise
    /// level that reproduces Sentence-BERT-like retrieval imperfection
    /// over dataset-scale indexes.
    pub fn paper() -> Self {
        Self::new(
            EmbedConfig {
                noise: 0.6,
                ..Default::default()
            },
            SynonymTable::builtin(),
        )
    }

    /// Build an encoder with explicit config and synonym table.
    pub fn new(cfg: EmbedConfig, synonyms: SynonymTable) -> Self {
        assert!(cfg.dim > 0, "dimension must be positive");
        assert!(cfg.probes > 0, "need at least one hash probe");
        Self {
            cfg,
            synonyms,
            idf: None,
        }
    }

    /// Attach a fitted IDF model: word features are scaled by their
    /// corpus rarity (the "better encoder" of the paper's future work).
    pub fn with_idf(mut self, idf: Arc<IdfModel>) -> Self {
        self.idf = Some(idf);
        self
    }

    /// Whether an IDF model is attached.
    pub fn has_idf(&self) -> bool {
        self.idf.is_some()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.cfg.dim
    }

    /// The synonym table this encoder folds tokens with.
    pub fn synonyms(&self) -> &SynonymTable {
        &self.synonyms
    }

    /// Fold one (normalised) token exactly the way [`encode`] does.
    /// Candidate generation over an index built with this encoder must
    /// use this fold — not a fixed builtin table — so token overlap
    /// agrees with the encoder under custom or empty synonym configs.
    ///
    /// [`encode`]: Embedder::encode
    pub fn fold_token<'a>(&'a self, tok: &'a str) -> &'a str {
        self.synonyms.fold(tok)
    }

    /// Encode a text into an L2-normalised vector. An all-zero vector is
    /// returned for texts with no features (e.g. only stopwords).
    pub fn encode(&self, text: &str) -> Vector {
        self.encode_impl(text, true)
    }

    fn encode_impl(&self, text: &str, fold: bool) -> Vector {
        let mut v = vec![0.0f32; self.cfg.dim];
        let tokens = normalize(text);
        for tok in &tokens {
            let folded = if fold { self.synonyms.fold(tok) } else { tok };
            let idf_scale = self.idf.as_deref().map_or(1.0, |m| m.weight(folded) / 2.0);
            self.add_feature(&mut v, folded, self.cfg.word_weight * idf_scale);
            if self.cfg.char_weight > 0.0 && folded.len() > 3 {
                for gram in char_ngrams(folded, 3) {
                    self.add_feature(&mut v, &gram, self.cfg.char_weight * idf_scale);
                }
            }
        }
        if self.cfg.noise > 0.0 && !tokens.is_empty() {
            self.add_noise(&mut v, text);
        }
        l2_normalize(&mut v);
        v
    }

    /// Deterministic per-text noise: a pseudo-random vector keyed on the
    /// whole text, scaled relative to the feature mass. Different texts
    /// get independent noise, so cosines between distinct texts shrink
    /// and jitter — the "real encoder" imperfection.
    fn add_noise(&self, v: &mut [f32], text: &str) {
        let feature_norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if feature_norm == 0.0 {
            return;
        }
        let scale = self.cfg.noise * feature_norm / (self.cfg.dim as f32).sqrt();
        let base = stable_str_hash(text) ^ 0x9e37_79b9;
        for (i, x) in v.iter_mut().enumerate() {
            let h = mix2(base, i as u64);
            // Uniform in [-1, 1].
            let u = ((h >> 11) as f32 / (1u64 << 53) as f32) * 2.0 - 1.0;
            *x += scale * u * 1.732; // match unit variance
        }
    }

    /// Encode *without* synonym folding. Sentence-to-triple matching
    /// lacks the relation-paraphrase alignment that triple-to-triple
    /// matching enjoys (the paper: "the continuous nature of question
    /// expression contrasts with the discontinuous nature of semantic
    /// triples"); query-style encodings therefore skip the fold.
    /// Equivalent to encoding with an empty synonym table, without
    /// cloning the config or IDF handle into a throwaway encoder.
    pub fn encode_unfolded(&self, text: &str) -> Vector {
        self.encode_impl(text, false)
    }

    /// Encode a batch of texts.
    pub fn encode_batch<'a, I: IntoIterator<Item = &'a str>>(&self, texts: I) -> Vec<Vector> {
        texts.into_iter().map(|t| self.encode(t)).collect()
    }

    fn add_feature(&self, v: &mut [f32], feature: &str, weight: f32) {
        let base = stable_str_hash(feature);
        for p in 0..self.cfg.probes {
            let h = mix2(base, p as u64);
            let idx = (h % self.cfg.dim as u64) as usize;
            let sign = if (h >> 63) & 1 == 0 { 1.0 } else { -1.0 };
            v[idx] += sign * weight;
        }
    }
}

/// Normalise a vector to unit L2 norm in place (no-op for zero vectors).
pub fn l2_normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Cosine similarity. Assumes (but does not require) unit-norm inputs;
/// computes the full normalised form so it is safe for any vectors.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// How many independent f32 accumulators [`dot`] carries. Eight lanes
/// break the serial dependency chain of a scalar sum, so the compiler
/// can keep full SIMD width busy.
const DOT_LANES: usize = 8;

/// Plain dot product (equals cosine for unit-norm vectors). Hot path of
/// the top-k scan and of the quantized engine's exact rerank stage,
/// kept free of sqrt. Chunked 8-lane accumulation with a fixed
/// pairwise reduction: deterministic (the same inputs always produce
/// the same bits) and autovectorizable.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let split = a.len() - a.len() % DOT_LANES;
    let mut acc = [0.0f32; DOT_LANES];
    for (ca, cb) in a[..split]
        .chunks_exact(DOT_LANES)
        .zip(b[..split].chunks_exact(DOT_LANES))
    {
        for j in 0..DOT_LANES {
            acc[j] += ca[j] * cb[j];
        }
    }
    // Fixed pairwise reduction so the result is a pure function of the
    // inputs, independent of how the loop above was vectorized.
    let mut sum = ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]));
    for (x, y) in a[split..].iter().zip(&b[split..]) {
        sum += x * y;
    }
    sum
}

/// How many queries one register tile of [`dot_batch`] carries (four
/// [`DOT_LANES`]-wide accumulator sets plus the shared row load fit the
/// 256-bit register file).
const DOT_QUERY_TILE: usize = 4;

/// Bytes of document rows per cache tile of [`dot_batch`]; matches the
/// int8 kernel's tile so both faces of a store stream the same way.
const DOT_TILE_BYTES: usize = 16 * 1024;

/// One document row against [`DOT_QUERY_TILE`] query rows, sharing the
/// row's loads across four accumulator sets. Each query's accumulation
/// replays [`dot`] exactly — same chunk order, same per-lane adds, same
/// fixed pairwise reduction, same remainder tail — and f32 addition
/// only depends on its own operand sequence, so each returned dot
/// equals `dot(query, row)` bit for bit.
#[inline(always)]
fn dot_row_x4(qs: [&[f32]; DOT_QUERY_TILE], row: &[f32]) -> [f32; DOT_QUERY_TILE] {
    let len = row.len();
    let split = len - len % DOT_LANES;
    let mut acc = [[0.0f32; DOT_LANES]; DOT_QUERY_TILE];
    let mut i = 0;
    while i < split {
        let r = &row[i..i + DOT_LANES];
        for (a, q) in acc.iter_mut().zip(&qs) {
            let c = &q[i..i + DOT_LANES];
            for j in 0..DOT_LANES {
                a[j] += c[j] * r[j];
            }
        }
        i += DOT_LANES;
    }
    let mut out = [0.0f32; DOT_QUERY_TILE];
    for (o, (a, q)) in out.iter_mut().zip(acc.iter().zip(&qs)) {
        let mut sum = ((a[0] + a[4]) + (a[1] + a[5])) + ((a[2] + a[6]) + (a[3] + a[7]));
        for (x, y) in q[split..].iter().zip(&row[split..]) {
            sum += x * y;
        }
        *o = sum;
    }
    out
}

/// Query-tiled batch dot: every query of the batch against every row of
/// a flat f32 block (stride `dim`), each query's dots appended to its
/// `out` vector in row order. Cache-tiled over document chunks and
/// register-blocked [`DOT_QUERY_TILE`] queries at a time — the batched
/// f32 counterpart of [`crate::quant::dot_i8_batch`], serving the exact
/// scoring path. Bit-identical per pair to [`dot`]: the tiling only
/// reorders *which* pair is computed when, never the float-operation
/// sequence within a pair.
pub fn dot_batch(queries: &[&[f32]], rows: &[f32], dim: usize, out: &mut [Vec<f32>]) {
    assert_eq!(queries.len(), out.len(), "one output vec per query");
    for q in queries {
        assert_eq!(q.len(), dim, "dimension mismatch");
    }
    if dim == 0 || queries.is_empty() {
        return;
    }
    debug_assert_eq!(rows.len() % dim, 0);
    if queries.len() == 1 {
        // A batch of one has nobody to share a cache tile with; one
        // flat pass computes the identical per-pair dots without the
        // tile bookkeeping.
        let query = queries[0];
        out[0].extend(rows.chunks_exact(dim).map(|row| dot(query, row)));
        return;
    }
    let tile_elems = (DOT_TILE_BYTES / (dim * std::mem::size_of::<f32>())).max(1) * dim;
    let mut start = 0;
    while start < rows.len() {
        let tile = &rows[start..rows.len().min(start + tile_elems)];
        let mut q = 0;
        while q + DOT_QUERY_TILE <= queries.len() {
            let qs = [queries[q], queries[q + 1], queries[q + 2], queries[q + 3]];
            for row in tile.chunks_exact(dim) {
                let d = dot_row_x4(qs, row);
                for t in 0..DOT_QUERY_TILE {
                    out[q + t].push(d[t]);
                }
            }
            q += DOT_QUERY_TILE;
        }
        for t in q..queries.len() {
            let query = queries[t];
            out[t].extend(tile.chunks_exact(dim).map(|row| dot(query, row)));
        }
        start += tile_elems;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emb() -> Embedder {
        Embedder::default()
    }

    #[test]
    fn encode_is_deterministic() {
        let e = emb();
        assert_eq!(
            e.encode("Yao Ming born in Shanghai"),
            e.encode("Yao Ming born in Shanghai")
        );
    }

    #[test]
    fn encode_is_unit_norm() {
        let v = emb().encode("Lake Superior area 82000");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn same_fact_different_schema_scores_high() {
        let e = emb();
        let pseudo = e.encode("Yao Ming born in Shanghai");
        let wikidata = e.encode("Yao Ming place of birth Shanghai");
        let freebase = e.encode("Yao Ming /people/person/place_of_birth Shanghai");
        let unrelated = e.encode("Lake Superior area 82000");
        let s_wd = cosine(&pseudo, &wikidata);
        let s_fb = cosine(&pseudo, &freebase);
        let s_un = cosine(&pseudo, &unrelated);
        assert!(s_wd > 0.6, "wikidata sim too low: {s_wd}");
        assert!(s_fb > 0.5, "freebase sim too low: {s_fb}");
        assert!(s_un < 0.25, "unrelated sim too high: {s_un}");
    }

    #[test]
    fn related_entity_scores_between() {
        let e = emb();
        let pseudo = e.encode("Yao Ming born in Shanghai");
        let same_entity = e.encode("Yao Ming occupation basketball player");
        let s_same = cosine(&pseudo, &same_entity);
        let s_exact = cosine(&pseudo, &e.encode("Yao Ming place of birth Shanghai"));
        assert!(
            s_same > 0.15 && s_same < s_exact,
            "ordering broken: {s_same} vs {s_exact}"
        );
    }

    #[test]
    fn zero_vector_for_stopword_only_text() {
        let v = emb().encode("the of a");
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(cosine(&v, &v), 0.0);
    }

    #[test]
    fn cosine_bounds() {
        let e = emb();
        let a = e.encode("alpha beta gamma");
        let b = e.encode("delta epsilon zeta");
        let c = cosine(&a, &b);
        assert!((-1.0..=1.0).contains(&c));
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn chunked_dot_matches_naive_loop_on_fixed_vectors() {
        // Integer-valued components keep every product and partial sum
        // exactly representable, so the chunked accumulation must agree
        // with the naive sequential loop bit for bit — at lane-multiple
        // lengths, with a remainder tail, and below one lane.
        let naive = |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
        for len in [1usize, 3, 7, 8, 9, 16, 23, 256] {
            let a: Vec<f32> = (0..len).map(|i| ((i % 13) as f32) - 6.0).collect();
            let b: Vec<f32> = (0..len).map(|i| ((i % 7) as f32) - 3.0).collect();
            assert_eq!(dot(&a, &b), naive(&a, &b), "len {len}");
        }
        // And a hand-pinned case.
        let a = [2.0f32, -1.0, 0.5, 4.0, -3.0, 1.0, 0.0, 2.0, 8.0];
        let b = [1.0f32, 2.0, 4.0, -0.5, 1.0, 1.0, 9.0, 0.5, 0.25];
        assert_eq!(dot(&a, &b), naive(&a, &b));
        assert_eq!(dot(&a, &b), 1.0);
    }

    #[test]
    fn dot_remainder_lanes_match_naive_loop() {
        // Dimensions that are not multiples of the 8-lane width pin the
        // tail handling: 1 (all tail), 7 (sub-lane), 17 (two full
        // chunks plus one element). Integer-valued components keep
        // every operation exact, so equality is bitwise.
        let naive = |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
        for dim in [1usize, 7, 17] {
            let a: Vec<f32> = (0..dim).map(|i| ((i % 11) as f32) - 5.0).collect();
            let b: Vec<f32> = (0..dim).map(|i| ((i % 5) as f32) - 2.0).collect();
            assert_eq!(dot(&a, &b), naive(&a, &b), "dim {dim}");
        }
    }

    #[test]
    fn batched_dot_matches_sequential_dot_bitwise() {
        // Non-integer values on purpose: the batch must replay `dot`'s
        // exact float-operation order, not merely approximate it. Block
        // spans several cache tiles at dim 48 (85 rows/tile at 16 KiB).
        let dim = 48usize;
        let rows_n = 300usize;
        let rows: Vec<f32> = (0..rows_n * dim).map(|i| (i as f32 * 0.37).sin()).collect();
        let queries: Vec<Vec<f32>> = (0..7)
            .map(|q| {
                (0..dim)
                    .map(|i| ((i + q * 31) as f32 * 0.53).cos())
                    .collect()
            })
            .collect();
        for width in [0usize, 1, 3, 4, 6, 7] {
            let refs: Vec<&[f32]> = queries[..width].iter().map(|q| q.as_slice()).collect();
            let mut out = vec![Vec::new(); width];
            dot_batch(&refs, &rows, dim, &mut out);
            for (q, o) in out.iter().enumerate() {
                let seq: Vec<f32> = rows
                    .chunks_exact(dim)
                    .map(|r| dot(&queries[q], r))
                    .collect();
                assert_eq!(o, &seq, "width {width} query {q}");
            }
        }
    }

    #[test]
    fn dot_equals_cosine_for_unit_vectors() {
        let e = emb();
        let a = e.encode("andes covers peru");
        let b = e.encode("himalayas covers nepal");
        assert!((dot(&a, &b) - cosine(&a, &b)).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn cosine_rejects_mismatched_dims() {
        cosine(&[1.0], &[1.0, 0.0]);
    }

    #[test]
    fn noise_lowers_cross_text_similarity_but_stays_deterministic() {
        let clean = Embedder::default();
        let noisy = Embedder::paper();
        let a = "Yao Ming born in Shanghai";
        let b = "Yao Ming place of birth Shanghai";
        let clean_sim = cosine(&clean.encode(a), &clean.encode(b));
        let noisy_sim = cosine(&noisy.encode(a), &noisy.encode(b));
        assert!(noisy_sim < clean_sim, "{noisy_sim} !< {clean_sim}");
        assert!(noisy_sim > 0.2, "structure must survive noise: {noisy_sim}");
        assert_eq!(
            noisy.encode(a),
            noisy.encode(a),
            "noise must be deterministic"
        );
        // Same text still scores 1 with itself.
        assert!((cosine(&noisy.encode(a), &noisy.encode(a)) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn idf_weighting_shifts_similarity_toward_rare_tokens() {
        use crate::idf::IdfModel;
        let corpus = [
            "A instance of person",
            "B instance of person",
            "C instance of person",
            "D instance of person",
            "A born in Rareville",
        ];
        let idf = Arc::new(IdfModel::fit(
            corpus.iter().copied(),
            &SynonymTable::builtin(),
        ));
        let plain = Embedder::default();
        let weighted = Embedder::default().with_idf(idf);
        assert!(weighted.has_idf());
        // A mixed document: rare-token overlap must dominate
        // common-token overlap once IDF weighting is on.
        let doc = "mystery instance of person born Rareville";
        let rare_q = "mystery born Rareville"; // overlaps on rare tokens
        let common_q = "somebody instance of person"; // overlaps on common tokens
        let sep = |e: &Embedder| {
            cosine(&e.encode(doc), &e.encode(rare_q)) - cosine(&e.encode(doc), &e.encode(common_q))
        };
        assert!(
            sep(&weighted) > sep(&plain) + 0.01,
            "{} !> {}",
            sep(&weighted),
            sep(&plain)
        );
    }

    #[test]
    fn batch_matches_single() {
        let e = emb();
        let batch = e.encode_batch(["a b", "c d"]);
        assert_eq!(batch[0], e.encode("a b"));
        assert_eq!(batch[1], e.encode("c d"));
    }
}
