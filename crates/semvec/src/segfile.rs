//! Versioned, checksummed, zero-copy on-disk format for the segmented
//! index ([`crate::seg::SegmentedIndex`]).
//!
//! Layout (all integers little-endian, all section offsets 8-byte
//! aligned absolute file offsets):
//!
//! ```text
//! [ 64-byte header ][ n_segments × 80-byte table entries ][ payload ]
//!
//! header:
//!   0  magic            [u8; 8]  = "PGGSEG01"
//!   8  version          u32      = 1
//!   12 dim              u32
//!   16 seg_rows         u32
//!   20 n_segments       u32
//!   24 n_docs           u64
//!   32 file_len         u64      (must equal the real file length)
//!   40 ceiling          f32 bits (u32)
//!   44 reserved         u32      = 0
//!   48 checksum         u64      (FNV-1a-64, see below)
//!   56 entity_off       u64      (0 = no entity section; was reserved in v1)
//!
//! table entry (per segment, 10 × u64):
//!   rows, vec_off, quant_off, keys_off, keys_count,
//!   offs_off, ids_off, ids_count, scale (f32 bits), max_norm (f32 bits)
//!
//! payload, per segment in order, each section zero-padded to 8 bytes:
//!   vectors  rows·dim × f32      quant  rows·dim × i8
//!   keys     keys_count × u64    offs   (keys_count+1) × u32
//!   ids      ids_count × u32
//!
//! entity section (v2, present when entity_off != 0, 8-aligned):
//!   48-byte mini-header:
//!     0  n_entities          u64
//!     8  n_surfaces          u64
//!     16 surf_ents_count     u64
//!     24 ent_docs_count      u64
//!     32 max_surface_tokens  u64
//!     40 entity ceiling      f32 bits (u32), then reserved u32 = 0
//!   columns in order, each zero-padded to 8 bytes:
//!     surf_keys  n_surfaces × u64       surf_offs (n_surfaces+1) × u32
//!     surf_ents  surf_ents_count × u32  prior     n_entities × u32
//!     ent_offs   (n_entities+1) × u32   ent_docs  ent_docs_count × u32
//! ```
//!
//! The checksum is FNV-1a-64 over the *entire file* with the 8
//! checksum bytes treated as zero, so any single flipped byte —
//! header, table, payload, or padding — is caught on open and surfaces
//! as a typed [`SegFileError`], never as garbage search results.
//!
//! **Zero-copy open.** The whole file is read into one 8-byte-aligned
//! buffer ([`AlignedBuf`], backed by a `Vec<u64>`); on little-endian
//! targets every section is then *viewed* in place ([`Col::View`]) —
//! no per-element decode, no second copy. Big-endian targets fall back
//! to decoding owned vectors from the little-endian bytes, so the
//! format is portable while the hot path stays copy-free.

use crate::entity::EntityIndex;
use crate::seg::{Segment, SegmentedIndex};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Format magic, bumped with [`FORMAT_VERSION`].
pub const MAGIC: [u8; 8] = *b"PGGSEG01";
/// Format version accepted by [`open`]. v2 added the optional entity
/// section behind the previously-reserved `entity_off` header field;
/// v1 files are rejected with [`SegFileError::BadVersion`] (callers
/// rebuild — the cache key already folds the format version in).
pub const FORMAT_VERSION: u32 = 2;
const HEADER_LEN: usize = 64;
const SEG_ENTRY_LEN: usize = 80;
const CHECKSUM_OFF: usize = 48;
const ENTITY_OFF_POS: usize = 56;
const ENTITY_HEADER_LEN: usize = 48;

/// Why a segment file could not be opened. Every corruption mode maps
/// to a typed error — the open path never constructs an index from
/// bytes that failed validation.
#[derive(Debug)]
pub enum SegFileError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's version is not [`FORMAT_VERSION`].
    BadVersion(u32),
    /// The file is shorter than its header or recorded length.
    Truncated,
    /// The FNV-1a-64 checksum did not match the stored one.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum recomputed over the file bytes.
        actual: u64,
    },
    /// A structural invariant failed (offsets, alignment, row counts).
    BadLayout(&'static str),
}

impl std::fmt::Display for SegFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegFileError::Io(e) => write!(f, "segment file io error: {e}"),
            SegFileError::BadMagic => write!(f, "not a segment file (bad magic)"),
            SegFileError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported segment file version {v} (want {FORMAT_VERSION})"
                )
            }
            SegFileError::Truncated => write!(f, "segment file truncated"),
            SegFileError::ChecksumMismatch { expected, actual } => write!(
                f,
                "segment file checksum mismatch: header {expected:#018x}, computed {actual:#018x}"
            ),
            SegFileError::BadLayout(what) => write!(f, "segment file layout invalid: {what}"),
        }
    }
}

impl std::error::Error for SegFileError {}

impl From<std::io::Error> for SegFileError {
    fn from(e: std::io::Error) -> Self {
        SegFileError::Io(e)
    }
}

/// An 8-byte-aligned byte buffer (backed by a `Vec<u64>`), the
/// in-memory image of a segment file. The alignment guarantee is what
/// lets [`Col::View`] reinterpret sections in place: every section
/// offset is a multiple of 8, so `base + off` is aligned for any
/// scalar the format stores.
pub struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    /// Zeroed buffer of `len` bytes.
    fn with_len(len: usize) -> Self {
        Self {
            words: vec![0u64; len.div_ceil(8)],
            len,
        }
    }

    /// Read exactly `len` bytes from `r` into a fresh aligned buffer.
    fn read_exact_from<R: Read>(r: &mut R, len: usize) -> std::io::Result<Self> {
        let mut buf = Self::with_len(len);
        r.read_exact(buf.bytes_mut())?;
        Ok(buf)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The buffer as bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: `words` owns at least `len` bytes (words.len()*8 >=
        // len by construction) and u8 has no alignment or validity
        // requirements, so reinterpreting the u64 storage as bytes is
        // always in bounds and valid.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }

    fn bytes_mut(&mut self) -> &mut [u8] {
        // SAFETY: as in `bytes`, plus exclusive access via &mut self.
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr() as *mut u8, self.len) }
    }
}

impl std::fmt::Debug for AlignedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedBuf({} bytes)", self.len)
    }
}

/// A plain scalar the format stores little-endian. All implementors
/// are valid for every bit pattern, which is what makes the in-place
/// view sound.
pub(crate) trait LeScalar: Copy {
    /// Serialized size in bytes.
    const SIZE: usize;
    /// Decode one value from its little-endian bytes.
    fn read_le(bytes: &[u8]) -> Self;
    /// Append this value's little-endian bytes.
    fn write_le(self, out: &mut Vec<u8>);
}

impl LeScalar for f32 {
    const SIZE: usize = 4;
    fn read_le(b: &[u8]) -> Self {
        f32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl LeScalar for i8 {
    const SIZE: usize = 1;
    fn read_le(b: &[u8]) -> Self {
        b[0] as i8
    }
    fn write_le(self, out: &mut Vec<u8>) {
        out.push(self as u8);
    }
}

impl LeScalar for u32 {
    const SIZE: usize = 4;
    fn read_le(b: &[u8]) -> Self {
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl LeScalar for u64 {
    const SIZE: usize = 8;
    fn read_le(b: &[u8]) -> Self {
        u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

/// One typed column of a segment: either owned (built in RAM) or a
/// zero-copy view into the shared file buffer (opened from disk on a
/// little-endian target). Both faces expose the same `&[T]`, so every
/// scan is layout-agnostic.
#[derive(Debug)]
pub(crate) enum Col<T: LeScalar> {
    /// Heap-owned column (the build path, and the big-endian open
    /// fallback).
    Owned(Vec<T>),
    /// In-place view into the file buffer: `count` scalars at byte
    /// offset `off`. Only constructed on little-endian targets, by
    /// [`view_col`], which validates bounds and alignment.
    #[cfg(target_endian = "little")]
    View {
        buf: Arc<AlignedBuf>,
        off: usize,
        count: usize,
    },
}

impl<T: LeScalar> Col<T> {
    /// The column as a slice.
    #[inline]
    pub(crate) fn as_slice(&self) -> &[T] {
        match self {
            Col::Owned(v) => v,
            #[cfg(target_endian = "little")]
            Col::View { buf, off, count } => {
                // SAFETY: `view_col` verified off % 8 == 0 (stricter
                // than align_of::<T>() for every LeScalar) and
                // off + count·SIZE <= buf.len(), so the pointer is
                // aligned and the range in bounds; the Arc keeps the
                // buffer alive for the lifetime of &self; and every
                // LeScalar type is valid for any bit pattern on this
                // little-endian target, so no invalid value can be
                // produced.
                unsafe {
                    std::slice::from_raw_parts(buf.bytes().as_ptr().add(*off) as *const T, *count)
                }
            }
        }
    }

    /// Heap bytes this column owns (0 for a view — the shared buffer
    /// is accounted once by the index).
    pub(crate) fn owned_bytes(&self) -> usize {
        match self {
            Col::Owned(v) => v.len() * T::SIZE,
            #[cfg(target_endian = "little")]
            Col::View { .. } => 0,
        }
    }
}

/// Construct a typed column over `count` scalars at byte offset `off`
/// of the shared buffer, after validating alignment and bounds. On
/// little-endian targets this is a zero-copy view; on big-endian ones
/// the scalars are decoded into an owned vector.
fn view_col<T: LeScalar>(
    buf: &Arc<AlignedBuf>,
    off: u64,
    count: u64,
) -> Result<Col<T>, SegFileError> {
    let off = usize::try_from(off).map_err(|_| SegFileError::BadLayout("offset overflow"))?;
    let count = usize::try_from(count).map_err(|_| SegFileError::BadLayout("count overflow"))?;
    if off % 8 != 0 {
        return Err(SegFileError::BadLayout("unaligned section offset"));
    }
    let bytes = count
        .checked_mul(T::SIZE)
        .ok_or(SegFileError::BadLayout("section size overflow"))?;
    let end = off
        .checked_add(bytes)
        .ok_or(SegFileError::BadLayout("section end overflow"))?;
    if end > buf.len() {
        return Err(SegFileError::BadLayout("section out of bounds"));
    }
    #[cfg(target_endian = "little")]
    {
        Ok(Col::View {
            buf: Arc::clone(buf),
            off,
            count,
        })
    }
    #[cfg(not(target_endian = "little"))]
    {
        let b = &buf.bytes()[off..end];
        Ok(Col::Owned(
            (0..count).map(|i| T::read_le(&b[i * T::SIZE..])).collect(),
        ))
    }
}

/// FNV-1a-64 over byte chunks.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// The file checksum: FNV-1a-64 over all bytes with the checksum field
/// itself zeroed.
fn checksum_of(bytes: &[u8]) -> u64 {
    let mut fnv = Fnv::new();
    fnv.update(&bytes[..CHECKSUM_OFF]);
    fnv.update(&[0u8; 8]);
    fnv.update(&bytes[CHECKSUM_OFF + 8..]);
    fnv.0
}

fn pad8(len: usize) -> usize {
    len.div_ceil(8) * 8
}

fn pad_to(out: &mut Vec<u8>, len: usize) {
    out.resize(out.len() + (pad8(len) - len), 0);
}

/// Serialize the index into the on-disk format and write it atomically
/// (temp file + rename, so readers never observe a half-written file).
pub fn write_to(index: &SegmentedIndex, path: &Path) -> Result<(), SegFileError> {
    let segs = index.segments();
    let dim = index.dim();
    let table_end = HEADER_LEN + segs.len() * SEG_ENTRY_LEN;
    debug_assert_eq!(table_end % 8, 0);

    // Layout pass: absolute, 8-aligned section offsets.
    struct Entry {
        rows: u64,
        vec_off: u64,
        quant_off: u64,
        keys_off: u64,
        keys_count: u64,
        offs_off: u64,
        ids_off: u64,
        ids_count: u64,
        scale: u64,
        max_norm: u64,
    }
    let mut cursor = table_end as u64;
    let mut take = |len: usize| {
        let off = cursor;
        cursor += pad8(len) as u64;
        off
    };
    let entries: Vec<Entry> = segs
        .iter()
        .map(|s| {
            let nk = s.keys.as_slice().len();
            let ni = s.ids.as_slice().len();
            Entry {
                rows: s.rows as u64,
                vec_off: take(s.rows * dim * 4),
                quant_off: take(s.rows * dim),
                keys_off: take(nk * 8),
                keys_count: nk as u64,
                offs_off: take((nk + 1) * 4),
                ids_off: take(ni * 4),
                ids_count: ni as u64,
                scale: s.scale.to_bits() as u64,
                max_norm: s.max_norm.to_bits() as u64,
            }
        })
        .collect();
    let entity_off = match index.entity_index() {
        Some(e) => {
            let off = take(ENTITY_HEADER_LEN);
            take(e.surf_keys.as_slice().len() * 8);
            take(e.surf_offs.as_slice().len() * 4);
            take(e.surf_ents.as_slice().len() * 4);
            take(e.prior.as_slice().len() * 4);
            take(e.ent_offs.as_slice().len() * 4);
            take(e.ent_docs.as_slice().len() * 4);
            off
        }
        None => 0,
    };
    let file_len = cursor as usize;

    let mut out: Vec<u8> = Vec::with_capacity(file_len);
    out.extend_from_slice(&MAGIC);
    FORMAT_VERSION.write_le(&mut out);
    (dim as u32).write_le(&mut out);
    (index.seg_rows() as u32).write_le(&mut out);
    (segs.len() as u32).write_le(&mut out);
    (index.len() as u64).write_le(&mut out);
    (file_len as u64).write_le(&mut out);
    index.ceiling().to_bits().write_le(&mut out);
    0u32.write_le(&mut out);
    0u64.write_le(&mut out); // checksum, patched below
    entity_off.write_le(&mut out);
    debug_assert_eq!(out.len(), HEADER_LEN);

    for e in &entries {
        for v in [
            e.rows,
            e.vec_off,
            e.quant_off,
            e.keys_off,
            e.keys_count,
            e.offs_off,
            e.ids_off,
            e.ids_count,
            e.scale,
            e.max_norm,
        ] {
            v.write_le(&mut out);
        }
    }
    debug_assert_eq!(out.len(), table_end);

    for s in segs {
        let vecs = s.vectors.as_slice();
        for &x in vecs {
            x.write_le(&mut out);
        }
        pad_to(&mut out, vecs.len() * 4);
        let quant = s.quant.as_slice();
        for &x in quant {
            x.write_le(&mut out);
        }
        pad_to(&mut out, quant.len());
        let keys = s.keys.as_slice();
        for &x in keys {
            x.write_le(&mut out);
        }
        pad_to(&mut out, keys.len() * 8);
        let offs = s.offs.as_slice();
        for &x in offs {
            x.write_le(&mut out);
        }
        pad_to(&mut out, offs.len() * 4);
        let ids = s.ids.as_slice();
        for &x in ids {
            x.write_le(&mut out);
        }
        pad_to(&mut out, ids.len() * 4);
    }
    if let Some(e) = index.entity_index() {
        debug_assert_eq!(out.len() as u64, entity_off);
        (e.n_entities as u64).write_le(&mut out);
        (e.surf_keys.as_slice().len() as u64).write_le(&mut out);
        (e.surf_ents.as_slice().len() as u64).write_le(&mut out);
        (e.ent_docs.as_slice().len() as u64).write_le(&mut out);
        (e.max_surface_tokens as u64).write_le(&mut out);
        e.ceiling.to_bits().write_le(&mut out);
        0u32.write_le(&mut out);
        let keys = e.surf_keys.as_slice();
        for &x in keys {
            x.write_le(&mut out);
        }
        pad_to(&mut out, keys.len() * 8);
        for col in [
            &e.surf_offs,
            &e.surf_ents,
            &e.prior,
            &e.ent_offs,
            &e.ent_docs,
        ] {
            let vals = col.as_slice();
            for &x in vals {
                x.write_le(&mut out);
            }
            pad_to(&mut out, vals.len() * 4);
        }
    }
    debug_assert_eq!(out.len(), file_len);

    let sum = checksum_of(&out);
    out[CHECKSUM_OFF..CHECKSUM_OFF + 8].copy_from_slice(&sum.to_le_bytes());

    let tmp = path.with_extension("seg.tmp");
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(&out)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Open a segment file: read it into one aligned buffer, verify magic,
/// version, length, and checksum, validate the layout, and construct
/// the index over zero-copy section views (owned decodes on big-endian
/// targets). Any validation failure is a typed error — a corrupted
/// file can never produce an index that returns garbage.
pub fn open(path: &Path) -> Result<SegmentedIndex, SegFileError> {
    let mut f = std::fs::File::open(path)?;
    let len = f.metadata()?.len();
    let len = usize::try_from(len).map_err(|_| SegFileError::Truncated)?;
    if len < HEADER_LEN {
        return Err(SegFileError::Truncated);
    }
    let buf = AlignedBuf::read_exact_from(&mut f, len)?;
    let b = buf.bytes();

    if b[..8] != MAGIC {
        return Err(SegFileError::BadMagic);
    }
    let version = u32::read_le(&b[8..]);
    if version != FORMAT_VERSION {
        return Err(SegFileError::BadVersion(version));
    }
    let dim = u32::read_le(&b[12..]) as usize;
    let seg_rows = u32::read_le(&b[16..]) as usize;
    let n_segments = u32::read_le(&b[20..]) as usize;
    let n_docs = u64::read_le(&b[24..]) as usize;
    let file_len = u64::read_le(&b[32..]) as usize;
    let ceiling = f32::from_bits(u32::read_le(&b[40..]));
    let expected = u64::read_le(&b[CHECKSUM_OFF..]);

    if file_len != len {
        return Err(SegFileError::Truncated);
    }
    let actual = checksum_of(b);
    if actual != expected {
        return Err(SegFileError::ChecksumMismatch { expected, actual });
    }

    if dim == 0 || seg_rows == 0 {
        return Err(SegFileError::BadLayout("zero dim or seg_rows"));
    }
    if n_segments != n_docs.div_ceil(seg_rows) {
        return Err(SegFileError::BadLayout("segment count mismatch"));
    }
    let table_end = HEADER_LEN + n_segments * SEG_ENTRY_LEN;
    if table_end > len {
        return Err(SegFileError::Truncated);
    }

    let buf = Arc::new(buf);
    let bytes = buf.bytes();
    let mut segments = Vec::with_capacity(n_segments);
    for s in 0..n_segments {
        let e = HEADER_LEN + s * SEG_ENTRY_LEN;
        let field = |i: usize| u64::read_le(&bytes[e + i * 8..]);
        let rows = field(0) as usize;
        let base = s * seg_rows;
        let want = (n_docs - base).min(seg_rows);
        if rows != want {
            return Err(SegFileError::BadLayout("segment row count mismatch"));
        }
        let keys_count = field(4);
        let ids_count = field(7);
        let segment = Segment {
            base,
            rows,
            dim,
            vectors: view_col::<f32>(&buf, field(1), (rows * dim) as u64)?,
            quant: view_col::<i8>(&buf, field(2), (rows * dim) as u64)?,
            keys: view_col::<u64>(&buf, field(3), keys_count)?,
            offs: view_col::<u32>(&buf, field(5), keys_count + 1)?,
            ids: view_col::<u32>(&buf, field(6), ids_count)?,
            scale: f32::from_bits(field(8) as u32),
            max_norm: f32::from_bits(field(9) as u32),
        };
        // Postings offsets must be monotone and end at ids_count so
        // key lookups can slice without panicking.
        let offs = segment.offs.as_slice();
        if offs.windows(2).any(|w| w[0] > w[1])
            || offs.last().copied().unwrap_or(0) as u64 != ids_count
        {
            return Err(SegFileError::BadLayout("postings offsets not monotone"));
        }
        if segment.ids.as_slice().iter().any(|&l| l as usize >= rows) {
            return Err(SegFileError::BadLayout("postings id out of range"));
        }
        segments.push(segment);
    }

    let entity_off = u64::read_le(&bytes[ENTITY_OFF_POS..]);
    let entity = if entity_off == 0 {
        None
    } else {
        let off =
            usize::try_from(entity_off).map_err(|_| SegFileError::BadLayout("offset overflow"))?;
        if off % 8 != 0 {
            return Err(SegFileError::BadLayout("unaligned entity section"));
        }
        if off < table_end || off.saturating_add(ENTITY_HEADER_LEN) > len {
            return Err(SegFileError::BadLayout("entity section out of bounds"));
        }
        let field = |i: usize| u64::read_le(&bytes[off + i * 8..]);
        let n_entities = field(0);
        let n_surfaces = field(1);
        let surf_ents_count = field(2);
        let ent_docs_count = field(3);
        let max_surface_tokens = field(4);
        let eceiling = f32::from_bits(u32::read_le(&bytes[off + 40..]));
        // Coarse sanity before any count arithmetic: every column
        // element takes at least one byte, so counts beyond the file
        // length are structurally impossible.
        for c in [
            n_entities,
            n_surfaces,
            surf_ents_count,
            ent_docs_count,
            max_surface_tokens,
        ] {
            if c > len as u64 {
                return Err(SegFileError::BadLayout("entity count out of bounds"));
            }
        }
        let n_entities = n_entities as usize;
        let n_surfaces = n_surfaces as usize;
        let mut cursor = off + ENTITY_HEADER_LEN;
        let mut take = |elems: usize, size: usize| {
            let o = cursor as u64;
            cursor += pad8(elems * size);
            o
        };
        let surf_keys = view_col::<u64>(&buf, take(n_surfaces, 8), n_surfaces as u64)?;
        let surf_offs = view_col::<u32>(&buf, take(n_surfaces + 1, 4), n_surfaces as u64 + 1)?;
        let surf_ents = view_col::<u32>(&buf, take(surf_ents_count as usize, 4), surf_ents_count)?;
        let prior = view_col::<u32>(&buf, take(n_entities, 4), n_entities as u64)?;
        let ent_offs = view_col::<u32>(&buf, take(n_entities + 1, 4), n_entities as u64 + 1)?;
        let ent_docs = view_col::<u32>(&buf, take(ent_docs_count as usize, 4), ent_docs_count)?;
        Some(
            EntityIndex::from_open_parts(
                n_docs,
                n_entities,
                max_surface_tokens as usize,
                eceiling,
                surf_keys,
                surf_offs,
                surf_ents,
                prior,
                ent_offs,
                ent_docs,
            )
            .map_err(SegFileError::BadLayout)?,
        )
    };

    Ok(SegmentedIndex::from_open_parts(
        dim, seg_rows, n_docs, ceiling, segments, entity, buf,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a-64 test vectors.
        let mut f = Fnv::new();
        f.update(b"");
        assert_eq!(f.0, 0xcbf2_9ce4_8422_2325);
        let mut f = Fnv::new();
        f.update(b"a");
        assert_eq!(f.0, 0xaf63_dc4c_8601_ec8c);
        let mut f = Fnv::new();
        f.update(b"foobar");
        assert_eq!(f.0, 0x85944171f73967e8);
    }

    #[test]
    fn checksum_ignores_its_own_field() {
        let mut a = vec![7u8; 128];
        let mut b = a.clone();
        a[CHECKSUM_OFF..CHECKSUM_OFF + 8].copy_from_slice(&[1; 8]);
        b[CHECKSUM_OFF..CHECKSUM_OFF + 8].copy_from_slice(&[2; 8]);
        assert_eq!(checksum_of(&a), checksum_of(&b));
        // ... but any byte outside it changes the sum.
        b[0] ^= 1;
        assert_ne!(checksum_of(&a), checksum_of(&b));
        *b.last_mut().unwrap() ^= 1;
        b[0] ^= 1;
        assert_ne!(checksum_of(&a), checksum_of(&b));
    }

    #[test]
    fn aligned_buf_is_eight_byte_aligned() {
        for len in [0usize, 1, 7, 8, 9, 64, 1000] {
            let buf = AlignedBuf::with_len(len);
            assert_eq!(buf.len(), len);
            assert_eq!(buf.bytes().len(), len);
            assert_eq!(buf.bytes().as_ptr() as usize % 8, 0, "len {len}");
        }
    }

    #[test]
    fn open_rejects_non_files_and_short_files() {
        let dir = std::env::temp_dir().join("segfile-test-short");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("short.seg");
        std::fs::write(&p, b"tiny").unwrap();
        assert!(matches!(open(&p), Err(SegFileError::Truncated)));
        let p2 = dir.join("badmagic.seg");
        std::fs::write(&p2, vec![0u8; 128]).unwrap();
        assert!(matches!(open(&p2), Err(SegFileError::BadMagic)));
        assert!(matches!(
            open(&dir.join("missing.seg")),
            Err(SegFileError::Io(_))
        ));
    }
}
