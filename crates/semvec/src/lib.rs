//! # semvec — deterministic semantic encoding and retrieval
//!
//! The paper encodes KG triples with Sentence-BERT and retrieves the
//! top-10 most cosine-similar KG triples per pseudo-triple. This crate
//! is the offline stand-in: a feature-hashing sentence encoder whose
//! cosine similarity preserves the ordering the pipeline needs
//! (same fact > related fact > unrelated), plus an exact top-k index.
//!
//! * [`token`] — tokenizer, stopwords, conservative stemmer, n-grams;
//! * [`synonym`] — folding of verbalisation variants (schema-agnostic);
//! * [`embed`] — the encoder (ℝ^256, signed feature hashing, L2-norm);
//! * [`entity`] — the alias-folding entity index: surface → entity
//!   folding, popularity priors, entity-scoped doc postings — the
//!   paper's two-step pruning as a candidate generator;
//! * [`index`] — flat exact top-k / threshold search;
//! * [`quant`] — struct-of-arrays storage with int8 scalar
//!   quantization and the bit-identical two-stage scoring engine;
//! * [`seg`] — the sharded index: fixed-size segments with per-segment
//!   quant shadows and postings, bit-identical to the flat engines;
//! * [`segfile`] — versioned, checksummed, zero-copy on-disk format
//!   for [`seg::SegmentedIndex`];
//! * [`verbalize`] — schema term humanisation for prompts and encoding.

#![warn(missing_docs)]

pub mod embed;
pub mod entity;
pub mod idf;
pub mod index;
pub mod inverted;
pub mod quant;
pub mod seg;
pub mod segfile;
pub mod synonym;
pub mod token;
pub mod verbalize;

pub use embed::{cosine, dot, dot_batch, l2_normalize, EmbedConfig, Embedder, Vector};
pub use entity::{
    minus_sorted, EntityBatchSlot, EntityIndex, FoldOutcome, ENTITY_DISJOINT_CEILING,
};
pub use idf::IdfModel;
pub use index::{Hit, NoisyQuery, TopK, VecIndex};
pub use inverted::{BatchSlot, HybridIndex, QueryStyle, DEFAULT_CEILING};
pub use quant::{
    dot_i8, dot_i8_batch, pair_error_bound, QuantQuery, QuantRows, ScreenStats, SoaStore,
};
pub use seg::{
    build_chunk_ranges, encode_doc, resolve_build_threads, SegmentedIndex, PARALLEL_BUILD_MIN_DOCS,
    SEG_ROWS_DEFAULT,
};
pub use segfile::SegFileError;
pub use synonym::SynonymTable;
pub use verbalize::{display_triple, humanize_term, verbalize_triple};
