//! Synonym folding: map verbalisation variants onto shared canonical
//! tokens so that, e.g., a pseudo-triple saying `born in` lands close to
//! a Wikidata triple saying `place of birth` and a Freebase triple
//! saying `/people/person/place_of_birth`.
//!
//! A real sentence encoder learns these equivalences from data; our
//! deterministic encoder gets them from a curated table. The table is
//! *schema-agnostic* — it maps English stems to English stems and knows
//! nothing about any particular KG, preserving the paper's
//! "independent of the KG schema" property.

use kgstore::hash::FxHashMap;

/// A token → canonical-token mapping applied after stemming.
#[derive(Debug, Clone, Default)]
pub struct SynonymTable {
    map: FxHashMap<String, String>,
}

impl SynonymTable {
    /// Empty table (no folding).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The built-in table covering the relation vocabulary the world
    /// generator and common QA phrasing use.
    pub fn builtin() -> Self {
        let mut t = Self::default();
        // groups: every token folds to the first element.
        const GROUPS: &[&[&str]] = &[
            &["birth", "born", "birthplace", "natal"],
            &["death", "die", "dy"], // "died"->"di"+"ed"? stem gives "di"; keep "dy" for "dying"
            &["locat", "situat", "posit", "place"],
            &["capital"],
            &["country", "nation", "state"],
            &["author", "writer", "wrote", "write", "written"],
            &["direct", "director", "film_direct"],
            &["spouse", "marry", "marri", "husband", "wife", "wed"],
            &["child", "son", "daughter", "offspring"],
            &["parent", "father", "mother"],
            &["found", "founder", "establish", "creat", "creator"],
            &["occupation", "profession", "job", "work"],
            &["genre", "style"],
            &[
                "educat",
                "school",
                "university",
                "study",
                "studi",
                "alma",
                "mater",
            ],
            &["employ", "employer", "company"],
            &["headquarter", "hq", "base"],
            &["area", "size", "extent"],
            &["height", "elevation", "tall", "altitude"],
            &["length", "long"],
            &["population", "inhabitant", "people"],
            &["flow", "discharge", "drain"],
            &["cover", "span", "cross", "extend"],
            &["border", "adjacent", "neighbor", "neighbour"],
            &["member", "belong", "part"],
            &["award", "prize", "honor", "honour", "won", "win"],
            &[
                "develop",
                "developer",
                "make",
                "made",
                "build",
                "built",
                "manufactur",
                "produc",
            ],
            &["use", "us", "utiliz", "employ"],
            &["chip", "processor", "cpu", "soc"],
            &["language", "tongue"],
            &["currency", "money"],
            &["religion", "faith"],
            &["citizen", "nationality", "citizenship"],
            &["instrument", "play"],
            &["label", "record"],
            &["team", "club"],
            &["league", "division"],
            &["sport", "game", "discipline"],
            &["paint", "painter", "painting"],
            &["compos", "composer", "music"],
            &["sing", "singer", "vocalist"],
            &["star", "act", "actor", "actress", "cast"],
            &["publish", "publisher", "release"],
            &["own", "owner", "possess"],
            &["lead", "led", "leader", "head", "chief", "ceo", "president"],
            &[
                "famous",
                "renown",
                "notabl",
                "known",
                "acknowledg",
                "pioneer",
                "trailblazer",
                "invent",
                "inventor",
            ],
        ];
        for group in GROUPS {
            let canon = group[0];
            for &word in group.iter() {
                t.map.insert(word.to_string(), canon.to_string());
            }
        }
        t
    }

    /// Add a custom synonym: `variant` folds to `canonical`.
    pub fn add(&mut self, variant: &str, canonical: &str) {
        self.map.insert(variant.to_string(), canonical.to_string());
    }

    /// Fold a (stemmed) token to its canonical form.
    pub fn fold<'a>(&'a self, tok: &'a str) -> &'a str {
        self.map.get(tok).map_or(tok, |s| s.as_str())
    }

    /// Number of mapped variants.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_folds_birth_variants() {
        let t = SynonymTable::builtin();
        assert_eq!(t.fold("born"), "birth");
        assert_eq!(t.fold("birthplace"), "birth");
        assert_eq!(t.fold("birth"), "birth");
    }

    #[test]
    fn unknown_tokens_pass_through() {
        let t = SynonymTable::builtin();
        assert_eq!(t.fold("shanghai"), "shanghai");
    }

    #[test]
    fn custom_additions_win() {
        let mut t = SynonymTable::empty();
        t.add("mid", "identifier");
        assert_eq!(t.fold("mid"), "identifier");
        assert_eq!(t.fold("qid"), "qid");
    }

    #[test]
    fn empty_table_is_identity() {
        let t = SynonymTable::empty();
        assert!(t.is_empty());
        assert_eq!(t.fold("born"), "born");
    }
}
