//! Exact top-k vector index.
//!
//! Per-question KG subsets (`G_base`) are a few thousand triples, so an
//! exact scan with a bounded min-heap is both simplest and fastest —
//! the struct-of-arrays store ([`SoaStore`]) keeps the scan
//! cache-friendly, and its int8 face drives the quantized screening
//! pass of [`VecIndex::top_k_noisy_quant`].

use crate::embed::dot;
use crate::quant::{QuantQuery, ScreenStats, SoaStore};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One query of a batched scan: the encoded vector plus the jitter salt
/// identifying it (see [`VecIndex::top_k_noisy`]). Batch entries take a
/// slice of these so every query keeps its own deterministic jitter
/// stream while sharing the block traversal.
#[derive(Debug, Clone, Copy)]
pub struct NoisyQuery<'a> {
    /// The encoded query vector (dimension must match the index).
    pub vector: &'a [f32],
    /// Per-query jitter salt (a hash of the query text).
    pub salt: u64,
}

/// A scored hit: payload index plus similarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Index of the vector in insertion order (caller maps to payloads).
    pub id: usize,
    /// Similarity score (dot product; cosine for unit-norm vectors).
    pub score: f32,
}

/// Heap entry ordered by score (min-heap via Reverse comparisons).
#[derive(Debug, Clone, Copy)]
struct HeapEntry(Hit);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.score == other.0.score && self.0.id == other.0.id
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the *worst* hit on
        // top so it can be evicted — worst = lowest score, and among
        // equal scores the highest id (so lower ids win ties, matching
        // a stable brute-force sort).
        other
            .0
            .score
            .partial_cmp(&self.0.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.0.id.cmp(&other.0.id))
    }
}

/// Bounded top-k selection: O(N log k) instead of the O(N log N) full
/// sort, producing the *same* hits in the same order as sorting every
/// scored document by (score desc, id asc) and truncating to k.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<HeapEntry>,
}

impl TopK {
    /// Selector keeping the best `k` hits.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offer one scored hit.
    pub fn offer(&mut self, hit: Hit) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(HeapEntry(hit));
        } else if let Some(worst) = self.heap.peek() {
            if hit.score > worst.0.score || (hit.score == worst.0.score && hit.id < worst.0.id) {
                self.heap.pop();
                self.heap.push(HeapEntry(hit));
            }
        }
    }

    /// The current k-th best hit (the eviction bound), once k hits have
    /// been offered. Any candidate that cannot beat this hit under the
    /// (score desc, id asc) order can be skipped without changing the
    /// final result.
    pub fn bound(&self) -> Option<Hit> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|e| e.0)
        }
    }

    /// Number of hits currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no hit has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Finish: the held hits, highest score first, ties by lower id.
    pub fn into_sorted(self) -> Vec<Hit> {
        let mut hits: Vec<Hit> = self.heap.into_iter().map(|e| e.0).collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        hits
    }
}

/// Append-only vector index with exact top-k search, backed by the
/// struct-of-arrays store (one flat f32 block + one flat int8 block,
/// row stride = dim).
#[derive(Debug, Clone, Default)]
pub struct VecIndex {
    store: SoaStore,
}

impl VecIndex {
    /// New index for vectors of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            store: SoaStore::new(dim),
        }
    }

    /// Build from an iterator of vectors.
    pub fn from_vectors<I: IntoIterator<Item = Vec<f32>>>(dim: usize, vecs: I) -> Self {
        let mut idx = Self::new(dim);
        for v in vecs {
            idx.add(&v);
        }
        idx
    }

    /// Append a vector; its id is its insertion order.
    pub fn add(&mut self, v: &[f32]) -> usize {
        self.store.push(v)
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The stored vector with a given id.
    pub fn vector(&self, id: usize) -> &[f32] {
        self.store.row(id)
    }

    /// The underlying struct-of-arrays store.
    pub fn store(&self) -> &SoaStore {
        &self.store
    }

    /// Exact top-k by dot product, highest score first. Deterministic:
    /// ties broken by lower id first.
    pub fn top_k(&self, query: &[f32], k: usize) -> Vec<Hit> {
        assert_eq!(query.len(), self.store.dim(), "dimension mismatch");
        if k == 0 || self.store.is_empty() {
            return Vec::new();
        }
        let mut top = TopK::new(k);
        for id in 0..self.store.len() {
            top.offer(Hit {
                id,
                score: dot(query, self.vector(id)),
            });
        }
        top.into_sorted()
    }

    /// The deterministic per-(query, doc) score jitter added by
    /// [`top_k_noisy`](VecIndex::top_k_noisy): uniform with standard
    /// deviation `sigma`, keyed on (salt, id). Exposed so pruned search
    /// paths can reproduce the exact-scan scores bit for bit.
    #[inline]
    pub fn jitter(salt: u64, id: usize, sigma: f32) -> f32 {
        Self::jitter_of(kgstore::hash::mix2(salt, id as u64), sigma)
    }

    /// [`jitter`](VecIndex::jitter) from the already mixed per-(salt,
    /// id) hash, so callers that pre-screen on the hash (the pruned
    /// search's suspect pass) reproduce the same bits without mixing
    /// twice.
    #[inline]
    pub fn jitter_of(hash: u64, sigma: f32) -> f32 {
        (kgstore::hash::unit_f64(hash) as f32 * 2.0 - 1.0) * sigma * 1.732
    }

    /// Exact top-k with deterministic per-(query, doc) score jitter.
    ///
    /// Dense retrieval at corpus scale does not rank by clean lexical
    /// overlap: hubness, paraphrase misalignment, and sheer competition
    /// make recall@k well below 1 even for "obvious" matches. A flat
    /// in-memory index cannot exhibit that, so the jitter injects it:
    /// every (query, document) pair gets a stable uniform perturbation
    /// of standard deviation `sigma` added to its score before ranking.
    /// `salt` must identify the query (e.g. a hash of its text).
    pub fn top_k_noisy(&self, query: &[f32], k: usize, sigma: f32, salt: u64) -> Vec<Hit> {
        assert_eq!(query.len(), self.store.dim(), "dimension mismatch");
        if sigma <= 0.0 {
            return self.top_k(query, k);
        }
        if k == 0 || self.store.is_empty() {
            return Vec::new();
        }
        let mut top = TopK::new(k);
        for id in 0..self.store.len() {
            top.offer(Hit {
                id,
                score: dot(query, self.vector(id)) + Self::jitter(salt, id, sigma),
            });
        }
        top.into_sorted()
    }

    /// [`top_k_noisy`](VecIndex::top_k_noisy) through the quantized
    /// two-stage engine: screen every document with the int8 kernel,
    /// then rerank with the exact f32 expression every document whose
    /// quantized score is within the per-pair error bound of the
    /// quantized k-th score. Returns hits **bit-identical** to the
    /// exact scan — same ids, same scores, same tie-break order — plus
    /// the screen/rerank counters.
    ///
    /// Why identical: let `B` bound `|exact − quantized|` per pair
    /// ([`crate::quant::pair_error_bound`]) and `θ̂` be the quantized
    /// k-th score. Any document with quantized score `< θ̂ − 2B` has
    /// exact score `< θ̂ − B`, while the k quantized-top documents all
    /// have exact score `≥ θ̂ − B` — so at least k documents beat every
    /// skipped one and the skipped ones cannot appear in the exact
    /// top-k. Everything inside the margin is re-scored with the same
    /// f32 expression the exact scan uses, and [`TopK`]'s total order
    /// (score desc, id asc) makes the kept set order-independent.
    pub fn top_k_noisy_quant(
        &self,
        query: &[f32],
        k: usize,
        sigma: f32,
        salt: u64,
    ) -> (Vec<Hit>, ScreenStats) {
        assert_eq!(query.len(), self.store.dim(), "dimension mismatch");
        let n = self.store.len();
        if k == 0 || n == 0 {
            return (Vec::new(), ScreenStats::default());
        }
        let sigma = sigma.max(0.0);
        let quant = self.store.quant();
        let qq = QuantQuery::new(query);
        let factor = qq.dequant_factor(quant);
        let bound = qq.error_bound(quant, self.store.dim());

        // Stage 1: int8 screen of every document — raw integer dots
        // batched over the whole block (one SIMD dispatch per scan),
        // then landed in f32 score space. The jitter is exact (a pure
        // function of one hash) in both stages, so it does not enter
        // the error bound.
        let mut raw = Vec::with_capacity(n);
        quant.dot_all(qq.row(), &mut raw);
        let mut screened = Vec::with_capacity(n);
        let mut quant_top = TopK::new(k);
        for (id, &d) in raw.iter().enumerate() {
            let mut s = d as f32 * factor;
            if sigma > 0.0 {
                s += Self::jitter(salt, id, sigma);
            }
            screened.push(s);
            quant_top.offer(Hit { id, score: s });
        }

        // Stage 2: exact f32 rerank of every document inside the
        // margin. With fewer than k documents everything reranks (the
        // exact scan would keep them all anyway).
        let margin = match quant_top.bound() {
            Some(kth) => kth.score as f64 - 2.0 * bound,
            None => f64::NEG_INFINITY,
        };
        let mut top = TopK::new(k);
        let mut reranked = 0u64;
        for (id, &s) in screened.iter().enumerate() {
            if (s as f64) < margin {
                continue;
            }
            reranked += 1;
            let mut score = dot(query, self.vector(id));
            if sigma > 0.0 {
                score += Self::jitter(salt, id, sigma);
            }
            top.offer(Hit { id, score });
        }
        (
            top.into_sorted(),
            ScreenStats {
                screened: n as u64,
                reranked,
            },
        )
    }

    /// [`top_k_noisy`](VecIndex::top_k_noisy) for a batch of queries in
    /// one query-tiled sweep over the f32 block
    /// ([`crate::embed::dot_batch`]), one [`TopK`] heap per query.
    /// Result `i` is bit-identical to `top_k_noisy(queries[i].vector,
    /// k, sigma, queries[i].salt)`: every (query, doc) pair runs the
    /// same float expression in the same per-query order — the tiling
    /// only changes *when* a pair is computed, and each heap only sees
    /// its own query's offers.
    pub fn top_k_noisy_batch(
        &self,
        queries: &[NoisyQuery<'_>],
        k: usize,
        sigma: f32,
    ) -> Vec<Vec<Hit>> {
        for q in queries {
            assert_eq!(q.vector.len(), self.store.dim(), "dimension mismatch");
        }
        if k == 0 || self.store.is_empty() {
            return vec![Vec::new(); queries.len()];
        }
        let refs: Vec<&[f32]> = queries.iter().map(|q| q.vector).collect();
        let mut dots: Vec<Vec<f32>> = vec![Vec::new(); queries.len()];
        self.store.dot_all_batch(&refs, &mut dots);
        queries
            .iter()
            .zip(&dots)
            .map(|(q, d)| {
                let mut top = TopK::new(k);
                for (id, &s) in d.iter().enumerate() {
                    let score = if sigma > 0.0 {
                        s + Self::jitter(q.salt, id, sigma)
                    } else {
                        s
                    };
                    top.offer(Hit { id, score });
                }
                top.into_sorted()
            })
            .collect()
    }

    /// [`top_k_noisy_quant`](VecIndex::top_k_noisy_quant) for a batch
    /// of queries: the int8 screen runs as one query-tiled sweep over
    /// the quantized block ([`crate::quant::dot_i8_batch`]), then each
    /// query's margin rerank proceeds exactly as in the sequential
    /// path. Result `i` — hits and counters — is bit-identical to the
    /// sequential call for query `i`: the raw integer dots are exact in
    /// any evaluation order, and everything downstream of them (f32
    /// landing, jitter, margin, rerank) is per-query state the batch
    /// never shares. Batching therefore also leaves each query's error
    /// bound untouched — the bound is a function of that query's scale
    /// and norm against the index, not of traversal order.
    pub fn top_k_noisy_quant_batch(
        &self,
        queries: &[NoisyQuery<'_>],
        k: usize,
        sigma: f32,
    ) -> Vec<(Vec<Hit>, ScreenStats)> {
        for q in queries {
            assert_eq!(q.vector.len(), self.store.dim(), "dimension mismatch");
        }
        let n = self.store.len();
        if k == 0 || n == 0 {
            return vec![(Vec::new(), ScreenStats::default()); queries.len()];
        }
        let sigma = sigma.max(0.0);
        let quant = self.store.quant();
        let qqs: Vec<QuantQuery> = queries.iter().map(|q| QuantQuery::new(q.vector)).collect();
        let qrows: Vec<&[i8]> = qqs.iter().map(|qq| qq.row()).collect();
        let mut raw: Vec<Vec<i32>> = vec![Vec::new(); queries.len()];
        quant.dot_all_batch(&qrows, &mut raw);
        queries
            .iter()
            .zip(qqs.iter().zip(&raw))
            .map(|(q, (qq, raw))| {
                let factor = qq.dequant_factor(quant);
                let bound = qq.error_bound(quant, self.store.dim());
                let mut screened = Vec::with_capacity(n);
                let mut quant_top = TopK::new(k);
                for (id, &d) in raw.iter().enumerate() {
                    let mut s = d as f32 * factor;
                    if sigma > 0.0 {
                        s += Self::jitter(q.salt, id, sigma);
                    }
                    screened.push(s);
                    quant_top.offer(Hit { id, score: s });
                }
                let margin = match quant_top.bound() {
                    Some(kth) => kth.score as f64 - 2.0 * bound,
                    None => f64::NEG_INFINITY,
                };
                let mut top = TopK::new(k);
                let mut reranked = 0u64;
                for (id, &s) in screened.iter().enumerate() {
                    if (s as f64) < margin {
                        continue;
                    }
                    reranked += 1;
                    let mut score = dot(q.vector, self.vector(id));
                    if sigma > 0.0 {
                        score += Self::jitter(q.salt, id, sigma);
                    }
                    top.offer(Hit { id, score });
                }
                (
                    top.into_sorted(),
                    ScreenStats {
                        screened: n as u64,
                        reranked,
                    },
                )
            })
            .collect()
    }

    /// All hits with score ≥ `threshold`, highest first.
    pub fn above_threshold(&self, query: &[f32], threshold: f32) -> Vec<Hit> {
        let mut hits: Vec<Hit> = (0..self.store.len())
            .filter_map(|id| {
                let score = dot(query, self.vector(id));
                (score >= threshold).then_some(Hit { id, score })
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(v: Vec<f32>) -> Vec<f32> {
        let mut v = v;
        crate::embed::l2_normalize(&mut v);
        v
    }

    fn sample() -> VecIndex {
        VecIndex::from_vectors(
            3,
            vec![
                unit(vec![1.0, 0.0, 0.0]),
                unit(vec![0.0, 1.0, 0.0]),
                unit(vec![1.0, 1.0, 0.0]),
                unit(vec![0.0, 0.0, 1.0]),
            ],
        )
    }

    #[test]
    fn top_k_orders_by_similarity() {
        let idx = sample();
        let q = unit(vec![1.0, 0.1, 0.0]);
        let hits = idx.top_k(&q, 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 2);
        assert!(hits[0].score >= hits[1].score);
    }

    #[test]
    fn top_k_more_than_len_returns_all() {
        let idx = sample();
        let hits = idx.top_k(&unit(vec![1.0, 1.0, 1.0]), 10);
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn top_k_zero_is_empty() {
        let idx = sample();
        assert!(idx.top_k(&unit(vec![1.0, 0.0, 0.0]), 0).is_empty());
    }

    #[test]
    fn ties_break_by_lower_id() {
        let idx = VecIndex::from_vectors(
            2,
            vec![
                unit(vec![1.0, 0.0]),
                unit(vec![1.0, 0.0]),
                unit(vec![1.0, 0.0]),
            ],
        );
        let hits = idx.top_k(&unit(vec![1.0, 0.0]), 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 1);
    }

    #[test]
    fn noisy_top_k_is_deterministic_and_reranks() {
        let vecs: Vec<Vec<f32>> = (0..50)
            .map(|i| unit(vec![1.0, i as f32 * 0.01, 0.0]))
            .collect();
        let idx = VecIndex::from_vectors(3, vecs);
        let q = unit(vec![1.0, 0.5, 0.0]);
        let clean = idx.top_k(&q, 5);
        let a = idx.top_k_noisy(&q, 5, 0.2, 42);
        let b = idx.top_k_noisy(&q, 5, 0.2, 42);
        assert_eq!(a, b, "same salt → same ranking");
        let c = idx.top_k_noisy(&q, 5, 0.2, 43);
        assert_ne!(a, c, "different salt → different ranking (w.h.p.)");
        assert_ne!(
            a.iter().map(|h| h.id).collect::<Vec<_>>(),
            clean.iter().map(|h| h.id).collect::<Vec<_>>(),
            "jitter should perturb the clean ranking (w.h.p.)"
        );
        // sigma == 0 falls back to the exact ranking.
        assert_eq!(idx.top_k_noisy(&q, 5, 0.0, 42), clean);
    }

    #[test]
    fn above_threshold_filters() {
        let idx = sample();
        let q = unit(vec![1.0, 0.0, 0.0]);
        let hits = idx.above_threshold(&q, 0.9);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 0);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = VecIndex::new(4);
        assert!(idx.top_k(&[0.0; 4], 5).is_empty());
        assert!(idx.is_empty());
        let (hits, stats) = idx.top_k_noisy_quant(&[0.0; 4], 5, 0.3, 1);
        assert!(hits.is_empty());
        assert_eq!(stats, crate::quant::ScreenStats::default());
    }

    #[test]
    fn quantized_top_k_is_bit_identical_to_exact() {
        // Dense cluster of near-parallel vectors: quantized ordering
        // alone would get these wrong, the rerank must fix them.
        let vecs: Vec<Vec<f32>> = (0..200)
            .map(|i| unit(vec![1.0, i as f32 * 1e-3, (i % 7) as f32 * 1e-3]))
            .collect();
        let idx = VecIndex::from_vectors(3, vecs);
        let q = unit(vec![1.0, 0.05, 0.02]);
        for (sigma, salt) in [(0.0f32, 0u64), (0.3, 42), (0.6, 7)] {
            let exact = idx.top_k_noisy(&q, 10, sigma, salt);
            let (quant, stats) = idx.top_k_noisy_quant(&q, 10, sigma, salt);
            assert_eq!(quant, exact, "sigma {sigma} salt {salt}");
            assert_eq!(stats.screened, 200);
            assert!(stats.reranked >= 10, "margin must cover the top-k");
        }
    }

    #[test]
    fn quantized_top_k_handles_ties_and_small_indexes() {
        let idx = VecIndex::from_vectors(
            2,
            vec![
                unit(vec![1.0, 0.0]),
                unit(vec![1.0, 0.0]),
                unit(vec![1.0, 0.0]),
            ],
        );
        let q = unit(vec![1.0, 0.0]);
        // Ties break by lower id, k > len returns all, like the exact.
        let (hits, _) = idx.top_k_noisy_quant(&q, 2, 0.0, 0);
        assert_eq!(hits, idx.top_k(&q, 2));
        let (all, _) = idx.top_k_noisy_quant(&q, 10, 0.0, 0);
        assert_eq!(all, idx.top_k(&q, 10));
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn quantized_top_k_on_zero_vectors() {
        let idx = VecIndex::from_vectors(2, vec![vec![0.0, 0.0]; 4]);
        let q = vec![0.0, 0.0];
        for sigma in [0.0f32, 0.3] {
            let (hits, _) = idx.top_k_noisy_quant(&q, 2, sigma, 5);
            assert_eq!(hits, idx.top_k_noisy(&q, 2, sigma, 5));
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn add_checks_dims() {
        VecIndex::new(3).add(&[1.0, 2.0]);
    }

    #[test]
    fn batched_top_k_matches_sequential_per_query() {
        let vecs: Vec<Vec<f32>> = (0..120)
            .map(|i| unit(vec![1.0, i as f32 * 2e-3, (i % 5) as f32 * 3e-3]))
            .collect();
        let idx = VecIndex::from_vectors(3, vecs.clone());
        // Mixed batch with a duplicate (same vector *and* salt) slot.
        let picks = [3usize, 40, 3, 99, 7];
        let queries: Vec<NoisyQuery> = picks
            .iter()
            .map(|&i| NoisyQuery {
                vector: &vecs[i],
                salt: if i == 3 { 11 } else { i as u64 },
            })
            .collect();
        for sigma in [0.0f32, 0.3] {
            let exact = idx.top_k_noisy_batch(&queries, 10, sigma);
            let quant = idx.top_k_noisy_quant_batch(&queries, 10, sigma);
            for (slot, q) in queries.iter().enumerate() {
                let seq = idx.top_k_noisy(q.vector, 10, sigma, q.salt);
                assert_eq!(exact[slot], seq, "exact slot {slot} sigma {sigma}");
                let (seq_q, seq_stats) = idx.top_k_noisy_quant(q.vector, 10, sigma, q.salt);
                assert_eq!(quant[slot].0, seq_q, "quant slot {slot} sigma {sigma}");
                assert_eq!(quant[slot].1, seq_stats, "stats slot {slot} sigma {sigma}");
            }
            // Duplicate slots fan out the same hits.
            assert_eq!(exact[0], exact[2]);
            assert_eq!(quant[0], quant[2]);
        }
    }

    #[test]
    fn batched_top_k_edge_batches() {
        let idx = sample();
        let q = unit(vec![1.0, 0.1, 0.0]);
        // Empty batch.
        assert!(idx.top_k_noisy_batch(&[], 3, 0.3).is_empty());
        assert!(idx.top_k_noisy_quant_batch(&[], 3, 0.3).is_empty());
        // Singleton batch equals the sequential scan.
        let one = [NoisyQuery {
            vector: &q,
            salt: 42,
        }];
        assert_eq!(
            idx.top_k_noisy_batch(&one, 3, 0.3),
            vec![idx.top_k_noisy(&q, 3, 0.3, 42)]
        );
        // k == 0 and empty index return empty per slot.
        assert_eq!(idx.top_k_noisy_batch(&one, 0, 0.3), vec![Vec::new()]);
        let empty = VecIndex::new(3);
        let (hits, stats) = &empty.top_k_noisy_quant_batch(&one, 3, 0.3)[0];
        assert!(hits.is_empty());
        assert_eq!(*stats, crate::quant::ScreenStats::default());
    }
}
