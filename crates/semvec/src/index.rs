//! Exact top-k vector index.
//!
//! Per-question KG subsets (`G_base`) are a few thousand triples, so an
//! exact scan with a bounded min-heap is both simplest and fastest —
//! flat storage keeps the scan cache-friendly.

use crate::embed::dot;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scored hit: payload index plus similarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Index of the vector in insertion order (caller maps to payloads).
    pub id: usize,
    /// Similarity score (dot product; cosine for unit-norm vectors).
    pub score: f32,
}

/// Heap entry ordered by score (min-heap via Reverse comparisons).
#[derive(Debug, Clone, Copy)]
struct HeapEntry(Hit);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.score == other.0.score && self.0.id == other.0.id
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the *worst* hit on
        // top so it can be evicted — worst = lowest score, and among
        // equal scores the highest id (so lower ids win ties, matching
        // a stable brute-force sort).
        other
            .0
            .score
            .partial_cmp(&self.0.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.0.id.cmp(&other.0.id))
    }
}

/// Bounded top-k selection: O(N log k) instead of the O(N log N) full
/// sort, producing the *same* hits in the same order as sorting every
/// scored document by (score desc, id asc) and truncating to k.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<HeapEntry>,
}

impl TopK {
    /// Selector keeping the best `k` hits.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offer one scored hit.
    pub fn offer(&mut self, hit: Hit) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(HeapEntry(hit));
        } else if let Some(worst) = self.heap.peek() {
            if hit.score > worst.0.score || (hit.score == worst.0.score && hit.id < worst.0.id) {
                self.heap.pop();
                self.heap.push(HeapEntry(hit));
            }
        }
    }

    /// The current k-th best hit (the eviction bound), once k hits have
    /// been offered. Any candidate that cannot beat this hit under the
    /// (score desc, id asc) order can be skipped without changing the
    /// final result.
    pub fn bound(&self) -> Option<Hit> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|e| e.0)
        }
    }

    /// Number of hits currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no hit has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Finish: the held hits, highest score first, ties by lower id.
    pub fn into_sorted(self) -> Vec<Hit> {
        let mut hits: Vec<Hit> = self.heap.into_iter().map(|e| e.0).collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        hits
    }
}

/// Flat, append-only vector index with exact top-k search.
#[derive(Debug, Clone, Default)]
pub struct VecIndex {
    dim: usize,
    data: Vec<f32>,
    len: usize,
}

impl VecIndex {
    /// New index for vectors of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0);
        Self {
            dim,
            data: Vec::new(),
            len: 0,
        }
    }

    /// Build from an iterator of vectors.
    pub fn from_vectors<I: IntoIterator<Item = Vec<f32>>>(dim: usize, vecs: I) -> Self {
        let mut idx = Self::new(dim);
        for v in vecs {
            idx.add(&v);
        }
        idx
    }

    /// Append a vector; its id is its insertion order.
    pub fn add(&mut self, v: &[f32]) -> usize {
        assert_eq!(v.len(), self.dim, "dimension mismatch");
        self.data.extend_from_slice(v);
        self.len += 1;
        self.len - 1
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The stored vector with a given id.
    pub fn vector(&self, id: usize) -> &[f32] {
        &self.data[id * self.dim..(id + 1) * self.dim]
    }

    /// Exact top-k by dot product, highest score first. Deterministic:
    /// ties broken by lower id first.
    pub fn top_k(&self, query: &[f32], k: usize) -> Vec<Hit> {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        if k == 0 || self.len == 0 {
            return Vec::new();
        }
        let mut top = TopK::new(k);
        for id in 0..self.len {
            top.offer(Hit {
                id,
                score: dot(query, self.vector(id)),
            });
        }
        top.into_sorted()
    }

    /// The deterministic per-(query, doc) score jitter added by
    /// [`top_k_noisy`](VecIndex::top_k_noisy): uniform with standard
    /// deviation `sigma`, keyed on (salt, id). Exposed so pruned search
    /// paths can reproduce the exact-scan scores bit for bit.
    #[inline]
    pub fn jitter(salt: u64, id: usize, sigma: f32) -> f32 {
        Self::jitter_of(kgstore::hash::mix2(salt, id as u64), sigma)
    }

    /// [`jitter`](VecIndex::jitter) from the already mixed per-(salt,
    /// id) hash, so callers that pre-screen on the hash (the pruned
    /// search's suspect pass) reproduce the same bits without mixing
    /// twice.
    #[inline]
    pub fn jitter_of(hash: u64, sigma: f32) -> f32 {
        (kgstore::hash::unit_f64(hash) as f32 * 2.0 - 1.0) * sigma * 1.732
    }

    /// Exact top-k with deterministic per-(query, doc) score jitter.
    ///
    /// Dense retrieval at corpus scale does not rank by clean lexical
    /// overlap: hubness, paraphrase misalignment, and sheer competition
    /// make recall@k well below 1 even for "obvious" matches. A flat
    /// in-memory index cannot exhibit that, so the jitter injects it:
    /// every (query, document) pair gets a stable uniform perturbation
    /// of standard deviation `sigma` added to its score before ranking.
    /// `salt` must identify the query (e.g. a hash of its text).
    pub fn top_k_noisy(&self, query: &[f32], k: usize, sigma: f32, salt: u64) -> Vec<Hit> {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        if sigma <= 0.0 {
            return self.top_k(query, k);
        }
        if k == 0 || self.len == 0 {
            return Vec::new();
        }
        let mut top = TopK::new(k);
        for id in 0..self.len {
            top.offer(Hit {
                id,
                score: dot(query, self.vector(id)) + Self::jitter(salt, id, sigma),
            });
        }
        top.into_sorted()
    }

    /// All hits with score ≥ `threshold`, highest first.
    pub fn above_threshold(&self, query: &[f32], threshold: f32) -> Vec<Hit> {
        let mut hits: Vec<Hit> = (0..self.len)
            .filter_map(|id| {
                let score = dot(query, self.vector(id));
                (score >= threshold).then_some(Hit { id, score })
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(v: Vec<f32>) -> Vec<f32> {
        let mut v = v;
        crate::embed::l2_normalize(&mut v);
        v
    }

    fn sample() -> VecIndex {
        VecIndex::from_vectors(
            3,
            vec![
                unit(vec![1.0, 0.0, 0.0]),
                unit(vec![0.0, 1.0, 0.0]),
                unit(vec![1.0, 1.0, 0.0]),
                unit(vec![0.0, 0.0, 1.0]),
            ],
        )
    }

    #[test]
    fn top_k_orders_by_similarity() {
        let idx = sample();
        let q = unit(vec![1.0, 0.1, 0.0]);
        let hits = idx.top_k(&q, 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 2);
        assert!(hits[0].score >= hits[1].score);
    }

    #[test]
    fn top_k_more_than_len_returns_all() {
        let idx = sample();
        let hits = idx.top_k(&unit(vec![1.0, 1.0, 1.0]), 10);
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn top_k_zero_is_empty() {
        let idx = sample();
        assert!(idx.top_k(&unit(vec![1.0, 0.0, 0.0]), 0).is_empty());
    }

    #[test]
    fn ties_break_by_lower_id() {
        let idx = VecIndex::from_vectors(
            2,
            vec![
                unit(vec![1.0, 0.0]),
                unit(vec![1.0, 0.0]),
                unit(vec![1.0, 0.0]),
            ],
        );
        let hits = idx.top_k(&unit(vec![1.0, 0.0]), 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 1);
    }

    #[test]
    fn noisy_top_k_is_deterministic_and_reranks() {
        let vecs: Vec<Vec<f32>> = (0..50)
            .map(|i| unit(vec![1.0, i as f32 * 0.01, 0.0]))
            .collect();
        let idx = VecIndex::from_vectors(3, vecs);
        let q = unit(vec![1.0, 0.5, 0.0]);
        let clean = idx.top_k(&q, 5);
        let a = idx.top_k_noisy(&q, 5, 0.2, 42);
        let b = idx.top_k_noisy(&q, 5, 0.2, 42);
        assert_eq!(a, b, "same salt → same ranking");
        let c = idx.top_k_noisy(&q, 5, 0.2, 43);
        assert_ne!(a, c, "different salt → different ranking (w.h.p.)");
        assert_ne!(
            a.iter().map(|h| h.id).collect::<Vec<_>>(),
            clean.iter().map(|h| h.id).collect::<Vec<_>>(),
            "jitter should perturb the clean ranking (w.h.p.)"
        );
        // sigma == 0 falls back to the exact ranking.
        assert_eq!(idx.top_k_noisy(&q, 5, 0.0, 42), clean);
    }

    #[test]
    fn above_threshold_filters() {
        let idx = sample();
        let q = unit(vec![1.0, 0.0, 0.0]);
        let hits = idx.above_threshold(&q, 0.9);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 0);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = VecIndex::new(4);
        assert!(idx.top_k(&[0.0; 4], 5).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn add_checks_dims() {
        VecIndex::new(3).add(&[1.0, 2.0]);
    }
}
