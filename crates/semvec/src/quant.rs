//! Struct-of-arrays vector storage with int8 scalar quantization.
//!
//! The scoring hot loop of retrieval is a dot product per (query,
//! document) pair. This module holds the document vectors in one
//! contiguous struct-of-arrays block — a single flat `Vec<f32>` with
//! row stride `dim`, plus a single flat `Vec<i8>` holding the same rows
//! symmetrically quantized against one per-index scale — so a scan
//! walks two dense arrays instead of chasing per-document heap
//! allocations, and the screening pass runs on 1-byte lanes the
//! autovectorizer widens to i32.
//!
//! **Exactness contract.** Quantization is lossy, so a quantized score
//! alone may not rank documents the way the exact f32 scan does. The
//! two-stage top-k ([`crate::VecIndex::top_k_noisy_quant`]) therefore
//! screens every document with the int8 kernel and then *reranks* with
//! the exact f32 path every document whose quantized score lands within
//! a provable per-pair error bound of the quantized k-th score. The
//! bound ([`pair_error_bound`], derivation below) guarantees the final
//! top-k — ids, scores, and tie-break order — is bit-identical to the
//! exact scan.
//!
//! **Error-bound derivation.** Write a vector `x` and its dequantized
//! form `x̂ = s·q` (scale `s`, int8 row `q`). Rounding gives a
//! per-component error of at most `s/2`, so `‖x − x̂‖₂ ≤ (s/2)·√d`.
//! For a query `x` (scale `s_q`) against a stored row `y` (index scale
//! `s_y`):
//!
//! ```text
//! |x·y − x̂·ŷ| = |(x − x̂)·y + x̂·(y − ŷ)|
//!             ≤ ‖x − x̂‖·‖y‖ + ‖x̂‖·‖y − ŷ‖
//!             ≤ e_q·max‖y‖ + (‖x‖ + e_q)·e_y
//! ```
//!
//! with `e_q = (s_q/2)·√d` and `e_y = (s_y/2)·√d`. The bound is
//! computed in f64 and padded (relative 1e-3, absolute 1e-4) so that
//! the f32 rounding of the exact dot, of the scale multiply, and of the
//! quantization divides is covered with orders of magnitude to spare —
//! padding can only *widen* the rerank margin, never break exactness.
//! Property tests assert the padded bound is never violated.

use std::sync::OnceLock;

/// How many i32 accumulator lanes the integer kernel carries. Sixteen
/// independent sums of i16 products autovectorize to widening
/// multiply-add on any SIMD target; any i8·i8 product fits i16
/// (|−128·−128| = 16384 < 2¹⁵) and an i32 lane overflows only past
/// ~10⁶ dimensions — far beyond any embedding here.
const I8_LANES: usize = 16;

/// The kernel body, shared by the dispatched variants below: identical
/// integer arithmetic, so every variant returns the same value to the
/// bit — dispatch only changes codegen.
#[inline]
fn dot_i8_body(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let split = a.len() - a.len() % I8_LANES;
    let mut acc = [0i32; I8_LANES];
    for (ca, cb) in a[..split]
        .chunks_exact(I8_LANES)
        .zip(b[..split].chunks_exact(I8_LANES))
    {
        for j in 0..I8_LANES {
            acc[j] += (ca[j] as i16 * cb[j] as i16) as i32;
        }
    }
    let mut sum: i32 = acc.iter().sum();
    for (x, y) in a[split..].iter().zip(&b[split..]) {
        sum += *x as i32 * *y as i32;
    }
    sum
}

/// AVX2 instantiation of the kernel body. The baseline x86-64 target
/// (SSE2) cannot vectorize the widening i8 multiply profitably, so
/// without this the integer screen barely beats the f32 scan; with it
/// the body compiles to 256-bit widening multiply-adds (~2.5× the f32
/// kernel at dim 256, measured in the perf bench).
///
/// # Safety
/// Caller must have verified AVX2 support at runtime
/// (`is_x86_feature_detected!("avx2")`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
    dot_i8_body(a, b)
}

/// Chunked integer dot product over int8 rows, accumulated in i32.
/// The screening kernel of the two-stage top-k. Runtime-dispatched to
/// an AVX2 build of the same arithmetic where the CPU supports it
/// (the detection result is cached by the stdlib, so the check is one
/// atomic load per call).
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the avx2 feature was just verified at runtime.
            return unsafe { dot_i8_avx2(a, b) };
        }
    }
    dot_i8_body(a, b)
}

/// One query row against every stored row of a flat i8 block,
/// appending the raw integer dots to `out`. Same arithmetic as
/// [`dot_i8`] row by row; the batch shape exists so the feature
/// dispatch happens once per *scan* instead of once per pair, and so
/// the kernel body inlines into the row loop with the query resident.
#[inline]
fn dot_i8_block_body(query: &[i8], rows: &[i8], dim: usize, out: &mut Vec<i32>) {
    debug_assert_eq!(query.len(), dim);
    debug_assert_eq!(rows.len() % dim.max(1), 0);
    out.extend(rows.chunks_exact(dim).map(|row| dot_i8_body(query, row)));
}

/// AVX2 instantiation of the block screen (see [`dot_i8_avx2`]).
///
/// # Safety
/// Caller must have verified AVX2 support at runtime
/// (`is_x86_feature_detected!("avx2")`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_block_avx2(query: &[i8], rows: &[i8], dim: usize, out: &mut Vec<i32>) {
    dot_i8_block_body(query, rows, dim, out);
}

/// Runtime-dispatched batch screen over a flat i8 block.
#[inline]
pub(crate) fn dot_i8_block(query: &[i8], rows: &[i8], dim: usize, out: &mut Vec<i32>) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the avx2 feature was just verified at runtime.
            unsafe { dot_i8_block_avx2(query, rows, dim, out) };
            return;
        }
    }
    dot_i8_block_body(query, rows, dim, out);
}

/// How many queries one register tile of the batched kernels carries.
/// Four ymm accumulators (one per query) plus the two widened halves of
/// the shared row load and a pmaddwd temporary stay comfortably inside
/// the sixteen AVX2 vector registers, so each document chunk pulled
/// from memory is multiplied into four queries before it leaves them.
const QUERY_TILE: usize = 4;

/// Bytes of document rows per cache tile of the batched kernels. A tile
/// this size stays L1-resident while every query of the batch passes
/// over it, so the single-query pattern of re-streaming the whole block
/// per query becomes one stream shared by the batch.
const TILE_BYTES: usize = 16 * 1024;

/// Rows per cache tile for a given row stride in bytes (at least one).
#[inline]
fn rows_per_tile(row_bytes: usize) -> usize {
    (TILE_BYTES / row_bytes.max(1)).max(1)
}

/// The batched-screen body (and the non-AVX2 fallback): T query rows ×
/// one flat i8 block, appending each query's raw integer dots to its
/// `out` vector in row order. Cache-tiled over document chunks — each
/// chunk is walked by every query of the batch while it is still
/// cache-resident — with each (query, row) pair running [`dot_i8_body`]
/// itself, so each `out[q]` is exactly what [`dot_i8_block_body`] would
/// have produced for that query alone.
fn dot_i8_batch_body(queries: &[&[i8]], rows: &[i8], dim: usize, out: &mut [Vec<i32>]) {
    debug_assert_eq!(queries.len(), out.len());
    if dim == 0 || queries.is_empty() {
        return;
    }
    debug_assert_eq!(rows.len() % dim, 0);
    let tile_elems = rows_per_tile(dim) * dim;
    let mut start = 0;
    while start < rows.len() {
        let tile = &rows[start..rows.len().min(start + tile_elems)];
        for (query, o) in queries.iter().zip(out.iter_mut()) {
            o.extend(tile.chunks_exact(dim).map(|row| dot_i8_body(query, row)));
        }
        start += tile_elems;
    }
}

/// Width of the explicit AVX2 inner step: one 256-bit row load, widened
/// to two ymm of i16 lanes for the pmaddwd multiply-adds.
#[cfg(target_arch = "x86_64")]
const AVX2_CHUNK: usize = 32;

/// One document row against [`QUERY_TILE`] pre-widened query rows — the
/// register tile of the AVX2 batched screen. The row chunk is loaded
/// and sign-extended to i16 once, then multiply-added (pmaddwd) into
/// one i32 ymm accumulator per query. Every product and sum is exact
/// integer arithmetic (any i8·i8 pair sum fits i32 with room to spare:
/// two products ≤ 2·2¹⁴ per pmaddwd lane, and a lane accumulates
/// dim/2 of them), so the returned dots equal [`dot_i8_body`]'s bit for
/// bit — only the association of the additions differs, which integers
/// cannot observe.
///
/// # Safety
/// Requires AVX2 (caller dispatches), `split % AVX2_CHUNK == 0`,
/// `split <= row.len()`, and every `wide[t]` at least `split` i16 long.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn dot_i8_row_x4_avx2(
    wide: [&[i16]; QUERY_TILE],
    qs: [&[i8]; QUERY_TILE],
    row: &[i8],
    split: usize,
) -> [i32; QUERY_TILE] {
    use std::arch::x86_64::*;
    // SAFETY: guaranteed by this fn's `# Safety` contract — AVX2 is
    // enabled, `split` is a multiple of AVX2_CHUNK no longer than the
    // row, and every `wide[t]` holds at least `split` i16 elements, so
    // all 256-bit loads stay in bounds.
    unsafe {
        let mut acc = [_mm256_setzero_si256(); QUERY_TILE];
        let mut i = 0;
        while i < split {
            let r = _mm256_loadu_si256(row.as_ptr().add(i) as *const __m256i);
            let rlo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(r));
            let rhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256::<1>(r));
            for t in 0..QUERY_TILE {
                let qlo = _mm256_loadu_si256(wide[t].as_ptr().add(i) as *const __m256i);
                let qhi = _mm256_loadu_si256(wide[t].as_ptr().add(i + 16) as *const __m256i);
                acc[t] = _mm256_add_epi32(acc[t], _mm256_madd_epi16(rlo, qlo));
                acc[t] = _mm256_add_epi32(acc[t], _mm256_madd_epi16(rhi, qhi));
            }
            i += AVX2_CHUNK;
        }
        let mut dots = [0i32; QUERY_TILE];
        for t in 0..QUERY_TILE {
            let lo = _mm256_castsi256_si128(acc[t]);
            let hi = _mm256_extracti128_si256::<1>(acc[t]);
            let s = _mm_add_epi32(lo, hi);
            let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b0100_1110>(s));
            let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b1011_0001>(s));
            let mut sum = _mm_cvtsi128_si32(s);
            for (x, y) in qs[t][split..].iter().zip(&row[split..]) {
                sum += *x as i32 * *y as i32;
            }
            dots[t] = sum;
        }
        dots
    }
}

/// AVX2 batched screen: the vectorizable prefix of every query is
/// sign-extended to i16 once up front, then document tiles are walked
/// in register groups of [`QUERY_TILE`] queries via
/// [`dot_i8_row_x4_avx2`]; a trailing group of fewer queries falls
/// through to the shared scalar body per row. Integer arithmetic
/// throughout, so the output is bit-identical to
/// [`dot_i8_batch_body`]'s.
///
/// # Safety
/// Caller must have verified AVX2 support at runtime
/// (`is_x86_feature_detected!("avx2")`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_batch_avx2(queries: &[&[i8]], rows: &[i8], dim: usize, out: &mut [Vec<i32>]) {
    debug_assert_eq!(queries.len(), out.len());
    if dim == 0 || queries.is_empty() {
        return;
    }
    debug_assert_eq!(rows.len() % dim, 0);
    let split = dim - dim % AVX2_CHUNK;
    let mut wide: Vec<i16> = Vec::with_capacity(queries.len() * split);
    for q in queries {
        wide.extend(q[..split].iter().map(|&x| x as i16));
    }
    let tile_elems = rows_per_tile(dim) * dim;
    let mut start = 0;
    while start < rows.len() {
        let tile = &rows[start..rows.len().min(start + tile_elems)];
        let mut g = 0;
        while g + QUERY_TILE <= queries.len() {
            let w = [
                &wide[g * split..(g + 1) * split],
                &wide[(g + 1) * split..(g + 2) * split],
                &wide[(g + 2) * split..(g + 3) * split],
                &wide[(g + 3) * split..(g + 4) * split],
            ];
            let qs = [queries[g], queries[g + 1], queries[g + 2], queries[g + 3]];
            for row in tile.chunks_exact(dim) {
                // SAFETY: AVX2 verified by the dispatcher; split is a
                // multiple of AVX2_CHUNK, no longer than the row, and
                // each w[t] slice is exactly split elements.
                let d = unsafe { dot_i8_row_x4_avx2(w, qs, row, split) };
                for t in 0..QUERY_TILE {
                    out[g + t].push(d[t]);
                }
            }
            g += QUERY_TILE;
        }
        for t in g..queries.len() {
            let query = queries[t];
            out[t].extend(tile.chunks_exact(dim).map(|row| dot_i8_body(query, row)));
        }
        start += tile_elems;
    }
}

/// Query-tiled batch screen: every query of the batch against every row
/// of a flat i8 block, each query's raw dots appended to its `out`
/// vector in row order. Runtime-dispatched to the explicit AVX2 kernel
/// like [`dot_i8`]; bit-identical per query to scanning with [`dot_i8`]
/// row by row (integer arithmetic is exact in any order — the tiling
/// only reorders which pair is computed when, and pmaddwd only
/// re-associates the additions).
pub fn dot_i8_batch(queries: &[&[i8]], rows: &[i8], dim: usize, out: &mut [Vec<i32>]) {
    assert_eq!(queries.len(), out.len(), "one output vec per query");
    for q in queries {
        assert_eq!(q.len(), dim, "dimension mismatch");
    }
    if queries.len() == 1 {
        // A batch of one gains nothing from cache tiling (there is no
        // second query to share a tile with) but still pays the tile
        // bookkeeping; route it to the sequential block kernel, which
        // computes the exact same integer dots.
        dot_i8_block(queries[0], rows, dim, &mut out[0]);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the avx2 feature was just verified at runtime.
            unsafe { dot_i8_batch_avx2(queries, rows, dim, out) };
            return;
        }
    }
    dot_i8_batch_body(queries, rows, dim, out);
}

/// Symmetric int8 quantization of one f32 slice against a given scale:
/// `q = round(x / scale)` clamped to `[-127, 127]`. A zero scale (the
/// all-zero corpus) quantizes everything to zero.
fn quantize_into(src: &[f32], scale: f32, out: &mut Vec<i8>) {
    if scale == 0.0 {
        out.extend(std::iter::repeat_n(0i8, src.len()));
        return;
    }
    out.extend(
        src.iter()
            .map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8),
    );
}

/// Largest absolute component of a slice.
fn max_abs(v: &[f32]) -> f32 {
    v.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

/// The quantized face of a [`SoaStore`]: one flat `Vec<i8>` sharing the
/// f32 block's row stride, the per-index symmetric scale it was
/// quantized with, and the largest row norm (a term of the error
/// bound). Built lazily on first quantized search and invalidated by
/// any append.
#[derive(Debug, Clone)]
pub struct QuantRows {
    scale: f32,
    max_norm: f32,
    data: Vec<i8>,
    dim: usize,
}

/// Quantize a flat f32 block against its own symmetric scale, exactly
/// as [`QuantRows::build`] does: returns the int8 block, the scale
/// (`max |x| / 127`), and the largest row L2 norm. Shared with the
/// segmented store so a per-segment quant shadow is bit-identical to
/// what a [`QuantRows`] built over the same rows would hold.
pub(crate) fn quantize_block(dim: usize, rows: usize, data: &[f32]) -> (Vec<i8>, f32, f32) {
    let scale = max_abs(data) / 127.0;
    let mut q = Vec::with_capacity(data.len());
    quantize_into(data, scale, &mut q);
    let mut max_norm = 0.0f64;
    for r in 0..rows {
        let row = &data[r * dim..(r + 1) * dim];
        let n: f64 = row.iter().map(|&x| x as f64 * x as f64).sum::<f64>();
        max_norm = max_norm.max(n);
    }
    (q, scale, max_norm.sqrt() as f32)
}

impl QuantRows {
    fn build(dim: usize, rows: usize, data: &[f32]) -> Self {
        let (q, scale, max_norm) = quantize_block(dim, rows, data);
        Self {
            scale,
            max_norm,
            data: q,
            dim,
        }
    }

    /// The per-index symmetric scale (`max |x| / 127`).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The largest row L2 norm in the index.
    pub fn max_norm(&self) -> f32 {
        self.max_norm
    }

    /// The int8 row with a given id.
    #[inline]
    pub fn row(&self, id: usize) -> &[i8] {
        &self.data[id * self.dim..(id + 1) * self.dim]
    }

    /// Bytes held by the int8 block.
    pub fn bytes(&self) -> usize {
        self.data.len()
    }

    /// Raw integer dots of one quantized query against every row,
    /// appended to `out` in row order — exactly `dot_i8(query, row)`
    /// per row, batched so the SIMD dispatch and the query row are
    /// hoisted out of the per-pair loop.
    pub fn dot_all(&self, query: &[i8], out: &mut Vec<i32>) {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        if self.dim == 0 {
            return;
        }
        out.reserve(self.data.len() / self.dim);
        dot_i8_block(query, &self.data, self.dim, out);
    }

    /// [`dot_all`](QuantRows::dot_all) for a batch of quantized queries
    /// in one query-tiled pass over the block ([`dot_i8_batch`]): each
    /// query's raw dots are appended to its `out` vector in row order,
    /// bit-identical to what `dot_all` would have produced for that
    /// query alone.
    pub fn dot_all_batch(&self, queries: &[&[i8]], out: &mut [Vec<i32>]) {
        assert_eq!(queries.len(), out.len(), "one output vec per query");
        if self.dim == 0 {
            return;
        }
        let rows = self.data.len() / self.dim;
        for o in out.iter_mut() {
            o.reserve(rows);
        }
        dot_i8_batch(queries, &self.data, self.dim, out);
    }
}

/// A query quantized for screening: its int8 form, its own symmetric
/// scale, and its exact L2 norm (both feed the error bound).
#[derive(Debug, Clone)]
pub struct QuantQuery {
    q: Vec<i8>,
    scale: f32,
    norm: f32,
}

impl QuantQuery {
    /// Quantize a query vector with its own per-query symmetric scale.
    pub fn new(query: &[f32]) -> Self {
        let scale = max_abs(query) / 127.0;
        let mut q = Vec::with_capacity(query.len());
        quantize_into(query, scale, &mut q);
        let norm = query
            .iter()
            .map(|&x| x as f64 * x as f64)
            .sum::<f64>()
            .sqrt() as f32;
        Self { q, scale, norm }
    }

    /// The int8 query row.
    #[inline]
    pub fn row(&self) -> &[i8] {
        &self.q
    }

    /// The query's own symmetric scale (`max |x| / 127`).
    #[inline]
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The query's exact L2 norm.
    #[inline]
    pub fn norm(&self) -> f32 {
        self.norm
    }

    /// Combined dequantization factor against an index: multiply an
    /// integer dot by this to land in f32 score space.
    #[inline]
    pub fn dequant_factor(&self, index: &QuantRows) -> f32 {
        self.scale * index.scale
    }

    /// The padded per-pair error bound between this query's quantized
    /// dot against any row of `index` and the exact f32 dot (see the
    /// module docs for the derivation). Never negative.
    pub fn error_bound(&self, index: &QuantRows, dim: usize) -> f64 {
        pair_error_bound(
            self.scale as f64,
            self.norm as f64,
            index.scale as f64,
            index.max_norm as f64,
            dim,
        )
    }
}

/// The padded per-pair quantization-error bound:
/// `e_q·max_norm + (‖query‖ + e_q)·e_y` with `e = (scale/2)·√dim`,
/// padded relatively (1e-3) and absolutely (1e-4) to also cover the f32
/// rounding of the exact dot, the scale multiplies, and the
/// quantization divides. Padding widens the rerank margin; it can never
/// exclude a document the exact scan would keep.
pub fn pair_error_bound(
    query_scale: f64,
    query_norm: f64,
    index_scale: f64,
    index_max_norm: f64,
    dim: usize,
) -> f64 {
    let sqrt_d = (dim as f64).sqrt();
    let eq = 0.5 * query_scale * sqrt_d;
    let ey = 0.5 * index_scale * sqrt_d;
    let raw = eq * index_max_norm + (query_norm + eq) * ey;
    raw * 1.001 + 1e-4
}

/// Counters of one (or an accumulation of) two-stage scored scans:
/// how many documents the int8 kernel screened and how many of them the
/// margin sent to the exact f32 rerank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScreenStats {
    /// Documents scored by the int8 screening kernel.
    pub screened: u64,
    /// Documents re-scored by the exact f32 path (margin suspects).
    pub reranked: u64,
}

impl ScreenStats {
    /// Accumulate another scan's counters.
    pub fn absorb(&mut self, other: ScreenStats) {
        self.screened += other.screened;
        self.reranked += other.reranked;
    }

    /// Fraction of screened documents that needed the exact rerank
    /// (0 when nothing was screened).
    pub fn rerank_rate(&self) -> f64 {
        if self.screened == 0 {
            0.0
        } else {
            self.reranked as f64 / self.screened as f64
        }
    }
}

/// Contiguous struct-of-arrays vector store: all rows in one flat
/// `Vec<f32>` with stride `dim`, plus the lazily built int8 block
/// ([`QuantRows`]) quantized against a single per-index scale. The SoA
/// layout replaces per-document heap allocations, so both the exact
/// and the quantized scan walk dense memory.
#[derive(Debug, Clone, Default)]
pub struct SoaStore {
    dim: usize,
    rows: usize,
    data: Vec<f32>,
    quant: OnceLock<QuantRows>,
}

impl SoaStore {
    /// Empty store for rows of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0);
        Self {
            dim,
            rows: 0,
            data: Vec::new(),
            quant: OnceLock::new(),
        }
    }

    /// Build from row slices (e.g. the old `Vec<Vec<f32>>` layout);
    /// rows keep their order and bits.
    pub fn from_rows<R: AsRef<[f32]>, I: IntoIterator<Item = R>>(dim: usize, rows: I) -> Self {
        let mut store = Self::new(dim);
        for r in rows {
            store.push(r.as_ref());
        }
        store
    }

    /// Append one row; returns its id (insertion order). Invalidates
    /// the quantized block — the per-index scale may change.
    pub fn push(&mut self, row: &[f32]) -> usize {
        assert_eq!(row.len(), self.dim, "dimension mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
        self.quant.take();
        self.rows - 1
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Row dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The f32 row with a given id.
    #[inline]
    pub fn row(&self, id: usize) -> &[f32] {
        &self.data[id * self.dim..(id + 1) * self.dim]
    }

    /// The quantized block, built on first use (one pass over the f32
    /// block) and cached until the next [`push`](SoaStore::push).
    pub fn quant(&self) -> &QuantRows {
        self.quant
            .get_or_init(|| QuantRows::build(self.dim, self.rows, &self.data))
    }

    /// Every query of a batch against every f32 row in one query-tiled
    /// pass over the block ([`crate::embed::dot_batch`]): each query's
    /// dots are appended to its `out` vector in row order, each pair
    /// bit-identical to [`crate::embed::dot`] of that pair.
    pub fn dot_all_batch(&self, queries: &[&[f32]], out: &mut [Vec<f32>]) {
        assert_eq!(queries.len(), out.len(), "one output vec per query");
        for q in queries {
            assert_eq!(q.len(), self.dim, "dimension mismatch");
        }
        for o in out.iter_mut() {
            o.reserve(self.rows);
        }
        crate::embed::dot_batch(queries, &self.data, self.dim, out);
    }

    /// Bytes held by the f32 block.
    pub fn bytes_f32(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Bytes the f32 + int8 blocks hold together once the quantized
    /// face exists (the int8 block is exactly one byte per component).
    pub fn bytes_with_quant(&self) -> usize {
        self.bytes_f32() + self.rows * self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_i8_matches_naive_loop() {
        // Lengths straddling the lane width, values across the range.
        for len in [0usize, 1, 7, 8, 9, 16, 63, 256] {
            let a: Vec<i8> = (0..len).map(|i| ((i * 37) % 255) as i8).collect();
            let b: Vec<i8> = (0..len).map(|i| ((i * 91 + 13) % 255) as i8).collect();
            let naive: i32 = a.iter().zip(&b).map(|(&x, &y)| x as i32 * y as i32).sum();
            assert_eq!(dot_i8(&a, &b), naive, "len {len}");
        }
    }

    #[test]
    fn dot_i8_remainder_lanes_match_naive_loop() {
        // Dimensions that are not multiples of the 16-lane width pin
        // the tail handling: 1 (all tail), 7 (sub-lane), 17 (one full
        // chunk plus one element).
        for dim in [1usize, 7, 17] {
            let a: Vec<i8> = (0..dim).map(|i| (i as i32 * 23 - 60) as i8).collect();
            let b: Vec<i8> = (0..dim).map(|i| (i as i32 * 17 - 40) as i8).collect();
            let naive: i32 = a.iter().zip(&b).map(|(&x, &y)| x as i32 * y as i32).sum();
            assert_eq!(dot_i8(&a, &b), naive, "dim {dim}");
            // The batched kernel must agree at the same dimensions, in
            // both the register-tiled (4 queries) and the trailing
            // (single query) arm.
            for width in [1usize, 4] {
                let queries: Vec<&[i8]> = std::iter::repeat_n(a.as_slice(), width).collect();
                let mut out = vec![Vec::new(); width];
                dot_i8_batch(&queries, &b, dim, &mut out);
                for (q, o) in out.iter().enumerate() {
                    assert_eq!(o.as_slice(), &[naive], "dim {dim} width {width} query {q}");
                }
            }
        }
    }

    #[test]
    fn batched_screen_matches_sequential_kernel() {
        // Widths straddling the register tile, a block spanning several
        // cache tiles (dim 96 → 170 rows/tile at 16 KiB), and values
        // across the i8 range.
        let dim = 96usize;
        let rows_n = 400usize;
        let rows: Vec<i8> = (0..rows_n * dim)
            .map(|i| ((i * 37 + 11) % 255) as i8)
            .collect();
        let queries: Vec<Vec<i8>> = (0..9)
            .map(|q| (0..dim).map(|i| ((i * 91 + q * 13) % 255) as i8).collect())
            .collect();
        for width in [0usize, 1, 2, 4, 5, 8, 9] {
            let refs: Vec<&[i8]> = queries[..width].iter().map(|q| q.as_slice()).collect();
            let mut out = vec![Vec::new(); width];
            dot_i8_batch(&refs, &rows, dim, &mut out);
            for (q, o) in out.iter().enumerate() {
                let mut seq = Vec::new();
                dot_i8_block(&queries[q], &rows, dim, &mut seq);
                assert_eq!(o, &seq, "width {width} query {q}");
            }
        }
    }

    #[test]
    fn width_one_batch_routes_through_sequential_kernel_bitwise() {
        // Pinned regression for the width-1 dispatch: a batch of one
        // must produce exactly the sequential block kernel's output
        // (it now *is* that kernel — no tiling bookkeeping), across
        // dims straddling the AVX2 chunk and multi-tile row counts.
        for dim in [7usize, 32, 96, 256] {
            let rows_n = 300usize;
            let rows: Vec<i8> = (0..rows_n * dim)
                .map(|i| ((i * 37 + 11) % 255) as i8)
                .collect();
            let query: Vec<i8> = (0..dim).map(|i| ((i * 91 + 13) % 255) as i8).collect();
            let mut batch = vec![Vec::new()];
            dot_i8_batch(&[query.as_slice()], &rows, dim, &mut batch);
            let mut seq = Vec::new();
            dot_i8_block(&query, &rows, dim, &mut seq);
            assert_eq!(batch[0], seq, "dim {dim}");
        }
    }

    #[test]
    fn dot_all_batch_matches_dot_all_per_query() {
        let rows: Vec<Vec<f32>> = (0..50)
            .map(|r| (0..24).map(|i| ((r * 24 + i) as f32 * 0.3).sin()).collect())
            .collect();
        let store = SoaStore::from_rows(24, &rows);
        let quant = store.quant();
        let qqs: Vec<QuantQuery> = rows.iter().take(6).map(|r| QuantQuery::new(r)).collect();
        let refs: Vec<&[i8]> = qqs.iter().map(|q| q.row()).collect();
        let mut batch = vec![Vec::new(); refs.len()];
        quant.dot_all_batch(&refs, &mut batch);
        for (q, o) in batch.iter().enumerate() {
            let mut seq = Vec::new();
            quant.dot_all(refs[q], &mut seq);
            assert_eq!(o, &seq, "query {q}");
        }
    }

    #[test]
    fn dot_i8_extremes_do_not_overflow() {
        let a = vec![127i8; 4096];
        let b = vec![-127i8; 4096];
        assert_eq!(dot_i8(&a, &b), -127 * 127 * 4096);
    }

    #[test]
    fn quantization_error_is_within_half_scale() {
        let rows: Vec<Vec<f32>> = (0..20)
            .map(|r| (0..32).map(|i| ((r * 32 + i) as f32).sin()).collect())
            .collect();
        let store = SoaStore::from_rows(32, &rows);
        let q = store.quant();
        let tol = q.scale() as f64 * 0.5 * 1.001 + 1e-9;
        for (r, row) in rows.iter().enumerate() {
            for (i, &x) in row.iter().enumerate() {
                let back = q.row(r)[i] as f64 * q.scale() as f64;
                assert!(
                    (x as f64 - back).abs() <= tol,
                    "row {r} comp {i}: {x} vs {back}"
                );
            }
        }
    }

    #[test]
    fn store_round_trips_rows_bitwise() {
        let rows: Vec<Vec<f32>> = vec![
            vec![0.25, -1.5, 3.75, 0.0],
            vec![f32::MIN_POSITIVE, -0.0, 1e-20, 42.0],
            vec![0.0; 4],
        ];
        let store = SoaStore::from_rows(4, &rows);
        assert_eq!(store.len(), 3);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(store.row(i), r.as_slice(), "row {i}");
        }
    }

    #[test]
    fn push_invalidates_quantized_block() {
        let mut store = SoaStore::from_rows(2, [[0.5f32, 0.5]]);
        assert_eq!(store.quant().scale(), 0.5 / 127.0);
        // A larger component must widen the scale after re-build.
        store.push(&[2.0, 0.0]);
        assert_eq!(store.quant().scale(), 2.0 / 127.0);
    }

    #[test]
    fn zero_corpus_quantizes_to_zero() {
        let store = SoaStore::from_rows(3, [[0.0f32; 3]; 2]);
        let q = store.quant();
        assert_eq!(q.scale(), 0.0);
        assert!(q.row(0).iter().all(|&x| x == 0));
        let qq = QuantQuery::new(&[0.0; 3]);
        assert_eq!(dot_i8(qq.row(), q.row(1)), 0);
        assert!(qq.error_bound(q, 3) >= 0.0);
    }

    #[test]
    fn error_bound_covers_observed_error() {
        let rows: Vec<Vec<f32>> = (0..64)
            .map(|r| {
                let mut v: Vec<f32> = (0..48).map(|i| ((r * 48 + i) as f32 * 0.7).cos()).collect();
                crate::embed::l2_normalize(&mut v);
                v
            })
            .collect();
        let store = SoaStore::from_rows(48, &rows);
        let q = store.quant();
        for (probe, query) in rows.iter().enumerate() {
            let qq = QuantQuery::new(query);
            let bound = qq.error_bound(q, 48);
            let factor = qq.dequant_factor(q);
            for id in 0..store.len() {
                let exact = crate::embed::dot(query, store.row(id)) as f64;
                let approx = (dot_i8(qq.row(), q.row(id)) as f32 * factor) as f64;
                assert!(
                    (exact - approx).abs() <= bound,
                    "pair ({probe}, {id}): |{exact} - {approx}| > {bound}"
                );
            }
        }
    }

    #[test]
    fn bytes_accounting() {
        let store = SoaStore::from_rows(8, [[1.0f32; 8]; 10]);
        assert_eq!(store.bytes_f32(), 10 * 8 * 4);
        assert_eq!(store.bytes_with_quant(), 10 * 8 * 5);
    }

    #[test]
    fn screen_stats_accumulate_and_rate() {
        let mut s = ScreenStats::default();
        assert_eq!(s.rerank_rate(), 0.0);
        s.absorb(ScreenStats {
            screened: 100,
            reranked: 25,
        });
        s.absorb(ScreenStats {
            screened: 100,
            reranked: 15,
        });
        assert_eq!(s.screened, 200);
        assert_eq!(s.reranked, 40);
        assert!((s.rerank_rate() - 0.2).abs() < 1e-12);
    }
}
