//! Inverse-document-frequency weighting — the paper's future-work item
//! "utilize better semantic encoding models to enhance semantic
//! querying", realised as corpus-fitted token weights: rare content
//! words (entity names) count more than ubiquitous schema words
//! ("instance", "description"), which sharpens retrieval precision on
//! dataset-scale indexes.

use crate::synonym::SynonymTable;
use crate::token::normalize;
use kgstore::hash::{stable_str_hash, FxHashMap};

/// A fitted IDF model over canonical (stemmed + folded) tokens.
#[derive(Debug, Clone, Default)]
pub struct IdfModel {
    /// ln((N + 1) / (df + 1)) + 1 per token hash.
    weights: FxHashMap<u64, f32>,
    /// Weight for unseen tokens (the maximum observed, i.e. rarest).
    default: f32,
    docs: usize,
}

impl IdfModel {
    /// Fit from an iterator of documents. Tokens are canonicalised with
    /// the given synonym table so the model matches the encoder.
    pub fn fit<'a, I: IntoIterator<Item = &'a str>>(docs: I, synonyms: &SynonymTable) -> Self {
        let mut df: FxHashMap<u64, u32> = FxHashMap::default();
        let mut n_docs = 0usize;
        for doc in docs {
            n_docs += 1;
            let mut seen = std::collections::HashSet::new();
            for tok in normalize(doc) {
                let folded = synonyms.fold(&tok);
                let h = stable_str_hash(folded);
                if seen.insert(h) {
                    *df.entry(h).or_default() += 1;
                }
            }
        }
        let n = n_docs as f32;
        let mut weights = FxHashMap::default();
        let mut max_w: f32 = 1.0;
        // Walk the document frequencies in a fixed (hash-key) order;
        // both outputs — the weight table and the running max — are
        // order-insensitive, so this only removes the hash-order walk.
        let mut by_token: Vec<(u64, u32)> = df.into_iter().collect();
        by_token.sort_unstable_by_key(|&(h, _)| h);
        for (h, d) in by_token {
            let w = ((n + 1.0) / (d as f32 + 1.0)).ln() + 1.0;
            max_w = max_w.max(w);
            weights.insert(h, w);
        }
        Self {
            weights,
            default: max_w,
            docs: n_docs,
        }
    }

    /// The weight of a canonical token (by its stable hash).
    pub fn weight_of_hash(&self, token_hash: u64) -> f32 {
        self.weights
            .get(&token_hash)
            .copied()
            .unwrap_or(self.default)
    }

    /// The weight of a canonical token string.
    pub fn weight(&self, canonical_token: &str) -> f32 {
        self.weight_of_hash(stable_str_hash(canonical_token))
    }

    /// Number of documents the model was fitted on.
    pub fn doc_count(&self) -> usize {
        self.docs
    }

    /// Number of distinct tokens seen.
    pub fn vocab_size(&self) -> usize {
        self.weights.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> IdfModel {
        let docs = [
            "Yao Ming instance of person",
            "Yao Ming place of birth Shanghai",
            "Shanghai instance of city",
            "Alan Turing instance of person",
            "Alan Turing place of birth London",
        ];
        IdfModel::fit(docs.iter().copied(), &SynonymTable::builtin())
    }

    #[test]
    fn rare_tokens_weigh_more_than_common() {
        let m = model();
        // "instance" appears in 3 of 5 docs; "shanghai" in 2; "london" in 1.
        assert!(m.weight("london") > m.weight("shanghai"));
        assert!(m.weight("shanghai") > m.weight("instance"));
    }

    #[test]
    fn unseen_tokens_get_max_weight() {
        let m = model();
        assert!(m.weight("zanzibar") >= m.weight("london"));
    }

    #[test]
    fn counts_are_tracked() {
        let m = model();
        assert_eq!(m.doc_count(), 5);
        assert!(m.vocab_size() >= 8);
    }

    #[test]
    fn empty_fit_is_usable() {
        let m = IdfModel::fit(std::iter::empty(), &SynonymTable::builtin());
        assert_eq!(m.doc_count(), 0);
        assert!(m.weight("anything") >= 1.0);
    }

    #[test]
    fn weights_respect_synonym_folding() {
        // "born" and "birth" fold together, so their df is shared.
        let docs = ["x born y", "x birth y", "unique token"];
        let m = IdfModel::fit(docs.iter().copied(), &SynonymTable::builtin());
        assert!((m.weight("birth") - m.weight("birth")).abs() < 1e-6);
        assert!(m.weight("unique") > m.weight("birth"));
    }
}
