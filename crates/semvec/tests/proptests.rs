//! Property-based tests of the encoder and index: norm and cosine
//! invariants, top-k agreement with brute force, determinism.

use proptest::prelude::*;
use semvec::{cosine, dot, Embedder, VecIndex};

fn text() -> impl Strategy<Value = String> {
    "[a-zA-Z ]{1,60}"
}

proptest! {
    /// Every encoding is unit-norm or exactly zero.
    #[test]
    fn encode_norm_is_unit_or_zero(t in text()) {
        for emb in [Embedder::default(), Embedder::paper()] {
            let v = emb.encode(&t);
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            prop_assert!(
                norm == 0.0 || (norm - 1.0).abs() < 1e-4,
                "norm {norm} for {t:?}"
            );
        }
    }

    /// Cosine is symmetric, bounded, and 1 on self (for non-zero texts).
    #[test]
    fn cosine_invariants(a in text(), b in text()) {
        let emb = Embedder::paper();
        let va = emb.encode(&a);
        let vb = emb.encode(&b);
        let ab = cosine(&va, &vb);
        let ba = cosine(&vb, &va);
        prop_assert!((ab - ba).abs() < 1e-5);
        prop_assert!((-1.0001..=1.0001).contains(&ab));
        if va.iter().any(|&x| x != 0.0) {
            prop_assert!((cosine(&va, &va) - 1.0).abs() < 1e-4);
        }
    }

    /// Encoding is deterministic.
    #[test]
    fn encode_is_deterministic(t in text()) {
        let emb = Embedder::paper();
        prop_assert_eq!(emb.encode(&t), emb.encode(&t));
    }

    /// top_k agrees with a brute-force sort of all dot products.
    #[test]
    fn topk_agrees_with_brute_force(
        docs in proptest::collection::vec(text(), 1..40),
        query in text(),
        k in 1usize..12,
    ) {
        let emb = Embedder::default();
        let vecs: Vec<Vec<f32>> = docs.iter().map(|d| emb.encode(d)).collect();
        let index = VecIndex::from_vectors(emb.dim(), vecs.clone());
        let q = emb.encode(&query);
        let hits = index.top_k(&q, k);

        let mut brute: Vec<(usize, f32)> = vecs.iter().map(|v| dot(&q, v)).enumerate().collect();
        brute.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap()
                .then_with(|| a.0.cmp(&b.0))
        });
        brute.truncate(k);

        prop_assert_eq!(hits.len(), brute.len().min(docs.len()));
        for (hit, (id, score)) in hits.iter().zip(&brute) {
            prop_assert_eq!(hit.id, *id);
            prop_assert!((hit.score - score).abs() < 1e-5);
        }
    }

    /// Jittered top-k is deterministic in (query, salt) and returns the
    /// requested number of hits.
    #[test]
    fn jittered_topk_deterministic(
        docs in proptest::collection::vec(text(), 2..30),
        query in text(),
        salt in any::<u64>(),
    ) {
        let emb = Embedder::default();
        let index = VecIndex::from_vectors(emb.dim(), docs.iter().map(|d| emb.encode(d)));
        let q = emb.encode(&query);
        let a = index.top_k_noisy(&q, 5, 0.3, salt);
        let b = index.top_k_noisy(&q, 5, 0.3, salt);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), 5usize.min(docs.len()));
        // Scores sorted descending.
        for w in a.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }
}
