//! Property-based tests of the encoder and index: norm and cosine
//! invariants, top-k agreement with brute force, determinism.

use proptest::prelude::*;
use semvec::{cosine, dot, Embedder, HybridIndex, QueryStyle, VecIndex};

fn text() -> impl Strategy<Value = String> {
    "[a-zA-Z ]{1,60}"
}

/// Sentences over a closed vocabulary of trigram-disjoint words — the
/// shape of real verbalised triples, where the zero-overlap ceiling
/// contract holds. (Arbitrary character soup can violate the ceiling:
/// two distinct tokens may share most of their char trigrams.)
fn vocab_sentence() -> impl Strategy<Value = String> {
    const VOCAB: [&str; 12] = [
        "zebra", "quartz", "violin", "hammock", "puzzle", "dwarf", "sphinx", "jigsaw", "oxygen",
        "kumquat", "fjord", "byway",
    ];
    proptest::collection::vec(0usize..VOCAB.len(), 1..6)
        .prop_map(|ids| ids.iter().map(|&i| VOCAB[i]).collect::<Vec<_>>().join(" "))
}

proptest! {
    /// Every encoding is unit-norm or exactly zero.
    #[test]
    fn encode_norm_is_unit_or_zero(t in text()) {
        for emb in [Embedder::default(), Embedder::paper()] {
            let v = emb.encode(&t);
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            prop_assert!(
                norm == 0.0 || (norm - 1.0).abs() < 1e-4,
                "norm {norm} for {t:?}"
            );
        }
    }

    /// Cosine is symmetric, bounded, and 1 on self (for non-zero texts).
    #[test]
    fn cosine_invariants(a in text(), b in text()) {
        let emb = Embedder::paper();
        let va = emb.encode(&a);
        let vb = emb.encode(&b);
        let ab = cosine(&va, &vb);
        let ba = cosine(&vb, &va);
        prop_assert!((ab - ba).abs() < 1e-5);
        prop_assert!((-1.0001..=1.0001).contains(&ab));
        if va.iter().any(|&x| x != 0.0) {
            prop_assert!((cosine(&va, &va) - 1.0).abs() < 1e-4);
        }
    }

    /// Encoding is deterministic.
    #[test]
    fn encode_is_deterministic(t in text()) {
        let emb = Embedder::paper();
        prop_assert_eq!(emb.encode(&t), emb.encode(&t));
    }

    /// top_k agrees with a brute-force sort of all dot products.
    #[test]
    fn topk_agrees_with_brute_force(
        docs in proptest::collection::vec(text(), 1..40),
        query in text(),
        k in 1usize..12,
    ) {
        let emb = Embedder::default();
        let vecs: Vec<Vec<f32>> = docs.iter().map(|d| emb.encode(d)).collect();
        let index = VecIndex::from_vectors(emb.dim(), vecs.clone());
        let q = emb.encode(&query);
        let hits = index.top_k(&q, k);

        let mut brute: Vec<(usize, f32)> = vecs.iter().map(|v| dot(&q, v)).enumerate().collect();
        brute.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap()
                .then_with(|| a.0.cmp(&b.0))
        });
        brute.truncate(k);

        prop_assert_eq!(hits.len(), brute.len().min(docs.len()));
        for (hit, (id, score)) in hits.iter().zip(&brute) {
            prop_assert_eq!(hit.id, *id);
            prop_assert!((hit.score - score).abs() < 1e-5);
        }
    }

    /// Jittered top-k is deterministic in (query, salt) and returns the
    /// requested number of hits.
    #[test]
    fn jittered_topk_deterministic(
        docs in proptest::collection::vec(text(), 2..30),
        query in text(),
        salt in any::<u64>(),
    ) {
        let emb = Embedder::default();
        let index = VecIndex::from_vectors(emb.dim(), docs.iter().map(|d| emb.encode(d)));
        let q = emb.encode(&query);
        let a = index.top_k_noisy(&q, 5, 0.3, salt);
        let b = index.top_k_noisy(&q, 5, 0.3, salt);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), 5usize.min(docs.len()));
        // Scores sorted descending.
        for w in a.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }

    /// Pruned hybrid search is bit-identical to the exact noisy scan on
    /// ceiling-respecting corpora (closed vocabulary, so zero-overlap
    /// docs sit at the encoder noise floor) for arbitrary k, sigma and
    /// salt — including k beyond the candidate count (the documented
    /// full-scan fallback) and k beyond the corpus size.
    #[test]
    fn hybrid_pruned_equals_exact_on_vocab_corpora(
        docs in proptest::collection::vec(vocab_sentence(), 1..40),
        query in vocab_sentence(),
        k in 1usize..50,
        sigma in 0.0f32..0.6,
        salt in any::<u64>(),
    ) {
        for emb in [Embedder::default(), Embedder::paper()] {
            let refs: Vec<&str> = docs.iter().map(|s| s.as_str()).collect();
            let hybrid = HybridIndex::build_parallel(&emb, &refs, 1);
            let exact = VecIndex::from_vectors(emb.dim(), docs.iter().map(|d| emb.encode(d)));
            let q = emb.encode(&query);
            let cands = hybrid.candidates(&emb, &query, QueryStyle::Folded);
            prop_assert_eq!(
                hybrid.top_k_noisy_encoded(&q, &cands, k, sigma, salt),
                exact.top_k_noisy(&q, k, sigma, salt)
            );
        }
    }

    /// With the ceiling raised to the maximum possible dot (1.0 for
    /// unit-norm vectors), the pruned search is equivalent to the exact
    /// scan *unconditionally* — even on adversarial character soup
    /// where distinct tokens share trigram mass. This pins down the
    /// correctness of the two-phase machinery itself (candidate rerank,
    /// suspect verification, fallback, heap ordering).
    #[test]
    fn hybrid_with_saturated_ceiling_equals_exact_on_any_corpus(
        docs in proptest::collection::vec(text(), 1..30),
        query in text(),
        k in 1usize..12,
        sigma in 0.0f32..0.6,
        salt in any::<u64>(),
    ) {
        let emb = Embedder::paper();
        let refs: Vec<&str> = docs.iter().map(|s| s.as_str()).collect();
        let hybrid = HybridIndex::build_parallel(&emb, &refs, 1).with_ceiling(1.0);
        let exact = VecIndex::from_vectors(emb.dim(), docs.iter().map(|d| emb.encode(d)));
        let q = emb.encode(&query);
        let cands = hybrid.candidates(&emb, &query, QueryStyle::Folded);
        prop_assert_eq!(
            hybrid.top_k_noisy_encoded(&q, &cands, k, sigma, salt),
            exact.top_k_noisy(&q, k, sigma, salt)
        );
    }

    /// Unfolded (raw-token) queries: same unconditional equivalence,
    /// with candidates looked up by raw token hash.
    #[test]
    fn hybrid_unfolded_queries_equal_exact(
        docs in proptest::collection::vec(vocab_sentence(), 1..30),
        query in vocab_sentence(),
        k in 1usize..12,
        salt in any::<u64>(),
    ) {
        let emb = Embedder::paper();
        let refs: Vec<&str> = docs.iter().map(|s| s.as_str()).collect();
        let hybrid = HybridIndex::build_parallel(&emb, &refs, 1);
        let exact = VecIndex::from_vectors(emb.dim(), docs.iter().map(|d| emb.encode(d)));
        let q = emb.encode_unfolded(&query);
        let cands = hybrid.candidates(&emb, &query, QueryStyle::Unfolded);
        prop_assert_eq!(
            hybrid.top_k_noisy_encoded(&q, &cands, k, 0.3, salt),
            exact.top_k_noisy(&q, k, 0.3, salt)
        );
    }

    /// Parallel index builds are byte-identical to the serial build for
    /// any corpus (including duplicates) and any thread count.
    #[test]
    fn hybrid_parallel_build_equals_serial(
        docs in proptest::collection::vec(text(), 1..40),
        threads in 2usize..8,
        query in text(),
    ) {
        let emb = Embedder::paper();
        // Force duplicates so the dedup path is exercised.
        let doubled: Vec<&str> = docs.iter().chain(docs.iter()).map(|s| s.as_str()).collect();
        let serial = HybridIndex::build_parallel(&emb, &doubled, 1);
        let parallel = HybridIndex::build_parallel(&emb, &doubled, threads);
        prop_assert_eq!(serial.len(), parallel.len());
        for id in 0..serial.len() {
            prop_assert_eq!(serial.vectors().vector(id), parallel.vectors().vector(id));
        }
        prop_assert_eq!(
            serial.candidates(&emb, &query, QueryStyle::Folded),
            parallel.candidates(&emb, &query, QueryStyle::Folded)
        );
    }
}
