//! Property-based tests of the encoder and index: norm and cosine
//! invariants, top-k agreement with brute force, determinism.

use proptest::prelude::*;
use semvec::{
    cosine, dot, dot_i8, minus_sorted, BatchSlot, Embedder, EntityBatchSlot, EntityIndex,
    HybridIndex, NoisyQuery, QuantQuery, QueryStyle, SegmentedIndex, SoaStore, VecIndex,
};

/// One entity per distinct document token (keeping every `stride`-th
/// vocabulary word), the token itself as the sole surface, postings =
/// the docs carrying it. `stride` 1 gives full surface coverage (empty
/// tier-1); larger strides leave a real tier-1 for the suspect phase.
fn entity_for_docs(emb: &Embedder, docs: &[String], stride: usize) -> EntityIndex {
    let mut vocab: Vec<&str> = docs.iter().flat_map(|t| t.split_whitespace()).collect();
    vocab.sort_unstable();
    vocab.dedup();
    let vocab: Vec<&str> = vocab.into_iter().step_by(stride.max(1)).collect();
    let surfaces: Vec<(&str, u32)> = vocab
        .iter()
        .enumerate()
        .map(|(i, w)| (*w, i as u32))
        .collect();
    let mut mentions: Vec<(u32, u32)> = Vec::new();
    for (d, t) in docs.iter().enumerate() {
        for w in t.split_whitespace() {
            if let Ok(e) = vocab.binary_search(&w) {
                mentions.push((d as u32, e as u32));
            }
        }
    }
    EntityIndex::build(emb, docs.len(), vocab.len(), surfaces, &mentions)
}

fn text() -> impl Strategy<Value = String> {
    "[a-zA-Z ]{1,60}"
}

/// Sentences over a closed vocabulary of trigram-disjoint words — the
/// shape of real verbalised triples, where the zero-overlap ceiling
/// contract holds. (Arbitrary character soup can violate the ceiling:
/// two distinct tokens may share most of their char trigrams.)
fn vocab_sentence() -> impl Strategy<Value = String> {
    const VOCAB: [&str; 12] = [
        "zebra", "quartz", "violin", "hammock", "puzzle", "dwarf", "sphinx", "jigsaw", "oxygen",
        "kumquat", "fjord", "byway",
    ];
    proptest::collection::vec(0usize..VOCAB.len(), 1..6)
        .prop_map(|ids| ids.iter().map(|&i| VOCAB[i]).collect::<Vec<_>>().join(" "))
}

proptest! {
    /// Every encoding is unit-norm or exactly zero.
    #[test]
    fn encode_norm_is_unit_or_zero(t in text()) {
        for emb in [Embedder::default(), Embedder::paper()] {
            let v = emb.encode(&t);
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            prop_assert!(
                norm == 0.0 || (norm - 1.0).abs() < 1e-4,
                "norm {norm} for {t:?}"
            );
        }
    }

    /// Cosine is symmetric, bounded, and 1 on self (for non-zero texts).
    #[test]
    fn cosine_invariants(a in text(), b in text()) {
        let emb = Embedder::paper();
        let va = emb.encode(&a);
        let vb = emb.encode(&b);
        let ab = cosine(&va, &vb);
        let ba = cosine(&vb, &va);
        prop_assert!((ab - ba).abs() < 1e-5);
        prop_assert!((-1.0001..=1.0001).contains(&ab));
        if va.iter().any(|&x| x != 0.0) {
            prop_assert!((cosine(&va, &va) - 1.0).abs() < 1e-4);
        }
    }

    /// Encoding is deterministic.
    #[test]
    fn encode_is_deterministic(t in text()) {
        let emb = Embedder::paper();
        prop_assert_eq!(emb.encode(&t), emb.encode(&t));
    }

    /// top_k agrees with a brute-force sort of all dot products.
    #[test]
    fn topk_agrees_with_brute_force(
        docs in proptest::collection::vec(text(), 1..40),
        query in text(),
        k in 1usize..12,
    ) {
        let emb = Embedder::default();
        let vecs: Vec<Vec<f32>> = docs.iter().map(|d| emb.encode(d)).collect();
        let index = VecIndex::from_vectors(emb.dim(), vecs.clone());
        let q = emb.encode(&query);
        let hits = index.top_k(&q, k);

        let mut brute: Vec<(usize, f32)> = vecs.iter().map(|v| dot(&q, v)).enumerate().collect();
        brute.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap()
                .then_with(|| a.0.cmp(&b.0))
        });
        brute.truncate(k);

        prop_assert_eq!(hits.len(), brute.len().min(docs.len()));
        for (hit, (id, score)) in hits.iter().zip(&brute) {
            prop_assert_eq!(hit.id, *id);
            prop_assert!((hit.score - score).abs() < 1e-5);
        }
    }

    /// Jittered top-k is deterministic in (query, salt) and returns the
    /// requested number of hits.
    #[test]
    fn jittered_topk_deterministic(
        docs in proptest::collection::vec(text(), 2..30),
        query in text(),
        salt in any::<u64>(),
    ) {
        let emb = Embedder::default();
        let index = VecIndex::from_vectors(emb.dim(), docs.iter().map(|d| emb.encode(d)));
        let q = emb.encode(&query);
        let a = index.top_k_noisy(&q, 5, 0.3, salt);
        let b = index.top_k_noisy(&q, 5, 0.3, salt);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), 5usize.min(docs.len()));
        // Scores sorted descending.
        for w in a.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }

    /// Pruned hybrid search is bit-identical to the exact noisy scan on
    /// ceiling-respecting corpora (closed vocabulary, so zero-overlap
    /// docs sit at the encoder noise floor) for arbitrary k, sigma and
    /// salt — including k beyond the candidate count (the documented
    /// full-scan fallback) and k beyond the corpus size.
    #[test]
    fn hybrid_pruned_equals_exact_on_vocab_corpora(
        docs in proptest::collection::vec(vocab_sentence(), 1..40),
        query in vocab_sentence(),
        k in 1usize..50,
        sigma in 0.0f32..0.6,
        salt in any::<u64>(),
    ) {
        for emb in [Embedder::default(), Embedder::paper()] {
            let refs: Vec<&str> = docs.iter().map(|s| s.as_str()).collect();
            let hybrid = HybridIndex::build_parallel(&emb, &refs, 1);
            let exact = VecIndex::from_vectors(emb.dim(), docs.iter().map(|d| emb.encode(d)));
            let q = emb.encode(&query);
            let cands = hybrid.candidates(&emb, &query, QueryStyle::Folded);
            prop_assert_eq!(
                hybrid.top_k_noisy_encoded(&q, &cands, k, sigma, salt),
                exact.top_k_noisy(&q, k, sigma, salt)
            );
        }
    }

    /// With the ceiling raised to the maximum possible dot (1.0 for
    /// unit-norm vectors), the pruned search is equivalent to the exact
    /// scan *unconditionally* — even on adversarial character soup
    /// where distinct tokens share trigram mass. This pins down the
    /// correctness of the two-phase machinery itself (candidate rerank,
    /// suspect verification, fallback, heap ordering).
    #[test]
    fn hybrid_with_saturated_ceiling_equals_exact_on_any_corpus(
        docs in proptest::collection::vec(text(), 1..30),
        query in text(),
        k in 1usize..12,
        sigma in 0.0f32..0.6,
        salt in any::<u64>(),
    ) {
        let emb = Embedder::paper();
        let refs: Vec<&str> = docs.iter().map(|s| s.as_str()).collect();
        let hybrid = HybridIndex::build_parallel(&emb, &refs, 1).with_ceiling(1.0);
        let exact = VecIndex::from_vectors(emb.dim(), docs.iter().map(|d| emb.encode(d)));
        let q = emb.encode(&query);
        let cands = hybrid.candidates(&emb, &query, QueryStyle::Folded);
        prop_assert_eq!(
            hybrid.top_k_noisy_encoded(&q, &cands, k, sigma, salt),
            exact.top_k_noisy(&q, k, sigma, salt)
        );
    }

    /// Unfolded (raw-token) queries: same unconditional equivalence,
    /// with candidates looked up by raw token hash.
    #[test]
    fn hybrid_unfolded_queries_equal_exact(
        docs in proptest::collection::vec(vocab_sentence(), 1..30),
        query in vocab_sentence(),
        k in 1usize..12,
        salt in any::<u64>(),
    ) {
        let emb = Embedder::paper();
        let refs: Vec<&str> = docs.iter().map(|s| s.as_str()).collect();
        let hybrid = HybridIndex::build_parallel(&emb, &refs, 1);
        let exact = VecIndex::from_vectors(emb.dim(), docs.iter().map(|d| emb.encode(d)));
        let q = emb.encode_unfolded(&query);
        let cands = hybrid.candidates(&emb, &query, QueryStyle::Unfolded);
        prop_assert_eq!(
            hybrid.top_k_noisy_encoded(&q, &cands, k, 0.3, salt),
            exact.top_k_noisy(&q, k, 0.3, salt)
        );
    }

    /// The quantized screen + exact rerank top-k is bit-identical to
    /// the pure-f32 noisy scan on arbitrary corpora, at the pipeline's
    /// default jitter (sigma = 0.30) and with noise off (sigma = 0).
    #[test]
    fn quant_screen_rerank_topk_equals_exact_f32(
        docs in proptest::collection::vec(text(), 1..40),
        query in text(),
        k in 1usize..15,
        salt in any::<u64>(),
    ) {
        let emb = Embedder::paper();
        let index = VecIndex::from_vectors(emb.dim(), docs.iter().map(|d| emb.encode(d)));
        let q = emb.encode(&query);
        for sigma in [0.0f32, 0.30] {
            let exact = index.top_k_noisy(&q, k, sigma, salt);
            let (quant, stats) = index.top_k_noisy_quant(&q, k, sigma, salt);
            prop_assert_eq!(&quant, &exact);
            prop_assert_eq!(stats.screened, docs.len() as u64);
            prop_assert!(stats.reranked <= stats.screened);
        }
    }

    /// The padded per-pair error bound is never violated: for random
    /// (query, doc) pairs, the dequantized int8 dot stays within the
    /// bound of the exact f32 dot.
    #[test]
    fn quant_error_bound_never_violated(
        rows in proptest::collection::vec(
            proptest::collection::vec(-2.0f32..2.0, 32), 1..24),
        query in proptest::collection::vec(-2.0f32..2.0, 32),
    ) {
        let dim = query.len();
        let store = SoaStore::from_rows(dim, rows.iter().cloned());
        let qr = store.quant();
        let qq = QuantQuery::new(&query);
        let bound = qq.error_bound(qr, dim);
        let factor = qq.dequant_factor(qr);
        for (id, row) in rows.iter().enumerate() {
            let exact = dot(&query, row) as f64;
            let approx = (dot_i8(qq.row(), qr.row(id)) as f32 * factor) as f64;
            prop_assert!(
                (exact - approx).abs() <= bound,
                "bound violated: |{exact} - {approx}| > {bound}"
            );
        }
    }

    /// The struct-of-arrays store hands back every row bit-identical to
    /// what was pushed, across both construction paths.
    #[test]
    fn soa_store_roundtrips_rows_bitwise(
        rows in proptest::collection::vec(
            proptest::collection::vec(any::<f32>(), 16), 0..24),
    ) {
        let bulk = SoaStore::from_rows(16, rows.iter().cloned());
        let mut incremental = SoaStore::new(16);
        for r in &rows {
            incremental.push(r);
        }
        prop_assert_eq!(bulk.len(), rows.len());
        prop_assert_eq!(incremental.len(), rows.len());
        for (id, r) in rows.iter().enumerate() {
            let b: Vec<u32> = bulk.row(id).iter().map(|x| x.to_bits()).collect();
            let i: Vec<u32> = incremental.row(id).iter().map(|x| x.to_bits()).collect();
            let want: Vec<u32> = r.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(&b, &want);
            prop_assert_eq!(&i, &want);
        }
    }

    /// Batched top-k over the flat index is bit-identical per query to
    /// the sequential scan for arbitrary batch widths (0, 1, and
    /// through every register-tile remainder), duplicate queries, and
    /// both scoring engines.
    #[test]
    fn batched_topk_equals_sequential_per_query(
        docs in proptest::collection::vec(text(), 1..40),
        queries in proptest::collection::vec(text(), 0..9),
        dup in any::<bool>(),
        k in 1usize..12,
        sigma in 0.0f32..0.6,
        salt in any::<u64>(),
    ) {
        let emb = Embedder::paper();
        let index = VecIndex::from_vectors(emb.dim(), docs.iter().map(|d| emb.encode(d)));
        let mut texts: Vec<&str> = queries.iter().map(|s| s.as_str()).collect();
        if dup && !texts.is_empty() {
            texts.push(texts[0]);
        }
        let qvecs: Vec<Vec<f32>> = texts.iter().map(|t| emb.encode(t)).collect();
        let slots: Vec<NoisyQuery<'_>> = qvecs
            .iter()
            .enumerate()
            .map(|(i, v)| NoisyQuery { vector: v, salt: salt.wrapping_add((i % queries.len().max(1)) as u64) })
            .collect();
        let exact = index.top_k_noisy_batch(&slots, k, sigma);
        prop_assert_eq!(exact.len(), slots.len());
        for (got, s) in exact.iter().zip(&slots) {
            prop_assert_eq!(got, &index.top_k_noisy(s.vector, k, sigma, s.salt));
        }
        let quant = index.top_k_noisy_quant_batch(&slots, k, sigma);
        for ((hits, stats), s) in quant.iter().zip(&slots) {
            let (seq_hits, seq_stats) = index.top_k_noisy_quant(s.vector, k, sigma, s.salt);
            prop_assert_eq!(hits, &seq_hits);
            prop_assert_eq!(stats.screened, seq_stats.screened);
            prop_assert_eq!(stats.reranked, seq_stats.reranked);
        }
    }

    /// Batched pruned (hybrid) search is bit-identical per slot to the
    /// sequential pruned scan — including the full-scan fallback for
    /// under-populated candidate sets and both scoring engines.
    #[test]
    fn batched_hybrid_equals_sequential_per_slot(
        docs in proptest::collection::vec(vocab_sentence(), 1..40),
        queries in proptest::collection::vec(vocab_sentence(), 0..7),
        k in 1usize..20,
        sigma in 0.0f32..0.6,
    ) {
        let emb = Embedder::paper();
        let refs: Vec<&str> = docs.iter().map(|s| s.as_str()).collect();
        let hybrid = HybridIndex::build_parallel(&emb, &refs, 1);
        let qvecs: Vec<Vec<f32>> = queries.iter().map(|t| emb.encode(t)).collect();
        let cands: Vec<Vec<u32>> = queries
            .iter()
            .map(|t| hybrid.candidates(&emb, t, QueryStyle::Folded))
            .collect();
        let salts: Vec<u64> = (0..queries.len() as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        let slots: Vec<BatchSlot<'_>> = qvecs
            .iter()
            .zip(&cands)
            .zip(&salts)
            .map(|((v, c), &salt)| BatchSlot { query: v, cands: c, salt })
            .collect();
        let exact = hybrid.top_k_noisy_encoded_batch(&slots, k, sigma);
        prop_assert_eq!(exact.len(), slots.len());
        for (got, s) in exact.iter().zip(&slots) {
            prop_assert_eq!(got, &hybrid.top_k_noisy_encoded(s.query, s.cands, k, sigma, s.salt));
        }
        let (quant, stats) = hybrid.top_k_noisy_encoded_quant_batch(&slots, k, sigma);
        for ((got, st), s) in quant.iter().zip(&stats).zip(&slots) {
            let (seq, seq_st) = hybrid.top_k_noisy_encoded_quant(s.query, s.cands, k, sigma, s.salt);
            prop_assert_eq!(got, &seq);
            prop_assert_eq!(st.screened, seq_st.screened);
            prop_assert_eq!(st.reranked, seq_st.reranked);
        }
    }

    /// On-disk round-trip: write → checksum-verified reopen hands back
    /// every vector, every postings list, and every quantization scale
    /// byte-identical to the in-RAM build, for arbitrary corpora
    /// (including duplicates) and shard geometries.
    #[test]
    fn segmented_disk_roundtrip_is_byte_identical(
        docs in proptest::collection::vec(vocab_sentence(), 0..40),
        seg_rows in 1usize..50,
        probe in vocab_sentence(),
        case in 0u64..1_000_000,
    ) {
        let emb = Embedder::paper();
        let refs: Vec<&str> = docs.iter().map(|s| s.as_str()).collect();
        let built = SegmentedIndex::build_parallel(&emb, &refs, seg_rows, 1);
        let dir = std::env::temp_dir().join("semvec-proptest-roundtrip");
        let path = dir.join(format!("case-{case}-{}.seg", std::process::id()));
        built.write_to(&path).expect("write segmented index");
        let opened = SegmentedIndex::open(&path).expect("reopen segmented index");
        let _ = std::fs::remove_file(&path);

        prop_assert!(opened.is_file_backed());
        prop_assert_eq!(opened.len(), built.len());
        prop_assert_eq!(opened.dim(), built.dim());
        prop_assert_eq!(opened.num_segments(), built.num_segments());
        for id in 0..built.len() {
            let a: Vec<u32> = built.vector(id).iter().map(|x| x.to_bits()).collect();
            let b: Vec<u32> = opened.vector(id).iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(a, b, "vector {} diverged", id);
        }
        for s in 0..built.num_segments() {
            prop_assert_eq!(
                built.segment_scale(s).to_bits(),
                opened.segment_scale(s).to_bits()
            );
            prop_assert_eq!(
                built.segment_max_norm(s).to_bits(),
                opened.segment_max_norm(s).to_bits()
            );
        }
        for text in docs.iter().map(|s| s.as_str()).chain([probe.as_str()]) {
            prop_assert_eq!(
                built.candidates(&emb, text, QueryStyle::Folded),
                opened.candidates(&emb, text, QueryStyle::Folded)
            );
        }
    }

    /// Shard-count invariance: the segmented scan at 1, 2, and 7 shards
    /// returns hits bit-identical to the unsharded exact scan for every
    /// (k, sigma, salt) — the full-scan surface of the retrieval ×
    /// scoring cross product (the pruned and batched surfaces are pinned
    /// by the seeded test below and the unit tests).
    #[test]
    fn sharded_topk_is_invariant_in_shard_count(
        docs in proptest::collection::vec(vocab_sentence(), 1..40),
        query in vocab_sentence(),
        k in 1usize..15,
        sigma in 0.0f32..0.6,
        salt in any::<u64>(),
    ) {
        let emb = Embedder::paper();
        let refs: Vec<&str> = docs.iter().map(|s| s.as_str()).collect();
        let flat = VecIndex::from_vectors(emb.dim(), docs.iter().map(|d| emb.encode(d)));
        let q = emb.encode(&query);
        let exact = flat.top_k_noisy(&q, k, sigma, salt);
        let n = refs.len();
        for seg_rows in [n, n.div_ceil(2), n.div_ceil(7)] {
            let seg = SegmentedIndex::build_parallel(&emb, &refs, seg_rows.max(1), 1);
            prop_assert_eq!(
                &seg.top_k_noisy(&q, k, sigma, salt),
                &exact,
                "exact scan diverged at seg_rows {}", seg_rows
            );
            let (quant, _) = seg.top_k_noisy_quant(&q, k, sigma, salt);
            prop_assert_eq!(
                &quant,
                &exact,
                "quant scan diverged at seg_rows {}", seg_rows
            );
        }
    }

    /// Corrupted files are rejected with a typed error, never opened
    /// into a garbage index: flipping any single byte of a valid file
    /// must fail the checksum (or a stricter structural check first).
    #[test]
    fn corrupted_segment_file_never_opens(
        docs in proptest::collection::vec(vocab_sentence(), 1..12),
        seg_rows in 1usize..20,
        byte_frac in 0.0f64..1.0,
        flip in 1u8..=255,
        case in 0u64..1_000_000,
    ) {
        let emb = Embedder::paper();
        let refs: Vec<&str> = docs.iter().map(|s| s.as_str()).collect();
        let built = SegmentedIndex::build_parallel(&emb, &refs, seg_rows, 1);
        let dir = std::env::temp_dir().join("semvec-proptest-corrupt");
        let path = dir.join(format!("case-{case}-{}.seg", std::process::id()));
        built.write_to(&path).expect("write segmented index");
        let mut bytes = std::fs::read(&path).expect("read back");
        let pos = ((bytes.len() - 1) as f64 * byte_frac) as usize;
        bytes[pos] ^= flip;
        std::fs::write(&path, &bytes).expect("write corrupted");
        let res = SegmentedIndex::open(&path);
        let _ = std::fs::remove_file(&path);
        prop_assert!(
            res.is_err(),
            "open accepted a file with byte {} xor {:#04x}", pos, flip
        );
    }

    /// Entity-routed top-k with the ceiling saturated to the maximum
    /// possible dot is bit-identical to the exact scan on *any* corpus
    /// — adversarial trigram overlap included — for every surface
    /// coverage (full and partial tier-0), pinning the three-phase
    /// machinery itself. Also pins prior-order invariance: ranking the
    /// folded entities by popularity prior orders, but never changes,
    /// the tier-0 candidate set.
    #[test]
    fn entity_routed_topk_equals_exact_on_any_corpus(
        docs in proptest::collection::vec(text(), 1..30),
        query in text(),
        k in 1usize..12,
        sigma in 0.0f32..0.6,
        salt in any::<u64>(),
        stride in 1usize..4,
    ) {
        let emb = Embedder::paper();
        let refs: Vec<&str> = docs.iter().map(|s| s.as_str()).collect();
        let ent = entity_for_docs(&emb, &docs, stride).with_ceiling(1.0);
        let seg = SegmentedIndex::build_parallel(&emb, &refs, refs.len().div_ceil(3).max(1), 1)
            .with_entity(ent);
        let exact = VecIndex::from_vectors(emb.dim(), docs.iter().map(|d| emb.encode(d)));
        let q = emb.encode(&query);
        let e = seg.entity_index().unwrap();
        let fold = e.fold(&emb, &query);
        let mut unranked = fold.entities.clone();
        unranked.sort_unstable();
        let ents = e.doc_candidates(&fold.entities);
        prop_assert_eq!(&e.doc_candidates(&unranked), &ents);
        let toks = minus_sorted(&seg.candidates(&emb, &query, QueryStyle::Folded), &ents);
        prop_assert_eq!(
            seg.top_k_noisy_entity(&q, &ents, &toks, k, sigma, salt),
            exact.top_k_noisy(&q, k, sigma, salt)
        );
        let (qhits, _) = seg.top_k_noisy_entity_quant(&q, &ents, &toks, k, sigma, salt);
        prop_assert_eq!(qhits, exact.top_k_noisy(&q, k, sigma, salt));
    }

    /// Parallel index builds are byte-identical to the serial build for
    /// any corpus (including duplicates) and any thread count.
    #[test]
    fn hybrid_parallel_build_equals_serial(
        docs in proptest::collection::vec(text(), 1..40),
        threads in 2usize..8,
        query in text(),
    ) {
        let emb = Embedder::paper();
        // Force duplicates so the dedup path is exercised.
        let doubled: Vec<&str> = docs.iter().chain(docs.iter()).map(|s| s.as_str()).collect();
        let serial = HybridIndex::build_parallel(&emb, &doubled, 1);
        let parallel = HybridIndex::build_parallel(&emb, &doubled, threads);
        prop_assert_eq!(serial.len(), parallel.len());
        for id in 0..serial.len() {
            prop_assert_eq!(serial.vectors().vector(id), parallel.vectors().vector(id));
        }
        prop_assert_eq!(
            serial.candidates(&emb, &query, QueryStyle::Folded),
            parallel.candidates(&emb, &query, QueryStyle::Folded)
        );
    }
}

/// Tiny deterministic generator for the seeded fallback tests below —
/// splitmix64 over a counter, mapped into [-2, 2).
fn seeded_f32(state: &mut u64) -> f32 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    ((z >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
}

/// Seeded counterpart of `quant_screen_rerank_topk_equals_exact_f32` +
/// `quant_error_bound_never_violated` + `soa_store_roundtrips_rows_bitwise`,
/// so the invariants are exercised even where the `proptest` dependency
/// is stubbed out: random corpora from a fixed splitmix64 stream.
#[test]
fn quant_invariants_hold_on_seeded_random_corpora() {
    for (seed, n, dim, k) in [
        (1u64, 1usize, 8usize, 1usize),
        (2, 7, 33, 3),
        (3, 40, 64, 10),
        (4, 128, 256, 15),
        (5, 64, 48, 64),
    ] {
        let mut state = seed;
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| seeded_f32(&mut state)).collect())
            .collect();
        let query: Vec<f32> = (0..dim).map(|_| seeded_f32(&mut state)).collect();

        // SoA round-trip, both construction paths.
        let store = SoaStore::from_rows(dim, rows.iter().cloned());
        let mut incremental = SoaStore::new(dim);
        for r in &rows {
            incremental.push(r);
        }
        for (id, r) in rows.iter().enumerate() {
            assert!(store
                .row(id)
                .iter()
                .zip(r)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
            assert!(incremental
                .row(id)
                .iter()
                .zip(r)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }

        // Per-pair error bound.
        let qr = store.quant();
        let qq = QuantQuery::new(&query);
        let bound = qq.error_bound(qr, dim);
        let factor = qq.dequant_factor(qr);
        for (id, row) in rows.iter().enumerate() {
            let exact = dot(&query, row) as f64;
            let approx = (dot_i8(qq.row(), qr.row(id)) as f32 * factor) as f64;
            assert!(
                (exact - approx).abs() <= bound,
                "seed {seed}: bound violated at row {id}: |{exact} - {approx}| > {bound}"
            );
        }

        // Two-stage top-k bit-identity at sigma 0 and the pipeline's 0.30.
        let index = VecIndex::from_vectors(dim, rows.iter().cloned());
        for sigma in [0.0f32, 0.30] {
            for salt in [0u64, seed.wrapping_mul(0xC0FFEE)] {
                let exact = index.top_k_noisy(&query, k, sigma, salt);
                let (quant, stats) = index.top_k_noisy_quant(&query, k, sigma, salt);
                assert_eq!(quant, exact, "seed {seed} sigma {sigma} salt {salt}");
                assert_eq!(stats.screened, n as u64);
            }
        }
    }
}

/// Seeded counterpart of `segmented_disk_roundtrip_is_byte_identical`,
/// `sharded_topk_is_invariant_in_shard_count`, and
/// `corrupted_segment_file_never_opens`, exercised even where
/// `proptest` is stubbed out: seeded corpora through a disk round-trip,
/// three shard geometries, and single-byte corruption at spread
/// positions.
#[test]
fn segmented_invariants_hold_on_seeded_corpora() {
    let emb = Embedder::paper();
    const VOCAB: [&str; 12] = [
        "zebra", "quartz", "violin", "hammock", "puzzle", "dwarf", "sphinx", "jigsaw", "oxygen",
        "kumquat", "fjord", "byway",
    ];
    let mut state = 0x5E6_F11Eu64;
    let docs: Vec<String> = (0..50)
        .map(|_| {
            let n = 1 + ((seeded_f32(&mut state).abs() * 2.0) as usize).min(4);
            (0..n)
                .map(|_| {
                    let x = seeded_f32(&mut state).abs();
                    VOCAB[(x * 2.9) as usize % VOCAB.len()]
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    let refs: Vec<&str> = docs.iter().map(|s| s.as_str()).collect();
    let flat = VecIndex::from_vectors(emb.dim(), docs.iter().map(|d| emb.encode(d)));
    let dir = std::env::temp_dir().join("semvec-proptest-seeded");
    let n = refs.len();

    for seg_rows in [n, n.div_ceil(2), n.div_ceil(7), 4] {
        let built = SegmentedIndex::build_parallel(&emb, &refs, seg_rows, 1);
        let path = dir.join(format!("seeded-{seg_rows}-{}.seg", std::process::id()));
        built.write_to(&path).expect("write segmented index");
        let opened = SegmentedIndex::open(&path).expect("reopen segmented index");
        assert!(opened.is_file_backed());

        // Round-trip byte identity: vectors, scales, postings.
        for id in 0..built.len() {
            assert!(built
                .vector(id)
                .iter()
                .zip(opened.vector(id))
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
        for s in 0..built.num_segments() {
            assert_eq!(
                built.segment_scale(s).to_bits(),
                opened.segment_scale(s).to_bits()
            );
        }
        for text in &refs {
            assert_eq!(
                built.candidates(&emb, text, QueryStyle::Folded),
                opened.candidates(&emb, text, QueryStyle::Folded)
            );
        }

        // Shard-count invariance of top-k vs the unsharded scan, both
        // scoring engines, built and reopened.
        for (k, sigma, salt) in [(1usize, 0.0f32, 0u64), (5, 0.30, 7), (12, 0.55, 0xC0FFEE)] {
            for id in (0..n).step_by(11) {
                let q = flat.vector(id);
                let exact = flat.top_k_noisy(q, k, sigma, salt);
                assert_eq!(built.top_k_noisy(q, k, sigma, salt), exact);
                assert_eq!(opened.top_k_noisy(q, k, sigma, salt), exact);
                assert_eq!(built.top_k_noisy_quant(q, k, sigma, salt).0, exact);
                assert_eq!(opened.top_k_noisy_quant(q, k, sigma, salt).0, exact);
            }
        }

        // Corruption rejection at spread byte positions.
        let clean = std::fs::read(&path).expect("read back");
        for frac in [0usize, 1, 2, 3, 4] {
            let pos = (clean.len() - 1) * frac / 4;
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x40;
            std::fs::write(&path, &bytes).expect("write corrupted");
            assert!(
                SegmentedIndex::open(&path).is_err(),
                "open accepted corruption at byte {pos} (seg_rows {seg_rows})"
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// Seeded counterpart of `batched_topk_equals_sequential_per_query` and
/// `batched_hybrid_equals_sequential_per_slot`, exercised even where
/// `proptest` is stubbed out: batches of widths 0, 1, and through every
/// register-tile remainder (incl. duplicate slots) must be bit-identical
/// to the sequential scans in every retrieval × scoring mode.
#[test]
fn batched_search_matches_sequential_on_seeded_random_corpora() {
    let emb = Embedder::paper();
    const VOCAB: [&str; 12] = [
        "zebra", "quartz", "violin", "hammock", "puzzle", "dwarf", "sphinx", "jigsaw", "oxygen",
        "kumquat", "fjord", "byway",
    ];
    let mut state = 0xBA7C4u64;
    let word = |state: &mut u64| {
        let x = seeded_f32(state).abs();
        VOCAB[(x * 2.9) as usize % VOCAB.len()]
    };
    let docs: Vec<String> = (0..60)
        .map(|_| {
            let n = 1 + ((seeded_f32(&mut state).abs() * 2.0) as usize).min(4);
            (0..n)
                .map(|_| word(&mut state))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    let refs: Vec<&str> = docs.iter().map(|s| s.as_str()).collect();
    let hybrid = HybridIndex::build_parallel(&emb, &refs, 1);
    let flat = VecIndex::from_vectors(emb.dim(), docs.iter().map(|d| emb.encode(d)));

    for width in [0usize, 1, 3, 4, 5, 8, 9] {
        let mut texts: Vec<String> = (0..width)
            .map(|_| {
                let n = 1 + ((seeded_f32(&mut state).abs() * 2.0) as usize).min(3);
                (0..n)
                    .map(|_| word(&mut state))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        if width >= 2 {
            // Force a duplicate slot.
            texts[width - 1] = texts[0].clone();
        }
        let qvecs: Vec<Vec<f32>> = texts.iter().map(|t| emb.encode(t)).collect();
        let cands: Vec<Vec<u32>> = texts
            .iter()
            .map(|t| hybrid.candidates(&emb, t, QueryStyle::Folded))
            .collect();
        let salts: Vec<u64> = texts
            .iter()
            .map(|t| {
                if t == &texts[0] {
                    7
                } else {
                    seeded_f32(&mut state).to_bits() as u64
                }
            })
            .collect();
        for sigma in [0.0f32, 0.30] {
            for k in [1usize, 5, 70] {
                // Flat index, both engines.
                let nq: Vec<NoisyQuery<'_>> = qvecs
                    .iter()
                    .zip(&salts)
                    .map(|(v, &salt)| NoisyQuery { vector: v, salt })
                    .collect();
                for (got, s) in flat.top_k_noisy_batch(&nq, k, sigma).iter().zip(&nq) {
                    assert_eq!(got, &flat.top_k_noisy(s.vector, k, sigma, s.salt));
                }
                for ((hits, st), s) in flat.top_k_noisy_quant_batch(&nq, k, sigma).iter().zip(&nq) {
                    let (seq, seq_st) = flat.top_k_noisy_quant(s.vector, k, sigma, s.salt);
                    assert_eq!(hits, &seq, "width {width} k {k} sigma {sigma}");
                    assert_eq!(
                        (st.screened, st.reranked),
                        (seq_st.screened, seq_st.reranked)
                    );
                }
                // Hybrid pruned scan, both engines.
                let slots: Vec<BatchSlot<'_>> = qvecs
                    .iter()
                    .zip(&cands)
                    .zip(&salts)
                    .map(|((v, c), &salt)| BatchSlot {
                        query: v,
                        cands: c,
                        salt,
                    })
                    .collect();
                for (got, s) in hybrid
                    .top_k_noisy_encoded_batch(&slots, k, sigma)
                    .iter()
                    .zip(&slots)
                {
                    assert_eq!(
                        got,
                        &hybrid.top_k_noisy_encoded(s.query, s.cands, k, sigma, s.salt)
                    );
                }
                let (quant, stats) = hybrid.top_k_noisy_encoded_quant_batch(&slots, k, sigma);
                for ((got, st), s) in quant.iter().zip(&stats).zip(&slots) {
                    let (seq, seq_st) =
                        hybrid.top_k_noisy_encoded_quant(s.query, s.cands, k, sigma, s.salt);
                    assert_eq!(got, &seq, "width {width} k {k} sigma {sigma}");
                    assert_eq!(
                        (st.screened, st.reranked),
                        (seq_st.screened, seq_st.reranked)
                    );
                }
                // Duplicate slots fan out identical results.
                if width >= 2 {
                    let b = flat.top_k_noisy_batch(&nq, k, sigma);
                    assert_eq!(b[0], b[width - 1], "duplicate slots must agree");
                }
            }
        }
    }
}

/// Seeded counterpart of `entity_routed_topk_equals_exact_on_any_corpus`
/// across the full retrieval × scoring × batch × shard cross product,
/// exercised even where `proptest` is stubbed out: entity-routed
/// sequential, quant, and batched scans at four shard geometries and
/// two surface coverages must all be bit-identical to the flat exact
/// scan under the saturated ceiling, with the popularity prior's
/// ranking never changing the candidate set.
#[test]
fn entity_routed_search_matches_exact_on_seeded_corpora() {
    let emb = Embedder::paper();
    const VOCAB: [&str; 12] = [
        "zebra", "quartz", "violin", "hammock", "puzzle", "dwarf", "sphinx", "jigsaw", "oxygen",
        "kumquat", "fjord", "byway",
    ];
    let mut state = 0xE17_11Du64;
    let docs: Vec<String> = (0..60)
        .map(|_| {
            let n = 1 + ((seeded_f32(&mut state).abs() * 2.0) as usize).min(4);
            (0..n)
                .map(|_| {
                    let x = seeded_f32(&mut state).abs();
                    VOCAB[(x * 2.9) as usize % VOCAB.len()]
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    let refs: Vec<&str> = docs.iter().map(|s| s.as_str()).collect();
    let flat = VecIndex::from_vectors(emb.dim(), docs.iter().map(|d| emb.encode(d)));
    let n = refs.len();
    let queries: Vec<&str> = (0..n).step_by(13).map(|i| refs[i]).collect();

    for stride in [1usize, 2] {
        for seg_rows in [n, n.div_ceil(2), n.div_ceil(7), 4] {
            let ent = entity_for_docs(&emb, &docs, stride).with_ceiling(1.0);
            let seg = SegmentedIndex::build_parallel(&emb, &refs, seg_rows, 1).with_entity(ent);
            let e = seg.entity_index().unwrap();
            let encoded: Vec<Vec<f32>> = queries.iter().map(|q| emb.encode(q)).collect();
            let folds: Vec<Vec<u32>> = queries
                .iter()
                .map(|q| {
                    let fold = e.fold(&emb, q);
                    let mut unranked = fold.entities.clone();
                    unranked.sort_unstable();
                    assert_eq!(
                        e.doc_candidates(&unranked),
                        e.doc_candidates(&fold.entities),
                        "prior ranking changed the candidate set"
                    );
                    fold.entities
                })
                .collect();
            let ents: Vec<Vec<u32>> = folds.iter().map(|f| e.doc_candidates(f)).collect();
            let toks: Vec<Vec<u32>> = queries
                .iter()
                .zip(&ents)
                .map(|(q, en)| minus_sorted(&seg.candidates(&emb, q, QueryStyle::Folded), en))
                .collect();
            for (k, sigma, salt) in [(1usize, 0.0f32, 0u64), (5, 0.30, 7), (12, 0.55, 0xC0FFEE)] {
                let slots: Vec<EntityBatchSlot<'_>> = (0..queries.len())
                    .map(|i| EntityBatchSlot {
                        query: &encoded[i],
                        ents: &ents[i],
                        toks: &toks[i],
                        salt: salt.wrapping_add(i as u64),
                    })
                    .collect();
                let batch = seg.top_k_noisy_entity_batch(&slots, k, sigma);
                let (qbatch, qstats) = seg.top_k_noisy_entity_quant_batch(&slots, k, sigma);
                for (i, s) in slots.iter().enumerate() {
                    let exact = flat.top_k_noisy(s.query, k, sigma, s.salt);
                    assert_eq!(
                        seg.top_k_noisy_entity(s.query, s.ents, s.toks, k, sigma, s.salt),
                        exact,
                        "sequential slot {i} stride {stride} seg_rows {seg_rows} k {k}"
                    );
                    let (qh, qs) =
                        seg.top_k_noisy_entity_quant(s.query, s.ents, s.toks, k, sigma, s.salt);
                    assert_eq!(qh, exact, "quant slot {i} seg_rows {seg_rows} k {k}");
                    assert_eq!(batch[i], exact, "batch slot {i} seg_rows {seg_rows} k {k}");
                    assert_eq!(
                        qbatch[i], exact,
                        "qbatch slot {i} seg_rows {seg_rows} k {k}"
                    );
                    assert_eq!(qstats[i], qs, "stats slot {i} seg_rows {seg_rows} k {k}");
                }
            }
        }
    }
}
