//! Injectable wall clock for the per-stage timing breakdown.
//!
//! `pgg-core` is determinism-audited: detlint (DL003) forbids
//! `Instant::now` outside `crates/bench`, and the runner's contract is
//! byte-identical output for any thread count — which a wall-clock
//! reading embedded in a trace would break the moment two schedules
//! interleave differently. Stage wall timing therefore goes through a
//! process-wide *installable* reader: left uninstalled (the default,
//! and in every unit test) [`wall_ns`] is the constant `0`, so traces
//! carry no schedule-dependent bytes; the bench binaries install a
//! real monotonic reader at startup to populate the wall columns of
//! `BENCH_perf.json`. The virtual half of every stage timing never
//! touches this module and is deterministic unconditionally.

use std::sync::OnceLock;

static WALL_CLOCK: OnceLock<fn() -> u64> = OnceLock::new();

/// Install the process-wide wall-clock reader (nanoseconds since an
/// arbitrary fixed origin). The first call wins and later calls are
/// ignored, so a test harness that never installs keeps the zero
/// clock for its whole run.
pub fn install_wall_clock(reader: fn() -> u64) {
    let _ = WALL_CLOCK.set(reader);
}

/// Current wall-clock reading in nanoseconds, or `0` when no reader
/// has been installed — the deterministic default.
pub fn wall_ns() -> u64 {
    WALL_CLOCK.get().map_or(0, |read| read())
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: `install_wall_clock` is process-global, so no unit test
    // installs a reader — doing so would leak into every other test in
    // the binary. The zero default is asserted here; installation is
    // exercised by the bench binaries.
    #[test]
    fn uninstalled_clock_reads_zero() {
        assert_eq!(wall_ns(), 0);
        assert_eq!(wall_ns(), 0);
    }
}
