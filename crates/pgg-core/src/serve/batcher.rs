//! The admission batcher: coalesces the grounding retrievals of
//! concurrently-executing questions into one
//! [`BaseIndex::search_batch`] call.
//!
//! Protocol: a worker **enrolls** when it starts a job and **leaves**
//! when the job ends. A job that grounds **submits** its query slots
//! and blocks for its share of a flushed batch; a job that never
//! grounds (empty pseudo-graph, deadline skipped the stage) simply
//! leaves. A flush happens exactly when every enrolled job is parked
//! in `submit` — at that point nobody can contribute another slot, so
//! waiting longer cannot widen the batch — or when the last
//! non-waiting job leaves while requests are parked. Both triggers are
//! evaluated under the one mutex, so the flush decision is race-free
//! and the protocol cannot deadlock: whenever `waiting == active` with
//! pending requests, whichever thread got the lock performs the flush
//! before it blocks.
//!
//! Outcome-neutrality: `search_batch` guarantees per-slot bit-identity
//! with the sequential path, so *which* questions happened to share a
//! batch never changes any question's hits — only the
//! [`BatchTelemetry`] counters, which are reported as
//! scheduling-dependent.

use crate::retrieval::{BaseIndex, QuerySlot};
use crate::serve::BatchTelemetry;
use crate::PipelineConfig;
use kgstore::hash::FxHashMap;
use semvec::{Embedder, Hit, QueryStyle};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// A slot copied out of the submitting job's stack frame so the batch
/// can outlive it.
struct OwnedSlot {
    text: String,
    style: QueryStyle,
    salt: u64,
}

#[derive(Default)]
struct BrokerState {
    /// Jobs enrolled (started, not yet left).
    active: usize,
    /// Enrolled jobs parked in `submit`.
    waiting: usize,
    next_req: u64,
    /// Parked requests, in submit order.
    pending: VecDeque<(u64, Vec<OwnedSlot>)>,
    /// Flushed results awaiting pickup, by request id.
    ready: FxHashMap<u64, Vec<Vec<Hit>>>,
    telemetry: BatchTelemetry,
}

/// Cross-question grounding batcher shared by the worker pool.
pub(crate) struct GroundBroker<'a> {
    base: &'a BaseIndex,
    embedder: &'a Embedder,
    cfg: &'a PipelineConfig,
    state: Mutex<BrokerState>,
    cv: Condvar,
}

impl<'a> GroundBroker<'a> {
    pub(crate) fn new(
        base: &'a BaseIndex,
        embedder: &'a Embedder,
        cfg: &'a PipelineConfig,
    ) -> Self {
        Self {
            base,
            embedder,
            cfg,
            state: Mutex::new(BrokerState::default()),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, BrokerState> {
        // A job panic can never happen while this mutex is held (all
        // pipeline code runs outside it), but stay usable even if a
        // poisoned lock ever surfaces.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A worker started a job.
    pub(crate) fn enroll(&self) {
        self.lock().active += 1;
    }

    /// A worker finished a job (grounded or not). If everyone still
    /// enrolled is parked, their batch can no longer grow — flush it.
    pub(crate) fn leave(&self) {
        let mut st = self.lock();
        st.active -= 1;
        if st.waiting == st.active && !st.pending.is_empty() {
            self.flush(&mut st);
            self.cv.notify_all();
        }
    }

    /// Park this job's grounding queries and block until a flushed
    /// batch carries their results. Slot `i` of the return value is
    /// bit-identical to what `base.search_batch` would return for
    /// `slots[i]` alone.
    pub(crate) fn submit(&self, slots: &[QuerySlot<'_>]) -> Vec<Vec<Hit>> {
        let mut st = self.lock();
        let id = st.next_req;
        st.next_req += 1;
        let owned = slots
            .iter()
            .map(|s| OwnedSlot {
                text: s.text.to_string(),
                style: s.style,
                salt: s.salt,
            })
            .collect();
        st.pending.push_back((id, owned));
        st.waiting += 1;
        if st.waiting == st.active {
            self.flush(&mut st);
            self.cv.notify_all();
        }
        loop {
            if let Some(r) = st.ready.remove(&id) {
                st.waiting -= 1;
                return r;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Merge every pending request into one `search_batch` call and
    /// fan the per-slot results back out. Runs under the state mutex:
    /// enroll/leave/submit of other jobs block for the duration, which
    /// is exactly the synchronization the flush condition needs.
    fn flush(&self, st: &mut BrokerState) {
        let pending: Vec<(u64, Vec<OwnedSlot>)> = std::mem::take(&mut st.pending).into();
        let merged: Vec<QuerySlot<'_>> = pending
            .iter()
            .flat_map(|(_, slots)| slots.iter())
            .map(|s| QuerySlot {
                text: &s.text,
                style: s.style,
                salt: s.salt,
            })
            .collect();
        st.telemetry.batches += 1;
        st.telemetry.slots += merged.len() as u64;
        st.telemetry.widest = st.telemetry.widest.max(pending.len());
        let mut results = self
            .base
            .search_batch(
                self.embedder,
                &merged,
                self.cfg.top_k,
                self.cfg.retrieval_jitter,
                self.cfg.retrieval_mode,
                self.cfg.scoring_mode,
            )
            .into_iter();
        for (id, slots) in &pending {
            let share: Vec<Vec<Hit>> = results.by_ref().take(slots.len()).collect();
            st.ready.insert(*id, share);
        }
    }

    /// Counters accumulated so far.
    pub(crate) fn telemetry(&self) -> BatchTelemetry {
        self.lock().telemetry.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use semvec::Embedder;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use worldgen::{derive, generate, SourceConfig, WorldConfig};

    fn base_and_friends() -> (kgstore::KgSource, Embedder, PipelineConfig) {
        let world = generate(&WorldConfig {
            scale: 0.3,
            ..Default::default()
        });
        let src = derive(&world, &SourceConfig::wikidata());
        (src, Embedder::default(), PipelineConfig::default())
    }

    #[test]
    fn coalesced_results_match_the_direct_path() {
        let (src, emb, cfg) = base_and_friends();
        let base = BaseIndex::for_question(&src, &emb, &cfg, "who founded the academy");
        let broker = GroundBroker::new(&base, &emb, &cfg);
        let texts = ["alpha beta", "gamma delta", "alpha beta"];
        let slots: Vec<QuerySlot<'_>> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| QuerySlot {
                text: t,
                style: QueryStyle::Folded,
                salt: 7 + i as u64,
            })
            .collect();
        let direct = base.search_batch(
            &emb,
            &slots,
            cfg.top_k,
            cfg.retrieval_jitter,
            cfg.retrieval_mode,
            cfg.scoring_mode,
        );

        let flushed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            // Two enrolled jobs: one submits the first two slots, the
            // other the third; the flush merges them into one batch.
            broker.enroll();
            broker.enroll();
            let broker_ref = &broker;
            let slots_a = &slots[..2];
            let slots_b = &slots[2..];
            let flushed_ref = &flushed;
            let ha = s.spawn(move || {
                let r = broker_ref.submit(slots_a);
                flushed_ref.fetch_add(1, Ordering::Relaxed);
                r
            });
            let hb = s.spawn(move || {
                let r = broker_ref.submit(slots_b);
                flushed_ref.fetch_add(1, Ordering::Relaxed);
                r
            });
            let ra = ha.join().unwrap();
            let rb = hb.join().unwrap();
            broker.leave();
            broker.leave();
            assert_eq!(ra.len(), 2);
            assert_eq!(rb.len(), 1);
            assert_eq!(ra[0], direct[0]);
            assert_eq!(ra[1], direct[1]);
            assert_eq!(rb[0], direct[2]);
        });
        assert_eq!(flushed.load(Ordering::Relaxed), 2);
        let t = broker.telemetry();
        assert_eq!(t.batches, 1, "both submissions shared one flush");
        assert_eq!(t.slots, 3);
        assert_eq!(t.widest, 2);
    }

    #[test]
    fn a_job_that_never_grounds_releases_the_waiters() {
        let (src, emb, cfg) = base_and_friends();
        let base = BaseIndex::for_question(&src, &emb, &cfg, "who founded the academy");
        let broker = GroundBroker::new(&base, &emb, &cfg);
        let slot = QuerySlot {
            text: "solo query",
            style: QueryStyle::Folded,
            salt: 3,
        };
        std::thread::scope(|s| {
            broker.enroll(); // the grounding job
            broker.enroll(); // the job that will just leave
            let broker_ref = &broker;
            let h = s.spawn(move || broker_ref.submit(std::slice::from_ref(&slot)));
            // Let the submitter park, then end the non-grounding job:
            // its leave must trigger the flush that frees the waiter.
            while broker.lock().waiting == 0 {
                std::thread::yield_now();
            }
            broker.leave();
            let r = h.join().unwrap();
            broker.leave();
            assert_eq!(r.len(), 1);
        });
        assert_eq!(broker.telemetry().widest, 1);
    }
}
