//! The serving engine: a discrete-event simulation over virtual time
//! driving a pool of real worker threads.
//!
//! The main thread owns every piece of service state — admission
//! queue, virtual servers, deadlines, the service breaker — and
//! advances a virtual event clock over two event kinds: *arrival*
//! (admit, shed, or queue) and *completion* (record the outcome, feed
//! the breaker, start the next queued job). Workers only evaluate
//! dispatched jobs — the pure `(question, budget) → output` function
//! of [`super::executor`] — and send results back over a channel.
//!
//! The loop never acts on an event until every completion that could
//! precede it is known: each in-flight job finishes no earlier than
//! `started + min_service`, so the loop blocks for results exactly
//! when that bound does not clear the next known event. Completions
//! are then ordered by `(virtual finish, dispatch seq)`, which makes
//! the whole schedule — and every outcome — independent of how many
//! real workers raced to produce the results.

use crate::method::QaContext;
use crate::resilience::{best_effort_answer, Admit, Breaker, BreakerState};
use crate::retrieval::BaseIndex;
use crate::serve::batcher::GroundBroker;
use crate::serve::executor::{answer_within_budget, CostModel, JobOutput};
use crate::serve::{Disposition, OfferedTrace, Outcome, ServeConfig, ServeReport, ShedReason};
use crate::PipelineConfig;
use kgstore::hash::FxHashMap;
use kgstore::KgSource;
use semvec::Embedder;
use simllm::LanguageModel;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex, MutexGuard};
use worldgen::Question;

/// One dispatched unit of work.
struct Job {
    seq: u64,
    offered: usize,
    budget_ms: u64,
}

/// What a worker sends back: the job's output, or the panic message
/// if the pipeline blew up (the service answers the question degraded
/// either way).
struct JobResult {
    seq: u64,
    outcome: Result<JobOutput, String>,
}

/// The dispatch board: a closable MPMC queue on a mutex + condvar.
struct Board {
    state: Mutex<(VecDeque<Job>, bool)>,
    cv: Condvar,
}

impl Board {
    fn new() -> Self {
        Self {
            state: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, (VecDeque<Job>, bool)> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn push(&self, job: Job) {
        self.lock().0.push_back(job);
        self.cv.notify_one();
    }

    fn close(&self) {
        self.lock().1 = true;
        self.cv.notify_all();
    }

    /// Next job, or `None` once the board is closed and drained.
    fn take(&self) -> Option<Job> {
        let mut st = self.lock();
        loop {
            if let Some(j) = st.0.pop_front() {
                return Some(j);
            }
            if st.1 {
                return None;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

fn worker_loop(
    board: &Board,
    broker: &GroundBroker<'_>,
    ctx: &QaContext<'_>,
    questions: &[Question],
    costs: &CostModel,
    tx: mpsc::Sender<JobResult>,
) {
    while let Some(job) = board.take() {
        broker.enroll();
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            answer_within_budget(
                ctx,
                &questions[job.offered],
                job.budget_ms,
                costs,
                Some(broker),
            )
        }));
        broker.leave();
        let outcome = res.map_err(|payload| {
            payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_string())
        });
        if tx
            .send(JobResult {
                seq: job.seq,
                outcome,
            })
            .is_err()
        {
            return;
        }
    }
}

/// A dispatched job the event loop has not yet seen a result for.
struct InFlight {
    offered: usize,
    started_ms: u64,
}

/// A job whose result is known; waits in the completion heap until
/// its virtual finish time is reached.
struct Finished {
    offered: usize,
    started_ms: u64,
    answer: String,
    degradation: Vec<String>,
    attempts: u32,
    faults: usize,
    panicked: bool,
}

/// Run the QA service over an offered trace against a shared base
/// index (callers typically hold it in an `Arc` and serve many traces
/// from the same build). Returns per-arrival outcomes in offered
/// order; same `questions` + `offered` + configs ⇒ a byte-identical
/// report (minus batch telemetry) for any worker count.
#[allow(clippy::too_many_arguments)] // mirrors QaContext + the serve knobs
pub fn serve(
    llm: &dyn LanguageModel,
    source: &KgSource,
    base: &BaseIndex,
    embedder: &Embedder,
    cfg: &PipelineConfig,
    scfg: &ServeConfig,
    questions: &[Question],
    offered: &OfferedTrace,
) -> ServeReport {
    let n = offered.arrivals.len();
    assert!(
        n == 0 || !questions.is_empty(),
        "serving arrivals needs at least one question"
    );
    // Each offered arrival serves a clone with a unique id: the fault
    // plan and the simulated model key on the question id, so two
    // offerings of the same dataset question must not share per-slot
    // fault state (a real-time race would leak into outcomes).
    let offered_questions: Vec<Question> = offered
        .arrivals
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let mut q = questions[a.question].clone();
            q.id = format!("{}#o{i}", q.id);
            q
        })
        .collect();
    let ctx = QaContext {
        llm,
        source: Some(source),
        base: Some(base),
        embedder,
        cfg,
    };
    let costs = CostModel {
        stage_overhead_ms: scfg.stage_overhead_ms,
        attempt_cost_ms: scfg.attempt_cost_ms,
        query_cost_ms: scfg.query_cost_ms,
    };
    let broker = GroundBroker::new(base, embedder, cfg);
    let board = Board::new();
    let (tx, rx) = mpsc::channel::<JobResult>();
    let workers = if scfg.workers == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
    } else {
        scfg.workers
    };

    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let (board, broker, ctx, qs, costs) =
                (&board, &broker, &ctx, &offered_questions, &costs);
            s.spawn(move || worker_loop(board, broker, ctx, qs, costs, tx));
        }
        let mut report = event_loop(scfg, offered, questions, &costs, &board, &rx);
        report.batch = broker.telemetry();
        board.close();
        report
    })
}

/// Fold one worker result into the completion heap.
fn absorb(
    r: JobResult,
    in_flight: &mut FxHashMap<u64, InFlight>,
    heap: &mut BinaryHeap<Reverse<(u64, u64)>>,
    done: &mut FxHashMap<u64, Finished>,
    questions: &[Question],
    offered: &OfferedTrace,
    min_service_ms: u64,
) {
    let fl = in_flight
        .remove(&r.seq)
        .expect("result for a job never dispatched");
    let (f, service_ms) = match r.outcome {
        Ok(out) => {
            let attempts = out.trace.total_attempts();
            let faults = out.trace.total_faults();
            let service = out.service_ms.max(min_service_ms);
            (
                Finished {
                    offered: fl.offered,
                    started_ms: fl.started_ms,
                    answer: out.answer,
                    degradation: out.trace.degradation,
                    attempts,
                    faults,
                    panicked: false,
                },
                service,
            )
        }
        Err(msg) => {
            // A panicking job is isolated: the question is answered
            // degraded and the panic is preserved as a note (the soak
            // gates assert none ever happen).
            let qid = &questions[offered.arrivals[fl.offered].question].id;
            (
                Finished {
                    offered: fl.offered,
                    started_ms: fl.started_ms,
                    answer: best_effort_answer(&[]),
                    degradation: vec![format!("panic:{}:{}:{msg}", fl.offered, qid)],
                    attempts: 0,
                    faults: 0,
                    panicked: true,
                },
                min_service_ms,
            )
        }
    };
    heap.push(Reverse((fl.started_ms + service_ms, r.seq)));
    done.insert(r.seq, f);
}

fn event_loop(
    scfg: &ServeConfig,
    offered: &OfferedTrace,
    questions: &[Question],
    costs: &CostModel,
    board: &Board,
    rx: &mpsc::Receiver<JobResult>,
) -> ServeReport {
    let n = offered.arrivals.len();
    let min_service = costs.min_service_ms();
    let mut outcomes: Vec<Option<Outcome>> = std::iter::repeat_with(|| None).take(n).collect();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut busy = 0usize;
    let mut breaker = Breaker::new(scfg.breaker_threshold, scfg.breaker_cooldown_ms);
    let mut probe_offered: Option<usize> = None;
    let mut next_seq = 0u64;
    let mut ai = 0usize;
    let mut in_flight: FxHashMap<u64, InFlight> = FxHashMap::default();
    let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut done: FxHashMap<u64, Finished> = FxHashMap::default();
    let mut now = 0u64;

    // Move queued questions into free virtual servers at time `t`.
    // A question whose deadline already expired while queued is
    // answered degraded on the spot — admitted is a promise.
    macro_rules! start_queued {
        ($t:expr) => {
            while busy < scfg.virtual_servers {
                let Some(idx) = queue.pop_front() else { break };
                busy += 1;
                let deadline_abs = offered.arrivals[idx].at_ms + scfg.deadline_ms;
                let seq = next_seq;
                next_seq += 1;
                if $t >= deadline_abs {
                    done.insert(
                        seq,
                        Finished {
                            offered: idx,
                            started_ms: $t,
                            answer: best_effort_answer(&[]),
                            degradation: vec!["deadline:expired-in-queue".into()],
                            attempts: 0,
                            faults: 0,
                            panicked: false,
                        },
                    );
                    heap.push(Reverse(($t + min_service, seq)));
                } else {
                    in_flight.insert(
                        seq,
                        InFlight {
                            offered: idx,
                            started_ms: $t,
                        },
                    );
                    board.push(Job {
                        seq,
                        offered: idx,
                        budget_ms: deadline_abs - $t,
                    });
                }
            }
        };
    }

    enum Event {
        Arrival,
        Completion,
    }

    loop {
        // Absorb whatever results already arrived, without blocking.
        while let Ok(r) = rx.try_recv() {
            absorb(
                r,
                &mut in_flight,
                &mut heap,
                &mut done,
                questions,
                offered,
                min_service,
            );
        }
        // Pick the next event, blocking for in-flight results whenever
        // an unknown completion could still precede (or tie) it.
        let event = loop {
            let next_completion = heap.peek().map(|Reverse((t, _))| *t);
            let next_arrival = if ai < n {
                Some(offered.arrivals[ai].at_ms)
            } else {
                None
            };
            let known = match (next_completion, next_arrival) {
                (Some(tc), Some(ta)) if tc <= ta => Some((tc, Event::Completion)),
                (Some(_), Some(ta)) => Some((ta, Event::Arrival)),
                (Some(tc), None) => Some((tc, Event::Completion)),
                (None, Some(ta)) => Some((ta, Event::Arrival)),
                (None, None) => None,
            };
            let unknown_bound = in_flight.values().map(|f| f.started_ms + min_service).min();
            match (&known, unknown_bound) {
                (None, None) => break None,
                (None, Some(_)) => {}
                (Some((kt, _)), Some(b)) if b <= *kt => {}
                (Some(_), _) => break known,
            }
            // An in-flight job might finish first: wait for a result.
            let r = rx.recv().expect("a worker thread died");
            absorb(
                r,
                &mut in_flight,
                &mut heap,
                &mut done,
                questions,
                offered,
                min_service,
            );
        };
        let Some((t, event)) = event else { break };
        now = t;
        match event {
            Event::Completion => {
                let Reverse((_, seq)) = heap.pop().expect("peeked completion vanished");
                let f = done.remove(&seq).expect("completion without a result");
                busy -= 1;
                // Service-level health signal: transport-exhausted
                // degradation (or a panic) is a failure; deadline
                // degradation is load, not fault, and does not count.
                let ok = !f.panicked && f.degradation.iter().all(|d| d.starts_with("deadline:"));
                if probe_offered == Some(f.offered) {
                    // The recovery probe only closes the breaker if it
                    // actually exercised the transport: a probe that
                    // expired in the queue proves nothing.
                    let probe_ok = ok && (f.attempts > 0 || f.degradation.is_empty());
                    breaker.on_result(now, probe_ok);
                    probe_offered = None;
                } else if breaker.state() == BreakerState::Closed {
                    breaker.on_result(now, ok);
                }
                let arrival = &offered.arrivals[f.offered];
                outcomes[f.offered] = Some(Outcome {
                    offered: f.offered,
                    qid: questions[arrival.question].id.clone(),
                    arrival_ms: arrival.at_ms,
                    disposition: Disposition::Answered {
                        started_ms: f.started_ms,
                        finished_ms: now,
                        answer: f.answer,
                        degradation: f.degradation,
                        attempts: f.attempts,
                        faults: f.faults,
                    },
                });
                start_queued!(now);
            }
            Event::Arrival => {
                let idx = ai;
                ai += 1;
                let arrival = &offered.arrivals[idx];
                // Admission: capacity first (a full queue sheds
                // regardless of breaker state — rejecting the newest
                // arrival is the shedding policy), then the breaker.
                let has_capacity = busy < scfg.virtual_servers || queue.len() < scfg.queue_cap;
                let shed = if !has_capacity {
                    Some(ShedReason::QueueFull)
                } else {
                    match breaker.admit(now) {
                        Admit::Yes => None,
                        Admit::Probe => {
                            probe_offered = Some(idx);
                            None
                        }
                        Admit::No => Some(if breaker.state() == BreakerState::HalfOpen {
                            ShedReason::ProbeInFlight
                        } else {
                            ShedReason::BreakerOpen
                        }),
                    }
                };
                match shed {
                    Some(reason) => {
                        outcomes[idx] = Some(Outcome {
                            offered: idx,
                            qid: questions[arrival.question].id.clone(),
                            arrival_ms: arrival.at_ms,
                            disposition: Disposition::Shed { reason },
                        });
                    }
                    None => {
                        queue.push_back(idx);
                        start_queued!(now);
                    }
                }
            }
        }
    }
    debug_assert!(queue.is_empty() && busy == 0 && in_flight.is_empty());

    ServeReport {
        outcomes: outcomes
            .into_iter()
            .enumerate()
            .map(|(i, o)| o.unwrap_or_else(|| panic!("arrival {i} has no outcome")))
            .collect(),
        breaker_transitions: breaker.transitions().to_vec(),
        makespan_ms: now,
        batch: crate::serve::BatchTelemetry::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::Arrival;
    use simllm::{Completion, FaultPlan, FaultyLlm, LlmError, LlmTask, ModelProfile, SimLlm};
    use std::sync::Arc;
    use worldgen::{datasets::simpleq, derive, generate, SourceConfig, WorldConfig};

    struct Fixture {
        world: Arc<worldgen::World>,
        src: kgstore::KgSource,
        emb: Embedder,
        cfg: PipelineConfig,
        questions: Vec<Question>,
        base: BaseIndex,
    }

    fn fixture(n_questions: usize, seed: u64) -> Fixture {
        let world = Arc::new(generate(&WorldConfig::default()));
        let src = derive(&world, &SourceConfig::wikidata());
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let ds = simpleq::generate(&world, n_questions, seed);
        let base = BaseIndex::for_questions(
            &src,
            &emb,
            &cfg,
            ds.questions.iter().map(|q| q.text.as_str()),
        );
        Fixture {
            world,
            src,
            emb,
            cfg,
            questions: ds.questions,
            base,
        }
    }

    fn answered_note(o: &Outcome, needle: &str) -> bool {
        matches!(&o.disposition, Disposition::Answered { degradation, .. }
            if degradation.iter().any(|d| d.contains(needle)))
    }

    #[test]
    fn low_load_answers_everything_unshed_and_undegraded() {
        let fx = fixture(12, 31);
        let llm = SimLlm::new(fx.world.clone(), ModelProfile::gpt35_sim());
        let offered = OfferedTrace::poisson(9, 2.0, 16, fx.questions.len());
        let scfg = ServeConfig {
            workers: 2,
            ..Default::default()
        };
        let r = serve(
            &llm,
            &fx.src,
            &fx.base,
            &fx.emb,
            &fx.cfg,
            &scfg,
            &fx.questions,
            &offered,
        );
        assert_eq!(r.outcomes.len(), 16);
        assert_eq!(r.shed(), 0, "2 q/s against 4 servers must not shed");
        assert!(r.breaker_transitions.is_empty());
        for o in &r.outcomes {
            match &o.disposition {
                Disposition::Answered {
                    answer,
                    degradation,
                    ..
                } => {
                    assert!(!answer.is_empty());
                    assert!(degradation.is_empty(), "{:?}", degradation);
                }
                Disposition::Shed { .. } => unreachable!(),
            }
        }
        assert!(r.makespan_ms > 0);
        assert!(r.latency_percentile_ms(50.0) > 0);
    }

    #[test]
    fn outcomes_are_byte_identical_for_any_worker_count() {
        let fx = fixture(10, 32);
        let offered = OfferedTrace::poisson(11, 12.0, 24, fx.questions.len());
        let run = |workers: usize| {
            // Fresh faulty transport per run: its per-slot attempt
            // counters are state, and sharing them across runs would
            // (correctly) change outcomes.
            let llm = FaultyLlm::new(
                SimLlm::new(fx.world.clone(), ModelProfile::gpt35_sim()),
                FaultPlan::uniform(0xFA57, 0.35),
            );
            let scfg = ServeConfig {
                workers,
                ..Default::default()
            };
            serve(
                &llm,
                &fx.src,
                &fx.base,
                &fx.emb,
                &fx.cfg,
                &scfg,
                &fx.questions,
                &offered,
            )
        };
        let a = run(1);
        let b = run(2);
        let c = run(8);
        assert_eq!(a.outcomes, b.outcomes, "1 vs 2 workers");
        assert_eq!(a.outcomes, c.outcomes, "1 vs 8 workers");
        assert_eq!(a.breaker_transitions, b.breaker_transitions);
        assert_eq!(a.identity_key(), b.identity_key());
        assert_eq!(a.identity_key(), c.identity_key());
    }

    #[test]
    fn overload_sheds_queue_full_and_answers_every_admission() {
        let fx = fixture(8, 33);
        let llm = SimLlm::new(fx.world.clone(), ModelProfile::gpt35_sim());
        // A burst far beyond one server + two queue slots.
        let offered = OfferedTrace {
            arrivals: (0..20)
                .map(|i| Arrival {
                    at_ms: i as u64 * 10,
                    question: i % fx.questions.len(),
                })
                .collect(),
        };
        let scfg = ServeConfig {
            queue_cap: 2,
            virtual_servers: 1,
            workers: 2,
            ..Default::default()
        };
        let r = serve(
            &llm,
            &fx.src,
            &fx.base,
            &fx.emb,
            &fx.cfg,
            &scfg,
            &fx.questions,
            &offered,
        );
        let shed_full = r
            .outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o.disposition,
                    Disposition::Shed {
                        reason: ShedReason::QueueFull
                    }
                )
            })
            .count();
        assert!(shed_full > 0, "a 100 q/s burst into one server must shed");
        for o in &r.outcomes {
            if let Disposition::Answered { answer, .. } = &o.disposition {
                assert!(!answer.is_empty(), "admitted ⇒ answered: {}", o.qid);
            }
        }
        assert!(r.answered() + r.shed() == 20);
    }

    #[test]
    fn deadline_pressure_degrades_but_every_admission_is_answered() {
        let fx = fixture(8, 34);
        let llm = SimLlm::new(fx.world.clone(), ModelProfile::gpt35_sim());
        let offered = OfferedTrace {
            arrivals: (0..12)
                .map(|i| Arrival {
                    at_ms: i as u64 * 30,
                    question: i % fx.questions.len(),
                })
                .collect(),
        };
        // A deadline below one clean question's service time: every
        // question burns its budget somewhere.
        let scfg = ServeConfig {
            deadline_ms: 150,
            virtual_servers: 1,
            queue_cap: 12,
            workers: 3,
            ..Default::default()
        };
        let r = serve(
            &llm,
            &fx.src,
            &fx.base,
            &fx.emb,
            &fx.cfg,
            &scfg,
            &fx.questions,
            &offered,
        );
        assert_eq!(r.shed(), 0, "deadlines degrade, they do not shed");
        let mut deadline_degraded = 0;
        let mut expired_in_queue = 0;
        for o in &r.outcomes {
            let Disposition::Answered {
                answer,
                degradation,
                ..
            } = &o.disposition
            else {
                unreachable!()
            };
            assert!(!answer.is_empty(), "degraded, never missing");
            if degradation.iter().any(|d| d.starts_with("deadline:")) {
                deadline_degraded += 1;
            }
            if degradation.iter().any(|d| d == "deadline:expired-in-queue") {
                expired_in_queue += 1;
            }
        }
        assert!(
            deadline_degraded >= 10,
            "a 150 ms deadline must bite: {deadline_degraded}/12"
        );
        assert!(
            expired_in_queue > 0,
            "the backlog behind one slow server must expire some queued questions"
        );
    }

    /// Fails every transport call for the first `storm_until` offered
    /// arrivals (the engine tags offered clones with `#o<i>`), then
    /// behaves like the clean simulated model.
    struct StormLlm {
        inner: SimLlm,
        storm_until: usize,
    }

    impl StormLlm {
        fn offered_index(task: &LlmTask<'_>) -> Option<usize> {
            let id = &task.question().id;
            id.rsplit_once("#o").and_then(|(_, i)| i.parse().ok())
        }
    }

    impl LanguageModel for StormLlm {
        fn name(&self) -> &str {
            "storm"
        }
        fn complete(&self, prompt: &str, task: &LlmTask<'_>) -> Result<Completion, LlmError> {
            match Self::offered_index(task) {
                Some(i) if i < self.storm_until => Err(LlmError::Transient),
                _ => self.inner.complete(prompt, task),
            }
        }
        fn call_count(&self) -> usize {
            self.inner.call_count()
        }
        fn tokens_processed(&self) -> usize {
            self.inner.tokens_processed()
        }
    }

    #[test]
    fn fault_storm_trips_the_breaker_sheds_then_recovers_through_a_probe() {
        let fx = fixture(10, 35);
        let llm = StormLlm {
            inner: SimLlm::new(fx.world.clone(), ModelProfile::gpt35_sim()),
            storm_until: 12,
        };
        let offered = OfferedTrace {
            arrivals: (0..60)
                .map(|i| Arrival {
                    at_ms: i as u64 * 100,
                    question: i % fx.questions.len(),
                })
                .collect(),
        };
        let scfg = ServeConfig {
            queue_cap: 4,
            virtual_servers: 2,
            deadline_ms: 60_000, // deadlines out of the picture
            breaker_threshold: 2,
            breaker_cooldown_ms: 800,
            workers: 4,
            ..Default::default()
        };
        let r = serve(
            &llm,
            &fx.src,
            &fx.base,
            &fx.emb,
            &fx.cfg,
            &scfg,
            &fx.questions,
            &offered,
        );
        let shed_reasons: Vec<ShedReason> = r
            .outcomes
            .iter()
            .filter_map(|o| match o.disposition {
                Disposition::Shed { reason } => Some(reason),
                _ => None,
            })
            .collect();
        assert!(
            shed_reasons.contains(&ShedReason::BreakerOpen),
            "the storm must trip the breaker and shed: {shed_reasons:?}"
        );
        assert!(
            shed_reasons.contains(&ShedReason::ProbeInFlight),
            "arrivals during the probe must shed: {shed_reasons:?}"
        );
        let kinds: Vec<(BreakerState, BreakerState)> = r
            .breaker_transitions
            .iter()
            .map(|t| (t.from, t.to))
            .collect();
        assert!(kinds.contains(&(BreakerState::Closed, BreakerState::Open)));
        assert!(kinds.contains(&(BreakerState::Open, BreakerState::HalfOpen)));
        assert!(kinds.contains(&(BreakerState::HalfOpen, BreakerState::Closed)));
        assert_eq!(
            r.breaker_transitions.last().map(|t| t.to),
            Some(BreakerState::Closed),
            "the service must end recovered"
        );
        // After recovery, clean questions are answered cleanly.
        let clean_after_storm = r.outcomes.iter().any(|o| {
            o.offered >= 12
                && matches!(&o.disposition, Disposition::Answered { degradation, .. }
                    if degradation.is_empty())
        });
        assert!(clean_after_storm, "post-storm service must be healthy");
        // And everything admitted — storm or not — was answered.
        for o in &r.outcomes {
            if let Disposition::Answered { answer, .. } = &o.disposition {
                assert!(!answer.is_empty());
            }
            assert!(!answered_note(o, "panic:"), "no panics in this run");
        }
    }
}
