//! Fault-hardened concurrent QA serving over a shared base index.
//!
//! [`serve`] runs a long-lived question-answering service as a
//! discrete-event simulation on the seeded virtual clock the rest of
//! the workspace already uses: offered questions arrive on an
//! [`OfferedTrace`], pass a bounded admission queue with
//! reject-with-reason backpressure, execute under a per-question
//! deadline whose remaining budget propagates through the pipeline
//! stages (budget burned grounding or verifying degrades the answer,
//! it never loses it), and are load-shed through a service-level
//! circuit breaker with half-open recovery (trip → shed newest-first →
//! probe → close).
//!
//! ## Determinism
//!
//! Every admission, shedding, deadline and breaker decision is made by
//! the single-threaded event loop in virtual time; worker threads only
//! evaluate the pure function `(question, budget) → (output, service
//! time)`. Real threads race, but the race can only reorder *when* a
//! job's (deterministic) result becomes known to the scheduler — never
//! what it is — and the scheduler orders completions by virtual finish
//! time before acting on them. Same seed + same offered trace ⇒
//! byte-identical per-question outcomes for any worker count.
//!
//! The one cross-question coupling — the admission batcher that
//! coalesces grounding retrievals of concurrently-executing questions
//! into one [`BaseIndex::search_batch`] call — is outcome-neutral by
//! `search_batch`'s per-slot bit-identity contract; only the
//! [`BatchTelemetry`] (how wide the batches happened to be) depends on
//! scheduling, and it is excluded from [`ServeReport::identity_key`].
//!
//! [`BaseIndex::search_batch`]: crate::retrieval::BaseIndex::search_batch

mod batcher;
mod engine;
mod executor;

pub use engine::serve;

use crate::resilience::BreakerTransition;
use kgstore::hash::{mix2, stable_str_hash, unit_f64};
use serde::{Deserialize, Serialize};

/// Serving knobs: admission bounds, deadline, the virtual cost model,
/// and the service-level breaker.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Bound on questions admitted but not yet in service; a full
    /// queue rejects new arrivals with [`ShedReason::QueueFull`].
    pub queue_cap: usize,
    /// Questions in service at once in *virtual* time (the simulated
    /// deployment's concurrency, independent of real worker threads).
    pub virtual_servers: usize,
    /// Per-question deadline, measured from arrival. Time spent
    /// queued counts against it.
    pub deadline_ms: u64,
    /// Fixed virtual cost charged per pipeline stage entered.
    pub stage_overhead_ms: u64,
    /// Virtual cost per transport attempt an LLM call makes.
    pub attempt_cost_ms: u64,
    /// Virtual cost per grounding retrieval query.
    pub query_cost_ms: u64,
    /// Consecutive service-level failures (transport-exhausted
    /// degradations, not deadline degradations) that trip the breaker.
    pub breaker_threshold: u32,
    /// Virtual ms a tripped breaker sheds arrivals before admitting a
    /// half-open probe.
    pub breaker_cooldown_ms: u64,
    /// Real worker threads (0 ⇒ available parallelism). Outcomes are
    /// identical for any value; only wall-clock changes.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_cap: 8,
            virtual_servers: 4,
            deadline_ms: 1_500,
            stage_overhead_ms: 20,
            attempt_cost_ms: 80,
            query_cost_ms: 2,
            breaker_threshold: 3,
            breaker_cooldown_ms: 1_500,
            workers: 0,
        }
    }
}

/// One offered arrival: a virtual timestamp plus an index into the
/// question set being served.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arrival {
    /// Virtual arrival time (ms).
    pub at_ms: u64,
    /// Index into the question slice handed to [`serve`].
    pub question: usize,
}

/// A seeded offered-load trace: what arrives when.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OfferedTrace {
    /// Arrivals in nondecreasing virtual-time order.
    pub arrivals: Vec<Arrival>,
}

impl OfferedTrace {
    /// A seeded Poisson arrival process: `n` arrivals at `rate_qps`
    /// questions per virtual second, each picking one of `n_questions`
    /// questions. Purely a function of the seed — no wall clock, no
    /// RNG state.
    pub fn poisson(seed: u64, rate_qps: f64, n: usize, n_questions: usize) -> Self {
        let rate = rate_qps.max(1e-9);
        let mut t_ms = 0.0f64;
        let mut arrivals = Vec::with_capacity(n);
        for i in 0..n {
            // Inverse-CDF exponential gap from one uniform draw.
            let u = unit_f64(mix2(seed, 0xA221_7000 + i as u64));
            t_ms += -(1.0 - u).ln() / rate * 1_000.0;
            let question = if n_questions == 0 {
                0
            } else {
                (mix2(seed ^ 0x51C6_D00D, i as u64) % n_questions as u64) as usize
            };
            arrivals.push(Arrival {
                at_ms: t_ms as u64,
                question,
            });
        }
        Self { arrivals }
    }
}

/// Why an arrival was rejected at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedReason {
    /// The admission queue was at capacity.
    QueueFull,
    /// The service breaker was open (cooling down after a trip).
    BreakerOpen,
    /// The breaker was half-open with its single recovery probe
    /// already in flight.
    ProbeInFlight,
}

/// What happened to one offered question.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Disposition {
    /// Admitted and answered (possibly degraded — never missing).
    Answered {
        /// Virtual time service started.
        started_ms: u64,
        /// Virtual time service finished.
        finished_ms: u64,
        /// The answer text (always non-empty).
        answer: String,
        /// Degradation notes, including the serving layer's
        /// `deadline:*` paths.
        degradation: Vec<String>,
        /// Transport attempts across the question's LLM calls.
        attempts: u32,
        /// Faults observed across the question's LLM calls.
        faults: usize,
    },
    /// Rejected at admission.
    Shed {
        /// Why.
        reason: ShedReason,
    },
}

/// Outcome of one offered arrival, in offered order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// Index into the offered trace.
    pub offered: usize,
    /// Dataset question id.
    pub qid: String,
    /// Virtual arrival time (ms).
    pub arrival_ms: u64,
    /// Shed or answered.
    pub disposition: Disposition,
}

impl Outcome {
    /// Virtual latency from arrival to finish, when answered.
    pub fn latency_ms(&self) -> Option<u64> {
        match &self.disposition {
            Disposition::Answered { finished_ms, .. } => {
                Some(finished_ms.saturating_sub(self.arrival_ms))
            }
            Disposition::Shed { .. } => None,
        }
    }
}

/// Admission-batcher telemetry. Batch composition depends on real
/// scheduling (which questions happened to overlap), so these numbers
/// may vary run to run and are excluded from
/// [`ServeReport::identity_key`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BatchTelemetry {
    /// Coalesced `search_batch` calls issued.
    pub batches: u64,
    /// Grounding query slots carried by those calls.
    pub slots: u64,
    /// Most enrolled questions sharing one call.
    pub widest: usize,
}

/// Everything one [`serve`] run produced.
#[derive(Debug, Clone, Serialize)]
pub struct ServeReport {
    /// Per-arrival outcomes, in offered order.
    pub outcomes: Vec<Outcome>,
    /// Service-breaker state changes, in virtual-time order.
    pub breaker_transitions: Vec<BreakerTransition>,
    /// Virtual time of the last event.
    pub makespan_ms: u64,
    /// Admission-batcher telemetry (scheduling-dependent; excluded
    /// from [`identity_key`](Self::identity_key)).
    pub batch: BatchTelemetry,
}

impl ServeReport {
    /// Number of answered questions.
    pub fn answered(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.disposition, Disposition::Answered { .. }))
            .count()
    }

    /// Number of shed arrivals.
    pub fn shed(&self) -> usize {
        self.outcomes.len() - self.answered()
    }

    /// Fraction of offered arrivals shed.
    pub fn shed_fraction(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.shed() as f64 / self.outcomes.len() as f64
        }
    }

    /// Sorted virtual latencies of the answered questions.
    pub fn latencies_ms(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .outcomes
            .iter()
            .filter_map(Outcome::latency_ms)
            .collect();
        v.sort_unstable();
        v
    }

    /// Virtual latency percentile (`p` in [0, 100]) over answered
    /// questions; 0 when nothing was answered.
    pub fn latency_percentile_ms(&self, p: f64) -> u64 {
        let lat = self.latencies_ms();
        if lat.is_empty() {
            return 0;
        }
        let idx = ((p / 100.0) * (lat.len() - 1) as f64).round() as usize;
        lat[idx.min(lat.len() - 1)]
    }

    /// A digest of everything deterministic in the report — the
    /// per-question outcomes and the breaker transition log, *not* the
    /// batch telemetry. Two runs of the same seed and trace must agree
    /// on this key for any worker count.
    pub fn identity_key(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325;
        for o in &self.outcomes {
            h = mix2(h, stable_str_hash(&format!("{o:?}")));
        }
        for t in &self.breaker_transitions {
            h = mix2(h, stable_str_hash(&format!("{t:?}")));
        }
        mix2(h, self.makespan_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_trace_is_seeded_and_monotone() {
        let a = OfferedTrace::poisson(7, 5.0, 200, 40);
        let b = OfferedTrace::poisson(7, 5.0, 200, 40);
        assert_eq!(a, b, "same seed ⇒ same trace");
        assert!(a.arrivals.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        assert!(a.arrivals.iter().all(|x| x.question < 40));
        let c = OfferedTrace::poisson(8, 5.0, 200, 40);
        assert_ne!(a, c, "different seed ⇒ different trace");
        // Mean gap ≈ 1/rate: 200 arrivals at 5 q/s ≈ 40 virtual
        // seconds, within a loose 2× band.
        let span = a.arrivals.last().unwrap().at_ms;
        assert!((20_000..80_000).contains(&span), "span {span}");
    }

    #[test]
    fn percentiles_and_fractions_on_a_hand_built_report() {
        let answered = |offered: usize, arrival: u64, finish: u64| Outcome {
            offered,
            qid: format!("q{offered}"),
            arrival_ms: arrival,
            disposition: Disposition::Answered {
                started_ms: arrival,
                finished_ms: finish,
                answer: "a".into(),
                degradation: vec![],
                attempts: 1,
                faults: 0,
            },
        };
        let shed = |offered: usize, arrival: u64| Outcome {
            offered,
            qid: format!("q{offered}"),
            arrival_ms: arrival,
            disposition: Disposition::Shed {
                reason: ShedReason::QueueFull,
            },
        };
        let r = ServeReport {
            outcomes: vec![
                answered(0, 0, 100),
                answered(1, 10, 310),
                answered(2, 20, 520),
                shed(3, 30),
            ],
            breaker_transitions: vec![],
            makespan_ms: 520,
            batch: BatchTelemetry::default(),
        };
        assert_eq!(r.answered(), 3);
        assert_eq!(r.shed(), 1);
        assert!((r.shed_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(r.latencies_ms(), vec![100, 300, 500]);
        assert_eq!(r.latency_percentile_ms(50.0), 300);
        assert_eq!(r.latency_percentile_ms(99.0), 500);
        let k1 = r.identity_key();
        let mut r2 = r.clone();
        r2.batch.batches = 99;
        assert_eq!(k1, r2.identity_key(), "telemetry excluded from identity");
        let mut r3 = r.clone();
        r3.outcomes[0].qid = "other".into();
        assert_ne!(k1, r3.identity_key());
    }
}
