//! The deadline-aware job executor: the four pipeline stages composed
//! with budget checks in between, on one question's virtual clock.
//!
//! The executor is a *pure function* of `(question, budget)` — the
//! virtual clock starts at zero per question, the fault plan keys on
//! the question id, and the one external call (grounding retrieval)
//! is bit-identical whether it goes through the admission batcher or
//! straight to the base index. That purity is what lets the engine
//! run jobs on any number of real threads without changing outcomes.
//!
//! Budget semantics are stage-granular: a stage that starts runs to
//! completion (charging its virtual cost), and the *next* stage is
//! skipped if the budget is already burned. Skipping degrades — it
//! never drops the answer:
//!
//! * budget burned before grounding ⇒ `deadline:skip-ground`, the
//!   pseudo-graph stands unverified;
//! * budget burned before verification ⇒ `deadline:skip-verify`,
//!   likewise;
//! * budget burned before answering ⇒ `deadline:best-effort-answer`,
//!   the answer is assembled from the graph without another LLM call.

use crate::method::{QaContext, Trace};
use crate::pipeline::{answer_stage, ground_stage, pseudo_graph_stage, verify_stage};
use crate::resilience::{best_effort_answer, ResilientLlm};
use crate::retrieval::QuerySlot;
use crate::serve::batcher::GroundBroker;
use semvec::Hit;
use worldgen::Question;

/// Virtual-time prices of the simulated deployment (from
/// [`crate::serve::ServeConfig`]).
pub(crate) struct CostModel {
    pub stage_overhead_ms: u64,
    pub attempt_cost_ms: u64,
    pub query_cost_ms: u64,
}

impl CostModel {
    /// No job finishes faster than this — the engine uses it as the
    /// lower bound when deciding which in-flight results it must wait
    /// for before advancing the event clock.
    pub(crate) fn min_service_ms(&self) -> u64 {
        self.stage_overhead_ms.max(1)
    }
}

/// What one job produced.
pub(crate) struct JobOutput {
    pub answer: String,
    pub trace: Trace,
    /// Virtual service time: stage overheads + attempt and query
    /// charges + retry backoff, as accumulated on the question's
    /// resilience clock.
    pub service_ms: u64,
}

/// Charge the attempts of any LLM calls recorded since the last
/// charge, advancing the shared virtual clock (which is also what
/// lets a tripped per-stage breaker cool down mid-question).
fn charge_new_calls(rl: &ResilientLlm<'_>, trace: &Trace, charged: &mut usize, costs: &CostModel) {
    for call in &trace.llm_calls[*charged..] {
        rl.advance_clock(costs.attempt_cost_ms * u64::from(call.attempts));
    }
    *charged = trace.llm_calls.len();
}

/// Run the full pipeline for one question under a virtual budget.
pub(crate) fn answer_within_budget(
    ctx: &QaContext<'_>,
    q: &Question,
    budget_ms: u64,
    costs: &CostModel,
    broker: Option<&GroundBroker<'_>>,
) -> JobOutput {
    let rl = ResilientLlm::new(ctx.llm, &ctx.cfg.resilience);
    let mut trace = Trace::default();
    let mut charged = 0usize;

    // Stage 1 — pseudo-graph generation always runs: without it there
    // is nothing to degrade *to*.
    rl.advance_clock(costs.stage_overhead_ms);
    let pseudo = pseudo_graph_stage(ctx, &rl, q, &mut trace);
    charge_new_calls(&rl, &trace, &mut charged, costs);

    let mut fixed = pseudo.clone();
    if rl.virtual_elapsed_ms() >= budget_ms {
        trace.degradation.push("deadline:skip-ground".into());
    } else {
        // Stage 2 — grounding, through the admission batcher when the
        // engine provides one.
        rl.advance_clock(costs.stage_overhead_ms);
        let base = ctx.base_for(&q.text);
        let ground = match broker {
            Some(br) => {
                let via_broker = |slots: &[QuerySlot<'_>]| -> Vec<Vec<Hit>> { br.submit(slots) };
                ground_stage(ctx, &base, &pseudo, Some(&via_broker), &mut trace)
            }
            None => ground_stage(ctx, &base, &pseudo, None, &mut trace),
        };
        if !pseudo.is_empty() && !base.is_empty() {
            // One query slot per pseudo triple, exactly what grounding
            // issued.
            rl.advance_clock(costs.query_cost_ms * pseudo.len() as u64);
        }

        if rl.virtual_elapsed_ms() >= budget_ms {
            trace.degradation.push("deadline:skip-verify".into());
        } else {
            // Stage 3 — verification.
            rl.advance_clock(costs.stage_overhead_ms);
            fixed = verify_stage(ctx, &rl, q, &pseudo, &ground, &mut trace);
            charge_new_calls(&rl, &trace, &mut charged, costs);
        }
    }
    trace.fixed_triples = fixed.clone();

    // Stage 4 — an answer is always produced; over budget it comes
    // from the graph instead of another transport round-trip.
    let answer = if rl.virtual_elapsed_ms() >= budget_ms {
        trace.degradation.push("deadline:best-effort-answer".into());
        best_effort_answer(&fixed)
    } else {
        rl.advance_clock(costs.stage_overhead_ms);
        let a = answer_stage(&rl, q, &fixed, &mut trace);
        charge_new_calls(&rl, &trace, &mut charged, costs);
        a
    };

    JobOutput {
        answer,
        trace,
        service_ms: rl.virtual_elapsed_ms().max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use semvec::Embedder;
    use simllm::{ModelProfile, SimLlm};
    use std::sync::Arc;
    use worldgen::{datasets::simpleq, derive, generate, SourceConfig, WorldConfig};

    fn costs() -> CostModel {
        CostModel {
            stage_overhead_ms: 20,
            attempt_cost_ms: 80,
            query_cost_ms: 2,
        }
    }

    fn setup() -> (Arc<worldgen::World>, SimLlm, kgstore::KgSource) {
        let world = Arc::new(generate(&WorldConfig::default()));
        let llm = SimLlm::new(world.clone(), ModelProfile::gpt35_sim());
        let src = derive(&world, &SourceConfig::wikidata());
        (world, llm, src)
    }

    #[test]
    fn ample_budget_runs_all_stages_without_deadline_notes() {
        let (world, llm, src) = setup();
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let ctx = QaContext {
            llm: &llm,
            source: Some(&src),
            base: None,
            embedder: &emb,
            cfg: &cfg,
        };
        let ds = simpleq::generate(&world, 5, 21);
        for q in &ds.questions {
            let out = answer_within_budget(&ctx, q, u64::MAX, &costs(), None);
            assert!(!out.answer.is_empty());
            assert!(
                out.trace
                    .degradation
                    .iter()
                    .all(|d| !d.starts_with("deadline:")),
                "no deadline degradation with an unbounded budget: {:?}",
                out.trace.degradation
            );
            // 3+ stages entered, ≥2 LLM calls: a realistic price tag.
            assert!(out.service_ms >= 3 * 20 + 2 * 80, "{}", out.service_ms);
        }
    }

    #[test]
    fn tiny_budget_degrades_to_a_best_effort_answer() {
        let (world, llm, src) = setup();
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let ctx = QaContext {
            llm: &llm,
            source: Some(&src),
            base: None,
            embedder: &emb,
            cfg: &cfg,
        };
        let ds = simpleq::generate(&world, 5, 22);
        for q in &ds.questions {
            let out = answer_within_budget(&ctx, q, 1, &costs(), None);
            assert!(!out.answer.is_empty(), "degraded, never missing");
            assert!(out
                .trace
                .degradation
                .contains(&"deadline:skip-ground".to_string()));
            assert!(out
                .trace
                .degradation
                .contains(&"deadline:best-effort-answer".to_string()));
            // Grounding never ran.
            assert_eq!(out.trace.ground_triples, 0);
            assert_eq!(out.trace.base_triples, 0);
        }
    }

    #[test]
    fn mid_budget_skips_verification_but_grounds() {
        let (world, llm, src) = setup();
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let ctx = QaContext {
            llm: &llm,
            source: Some(&src),
            base: None,
            embedder: &emb,
            cfg: &cfg,
        };
        let ds = simpleq::generate(&world, 8, 23);
        let c = costs();
        let mut skipped_verify = 0;
        for q in &ds.questions {
            // Enough for pseudo (overhead + 1 attempt) + the ground
            // stage, not for verification.
            let full = answer_within_budget(&ctx, q, u64::MAX, &c, None);
            let pseudo_cost = 20 + 80; // overhead + one clean attempt
            let out = answer_within_budget(&ctx, q, pseudo_cost + 1, &c, None);
            assert!(!out.answer.is_empty());
            if out
                .trace
                .degradation
                .contains(&"deadline:skip-verify".to_string())
            {
                skipped_verify += 1;
                // Grounding did run before the budget died.
                assert_eq!(out.trace.base_triples, full.trace.base_triples);
                // The unverified pseudo-graph stands.
                assert_eq!(out.trace.fixed_triples, out.trace.pseudo_triples);
            }
        }
        assert!(skipped_verify >= 4, "{skipped_verify}/8 should skip verify");
    }

    #[test]
    fn outcome_is_a_pure_function_of_question_and_budget() {
        let (world, llm, src) = setup();
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let ctx = QaContext {
            llm: &llm,
            source: Some(&src),
            base: None,
            embedder: &emb,
            cfg: &cfg,
        };
        let ds = simpleq::generate(&world, 4, 24);
        let c = costs();
        for q in &ds.questions {
            for budget in [1u64, 150, 400, u64::MAX] {
                let a = answer_within_budget(&ctx, q, budget, &c, None);
                let b = answer_within_budget(&ctx, q, budget, &c, None);
                assert_eq!(a.answer, b.answer);
                assert_eq!(a.service_ms, b.service_ms);
                assert_eq!(a.trace.degradation, b.trace.degradation);
            }
        }
    }
}
