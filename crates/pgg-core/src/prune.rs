//! Pruning strategies for the candidate subjects of semantic querying.
//!
//! The paper uses a fixed two-step rule (top-`|S_p|` by retrieved-triple
//! count, then a mean-similarity threshold) and lists "better pruning
//! strategies" as future work. This module implements that rule plus
//! three alternatives, all sharing the same interface so the ablation
//! harness can sweep them.

use kgstore::Atom;
use serde::{Deserialize, Serialize};

/// One candidate subject produced by semantic querying.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Subject entity (atom in the source's table).
    pub subject: Atom,
    /// Number of distinct retrieved triples with this subject.
    pub count: usize,
    /// Mean similarity of those triples.
    pub mean_score: f32,
    /// Source popularity of the entity (0 when unknown).
    pub popularity: f32,
}

/// The pruning rule to apply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum PruneStrategy {
    /// The paper's §3.2.1 rule: keep the top-`k` candidates by count
    /// (`k = |S_p|`), then drop those with mean score below the
    /// threshold.
    #[default]
    PaperTwoStep,
    /// Rank by `count · mean_score` (one fused signal) and keep top-`k`
    /// above the threshold.
    ScoreWeighted,
    /// Ignore `k`: keep *every* candidate above the threshold, capped at
    /// `max` (recall-oriented; risks prompt bloat).
    AdaptiveK {
        /// Hard cap on survivors.
        max: usize,
    },
    /// The paper's rule with a popularity prior mixed into the
    /// confidence score (popular same-name entities win ties — the
    /// "7 Yao Mings" heuristic made explicit).
    PopularityPrior,
}

impl PruneStrategy {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PruneStrategy::PaperTwoStep => "paper-two-step",
            PruneStrategy::ScoreWeighted => "score-weighted",
            PruneStrategy::AdaptiveK { .. } => "adaptive-k",
            PruneStrategy::PopularityPrior => "popularity-prior",
        }
    }

    /// Apply the rule: returns surviving `(subject, confidence)` pairs,
    /// highest confidence first.
    pub fn apply(
        &self,
        mut candidates: Vec<Candidate>,
        k: usize,
        threshold: f32,
    ) -> Vec<(Atom, f32)> {
        match self {
            PruneStrategy::PaperTwoStep => {
                candidates.sort_by(|a, b| {
                    b.count
                        .cmp(&a.count)
                        .then_with(|| a.subject.cmp(&b.subject))
                });
                candidates.truncate(k);
                finish(candidates, threshold, |c| c.mean_score)
            }
            PruneStrategy::ScoreWeighted => {
                candidates.sort_by(|a, b| {
                    let fa = a.count as f32 * a.mean_score;
                    let fb = b.count as f32 * b.mean_score;
                    fb.partial_cmp(&fa)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.subject.cmp(&b.subject))
                });
                candidates.truncate(k);
                finish(candidates, threshold, |c| c.mean_score)
            }
            PruneStrategy::AdaptiveK { max } => {
                candidates.sort_by(|a, b| {
                    b.mean_score
                        .partial_cmp(&a.mean_score)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.subject.cmp(&b.subject))
                });
                candidates.truncate(*max);
                finish(candidates, threshold, |c| c.mean_score)
            }
            PruneStrategy::PopularityPrior => {
                candidates.sort_by(|a, b| {
                    b.count
                        .cmp(&a.count)
                        .then_with(|| a.subject.cmp(&b.subject))
                });
                candidates.truncate(k);
                finish(candidates, threshold, |c| {
                    0.85 * c.mean_score + 0.15 * c.popularity
                })
            }
        }
    }
}

fn finish(
    candidates: Vec<Candidate>,
    threshold: f32,
    confidence: impl Fn(&Candidate) -> f32,
) -> Vec<(Atom, f32)> {
    let mut out: Vec<(Atom, f32)> = candidates
        .iter()
        .map(|c| (c.subject, confidence(c)))
        .filter(|&(_, conf)| conf >= threshold)
        .collect();
    out.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(id: u32, count: usize, mean: f32, pop: f32) -> Candidate {
        Candidate {
            subject: Atom(id),
            count,
            mean_score: mean,
            popularity: pop,
        }
    }

    #[test]
    fn paper_rule_keeps_top_k_by_count_then_thresholds() {
        let cands = vec![
            cand(1, 5, 0.50, 0.1),
            cand(2, 3, 0.90, 0.1),
            cand(3, 1, 0.95, 0.1),
        ];
        let kept = PruneStrategy::PaperTwoStep.apply(cands, 2, 0.4);
        // k=2 keeps subjects 1 and 2 (by count); 3 is cut despite its score.
        assert_eq!(kept.iter().map(|(a, _)| a.0).collect::<Vec<_>>(), [2, 1]);
    }

    #[test]
    fn threshold_cuts_low_confidence() {
        let cands = vec![cand(1, 5, 0.2, 0.0), cand(2, 4, 0.8, 0.0)];
        let kept = PruneStrategy::PaperTwoStep.apply(cands, 5, 0.5);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].0 .0, 2);
    }

    #[test]
    fn adaptive_k_ignores_k_and_caps() {
        let cands: Vec<_> = (0..10).map(|i| cand(i, 1, 0.9, 0.0)).collect();
        let kept = PruneStrategy::AdaptiveK { max: 6 }.apply(cands, 1, 0.5);
        assert_eq!(kept.len(), 6);
    }

    #[test]
    fn score_weighted_fuses_count_and_score() {
        let cands = vec![
            cand(1, 10, 0.30, 0.0), // fused 3.0
            cand(2, 2, 0.90, 0.0),  // fused 1.8
            cand(3, 6, 0.60, 0.0),  // fused 3.6
        ];
        let kept = PruneStrategy::ScoreWeighted.apply(cands, 2, 0.0);
        assert_eq!(kept.iter().map(|(a, _)| a.0).collect::<Vec<_>>().len(), 2);
        // Survivors are 3 and 1 (fused ranking), ordered by confidence
        // (mean score): 3 (0.6) before 1 (0.3).
        assert_eq!(kept[0].0 .0, 3);
        assert_eq!(kept[1].0 .0, 1);
    }

    #[test]
    fn popularity_prior_breaks_ties_toward_popular() {
        let cands = vec![cand(1, 3, 0.50, 0.0), cand(2, 3, 0.50, 1.0)];
        let kept = PruneStrategy::PopularityPrior.apply(cands, 2, 0.0);
        assert_eq!(kept[0].0 .0, 2, "popular entity must rank first");
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(PruneStrategy::default().name(), "paper-two-step");
        assert_eq!(PruneStrategy::AdaptiveK { max: 5 }.name(), "adaptive-k");
    }
}
