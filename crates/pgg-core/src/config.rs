//! Pipeline configuration.

use crate::prune::PruneStrategy;
use crate::resilience::ResilienceConfig;
use crate::retrieval::{BatchMode, RetrievalMode, ScoringMode};
use kgstore::ExtractConfig;
use serde::{Deserialize, Serialize};

/// Knobs of the Atomic Knowledge Verification pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Triples retrieved per pseudo-triple during semantic querying
    /// (the paper uses top-10).
    pub top_k: usize,
    /// Entity-confidence threshold for the second pruning step.
    ///
    /// The paper prunes below 0.7 under Sentence-BERT cosine geometry.
    /// Our hashing encoder produces systematically lower absolute
    /// cosines for "same fact, different verbalisation" (≈0.45–0.75
    /// instead of ≈0.8–0.95), so the equivalent operating point is
    /// lower; the threshold sweep bench maps the curve.
    pub entity_threshold: f32,
    /// Cap on triples shown per ground-graph entity (keeps the
    /// verification prompt inside a context window).
    pub max_entity_triples: usize,
    /// Per-(query, document) retrieval score jitter (std dev). Models
    /// dense-retrieval imperfection at corpus scale — see
    /// [`semvec::VecIndex::top_k_noisy`]. 0 disables.
    pub retrieval_jitter: f32,
    /// Pruning rule for candidate subjects (the paper's two-step rule
    /// by default; alternatives for the future-work ablation).
    pub prune: PruneStrategy,
    /// Subgraph-extraction bounds for `G_base`.
    pub extract: ExtractConfig,
    /// Self-consistency sample count (the paper uses 3).
    pub sc_samples: u32,
    /// Verification passes: 1 = the paper's single pass; >1 enables the
    /// majority-voted verification extension (paper future work).
    pub verify_passes: u32,
    /// Run the `cylint` auto-repair pass on pseudo-graph scripts before
    /// execution (drop spurious `MATCH`es, dedup `CREATE`s, synthesize
    /// unbound endpoints). `false` reproduces the paper exactly: any
    /// failing script is discarded whole and answering degrades to CoT.
    #[serde(default = "default_repair")]
    pub repair: bool,
    /// Retry / circuit-breaker policy for LLM transport faults (see
    /// [`crate::resilience`]). Irrelevant when the model never fails
    /// (plain [`simllm::SimLlm`]): the first attempt always succeeds.
    #[serde(default)]
    pub resilience: ResilienceConfig,
    /// Which scan the base index runs per retrieval query. The pruned
    /// fast path is the default and returns hits bit-identical to the
    /// exact scan (see [`semvec::HybridIndex`]); `Exact` keeps the
    /// brute-force reference available to benches.
    #[serde(default)]
    pub retrieval_mode: RetrievalMode,
    /// How candidate documents are scored inside a scan. The default
    /// screens with the int8 kernel and reranks the margin band with
    /// exact f32 (bit-identical hits by the quantization error-bound
    /// contract — see [`semvec::SoaStore`]); `ExactF32` keeps the pure
    /// float path available to benches.
    #[serde(default)]
    pub scoring_mode: ScoringMode,
    /// Whether a question's semantic queries run as one tiled batch
    /// (the default — identical verbalisations share a slot, block
    /// loads are shared across the batch) or one scan per query.
    /// Results are bit-identical in both modes — batching changes when
    /// a (query, document) pair is scored, never its value.
    #[serde(default)]
    pub batch_mode: BatchMode,
    /// Worker threads for the question-level runner pool. `0` (the
    /// default) resolves to the machine's available parallelism.
    /// Callers that pass an explicit thread count to
    /// [`crate::runner::run`] override this. Results are byte-identical
    /// at every value — the pool only changes wall-clock time.
    #[serde(default)]
    pub runner_threads: usize,
    /// Candidate-fraction ceiling for the adaptive pruning gate (see
    /// [`crate::retrieval::BaseIndex`]): a pruned retrieval falls back
    /// to the exact scan, per query, when the postings estimate says
    /// the candidate set would exceed this fraction of the corpus
    /// (relaxed for pure-f32 scoring, where pruning pays much longer).
    /// Hits are bit-identical either way; the gate is pure routing.
    #[serde(default = "default_prune_gate")]
    pub prune_gate: f32,
    /// Tier-0 candidate-fraction ceiling for the entity route (see
    /// [`crate::retrieval::BaseIndex`]): a folded retrieval query
    /// whose alias-folded entity mentions stay under this fraction of
    /// the corpus scans only those mentions wholesale, walking the
    /// residual token union under the entity-disjoint ceiling's
    /// suspect floor. `0.0` disables the route (every query takes the
    /// token gate's own decision). Hits are bit-identical at any
    /// value; the knob is pure routing.
    #[serde(default = "default_entity_gate")]
    pub entity_gate: f32,
    /// Directory for the on-disk base-index cache. When set, dataset
    /// builds open-or-build: the encoded base is looked up by content
    /// hash, reopened zero-copy (checksum-verified) if present, and
    /// built + written otherwise (see
    /// [`crate::retrieval::BaseIndex::from_triples_cached`]). `None`
    /// (the default) keeps every build in RAM. Opened and built
    /// indexes are bit-identical, so this knob only trades disk for
    /// encode time.
    #[serde(default)]
    pub base_cache_dir: Option<String>,
}

fn default_repair() -> bool {
    true
}

fn default_prune_gate() -> f32 {
    crate::retrieval::PRUNE_GATE_DEFAULT
}

fn default_entity_gate() -> f32 {
    crate::retrieval::ENTITY_GATE_DEFAULT
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            top_k: 10,
            entity_threshold: 0.30,
            max_entity_triples: 24,
            retrieval_jitter: 0.30,
            prune: PruneStrategy::PaperTwoStep,
            extract: ExtractConfig::default(),
            sc_samples: 3,
            verify_passes: 1,
            repair: default_repair(),
            resilience: ResilienceConfig::default(),
            retrieval_mode: RetrievalMode::default(),
            scoring_mode: ScoringMode::default(),
            batch_mode: BatchMode::default(),
            runner_threads: 0,
            prune_gate: default_prune_gate(),
            entity_gate: default_entity_gate(),
            base_cache_dir: None,
        }
    }
}

/// Constants of the paper's experimental setup, used by the bench
/// harness so every table regenerates with one call.
pub mod paper {
    /// Questions sampled from SimpleQuestions for GPT-3.5 (paper: 1000).
    pub const SIMPLEQ_N_GPT35: usize = 1000;
    /// Questions sampled from SimpleQuestions for GPT-4 (paper: 150).
    pub const SIMPLEQ_N_GPT4: usize = 150;
    /// QALD-10 English test size (paper: full set; 394 questions).
    pub const QALD_N: usize = 394;
    /// Nature Questions size (paper: 50 hand-built questions).
    pub const NATURE_N: usize = 50;
    /// World seed used by all experiments.
    pub const WORLD_SEED: u64 = 0xC0FFEE;
    /// Dataset generation seeds.
    pub const SIMPLEQ_SEED: u64 = 101;
    /// QALD dataset seed.
    pub const QALD_SEED: u64 = 202;
    /// Nature Questions dataset seed.
    pub const NATURE_SEED: u64 = 303;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_shape() {
        let c = PipelineConfig::default();
        assert_eq!(c.top_k, 10);
        assert_eq!(c.sc_samples, 3);
        assert!(c.entity_threshold > 0.0 && c.entity_threshold < 1.0);
    }

    #[test]
    fn paper_constants() {
        assert_eq!(paper::SIMPLEQ_N_GPT35, 1000);
        assert_eq!(paper::NATURE_N, 50);
    }
}
