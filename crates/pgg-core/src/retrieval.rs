//! Semantic querying + two-step pruning (paper §3.2.1).
//!
//! The paper constructs, per dataset, a semantic KG from the questions
//! ("we use the full dataset for testing and constructing the
//! corresponding semantic KG based on the questions") — the union of
//! question-scoped subgraph extractions — and encodes it once. Querying
//! then runs per pseudo-triple against that dataset-level index, where
//! same-name entities, sibling facts, and unrelated-but-similar triples
//! genuinely compete:
//!
//! 1. Build (or receive) the dataset-level base index.
//! 2. For each pseudo-triple retrieve the top-10 most similar triples →
//!    `G_t` (with per-triple similarity scores).
//! 3. Pruning step 1 (popularity): keep the `k = |S_p|` candidate
//!    subjects with the most retrieved triples.
//! 4. Pruning step 2 (confidence): score each subject by the mean
//!    similarity of its retrieved triples, drop those below the
//!    threshold, sort the rest descending → ground graph `G_g`.
//!
//! Retrieval runs on the fast path by default: the base index is a
//! [`HybridIndex`] (token-postings candidate pruning + exact rerank,
//! bit-identical to the full scan under the zero-overlap-ceiling
//! contract — see `semvec::inverted`), queries go through a bounded
//! thread-safe embedding cache, and dataset-level builds encode across
//! threads with deterministic output. [`RetrievalMode::Exact`] keeps
//! the brute-force scan available for equivalence benches.

use crate::config::PipelineConfig;
use crate::prune::Candidate;
use kgstore::hash::{FxHashMap, FxHashSet};
use kgstore::{extract, Atom, KgSource, StrTriple, Triple};
use parking_lot::Mutex;
use semvec::{verbalize_triple, Embedder, Hit, HybridIndex, QueryStyle, VecIndex};
use serde::{Deserialize, Serialize};
use simllm::{GroundEntity, GroundGraph};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which scan the base index runs per query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RetrievalMode {
    /// Token-postings candidate pruning + exact rerank (the fast path;
    /// hits are bit-identical to [`Exact`] under the hybrid index's
    /// documented ceiling contract, which the perf bench asserts).
    ///
    /// [`Exact`]: RetrievalMode::Exact
    #[default]
    Pruned,
    /// Brute-force scan of every indexed triple.
    Exact,
}

/// Upper bound on cached query embeddings before the cache resets.
/// Entries are one `dim`-float vector plus the query text (~1.2 KiB at
/// dim 256), so the cap bounds memory at a few MiB per base index; the
/// whole map is cleared when full (queries repeat across
/// self-consistency samples, retries, and questions in clusters, so a
/// wholesale reset costs a handful of re-encodes, not churn).
const QUERY_CACHE_CAP: usize = 4096;

/// Monotonic counters of the query-embedding cache.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to encode.
    pub misses: u64,
    /// Entries currently held.
    pub entries: usize,
}

/// Cache key: (folded?, query text) → shared embedding.
type CachedVectors = FxHashMap<(bool, String), Arc<Vec<f32>>>;

/// Bounded, thread-safe memo of query embeddings. Encoding is
/// deterministic, so a cached vector is byte-for-byte the vector a
/// fresh encode would produce — the cache can never change a result,
/// only skip work.
struct QueryCache {
    map: Mutex<CachedVectors>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl QueryCache {
    fn new() -> Self {
        Self {
            map: Mutex::new(FxHashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn get_or_encode(&self, embedder: &Embedder, text: &str, style: QueryStyle) -> Arc<Vec<f32>> {
        let folded = style == QueryStyle::Folded;
        if let Some(v) = self.map.lock().get(&(folded, text.to_string())) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Encode outside the lock so concurrent misses don't serialize.
        let v = Arc::new(match style {
            QueryStyle::Folded => embedder.encode(text),
            QueryStyle::Unfolded => embedder.encode_unfolded(text),
        });
        let mut map = self.map.lock();
        if map.len() >= QUERY_CACHE_CAP {
            map.clear();
        }
        map.insert((folded, text.to_string()), Arc::clone(&v));
        v
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.lock().len(),
        }
    }
}

/// A pre-encoded semantic KG: verbalised triples, their subject atoms
/// (into the source's table), and the hybrid (postings + vector) index,
/// plus a query-embedding cache.
pub struct BaseIndex {
    /// Verbalised triples in index order.
    pub verbalised: Vec<StrTriple>,
    /// Subject atom of each triple (resolvable in the source).
    pub subjects: Vec<Atom>,
    index: HybridIndex,
    cache: QueryCache,
}

impl BaseIndex {
    /// Number of triples.
    pub fn len(&self) -> usize {
        self.verbalised.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.verbalised.is_empty()
    }

    /// The underlying exact vector index (one row per triple).
    pub fn vectors(&self) -> &VecIndex {
        self.index.vectors()
    }

    /// The hybrid index itself.
    pub fn hybrid(&self) -> &HybridIndex {
        &self.index
    }

    /// Query-embedding cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Build from an explicit set of triples of a source (serial).
    pub fn from_triples(
        source: &KgSource,
        embedder: &Embedder,
        triples: impl IntoIterator<Item = Triple>,
    ) -> Self {
        Self::from_triples_parallel(source, embedder, triples, 1)
    }

    /// Build from triples with `threads` encoder workers (0 = all
    /// cores). Verbalisation and assembly are serial and duplicate
    /// sentences are encoded once, so the result is byte-identical
    /// across thread counts.
    pub fn from_triples_parallel(
        source: &KgSource,
        embedder: &Embedder,
        triples: impl IntoIterator<Item = Triple>,
        threads: usize,
    ) -> Self {
        let mut verbalised = Vec::new();
        let mut subjects = Vec::new();
        let mut sentences: Vec<String> = Vec::new();
        for t in triples {
            let v = source.verbalize(t);
            let v = StrTriple::new(v.s, semvec::humanize_term(&v.p), v.o);
            sentences.push(v.sentence());
            verbalised.push(v);
            subjects.push(t.s);
        }
        let refs: Vec<&str> = sentences.iter().map(|s| s.as_str()).collect();
        let index = HybridIndex::build_parallel(embedder, &refs, threads);
        Self {
            verbalised,
            subjects,
            index,
            cache: QueryCache::new(),
        }
    }

    /// The paper's per-dataset construction: union of question-scoped
    /// extractions over all dataset questions, encoded across all
    /// cores.
    pub fn for_questions<'a>(
        source: &KgSource,
        embedder: &Embedder,
        cfg: &PipelineConfig,
        questions: impl IntoIterator<Item = &'a str>,
    ) -> Self {
        Self::for_questions_with_threads(source, embedder, cfg, questions, 0)
    }

    /// [`for_questions`] with an explicit encoder thread count (1 =
    /// serial reference; the output is identical either way).
    ///
    /// [`for_questions`]: BaseIndex::for_questions
    pub fn for_questions_with_threads<'a>(
        source: &KgSource,
        embedder: &Embedder,
        cfg: &PipelineConfig,
        questions: impl IntoIterator<Item = &'a str>,
        threads: usize,
    ) -> Self {
        let mut seen: FxHashSet<Triple> = FxHashSet::default();
        let mut union: Vec<Triple> = Vec::new();
        for q in questions {
            for t in extract(source, q, &cfg.extract).triples {
                if seen.insert(t) {
                    union.push(t);
                }
            }
        }
        Self::from_triples_parallel(source, embedder, union, threads)
    }

    /// Question-scoped construction (used when no dataset-level index
    /// was prebuilt). Small enough that a serial build wins.
    pub fn for_question(
        source: &KgSource,
        embedder: &Embedder,
        cfg: &PipelineConfig,
        question: &str,
    ) -> Self {
        Self::from_triples(
            source,
            embedder,
            extract(source, question, &cfg.extract).triples,
        )
    }

    /// Encode a query through the embedding cache.
    pub fn query_vector(
        &self,
        embedder: &Embedder,
        text: &str,
        style: QueryStyle,
    ) -> Arc<Vec<f32>> {
        self.cache.get_or_encode(embedder, text, style)
    }

    /// Noisy top-k over the base, on the configured path. `style` must
    /// say how the query text is to be encoded (pseudo-triple sentences
    /// fold; question-style text does not). Pruned and exact modes
    /// return identical hits (the hybrid index's ceiling contract).
    #[allow(clippy::too_many_arguments)] // one knob per retrieval degree of freedom
    pub fn search(
        &self,
        embedder: &Embedder,
        text: &str,
        style: QueryStyle,
        k: usize,
        sigma: f32,
        salt: u64,
        mode: RetrievalMode,
    ) -> Vec<Hit> {
        let q = self.query_vector(embedder, text, style);
        match mode {
            RetrievalMode::Exact => self.index.vectors().top_k_noisy(&q, k, sigma, salt),
            RetrievalMode::Pruned => {
                let cands = self.index.candidates(embedder, text, style);
                self.index.top_k_noisy_encoded(&q, &cands, k, sigma, salt)
            }
        }
    }
}

/// Intermediate retrieval diagnostics, recorded in traces and used by
/// the error-analysis harness.
#[derive(Debug, Clone, Default)]
pub struct RetrievalStats {
    /// Size of the base index queried.
    pub base_triples: usize,
    /// Distinct pseudo-graph subjects (`k` of pruning step 1).
    pub pseudo_subjects: usize,
    /// Candidate subjects found by querying.
    pub candidate_subjects: usize,
    /// Subjects surviving both pruning steps.
    pub surviving_subjects: usize,
}

/// Run semantic querying + two-step pruning for one question against a
/// base index.
pub fn ground_graph(
    source: &KgSource,
    base: &BaseIndex,
    embedder: &Embedder,
    cfg: &PipelineConfig,
    pseudo: &[StrTriple],
) -> (GroundGraph, RetrievalStats) {
    let mut stats = RetrievalStats {
        base_triples: base.len(),
        ..Default::default()
    };
    if base.is_empty() || pseudo.is_empty() {
        return (GroundGraph::default(), stats);
    }

    // Distinct pseudo subjects define k.
    let mut pseudo_subjects: Vec<&str> = Vec::new();
    for t in pseudo {
        if !pseudo_subjects.iter().any(|s| s.eq_ignore_ascii_case(&t.s)) {
            pseudo_subjects.push(&t.s);
        }
    }
    let k = pseudo_subjects.len().max(1);
    stats.pseudo_subjects = k;

    // Per-base-triple best similarity across pseudo-triple queries.
    let mut best_score: FxHashMap<usize, f32> = FxHashMap::default();
    for t in pseudo {
        let sentence = verbalize_triple(t);
        let salt = kgstore::hash::stable_str_hash(&sentence);
        for hit in base.search(
            embedder,
            &sentence,
            QueryStyle::Folded,
            cfg.top_k,
            cfg.retrieval_jitter,
            salt,
            cfg.retrieval_mode,
        ) {
            let e = best_score.entry(hit.id).or_insert(f32::MIN);
            if hit.score > *e {
                *e = hit.score;
            }
        }
    }

    // Group retrieved triples by subject entity.
    struct Agg {
        count: usize,
        score_sum: f32,
    }
    let mut by_subject: FxHashMap<Atom, Agg> = FxHashMap::default();
    for (&idx, &score) in &best_score {
        let c = by_subject.entry(base.subjects[idx]).or_insert(Agg {
            count: 0,
            score_sum: 0.0,
        });
        c.count += 1;
        c.score_sum += score;
    }
    stats.candidate_subjects = by_subject.len();

    // Pruning (paper rule or a configured alternative).
    let candidates: Vec<Candidate> = by_subject
        .into_iter()
        .map(|(a, c)| Candidate {
            subject: a,
            count: c.count,
            mean_score: c.score_sum / c.count as f32,
            popularity: source.meta.popularity(a) as f32,
        })
        .collect();
    let survivors = cfg.prune.apply(candidates, k, cfg.entity_threshold);
    stats.surviving_subjects = survivors.len();

    // Materialise the ground graph: *all* of each surviving subject's
    // triples in the source (capped), so the verifier sees complete
    // member lists, not just the retrieved sample.
    let entities = survivors
        .into_iter()
        .map(|(subject, score)| {
            let mut triples: Vec<StrTriple> = source
                .store
                .by_subject(subject)
                .take(cfg.max_entity_triples)
                .map(|t| {
                    let v = source.verbalize(t);
                    StrTriple::new(v.s, semvec::humanize_term(&v.p), v.o)
                })
                .collect();
            triples.sort();
            triples.dedup();
            let meta = source.meta.get(subject);
            GroundEntity {
                label: source.label_of(subject).to_string(),
                description: meta.map(|m| m.description.clone()).unwrap_or_default(),
                score,
                triples,
            }
        })
        .collect();

    (GroundGraph { entities }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgstore::{EntityMeta, SchemaStyle};

    fn source() -> KgSource {
        let mut src = KgSource::new("t", SchemaStyle::WikidataLike);
        for (id, label, pop, desc) in [
            ("Q1", "Yao Ming", 0.95, "basketball player"),
            ("Q2", "Yao Ming", 0.05, "Song dynasty poet"),
            ("Q3", "Shanghai", 0.8, "city"),
            ("Q4", "China", 0.9, "country"),
        ] {
            src.add_entity(
                id,
                EntityMeta {
                    label: label.into(),
                    aliases: vec![],
                    description: desc.into(),
                    popularity: pop,
                },
            );
        }
        // Popular Yao Ming: rich facts.
        src.add_fact("Q1", "place of birth", "Q3");
        src.add_fact("Q1", "occupation", "basketball player");
        src.add_fact("Q1", "country of citizenship", "Q4");
        src.add_fact("Q1", "description", "basketball player");
        // Namesake: sparse facts.
        src.add_fact("Q2", "era", "Song dynasty");
        src.add_fact("Q3", "country", "Q4");
        src
    }

    fn cfg() -> PipelineConfig {
        PipelineConfig::default()
    }

    fn base_for(src: &KgSource, emb: &Embedder, question: &str) -> BaseIndex {
        BaseIndex::for_question(src, emb, &cfg(), question)
    }

    #[test]
    fn retrieves_and_disambiguates_popular_entity() {
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "Where was Yao Ming born?");
        let pseudo = vec![StrTriple::new("Yao Ming", "BORN_IN", "Beijing")];
        let (g, stats) = ground_graph(&src, &base, &emb, &cfg(), &pseudo);
        assert!(stats.base_triples >= 5);
        assert!(!g.is_empty(), "ground graph empty: {stats:?}");
        // The popular Yao Ming (more matching triples) must rank first.
        assert_eq!(g.entities[0].label, "Yao Ming");
        assert_eq!(g.entities[0].description, "basketball player");
        // And its triples must include the birth fact.
        assert!(g.entities[0]
            .triples
            .iter()
            .any(|t| t.p.contains("birth") && t.o == "Shanghai"));
    }

    #[test]
    fn dataset_level_index_unions_questions() {
        let src = source();
        let emb = Embedder::default();
        let base = BaseIndex::for_questions(
            &src,
            &emb,
            &cfg(),
            ["Where was Yao Ming born?", "In which country is Shanghai?"],
        );
        let single = base_for(&src, &emb, "Where was Yao Ming born?");
        assert!(base.len() >= single.len());
    }

    #[test]
    fn parallel_build_matches_serial_build() {
        let src = source();
        let emb = Embedder::default();
        let questions = ["Where was Yao Ming born?", "In which country is Shanghai?"];
        let serial = BaseIndex::for_questions_with_threads(&src, &emb, &cfg(), questions, 1);
        let parallel = BaseIndex::for_questions_with_threads(&src, &emb, &cfg(), questions, 4);
        assert_eq!(serial.verbalised, parallel.verbalised);
        assert_eq!(serial.subjects, parallel.subjects);
        for id in 0..serial.len() {
            assert_eq!(serial.vectors().vector(id), parallel.vectors().vector(id));
        }
    }

    #[test]
    fn pruned_and_exact_modes_agree_on_ground_graphs() {
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "Where was Yao Ming born in Shanghai?");
        let pseudo = vec![
            StrTriple::new("Yao Ming", "BORN_IN", "Shanghai"),
            StrTriple::new("Shanghai", "LOCATED_IN", "China"),
        ];
        let mut exact_cfg = cfg();
        exact_cfg.retrieval_mode = RetrievalMode::Exact;
        let (g_pruned, _) = ground_graph(&src, &base, &emb, &cfg(), &pseudo);
        let (g_exact, _) = ground_graph(&src, &base, &emb, &exact_cfg, &pseudo);
        assert_eq!(g_pruned.entities.len(), g_exact.entities.len());
        for (a, b) in g_pruned.entities.iter().zip(&g_exact.entities) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.score, b.score, "scores must be bit-identical");
            assert_eq!(a.triples, b.triples);
        }
    }

    #[test]
    fn query_cache_hits_on_repeat_queries() {
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "Where was Yao Ming born?");
        let pseudo = vec![StrTriple::new("Yao Ming", "BORN_IN", "Beijing")];
        let (first, _) = ground_graph(&src, &base, &emb, &cfg(), &pseudo);
        let after_first = base.cache_stats();
        assert!(after_first.misses >= 1);
        assert!(after_first.entries >= 1);
        let (second, _) = ground_graph(&src, &base, &emb, &cfg(), &pseudo);
        let after_second = base.cache_stats();
        assert!(
            after_second.hits > after_first.hits,
            "repeat query must hit: {after_second:?}"
        );
        assert_eq!(after_second.misses, after_first.misses);
        assert_eq!(first.entities.len(), second.entities.len());
        for (a, b) in first.entities.iter().zip(&second.entities) {
            assert_eq!(a.score, b.score, "cached encode must not change scores");
        }
    }

    #[test]
    fn k_limits_candidates_to_pseudo_subject_count() {
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "Where was Yao Ming born?");
        let pseudo = vec![StrTriple::new("Yao Ming", "BORN_IN", "Beijing")];
        let (g, _) = ground_graph(&src, &base, &emb, &cfg(), &pseudo);
        assert!(g.entities.len() <= 1);
    }

    #[test]
    fn high_threshold_prunes_everything() {
        // The paper's Figure-7 failure mode: threshold too high → all
        // entities pruned.
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "Where was Yao Ming born?");
        let pseudo = vec![StrTriple::new("Yao Ming", "BORN_IN", "Beijing")];
        let mut c = cfg();
        c.entity_threshold = 0.99;
        let (g, stats) = ground_graph(&src, &base, &emb, &c, &pseudo);
        assert!(g.is_empty());
        assert!(stats.candidate_subjects > 0);
        assert_eq!(stats.surviving_subjects, 0);
    }

    #[test]
    fn empty_pseudo_graph_yields_empty_ground_graph() {
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "Where was Yao Ming born?");
        let (g, _) = ground_graph(&src, &base, &emb, &cfg(), &[]);
        assert!(g.is_empty());
    }

    #[test]
    fn unmatched_question_yields_empty_base() {
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "What is love?");
        let pseudo = vec![StrTriple::new("Nobody", "KNOWS", "Nothing")];
        let (g, stats) = ground_graph(&src, &base, &emb, &cfg(), &pseudo);
        assert_eq!(stats.base_triples, 0);
        assert!(g.is_empty());
    }

    #[test]
    fn scores_are_sorted_descending() {
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "Where was Yao Ming born in Shanghai?");
        let pseudo = vec![
            StrTriple::new("Yao Ming", "BORN_IN", "Shanghai"),
            StrTriple::new("Shanghai", "LOCATED_IN", "China"),
        ];
        let (g, _) = ground_graph(&src, &base, &emb, &cfg(), &pseudo);
        for pair in g.entities.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }
}
