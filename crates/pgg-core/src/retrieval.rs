//! Semantic querying + two-step pruning (paper §3.2.1).
//!
//! The paper constructs, per dataset, a semantic KG from the questions
//! ("we use the full dataset for testing and constructing the
//! corresponding semantic KG based on the questions") — the union of
//! question-scoped subgraph extractions — and encodes it once. Querying
//! then runs per pseudo-triple against that dataset-level index, where
//! same-name entities, sibling facts, and unrelated-but-similar triples
//! genuinely compete:
//!
//! 1. Build (or receive) the dataset-level base index.
//! 2. For each pseudo-triple retrieve the top-10 most similar triples →
//!    `G_t` (with per-triple similarity scores).
//! 3. Pruning step 1 (popularity): keep the `k = |S_p|` candidate
//!    subjects with the most retrieved triples.
//! 4. Pruning step 2 (confidence): score each subject by the mean
//!    similarity of its retrieved triples, drop those below the
//!    threshold, sort the rest descending → ground graph `G_g`.

use crate::config::PipelineConfig;
use crate::prune::Candidate;
use kgstore::hash::{FxHashMap, FxHashSet};
use kgstore::{extract, Atom, KgSource, StrTriple, Triple};
use semvec::{verbalize_triple, Embedder, VecIndex};
use simllm::{GroundEntity, GroundGraph};

/// A pre-encoded semantic KG: verbalised triples, their subject atoms
/// (into the source's table), and the vector index.
pub struct BaseIndex {
    /// Verbalised triples in index order.
    pub verbalised: Vec<StrTriple>,
    /// Subject atom of each triple (resolvable in the source).
    pub subjects: Vec<Atom>,
    /// The vector index over the verbalised sentences.
    pub index: VecIndex,
}

impl BaseIndex {
    /// Number of triples.
    pub fn len(&self) -> usize {
        self.verbalised.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.verbalised.is_empty()
    }

    /// Build from an explicit set of triples of a source.
    pub fn from_triples(
        source: &KgSource,
        embedder: &Embedder,
        triples: impl IntoIterator<Item = Triple>,
    ) -> Self {
        let mut verbalised = Vec::new();
        let mut subjects = Vec::new();
        let mut index = VecIndex::new(embedder.dim());
        for t in triples {
            let v = source.verbalize(t);
            let v = StrTriple::new(v.s, semvec::humanize_term(&v.p), v.o);
            index.add(&embedder.encode(&v.sentence()));
            verbalised.push(v);
            subjects.push(t.s);
        }
        Self {
            verbalised,
            subjects,
            index,
        }
    }

    /// The paper's per-dataset construction: union of question-scoped
    /// extractions over all dataset questions.
    pub fn for_questions<'a>(
        source: &KgSource,
        embedder: &Embedder,
        cfg: &PipelineConfig,
        questions: impl IntoIterator<Item = &'a str>,
    ) -> Self {
        let mut seen: FxHashSet<Triple> = FxHashSet::default();
        let mut union: Vec<Triple> = Vec::new();
        for q in questions {
            for t in extract(source, q, &cfg.extract).triples {
                if seen.insert(t) {
                    union.push(t);
                }
            }
        }
        Self::from_triples(source, embedder, union)
    }

    /// Question-scoped construction (used when no dataset-level index
    /// was prebuilt).
    pub fn for_question(
        source: &KgSource,
        embedder: &Embedder,
        cfg: &PipelineConfig,
        question: &str,
    ) -> Self {
        Self::from_triples(
            source,
            embedder,
            extract(source, question, &cfg.extract).triples,
        )
    }
}

/// Intermediate retrieval diagnostics, recorded in traces and used by
/// the error-analysis harness.
#[derive(Debug, Clone, Default)]
pub struct RetrievalStats {
    /// Size of the base index queried.
    pub base_triples: usize,
    /// Distinct pseudo-graph subjects (`k` of pruning step 1).
    pub pseudo_subjects: usize,
    /// Candidate subjects found by querying.
    pub candidate_subjects: usize,
    /// Subjects surviving both pruning steps.
    pub surviving_subjects: usize,
}

/// Run semantic querying + two-step pruning for one question against a
/// base index.
pub fn ground_graph(
    source: &KgSource,
    base: &BaseIndex,
    embedder: &Embedder,
    cfg: &PipelineConfig,
    pseudo: &[StrTriple],
) -> (GroundGraph, RetrievalStats) {
    let mut stats = RetrievalStats {
        base_triples: base.len(),
        ..Default::default()
    };
    if base.is_empty() || pseudo.is_empty() {
        return (GroundGraph::default(), stats);
    }

    // Distinct pseudo subjects define k.
    let mut pseudo_subjects: Vec<&str> = Vec::new();
    for t in pseudo {
        if !pseudo_subjects.iter().any(|s| s.eq_ignore_ascii_case(&t.s)) {
            pseudo_subjects.push(&t.s);
        }
    }
    let k = pseudo_subjects.len().max(1);
    stats.pseudo_subjects = k;

    // Per-base-triple best similarity across pseudo-triple queries.
    let mut best_score: FxHashMap<usize, f32> = FxHashMap::default();
    for t in pseudo {
        let sentence = verbalize_triple(t);
        let q = embedder.encode(&sentence);
        let salt = kgstore::hash::stable_str_hash(&sentence);
        for hit in base
            .index
            .top_k_noisy(&q, cfg.top_k, cfg.retrieval_jitter, salt)
        {
            let e = best_score.entry(hit.id).or_insert(f32::MIN);
            if hit.score > *e {
                *e = hit.score;
            }
        }
    }

    // Group retrieved triples by subject entity.
    struct Agg {
        count: usize,
        score_sum: f32,
    }
    let mut by_subject: FxHashMap<Atom, Agg> = FxHashMap::default();
    for (&idx, &score) in &best_score {
        let c = by_subject.entry(base.subjects[idx]).or_insert(Agg {
            count: 0,
            score_sum: 0.0,
        });
        c.count += 1;
        c.score_sum += score;
    }
    stats.candidate_subjects = by_subject.len();

    // Pruning (paper rule or a configured alternative).
    let candidates: Vec<Candidate> = by_subject
        .into_iter()
        .map(|(a, c)| Candidate {
            subject: a,
            count: c.count,
            mean_score: c.score_sum / c.count as f32,
            popularity: source.meta.popularity(a) as f32,
        })
        .collect();
    let survivors = cfg.prune.apply(candidates, k, cfg.entity_threshold);
    stats.surviving_subjects = survivors.len();

    // Materialise the ground graph: *all* of each surviving subject's
    // triples in the source (capped), so the verifier sees complete
    // member lists, not just the retrieved sample.
    let entities = survivors
        .into_iter()
        .map(|(subject, score)| {
            let mut triples: Vec<StrTriple> = source
                .store
                .by_subject(subject)
                .take(cfg.max_entity_triples)
                .map(|t| {
                    let v = source.verbalize(t);
                    StrTriple::new(v.s, semvec::humanize_term(&v.p), v.o)
                })
                .collect();
            triples.sort();
            triples.dedup();
            let meta = source.meta.get(subject);
            GroundEntity {
                label: source.label_of(subject).to_string(),
                description: meta.map(|m| m.description.clone()).unwrap_or_default(),
                score,
                triples,
            }
        })
        .collect();

    (GroundGraph { entities }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgstore::{EntityMeta, SchemaStyle};

    fn source() -> KgSource {
        let mut src = KgSource::new("t", SchemaStyle::WikidataLike);
        for (id, label, pop, desc) in [
            ("Q1", "Yao Ming", 0.95, "basketball player"),
            ("Q2", "Yao Ming", 0.05, "Song dynasty poet"),
            ("Q3", "Shanghai", 0.8, "city"),
            ("Q4", "China", 0.9, "country"),
        ] {
            src.add_entity(
                id,
                EntityMeta {
                    label: label.into(),
                    aliases: vec![],
                    description: desc.into(),
                    popularity: pop,
                },
            );
        }
        // Popular Yao Ming: rich facts.
        src.add_fact("Q1", "place of birth", "Q3");
        src.add_fact("Q1", "occupation", "basketball player");
        src.add_fact("Q1", "country of citizenship", "Q4");
        src.add_fact("Q1", "description", "basketball player");
        // Namesake: sparse facts.
        src.add_fact("Q2", "era", "Song dynasty");
        src.add_fact("Q3", "country", "Q4");
        src
    }

    fn cfg() -> PipelineConfig {
        PipelineConfig::default()
    }

    fn base_for(src: &KgSource, emb: &Embedder, question: &str) -> BaseIndex {
        BaseIndex::for_question(src, emb, &cfg(), question)
    }

    #[test]
    fn retrieves_and_disambiguates_popular_entity() {
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "Where was Yao Ming born?");
        let pseudo = vec![StrTriple::new("Yao Ming", "BORN_IN", "Beijing")];
        let (g, stats) = ground_graph(&src, &base, &emb, &cfg(), &pseudo);
        assert!(stats.base_triples >= 5);
        assert!(!g.is_empty(), "ground graph empty: {stats:?}");
        // The popular Yao Ming (more matching triples) must rank first.
        assert_eq!(g.entities[0].label, "Yao Ming");
        assert_eq!(g.entities[0].description, "basketball player");
        // And its triples must include the birth fact.
        assert!(g.entities[0]
            .triples
            .iter()
            .any(|t| t.p.contains("birth") && t.o == "Shanghai"));
    }

    #[test]
    fn dataset_level_index_unions_questions() {
        let src = source();
        let emb = Embedder::default();
        let base = BaseIndex::for_questions(
            &src,
            &emb,
            &cfg(),
            ["Where was Yao Ming born?", "In which country is Shanghai?"],
        );
        let single = base_for(&src, &emb, "Where was Yao Ming born?");
        assert!(base.len() >= single.len());
    }

    #[test]
    fn k_limits_candidates_to_pseudo_subject_count() {
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "Where was Yao Ming born?");
        let pseudo = vec![StrTriple::new("Yao Ming", "BORN_IN", "Beijing")];
        let (g, _) = ground_graph(&src, &base, &emb, &cfg(), &pseudo);
        assert!(g.entities.len() <= 1);
    }

    #[test]
    fn high_threshold_prunes_everything() {
        // The paper's Figure-7 failure mode: threshold too high → all
        // entities pruned.
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "Where was Yao Ming born?");
        let pseudo = vec![StrTriple::new("Yao Ming", "BORN_IN", "Beijing")];
        let mut c = cfg();
        c.entity_threshold = 0.99;
        let (g, stats) = ground_graph(&src, &base, &emb, &c, &pseudo);
        assert!(g.is_empty());
        assert!(stats.candidate_subjects > 0);
        assert_eq!(stats.surviving_subjects, 0);
    }

    #[test]
    fn empty_pseudo_graph_yields_empty_ground_graph() {
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "Where was Yao Ming born?");
        let (g, _) = ground_graph(&src, &base, &emb, &cfg(), &[]);
        assert!(g.is_empty());
    }

    #[test]
    fn unmatched_question_yields_empty_base() {
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "What is love?");
        let pseudo = vec![StrTriple::new("Nobody", "KNOWS", "Nothing")];
        let (g, stats) = ground_graph(&src, &base, &emb, &cfg(), &pseudo);
        assert_eq!(stats.base_triples, 0);
        assert!(g.is_empty());
    }

    #[test]
    fn scores_are_sorted_descending() {
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "Where was Yao Ming born in Shanghai?");
        let pseudo = vec![
            StrTriple::new("Yao Ming", "BORN_IN", "Shanghai"),
            StrTriple::new("Shanghai", "LOCATED_IN", "China"),
        ];
        let (g, _) = ground_graph(&src, &base, &emb, &cfg(), &pseudo);
        for pair in g.entities.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }
}
