//! Semantic querying + two-step pruning (paper §3.2.1).
//!
//! The paper constructs, per dataset, a semantic KG from the questions
//! ("we use the full dataset for testing and constructing the
//! corresponding semantic KG based on the questions") — the union of
//! question-scoped subgraph extractions — and encodes it once. Querying
//! then runs per pseudo-triple against that dataset-level index, where
//! same-name entities, sibling facts, and unrelated-but-similar triples
//! genuinely compete:
//!
//! 1. Build (or receive) the dataset-level base index.
//! 2. For each pseudo-triple retrieve the top-10 most similar triples →
//!    `G_t` (with per-triple similarity scores).
//! 3. Pruning step 1 (popularity): keep the `k = |S_p|` candidate
//!    subjects with the most retrieved triples.
//! 4. Pruning step 2 (confidence): score each subject by the mean
//!    similarity of its retrieved triples, drop those below the
//!    threshold, sort the rest descending → ground graph `G_g`.
//!
//! Retrieval runs on the fast path by default: the base index is a
//! sharded [`SegmentedIndex`] (fixed-size segments, each with its own
//! int8 quant shadow and token postings; candidate pruning + exact
//! rerank, bit-identical to the full scan under the zero-overlap
//! ceiling contract — see `semvec::seg`), queries go through a bounded
//! thread-safe embedding cache, and dataset-level builds encode across
//! threads with deterministic output. [`RetrievalMode::Exact`] keeps
//! the brute-force scan available for equivalence benches.
//!
//! Pruned queries are *routed* before they scan: an alias-folding
//! entity index over the base (`semvec::entity`) folds the query's
//! surface n-grams to entity ids and, when the mentioned entities'
//! posting union is tight enough, runs the three-phase entity kernel —
//! entity-mention docs scored as tier-0, the residual token union
//! walked under the entity-disjoint ceiling's suspect floor, everything
//! else audited — instead of materializing the (much larger) token
//! union. Every routing decision is memoized per unique query, so
//! fan-out duplicates within a batch and repeat queries across calls
//! are decided once; the gate counters agree between the batched and
//! per-query arms by construction. Routing never changes hits.
//!
//! With a configured cache directory ([`PipelineConfig::base_cache_dir`])
//! the encoded base is built **once** into the versioned, checksummed
//! on-disk format of `semvec::segfile` (keyed by a content hash of the
//! verbalised sentences) and reopened zero-copy on later runs —
//! open-or-build. A checksum mismatch, version skew, or any other open
//! failure silently falls back to a fresh build that rewrites the file.

use crate::config::PipelineConfig;
use crate::prune::Candidate;
use kgstore::hash::{FxHashMap, FxHashSet};
use kgstore::{extract, Atom, KgSource, StrTriple, Triple};
use parking_lot::Mutex;
use semvec::{
    minus_sorted, verbalize_triple, Embedder, EntityIndex, Hit, QueryStyle, ScreenStats,
    SegmentedIndex,
};
use serde::{Deserialize, Serialize};
use simllm::{GroundEntity, GroundGraph};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which scan the base index runs per query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RetrievalMode {
    /// Token-postings candidate pruning + exact rerank (the fast path;
    /// hits are bit-identical to [`Exact`] under the hybrid index's
    /// documented ceiling contract, which the perf bench asserts).
    ///
    /// [`Exact`]: RetrievalMode::Exact
    #[default]
    Pruned,
    /// Brute-force scan of every indexed triple.
    Exact,
}

/// How each scanned document is scored. Orthogonal to
/// [`RetrievalMode`]: retrieval mode decides *which* documents are
/// scanned, scoring mode decides *how* each is scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ScoringMode {
    /// The quantized two-stage engine: int8 screen of every scanned
    /// document, exact f32 rerank of everything within the provable
    /// per-pair error bound of the quantized k-th score. Bit-identical
    /// to [`ExactF32`] — same ids, same scores, same tie-break order —
    /// by construction (see [`semvec::quant`]); the perf bench and the
    /// CI smoke assert it on every run.
    ///
    /// [`ExactF32`]: ScoringMode::ExactF32
    #[default]
    QuantizedScreen,
    /// The plain f32 dot for every scanned document (the reference
    /// path the quantized engine is checked against).
    ExactF32,
}

/// Whether semantic querying batches a question's pseudo-triple
/// queries into one tiled pass over the base index. Orthogonal to
/// [`RetrievalMode`] and [`ScoringMode`]: batching changes *when* each
/// (query, document) pair is scored, never its value, so both modes
/// return bit-identical hits (the perf bench asserts it at full
/// scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BatchMode {
    /// Collect all of a question's queries (deduplicated) into one
    /// [`BaseIndex::search_batch`] call: the query-tiled kernels share
    /// each document-block load across the batch.
    #[default]
    Batched,
    /// One [`BaseIndex::search`] call per query — the sequential
    /// reference path the batched engine is checked against.
    PerQuery,
}

/// Upper bound on cached query embeddings. Entries are one `dim`-float
/// vector plus the query text (~1.2 KiB at dim 256), so the cap bounds
/// memory at a few MiB per base index.
const QUERY_CACHE_CAP: usize = 4096;

/// Of the total capacity, how much belongs to the probationary
/// segment; the remainder is the protected segment.
const PROBATION_FRACTION: usize = 4; // one quarter

/// Monotonic counters of the query-embedding cache.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to encode.
    pub misses: u64,
    /// Entries evicted one at a time by segment overflow (the old
    /// clear-on-full wipe is gone; a full segment sheds exactly one
    /// entry per insertion).
    pub evictions: u64,
    /// Entries currently held.
    pub entries: usize,
}

/// Cache key: (folded?, query text).
type Key = (bool, String);

/// Which cache segment an entry currently lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Seg {
    Probation,
    Protected,
}

/// The mutexed state of the two-segment cache.
struct CacheState {
    map: FxHashMap<Key, (Arc<Vec<f32>>, Seg)>,
    /// FIFO insertion orders per segment. Lazily invalidated: a key
    /// promoted out of probation stays in the probation queue until it
    /// is popped and found stale (its map segment no longer matches).
    probation_fifo: VecDeque<Key>,
    protected_fifo: VecDeque<Key>,
    /// Live entries per segment (queues may be longer due to stale
    /// keys).
    probation_len: usize,
    protected_len: usize,
    /// Hashes of recently evicted keys ("ghosts"): a re-miss on a
    /// ghost inserts straight into the protected segment, so a hot
    /// working set larger than probation stops thrashing after one
    /// round trip. Bounded FIFO.
    ghost_fifo: VecDeque<u64>,
    ghosts: FxHashSet<u64>,
}

/// Bounded, thread-safe memo of query embeddings with deterministic
/// two-segment (probationary/protected) eviction. Encoding is
/// deterministic, so a cached vector is byte-for-byte the vector a
/// fresh encode would produce — the cache can never change a result,
/// only skip work.
///
/// Eviction discipline (all FIFO, hence deterministic for a given
/// access sequence):
/// * a miss inserts into **probation** — unless the key was recently
///   evicted (a *ghost*), in which case it goes straight to
///   **protected**: seeing a key again after losing it is the signal
///   that it is part of a hot working set;
/// * a hit on a probationary entry promotes it to protected;
/// * a full segment evicts its oldest entry (one per insertion — never
///   the wholesale clear the old cache did), recording the key as a
///   ghost.
struct QueryCache {
    state: Mutex<CacheState>,
    probation_cap: usize,
    protected_cap: usize,
    ghost_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl QueryCache {
    fn new() -> Self {
        Self::with_caps(
            QUERY_CACHE_CAP / PROBATION_FRACTION,
            QUERY_CACHE_CAP - QUERY_CACHE_CAP / PROBATION_FRACTION,
        )
    }

    /// Explicit segment capacities (exposed for tests; both must be
    /// nonzero).
    fn with_caps(probation_cap: usize, protected_cap: usize) -> Self {
        assert!(probation_cap > 0 && protected_cap > 0);
        Self {
            state: Mutex::new(CacheState {
                map: FxHashMap::default(),
                probation_fifo: VecDeque::new(),
                protected_fifo: VecDeque::new(),
                probation_len: 0,
                protected_len: 0,
                ghost_fifo: VecDeque::new(),
                ghosts: FxHashSet::default(),
            }),
            probation_cap,
            protected_cap,
            ghost_cap: probation_cap + protected_cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn ghost_hash(key: &Key) -> u64 {
        kgstore::hash::mix2(kgstore::hash::stable_str_hash(&key.1), key.0 as u64)
    }

    fn get_or_encode(&self, embedder: &Embedder, text: &str, style: QueryStyle) -> Arc<Vec<f32>> {
        let folded = style == QueryStyle::Folded;
        let key: Key = (folded, text.to_string());
        {
            let mut st = self.state.lock();
            if let Some((v, seg)) = st.map.get(&key).map(|(v, s)| (Arc::clone(v), *s)) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if seg == Seg::Probation {
                    Self::promote(&mut st, &key);
                    self.evict_overflow(&mut st, Seg::Protected);
                }
                return v;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Encode outside the lock so concurrent misses don't serialize.
        let v = Arc::new(match style {
            QueryStyle::Folded => embedder.encode(text),
            QueryStyle::Unfolded => embedder.encode_unfolded(text),
        });
        let mut st = self.state.lock();
        // A concurrent miss may have inserted the key meanwhile; the
        // vectors are identical bits either way, so the existing entry
        // (and its segment bookkeeping) is kept untouched.
        if st.map.contains_key(&key) {
            return v;
        }
        let seg = if st.ghosts.contains(&Self::ghost_hash(&key)) {
            Seg::Protected
        } else {
            Seg::Probation
        };
        st.map.insert(key.clone(), (Arc::clone(&v), seg));
        match seg {
            Seg::Probation => {
                st.probation_fifo.push_back(key);
                st.probation_len += 1;
            }
            Seg::Protected => {
                st.protected_fifo.push_back(key);
                st.protected_len += 1;
            }
        }
        self.evict_overflow(&mut st, seg);
        v
    }

    /// Move a probationary entry to the protected segment. The stale
    /// probation-queue slot is skipped when it surfaces.
    fn promote(st: &mut CacheState, key: &Key) {
        if let Some((_, seg)) = st.map.get_mut(key) {
            *seg = Seg::Protected;
            st.probation_len -= 1;
            st.protected_len += 1;
            st.protected_fifo.push_back(key.clone());
        }
    }

    /// Evict the oldest live entry of a segment while it is over
    /// capacity, recording ghosts.
    fn evict_overflow(&self, st: &mut CacheState, seg: Seg) {
        let (cap, live) = match seg {
            Seg::Probation => (self.probation_cap, st.probation_len),
            Seg::Protected => (self.protected_cap, st.protected_len),
        };
        let mut live = live;
        while live > cap {
            let key = match seg {
                Seg::Probation => st.probation_fifo.pop_front(),
                Seg::Protected => st.protected_fifo.pop_front(),
            }
            .expect("live entries imply a nonempty queue");
            // Skip stale slots: promoted or already-replaced keys.
            let is_live = matches!(st.map.get(&key), Some((_, s)) if *s == seg);
            if !is_live {
                continue;
            }
            st.map.remove(&key);
            live -= 1;
            self.evictions.fetch_add(1, Ordering::Relaxed);
            let h = Self::ghost_hash(&key);
            if st.ghosts.insert(h) {
                st.ghost_fifo.push_back(h);
                while st.ghost_fifo.len() > self.ghost_cap {
                    let old = st.ghost_fifo.pop_front().expect("nonempty");
                    st.ghosts.remove(&old);
                }
            }
        }
        match seg {
            Seg::Probation => st.probation_len = live,
            Seg::Protected => st.protected_len = live,
        }
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.state.lock().map.len(),
        }
    }

    /// Credit `n` hits that were served without touching the cache:
    /// the batch path's in-batch deduplication. A duplicate slot
    /// reuses its twin's encoding exactly like a repeat query reuses a
    /// cached entry, so crediting it keeps the hit ledger identical
    /// between the batched and per-query modes — previously the
    /// per-query e2e arm reported more hits than the batched arm for
    /// the same workload, which read as a caching regression.
    fn note_hits(&self, n: u64) {
        if n > 0 {
            self.hits.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// Monotonic counters of the scoring engine across every search this
/// index served: documents screened by the int8 kernel, documents the
/// margin sent to the exact f32 rerank, and the batch-entry shape
/// (how many [`BaseIndex::search_batch`] calls ran, how wide they
/// were, how many slots deduplication collapsed).
#[derive(Debug, Clone, Copy, Default)]
pub struct ScoringStats {
    /// Documents scored by the int8 screening kernel.
    pub screened: u64,
    /// Documents re-scored by the exact f32 path.
    pub reranked: u64,
    /// [`BaseIndex::search_batch`] calls served.
    pub batches: u64,
    /// Query slots across all batches (before deduplication).
    pub batch_slots: u64,
    /// Slots that shared another slot's encoding and scan because their
    /// (style, salt, text) key was a duplicate within the batch.
    pub batch_deduped: u64,
    /// Queries answered through the pruned (token-postings) scan.
    pub pruned_queries: u64,
    /// Candidate documents those pruned scans actually visited (the
    /// full base is `pruned_queries × base.len()` documents; the gap is
    /// what pruning saved).
    pub pruned_candidates: u64,
    /// Pruned-mode queries the adaptive gate routed to the exact scan
    /// because the postings estimate said pruning could not pay for
    /// its candidate materialization. Not counted in `pruned_queries`,
    /// so [`Self::candidate_fraction`] keeps describing the scans that
    /// actually pruned. Like `pruned_queries`, counted once per
    /// *unique* routing decision — duplicates are served by the route
    /// memo.
    pub gate_fallbacks: u64,
    /// Pruned-mode queries the router answered through the entity
    /// route: alias-folded entity mentions as tier-0 candidates, the
    /// residual token union as the suspect tier. A subset of
    /// `pruned_queries`.
    pub entity_queries: u64,
    /// Tier-0 documents across entity-routed queries (also counted in
    /// `pruned_candidates`, so [`Self::candidate_fraction`] describes
    /// every scan that pruned, whichever route it took).
    pub entity_candidates: u64,
    /// Entities the surface fold matched, summed over every routed
    /// query whose fold found at least one entity.
    pub entity_folded: u64,
    /// Query n-grams that hit a surface key during folding.
    pub entity_surfaces: u64,
    /// Query n-grams probed against the surface table during folding.
    pub entity_ngrams: u64,
    /// Residual tier-1 documents (token overlap, entity-disjoint) of
    /// entity-routed queries — walked under the entity-disjoint
    /// ceiling's suspect floor, never scored wholesale.
    pub entity_tier1: u64,
    /// Routing decisions served from the bounded route memo instead of
    /// being recomputed (repeat queries; batch fan-out duplicates are
    /// collapsed even earlier, by slot dedup).
    pub route_memo_hits: u64,
}

impl ScoringStats {
    /// Fraction of screened documents that needed the exact rerank.
    pub fn rerank_rate(&self) -> f64 {
        if self.screened == 0 {
            0.0
        } else {
            self.reranked as f64 / self.screened as f64
        }
    }

    /// Mean slots per [`BaseIndex::search_batch`] call (0 when no
    /// batch ran).
    pub fn mean_batch_width(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batch_slots as f64 / self.batches as f64
        }
    }

    /// Fraction of batch slots answered by another slot's scan.
    pub fn dedup_rate(&self) -> f64 {
        if self.batch_slots == 0 {
            0.0
        } else {
            self.batch_deduped as f64 / self.batch_slots as f64
        }
    }

    /// Mean fraction of the base each pruned query actually scanned
    /// (1.0 would mean pruning never dropped a document). Per unique
    /// routed query: the route memo decides — and counts — each
    /// distinct (style, gate-relax, text) key once.
    pub fn candidate_fraction(&self, base_len: usize) -> f64 {
        let denom = self.pruned_queries as f64 * base_len as f64;
        if denom == 0.0 {
            0.0
        } else {
            self.pruned_candidates as f64 / denom
        }
    }

    /// Mean tier-0 fraction of the base per entity-routed query.
    pub fn entity_candidate_fraction(&self, base_len: usize) -> f64 {
        let denom = self.entity_queries as f64 * base_len as f64;
        if denom == 0.0 {
            0.0
        } else {
            self.entity_candidates as f64 / denom
        }
    }

    /// Fraction of surface probes that matched an entity surface (the
    /// fold hit rate).
    pub fn fold_hit_rate(&self) -> f64 {
        if self.entity_ngrams == 0 {
            0.0
        } else {
            self.entity_surfaces as f64 / self.entity_ngrams as f64
        }
    }

    /// Fraction of pruned-route decisions answered by the entity
    /// route.
    pub fn entity_route_rate(&self) -> f64 {
        let decisions = self.pruned_queries + self.gate_fallbacks;
        if decisions == 0 {
            0.0
        } else {
            self.entity_queries as f64 / decisions as f64
        }
    }
}

/// Default candidate-fraction ceiling of the adaptive pruning gate
/// (see [`PipelineConfig::prune_gate`]): under quantized scoring a
/// pruned scan must promise a candidate set below this fraction of
/// the corpus, or the query runs the exact SoA scan instead. The
/// break-even point comes from the perf bench: the batched int8
/// screen costs so little per document that candidate
/// materialization + gathered scoring + the suspect audit only wins
/// when the candidate set is genuinely small.
pub const PRUNE_GATE_DEFAULT: f32 = 0.05;

/// Gate relaxation under [`ScoringMode::ExactF32`]: without the int8
/// screen a full scan pays ~3× more per document, so pruning stays
/// profitable up to a proportionally larger candidate fraction
/// (retrieval-kernel bench: pruned wins ~1.9× at fraction 0.08 in
/// f32, while losing under quantized batched scoring).
const GATE_F32_RELAX: f32 = 4.0;

/// Default tier-0 candidate-fraction ceiling of the entity route (see
/// [`PipelineConfig::entity_gate`]): a folded query whose
/// alias-folded entity mentions stay under this fraction of the corpus
/// runs the three-phase entity kernel, with only the mention union
/// scored wholesale. Deliberately much tighter than
/// [`PRUNE_GATE_DEFAULT`] — shrinking the wholesale-scored set is the
/// entire point of the route, and the cap binds the materialized
/// mention *union*, so every admitted query scores at most this
/// fraction of the corpus wholesale. Foldable queries over the cap
/// hard-fallback to the exact engine (see `entity_route`), which
/// costs exactly the exact arm's price and keeps `cand_fraction`
/// describing tight scans only.
pub const ENTITY_GATE_DEFAULT: f32 = 0.005;

/// Tier-1 slack of the entity route: the residual token union may be
/// up to this multiple of the token gate's candidate budget, because
/// tier-1 documents are only hash-floor-tested under the
/// entity-disjoint ceiling, never scored wholesale. Beyond it even
/// floor walks stop paying and the query defers to the token gate's
/// own decision.
const ENTITY_TOKEN_RELAX: f32 = 8.0;

/// Smallest tier-0 set the entity route admits without also bounding
/// the merged (tier-0 ∪ tier-1) set by the token budget: below the
/// scan's k the entity kernel falls back to a pruned scan of the
/// merged set, so a tiny tier-0 is only worth routing when that
/// fallback would still fit the token gate's budget.
const ENTITY_MIN_TIER0: usize = 16;

/// Bounded capacity of the route memo (entries, FIFO eviction).
const ROUTE_MEMO_CAP: usize = 4096;

/// One memoized routing decision of the pruned path. Cheap to clone —
/// candidate lists are shared, so batch fan-out never copies them.
#[derive(Clone)]
enum Route {
    /// Entity route: tier-0 entity-mention docs plus the residual
    /// token union for the suspect tier.
    Entity {
        ents: Arc<Vec<u32>>,
        toks: Arc<Vec<u32>>,
    },
    /// Token route: the classic pruned candidate set.
    Token(Arc<Vec<u32>>),
    /// The gate refused; the query runs the exact scan.
    Fallback,
}

/// Bounded FIFO memo of routing decisions, keyed by (folded style,
/// f32-relaxed gate, query text) — the inputs the decision depends on.
#[derive(Default)]
struct RouteMemo {
    map: FxHashMap<(bool, bool, String), Route>,
    fifo: VecDeque<(bool, bool, String)>,
}

/// Content hash keying the on-disk base cache: the file-format
/// version, embedder dimension, segment geometry, and every verbalised
/// sentence in index order. Any change to what would be encoded — or
/// to how it would be laid out — changes the key, so a stale file can
/// never be opened for the wrong corpus.
fn base_content_hash(dim: usize, seg_rows: usize, sentences: &[&str]) -> u64 {
    use kgstore::hash::{mix2, stable_str_hash};
    let mut h = mix2(semvec::segfile::FORMAT_VERSION as u64, dim as u64);
    h = mix2(h, seg_rows as u64);
    h = mix2(h, sentences.len() as u64);
    for s in sentences {
        h = mix2(h, stable_str_hash(s));
    }
    h
}

/// Open the cached index for these sentences, or build (and best-effort
/// cache) it. See [`BaseIndex::from_triples_cached`] for the contract.
fn open_or_build(
    embedder: &Embedder,
    sentences: &[&str],
    entity: EntityIndex,
    threads: usize,
    cache_dir: Option<&std::path::Path>,
) -> SegmentedIndex {
    let seg_rows = semvec::SEG_ROWS_DEFAULT;
    let Some(dir) = cache_dir else {
        return SegmentedIndex::build_parallel(embedder, sentences, seg_rows, threads)
            .with_entity(entity);
    };
    // The entity section is part of the cached artifact, so its
    // logical content extends the key: changed surfaces or mentions (a
    // new redirect table, say) invalidate the file even when the
    // sentences are unchanged.
    let hash = entity.content_hash(base_content_hash(embedder.dim(), seg_rows, sentences));
    let path = dir.join(format!("base-{hash:016x}.seg"));
    if let Ok(idx) = SegmentedIndex::open(&path) {
        // The checksum already vouches for integrity; shape checks
        // guard against a (vanishingly unlikely) key collision — and a
        // reopened file must carry the entity section the build would
        // attach.
        if idx.dim() == embedder.dim()
            && idx.len() == sentences.len()
            && idx.entity_index().is_some_and(|e| {
                e.n_entities() == entity.n_entities() && e.n_surfaces() == entity.n_surfaces()
            })
        {
            return idx;
        }
    }
    let idx =
        SegmentedIndex::build_parallel(embedder, sentences, seg_rows, threads).with_entity(entity);
    // Cache write is best-effort: a read-only or full disk must not
    // fail the build.
    let _ = idx.write_to(&path);
    idx
}

/// Build the alias-folding entity index for a verbalised triple set:
/// entities are the distinct subject/object atoms (ascending atom
/// order → dense ids), each triple row mentions its two endpoints, and
/// every entity's label, aliases, and redirect surfaces fold into the
/// surface table. Pure bookkeeping — no embedding work — so it runs on
/// every build, cached or not, and its content hash extends the
/// on-disk cache key.
fn build_entity_index(
    source: &KgSource,
    embedder: &Embedder,
    endpoints: &[(Atom, Atom)],
) -> EntityIndex {
    let mut atoms: Vec<Atom> = endpoints.iter().flat_map(|&(s, o)| [s, o]).collect();
    atoms.sort_unstable();
    atoms.dedup();
    let id_of: FxHashMap<Atom, u32> = atoms
        .iter()
        .enumerate()
        .map(|(i, &a)| (a, i as u32))
        .collect();
    let mut mentions: Vec<(u32, u32)> = Vec::with_capacity(endpoints.len() * 2);
    for (row, &(s, o)) in endpoints.iter().enumerate() {
        mentions.push((row as u32, id_of[&s]));
        mentions.push((row as u32, id_of[&o]));
    }
    let mut surfaces: Vec<(String, u32)> = Vec::new();
    for (i, &a) in atoms.iter().enumerate() {
        surfaces.push((source.label_of(a).to_string(), i as u32));
        if let Some(m) = source.meta.get(a) {
            for alias in &m.aliases {
                surfaces.push((alias.clone(), i as u32));
            }
        }
    }
    // Redirect surfaces ("Shanghai Municipality" → Shanghai) fold to
    // their target when the target is mentioned in the base.
    for (surface, target) in source.meta.redirects_sorted() {
        if let Some(&i) = id_of.get(&target) {
            surfaces.push((surface.to_string(), i));
        }
    }
    EntityIndex::build(
        embedder,
        endpoints.len(),
        atoms.len(),
        surfaces.iter().map(|(s, i)| (s.as_str(), *i)),
        &mentions,
    )
}

/// A pre-encoded semantic KG: verbalised triples, their subject atoms
/// (into the source's table), and the hybrid (postings + vector) index,
/// plus a query-embedding cache.
pub struct BaseIndex {
    /// Verbalised triples in index order.
    pub verbalised: Vec<StrTriple>,
    /// Subject atom of each triple (resolvable in the source).
    pub subjects: Vec<Atom>,
    index: SegmentedIndex,
    cache: QueryCache,
    routes: Mutex<RouteMemo>,
    prune_gate: f32,
    entity_gate: f32,
    screened: AtomicU64,
    reranked: AtomicU64,
    batches: AtomicU64,
    batch_slots: AtomicU64,
    batch_deduped: AtomicU64,
    pruned_queries: AtomicU64,
    pruned_candidates: AtomicU64,
    gate_fallbacks: AtomicU64,
    entity_queries: AtomicU64,
    entity_candidates: AtomicU64,
    entity_folded: AtomicU64,
    entity_surfaces: AtomicU64,
    entity_ngrams: AtomicU64,
    entity_tier1: AtomicU64,
    route_memo_hits: AtomicU64,
}

impl BaseIndex {
    /// Number of triples.
    pub fn len(&self) -> usize {
        self.verbalised.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.verbalised.is_empty()
    }

    /// The underlying sharded index (one row per triple).
    pub fn segmented(&self) -> &SegmentedIndex {
        &self.index
    }

    /// The stored embedding of triple `id` (global row order).
    pub fn vector(&self, id: usize) -> &[f32] {
        self.index.vector(id)
    }

    /// Encode-worker threads the index build used (0 when the index
    /// was reopened from the on-disk cache and never encoded).
    pub fn build_threads_used(&self) -> usize {
        self.index.build_threads_used()
    }

    /// Whether the index was reopened zero-copy from the on-disk cache
    /// rather than built in RAM.
    pub fn is_file_backed(&self) -> bool {
        self.index.is_file_backed()
    }

    /// Query-embedding cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Quantized-scoring counters accumulated over every search this
    /// index served (zero when only [`ScoringMode::ExactF32`] ran).
    pub fn scoring_stats(&self) -> ScoringStats {
        ScoringStats {
            screened: self.screened.load(Ordering::Relaxed),
            reranked: self.reranked.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_slots: self.batch_slots.load(Ordering::Relaxed),
            batch_deduped: self.batch_deduped.load(Ordering::Relaxed),
            pruned_queries: self.pruned_queries.load(Ordering::Relaxed),
            pruned_candidates: self.pruned_candidates.load(Ordering::Relaxed),
            gate_fallbacks: self.gate_fallbacks.load(Ordering::Relaxed),
            entity_queries: self.entity_queries.load(Ordering::Relaxed),
            entity_candidates: self.entity_candidates.load(Ordering::Relaxed),
            entity_folded: self.entity_folded.load(Ordering::Relaxed),
            entity_surfaces: self.entity_surfaces.load(Ordering::Relaxed),
            entity_ngrams: self.entity_ngrams.load(Ordering::Relaxed),
            entity_tier1: self.entity_tier1.load(Ordering::Relaxed),
            route_memo_hits: self.route_memo_hits.load(Ordering::Relaxed),
        }
    }

    fn record_screen(&self, stats: ScreenStats) {
        self.screened.fetch_add(stats.screened, Ordering::Relaxed);
        self.reranked.fetch_add(stats.reranked, Ordering::Relaxed);
    }

    fn record_pruned(&self, candidates: usize) {
        self.pruned_queries.fetch_add(1, Ordering::Relaxed);
        self.pruned_candidates
            .fetch_add(candidates as u64, Ordering::Relaxed);
    }

    /// Resolve (and memoize) the pruned path's routing decision for
    /// one query. Each unique (folded, gate-relax, text) key is
    /// computed — and counted — exactly once; repeat queries are
    /// served from the bounded memo, and batch fan-out duplicates are
    /// collapsed even earlier by slot dedup, so the gate counters
    /// agree between the batched and per-query arms by construction.
    /// Routing never changes hits: every route is bit-identical to the
    /// exact scan by the hybrid index's ceiling contracts.
    fn route_query(
        &self,
        embedder: &Embedder,
        text: &str,
        style: QueryStyle,
        scoring: ScoringMode,
    ) -> Route {
        let key = (
            style == QueryStyle::Folded,
            scoring == ScoringMode::ExactF32,
            text.to_string(),
        );
        // The lock is held across the computation on purpose: the
        // counters must tick exactly once per unique key whatever the
        // thread interleaving, or the batched/per-query parity the
        // counters promise would flake under concurrency.
        let mut memo = self.routes.lock();
        if let Some(r) = memo.map.get(&key) {
            self.route_memo_hits.fetch_add(1, Ordering::Relaxed);
            return r.clone();
        }
        let route = self.compute_route(embedder, text, style, scoring);
        memo.map.insert(key.clone(), route.clone());
        memo.fifo.push_back(key);
        if memo.fifo.len() > ROUTE_MEMO_CAP {
            let old = memo.fifo.pop_front().expect("over-capacity memo");
            memo.map.remove(&old);
        }
        route
    }

    /// The uncached routing decision: the entity route when the folded
    /// mentions are tight enough, otherwise the adaptive token gate —
    /// candidate generation behind a postings-sum admission estimate.
    /// A refused gate is counted as a fallback, *not* a pruned query,
    /// so `candidate_fraction` keeps describing actual pruned scans.
    fn compute_route(
        &self,
        embedder: &Embedder,
        text: &str,
        style: QueryStyle,
        scoring: ScoringMode,
    ) -> Route {
        let relax = match scoring {
            ScoringMode::QuantizedScreen => 1.0,
            ScoringMode::ExactF32 => GATE_F32_RELAX,
        };
        let max_cands = (self.prune_gate * relax * self.len() as f32) as usize;
        // Entity route: folded queries only — the surface table lives
        // in folded token space.
        if style == QueryStyle::Folded {
            if let Some(ent) = self.index.entity_index() {
                if let Some(route) = self.entity_route(embedder, ent, text, relax, max_cands) {
                    return route;
                }
            }
        }
        match self
            .index
            .candidates_if_under(embedder, text, style, max_cands)
        {
            Ok(cands) => {
                self.record_pruned(cands.len());
                Route::Token(Arc::new(cands))
            }
            Err(_estimate) => {
                self.gate_fallbacks.fetch_add(1, Ordering::Relaxed);
                Route::Fallback
            }
        }
    }

    /// Try the entity route: fold the query against the surface table,
    /// estimate then materialize the tier-0 mention union, and admit
    /// when tier-0 is under the entity gate and the residual token
    /// union materializes under the relaxed tier-1 budget. `None`
    /// defers to the token gate (unfoldable queries, or a disabled
    /// gate). A query that *folds* but whose mention union exceeds the
    /// entity cap hard-falls-back instead: token postings subsume the
    /// matched entity surfaces, so any token cover for that query is
    /// at least as loose as the over-cap mention union — deferring
    /// would re-admit exactly the loose scans this route exists to
    /// retire.
    fn entity_route(
        &self,
        embedder: &Embedder,
        ent: &EntityIndex,
        text: &str,
        relax: f32,
        max_cands: usize,
    ) -> Option<Route> {
        // A closed gate (0, the disable knob) admits nothing — skip
        // even the fold, so the disabled route costs zero per query.
        let tier0_cap = (self.entity_gate * relax * self.len() as f32) as usize;
        if tier0_cap == 0 {
            return None;
        }
        let fold = ent.fold(embedder, text);
        self.entity_ngrams
            .fetch_add(fold.ngrams_probed as u64, Ordering::Relaxed);
        self.entity_surfaces
            .fetch_add(fold.surfaces_matched as u64, Ordering::Relaxed);
        if fold.entities.is_empty() {
            return None;
        }
        self.entity_folded
            .fetch_add(fold.entities.len() as u64, Ordering::Relaxed);
        // Two-stage admission: a cheap postings-sum pre-filter (with
        // 2× slack — duplicate mentions inflate the sum well past the
        // union it estimates), then the materialized union's true size
        // against the cap, so the gate bounds exactly what gets scored
        // wholesale.
        if ent.postings_estimate(&fold.entities) > tier0_cap.saturating_mul(2) {
            self.gate_fallbacks.fetch_add(1, Ordering::Relaxed);
            return Some(Route::Fallback);
        }
        let ents = ent.doc_candidates(&fold.entities);
        if ents.len() > tier0_cap {
            self.gate_fallbacks.fetch_add(1, Ordering::Relaxed);
            return Some(Route::Fallback);
        }
        let tier1_cap = (ENTITY_TOKEN_RELAX * self.prune_gate * relax * self.len() as f32) as usize;
        let toks_all = self
            .index
            .candidates_if_under(embedder, text, QueryStyle::Folded, tier1_cap)
            .ok()?;
        let toks = minus_sorted(&toks_all, &ents);
        if ents.len() < ENTITY_MIN_TIER0 && ents.len() + toks.len() > max_cands {
            return None;
        }
        self.entity_queries.fetch_add(1, Ordering::Relaxed);
        self.entity_candidates
            .fetch_add(ents.len() as u64, Ordering::Relaxed);
        self.entity_tier1
            .fetch_add(toks.len() as u64, Ordering::Relaxed);
        self.record_pruned(ents.len());
        Some(Route::Entity {
            ents: Arc::new(ents),
            toks: Arc::new(toks),
        })
    }

    /// Build from an explicit set of triples of a source (serial).
    pub fn from_triples(
        source: &KgSource,
        embedder: &Embedder,
        triples: impl IntoIterator<Item = Triple>,
    ) -> Self {
        Self::from_triples_parallel(source, embedder, triples, 1)
    }

    /// Build from triples with `threads` encoder workers (0 =
    /// self-tuning: serial below `semvec::PARALLEL_BUILD_MIN_DOCS`
    /// unique sentences, all cores at or above it). Verbalisation and
    /// assembly are serial and duplicate sentences are encoded once, so
    /// the result is byte-identical across thread counts.
    pub fn from_triples_parallel(
        source: &KgSource,
        embedder: &Embedder,
        triples: impl IntoIterator<Item = Triple>,
        threads: usize,
    ) -> Self {
        Self::from_triples_cached(source, embedder, triples, threads, None)
    }

    /// [`from_triples_parallel`] with open-or-build: when `cache_dir`
    /// is set, the encoded index is looked up on disk under a content
    /// hash of the verbalised sentences (plus format version, embedder
    /// dimension, and segment geometry) and reopened zero-copy,
    /// checksum-verified, if present; otherwise it is built and the
    /// file written for the next run. Any open failure — missing file,
    /// flipped byte, version skew — falls back to a fresh build, and a
    /// failed cache write never fails the build. Opened and built
    /// indexes answer every search with identical bits, so the cache
    /// can only skip encode time, never change a result.
    ///
    /// [`from_triples_parallel`]: BaseIndex::from_triples_parallel
    pub fn from_triples_cached(
        source: &KgSource,
        embedder: &Embedder,
        triples: impl IntoIterator<Item = Triple>,
        threads: usize,
        cache_dir: Option<&std::path::Path>,
    ) -> Self {
        let mut verbalised = Vec::new();
        let mut subjects = Vec::new();
        let mut sentences: Vec<String> = Vec::new();
        let mut endpoints: Vec<(Atom, Atom)> = Vec::new();
        for t in triples {
            let v = source.verbalize(t);
            let v = StrTriple::new(v.s, semvec::humanize_term(&v.p), v.o);
            sentences.push(v.sentence());
            verbalised.push(v);
            subjects.push(t.s);
            endpoints.push((t.s, t.o));
        }
        let entity = build_entity_index(source, embedder, &endpoints);
        let refs: Vec<&str> = sentences.iter().map(|s| s.as_str()).collect();
        let index = open_or_build(embedder, &refs, entity, threads, cache_dir);
        Self {
            verbalised,
            subjects,
            index,
            cache: QueryCache::new(),
            routes: Mutex::new(RouteMemo::default()),
            prune_gate: PRUNE_GATE_DEFAULT,
            entity_gate: ENTITY_GATE_DEFAULT,
            screened: AtomicU64::new(0),
            reranked: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_slots: AtomicU64::new(0),
            batch_deduped: AtomicU64::new(0),
            pruned_queries: AtomicU64::new(0),
            pruned_candidates: AtomicU64::new(0),
            gate_fallbacks: AtomicU64::new(0),
            entity_queries: AtomicU64::new(0),
            entity_candidates: AtomicU64::new(0),
            entity_folded: AtomicU64::new(0),
            entity_surfaces: AtomicU64::new(0),
            entity_ngrams: AtomicU64::new(0),
            entity_tier1: AtomicU64::new(0),
            route_memo_hits: AtomicU64::new(0),
        }
    }

    /// Override the adaptive pruning gate's candidate-fraction
    /// ceiling. `0.0` routes effectively every overlapping query to
    /// the exact scan; `f32::INFINITY` disables the gate (every
    /// pruned-mode query prunes). Routing only — hits are identical
    /// at any value.
    pub fn with_prune_gate(mut self, gate: f32) -> Self {
        self.prune_gate = gate;
        self
    }

    /// Override the entity route's tier-0 candidate-fraction ceiling.
    /// `0.0` disables the entity route (every folded query takes the
    /// token gate's own decision); `f32::INFINITY` admits any folded
    /// query whose surfaces match and whose residual token union
    /// materializes. Routing only — hits are identical at any value.
    pub fn with_entity_gate(mut self, gate: f32) -> Self {
        self.entity_gate = gate;
        self
    }

    /// The paper's per-dataset construction: union of question-scoped
    /// extractions over all dataset questions, encoded across all
    /// cores.
    pub fn for_questions<'a>(
        source: &KgSource,
        embedder: &Embedder,
        cfg: &PipelineConfig,
        questions: impl IntoIterator<Item = &'a str>,
    ) -> Self {
        Self::for_questions_with_threads(source, embedder, cfg, questions, 0)
    }

    /// [`for_questions`] with an explicit encoder thread count (1 =
    /// serial reference; the output is identical either way).
    ///
    /// [`for_questions`]: BaseIndex::for_questions
    pub fn for_questions_with_threads<'a>(
        source: &KgSource,
        embedder: &Embedder,
        cfg: &PipelineConfig,
        questions: impl IntoIterator<Item = &'a str>,
        threads: usize,
    ) -> Self {
        let mut seen: FxHashSet<Triple> = FxHashSet::default();
        let mut union: Vec<Triple> = Vec::new();
        for q in questions {
            for t in extract(source, q, &cfg.extract).triples {
                if seen.insert(t) {
                    union.push(t);
                }
            }
        }
        let cache_dir = cfg.base_cache_dir.as_deref().map(std::path::Path::new);
        Self::from_triples_cached(source, embedder, union, threads, cache_dir)
            .with_prune_gate(cfg.prune_gate)
            .with_entity_gate(cfg.entity_gate)
    }

    /// Question-scoped construction (used when no dataset-level index
    /// was prebuilt). Small enough that a serial build wins.
    pub fn for_question(
        source: &KgSource,
        embedder: &Embedder,
        cfg: &PipelineConfig,
        question: &str,
    ) -> Self {
        Self::from_triples(
            source,
            embedder,
            extract(source, question, &cfg.extract).triples,
        )
        .with_prune_gate(cfg.prune_gate)
        .with_entity_gate(cfg.entity_gate)
    }

    /// Encode a query through the embedding cache.
    pub fn query_vector(
        &self,
        embedder: &Embedder,
        text: &str,
        style: QueryStyle,
    ) -> Arc<Vec<f32>> {
        self.cache.get_or_encode(embedder, text, style)
    }

    /// Noisy top-k over the base, on the configured path. `style` must
    /// say how the query text is to be encoded (pseudo-triple sentences
    /// fold; question-style text does not). All four (retrieval mode ×
    /// scoring mode) combinations return identical hits — the hybrid
    /// index's ceiling contract and the quantized engine's error-bound
    /// contract both guarantee bit-identity, and the perf bench asserts
    /// the full cross product.
    #[allow(clippy::too_many_arguments)] // one knob per retrieval degree of freedom
    pub fn search(
        &self,
        embedder: &Embedder,
        text: &str,
        style: QueryStyle,
        k: usize,
        sigma: f32,
        salt: u64,
        mode: RetrievalMode,
        scoring: ScoringMode,
    ) -> Vec<Hit> {
        let q = self.query_vector(embedder, text, style);
        match (mode, scoring) {
            (RetrievalMode::Exact, ScoringMode::ExactF32) => {
                self.index.top_k_noisy(&q, k, sigma, salt)
            }
            (RetrievalMode::Exact, ScoringMode::QuantizedScreen) => {
                let (hits, stats) = self.index.top_k_noisy_quant(&q, k, sigma, salt);
                self.record_screen(stats);
                hits
            }
            (RetrievalMode::Pruned, ScoringMode::ExactF32) => {
                match self.route_query(embedder, text, style, scoring) {
                    Route::Entity { ents, toks } => self
                        .index
                        .top_k_noisy_entity(&q, &ents, &toks, k, sigma, salt),
                    Route::Token(cands) => {
                        self.index.top_k_noisy_encoded(&q, &cands, k, sigma, salt)
                    }
                    // Gate fallback: the exact arm's own scan.
                    Route::Fallback => self.index.top_k_noisy(&q, k, sigma, salt),
                }
            }
            (RetrievalMode::Pruned, ScoringMode::QuantizedScreen) => {
                let (hits, stats) = match self.route_query(embedder, text, style, scoring) {
                    Route::Entity { ents, toks } => self
                        .index
                        .top_k_noisy_entity_quant(&q, &ents, &toks, k, sigma, salt),
                    Route::Token(cands) => self
                        .index
                        .top_k_noisy_encoded_quant(&q, &cands, k, sigma, salt),
                    // Gate fallback: the exact arm's own scan.
                    Route::Fallback => self.index.top_k_noisy_quant(&q, k, sigma, salt),
                };
                self.record_screen(stats);
                hits
            }
        }
    }

    /// Noisy top-k for a whole batch of queries in one pass over the
    /// base. Result `i` is bit-identical to what
    /// `search(embedder, slots[i].text, slots[i].style, k, sigma,
    /// slots[i].salt, mode, scoring)` returns — batching shares block
    /// loads across queries and deduplicates identical slots, but every
    /// (query, document) score and every tie-break is computed by the
    /// same operations in the same order as the sequential path.
    ///
    /// Slots with the same (style, salt, text) key are encoded and
    /// scanned once; the shared result fans back out to every duplicate
    /// slot.
    pub fn search_batch(
        &self,
        embedder: &Embedder,
        slots: &[QuerySlot<'_>],
        k: usize,
        sigma: f32,
        mode: RetrievalMode,
        scoring: ScoringMode,
    ) -> Vec<Vec<Hit>> {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_slots
            .fetch_add(slots.len() as u64, Ordering::Relaxed);
        if slots.is_empty() {
            return Vec::new();
        }

        // Deduplicate: identical (style, salt, text) slots share one
        // scan slot and fan the result back out.
        let mut unique: Vec<usize> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(slots.len());
        let mut seen: FxHashMap<(bool, u64, &str), usize> = FxHashMap::default();
        for s in slots {
            let key = (s.style == QueryStyle::Folded, s.salt, s.text);
            match seen.get(&key) {
                Some(&u) => slot_of.push(u),
                None => {
                    let u = unique.len();
                    seen.insert(key, u);
                    unique.push(slot_of.len());
                    slot_of.push(u);
                }
            }
        }
        self.batch_deduped
            .fetch_add((slots.len() - unique.len()) as u64, Ordering::Relaxed);
        // A deduplicated slot is a cache hit in all but mechanism: the
        // per-query path would have looked its text up and hit. Credit
        // it so both modes report the same hit/miss ledger.
        self.cache.note_hits((slots.len() - unique.len()) as u64);

        // Encode the unique queries (through the cache, like the
        // sequential path — a batch never changes cache behaviour
        // beyond skipping its own duplicates).
        let vectors: Vec<Arc<Vec<f32>>> = unique
            .iter()
            .map(|&i| self.query_vector(embedder, slots[i].text, slots[i].style))
            .collect();

        let results: Vec<Vec<Hit>> = match mode {
            RetrievalMode::Exact => {
                let queries: Vec<semvec::NoisyQuery<'_>> = unique
                    .iter()
                    .zip(&vectors)
                    .map(|(&i, v)| semvec::NoisyQuery {
                        vector: v.as_slice(),
                        salt: slots[i].salt,
                    })
                    .collect();
                match scoring {
                    ScoringMode::ExactF32 => self.index.top_k_noisy_batch(&queries, k, sigma),
                    ScoringMode::QuantizedScreen => self
                        .index
                        .top_k_noisy_quant_batch(&queries, k, sigma)
                        .into_iter()
                        .map(|(hits, stats)| {
                            self.record_screen(stats);
                            hits
                        })
                        .collect(),
                }
            }
            RetrievalMode::Pruned => {
                let routes: Vec<Route> = unique
                    .iter()
                    .map(|&i| self.route_query(embedder, slots[i].text, slots[i].style, scoring))
                    .collect();
                // Partition by route: entity-routed slots run the
                // three-phase entity batch kernel, token and fallback
                // slots run the token-pruned batch engine — a gate
                // fallback's *empty* candidate list routes through
                // that engine's documented full-scan fallback, i.e.
                // exactly the exact arm's scan. Each slot is computed
                // by the same kernel the sequential path would pick,
                // so per-slot bit-identity is preserved.
                static NO_CANDS: &[u32] = &[];
                let mut ent_pos: Vec<usize> = Vec::new();
                let mut ent_slots: Vec<semvec::EntityBatchSlot<'_>> = Vec::new();
                let mut tok_pos: Vec<usize> = Vec::new();
                let mut tok_slots: Vec<semvec::BatchSlot<'_>> = Vec::new();
                for (u, (&i, route)) in unique.iter().zip(&routes).enumerate() {
                    let query = vectors[u].as_slice();
                    let salt = slots[i].salt;
                    match route {
                        Route::Entity { ents, toks } => {
                            ent_pos.push(u);
                            ent_slots.push(semvec::EntityBatchSlot {
                                query,
                                ents: ents.as_slice(),
                                toks: toks.as_slice(),
                                salt,
                            });
                        }
                        Route::Token(cands) => {
                            tok_pos.push(u);
                            tok_slots.push(semvec::BatchSlot {
                                query,
                                cands: cands.as_slice(),
                                salt,
                            });
                        }
                        Route::Fallback => {
                            tok_pos.push(u);
                            tok_slots.push(semvec::BatchSlot {
                                query,
                                cands: NO_CANDS,
                                salt,
                            });
                        }
                    }
                }
                let mut results: Vec<Vec<Hit>> = vec![Vec::new(); unique.len()];
                match scoring {
                    ScoringMode::ExactF32 => {
                        if !ent_slots.is_empty() {
                            let hits = self.index.top_k_noisy_entity_batch(&ent_slots, k, sigma);
                            for (&p, h) in ent_pos.iter().zip(hits) {
                                results[p] = h;
                            }
                        }
                        if !tok_slots.is_empty() {
                            let hits = self.index.top_k_noisy_encoded_batch(&tok_slots, k, sigma);
                            for (&p, h) in tok_pos.iter().zip(hits) {
                                results[p] = h;
                            }
                        }
                    }
                    ScoringMode::QuantizedScreen => {
                        if !ent_slots.is_empty() {
                            let (hits, stats) = self
                                .index
                                .top_k_noisy_entity_quant_batch(&ent_slots, k, sigma);
                            for s in stats {
                                self.record_screen(s);
                            }
                            for (&p, h) in ent_pos.iter().zip(hits) {
                                results[p] = h;
                            }
                        }
                        if !tok_slots.is_empty() {
                            let (hits, stats) = self
                                .index
                                .top_k_noisy_encoded_quant_batch(&tok_slots, k, sigma);
                            for s in stats {
                                self.record_screen(s);
                            }
                            for (&p, h) in tok_pos.iter().zip(hits) {
                                results[p] = h;
                            }
                        }
                    }
                }
                results
            }
        };

        // Fan the unique results back out to every original slot.
        slot_of.into_iter().map(|u| results[u].clone()).collect()
    }
}

/// One query of a [`BaseIndex::search_batch`] call: the text plus the
/// same per-query knobs [`BaseIndex::search`] takes.
#[derive(Debug, Clone, Copy)]
pub struct QuerySlot<'a> {
    /// Query text.
    pub text: &'a str,
    /// How the text is encoded.
    pub style: QueryStyle,
    /// Jitter stream salt.
    pub salt: u64,
}

/// Intermediate retrieval diagnostics, recorded in traces and used by
/// the error-analysis harness.
#[derive(Debug, Clone, Default)]
pub struct RetrievalStats {
    /// Size of the base index queried.
    pub base_triples: usize,
    /// Distinct pseudo-graph subjects (`k` of pruning step 1).
    pub pseudo_subjects: usize,
    /// Candidate subjects found by querying.
    pub candidate_subjects: usize,
    /// Subjects surviving both pruning steps.
    pub surviving_subjects: usize,
}

/// A substitute executor for the one batched retrieval call a question
/// makes during grounding: hands back, slot for slot, exactly what
/// [`BaseIndex::search_batch`] would return for these slots with the
/// pipeline's (k, sigma, mode, scoring). The serving layer routes this
/// through its cross-question admission batcher; the bit-identity
/// contract of `search_batch` makes the substitution outcome-neutral.
pub type GroundBatchFn<'h> = dyn Fn(&[QuerySlot<'_>]) -> Vec<Vec<Hit>> + 'h;

/// Run semantic querying + two-step pruning for one question against a
/// base index.
pub fn ground_graph(
    source: &KgSource,
    base: &BaseIndex,
    embedder: &Embedder,
    cfg: &PipelineConfig,
    pseudo: &[StrTriple],
) -> (GroundGraph, RetrievalStats) {
    ground_graph_with(source, base, embedder, cfg, pseudo, None)
}

/// [`ground_graph`] with an optional substitute for the batched
/// retrieval call (`None` ⇒ call `base.search_batch` directly).
pub fn ground_graph_with(
    source: &KgSource,
    base: &BaseIndex,
    embedder: &Embedder,
    cfg: &PipelineConfig,
    pseudo: &[StrTriple],
    batch_fn: Option<&GroundBatchFn<'_>>,
) -> (GroundGraph, RetrievalStats) {
    let mut stats = RetrievalStats {
        base_triples: base.len(),
        ..Default::default()
    };
    if base.is_empty() || pseudo.is_empty() {
        return (GroundGraph::default(), stats);
    }

    // Distinct pseudo subjects define k.
    let mut pseudo_subjects: Vec<&str> = Vec::new();
    for t in pseudo {
        if !pseudo_subjects.iter().any(|s| s.eq_ignore_ascii_case(&t.s)) {
            pseudo_subjects.push(&t.s);
        }
    }
    let k = pseudo_subjects.len().max(1);
    stats.pseudo_subjects = k;

    // Per-base-triple best similarity across pseudo-triple queries.
    // Batched mode collects every pseudo-triple's query into one tiled
    // pass (identical sentences share a slot); PerQuery is the
    // sequential escape hatch. Both yield the same hits per query, so
    // the merged map is identical either way.
    let sentences: Vec<String> = pseudo.iter().map(verbalize_triple).collect();
    let per_query: Vec<Vec<Hit>> = match cfg.batch_mode {
        BatchMode::Batched => {
            let slots: Vec<QuerySlot<'_>> = sentences
                .iter()
                .map(|s| QuerySlot {
                    text: s,
                    style: QueryStyle::Folded,
                    salt: kgstore::hash::stable_str_hash(s),
                })
                .collect();
            match batch_fn {
                Some(f) => f(&slots),
                None => base.search_batch(
                    embedder,
                    &slots,
                    cfg.top_k,
                    cfg.retrieval_jitter,
                    cfg.retrieval_mode,
                    cfg.scoring_mode,
                ),
            }
        }
        BatchMode::PerQuery => sentences
            .iter()
            .map(|sentence| {
                base.search(
                    embedder,
                    sentence,
                    QueryStyle::Folded,
                    cfg.top_k,
                    cfg.retrieval_jitter,
                    kgstore::hash::stable_str_hash(sentence),
                    cfg.retrieval_mode,
                    cfg.scoring_mode,
                )
            })
            .collect(),
    };
    let mut best_score: FxHashMap<usize, f32> = FxHashMap::default();
    for hit in per_query.into_iter().flatten() {
        let e = best_score.entry(hit.id).or_insert(f32::MIN);
        if hit.score > *e {
            *e = hit.score;
        }
    }

    // Group retrieved triples by subject entity.
    struct Agg {
        count: usize,
        score_sum: f32,
    }
    let mut by_subject: FxHashMap<Atom, Agg> = FxHashMap::default();
    // detlint: allow(DL001) f32 score_sum accumulation order is pinned:
    // re-ordering changes low-order float bits of mean_score and can
    // flip near-tie pruning. Fx iteration is deterministic run-to-run.
    for (&idx, &score) in &best_score {
        let c = by_subject.entry(base.subjects[idx]).or_insert(Agg {
            count: 0,
            score_sum: 0.0,
        });
        c.count += 1;
        c.score_sum += score;
    }
    stats.candidate_subjects = by_subject.len();

    // Pruning (paper rule or a configured alternative).
    let candidates: Vec<Candidate> = by_subject
        // detlint: allow(DL001) candidate order is pinned: downstream
        // pruning resolves score ties by input order, so re-ordering
        // here would change which subjects survive.
        .into_iter()
        .map(|(a, c)| Candidate {
            subject: a,
            count: c.count,
            mean_score: c.score_sum / c.count as f32,
            popularity: source.meta.popularity(a) as f32,
        })
        .collect();
    let survivors = cfg.prune.apply(candidates, k, cfg.entity_threshold);
    stats.surviving_subjects = survivors.len();

    // Materialise the ground graph: *all* of each surviving subject's
    // triples in the source (capped), so the verifier sees complete
    // member lists, not just the retrieved sample.
    let entities = survivors
        .into_iter()
        .map(|(subject, score)| {
            let mut triples: Vec<StrTriple> = source
                .store
                .by_subject(subject)
                .take(cfg.max_entity_triples)
                .map(|t| {
                    let v = source.verbalize(t);
                    StrTriple::new(v.s, semvec::humanize_term(&v.p), v.o)
                })
                .collect();
            triples.sort();
            triples.dedup();
            let meta = source.meta.get(subject);
            GroundEntity {
                label: source.label_of(subject).to_string(),
                description: meta.map(|m| m.description.clone()).unwrap_or_default(),
                score,
                triples,
            }
        })
        .collect();

    (GroundGraph { entities }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgstore::{EntityMeta, SchemaStyle};

    fn source() -> KgSource {
        let mut src = KgSource::new("t", SchemaStyle::WikidataLike);
        for (id, label, pop, desc) in [
            ("Q1", "Yao Ming", 0.95, "basketball player"),
            ("Q2", "Yao Ming", 0.05, "Song dynasty poet"),
            ("Q3", "Shanghai", 0.8, "city"),
            ("Q4", "China", 0.9, "country"),
        ] {
            src.add_entity(
                id,
                EntityMeta {
                    label: label.into(),
                    aliases: vec![],
                    description: desc.into(),
                    popularity: pop,
                },
            );
        }
        // Popular Yao Ming: rich facts.
        src.add_fact("Q1", "place of birth", "Q3");
        src.add_fact("Q1", "occupation", "basketball player");
        src.add_fact("Q1", "country of citizenship", "Q4");
        src.add_fact("Q1", "description", "basketball player");
        // Namesake: sparse facts.
        src.add_fact("Q2", "era", "Song dynasty");
        src.add_fact("Q3", "country", "Q4");
        src
    }

    fn cfg() -> PipelineConfig {
        PipelineConfig::default()
    }

    fn base_for(src: &KgSource, emb: &Embedder, question: &str) -> BaseIndex {
        BaseIndex::for_question(src, emb, &cfg(), question)
    }

    #[test]
    fn retrieves_and_disambiguates_popular_entity() {
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "Where was Yao Ming born?");
        let pseudo = vec![StrTriple::new("Yao Ming", "BORN_IN", "Beijing")];
        let (g, stats) = ground_graph(&src, &base, &emb, &cfg(), &pseudo);
        assert!(stats.base_triples >= 5);
        assert!(!g.is_empty(), "ground graph empty: {stats:?}");
        // The popular Yao Ming (more matching triples) must rank first.
        assert_eq!(g.entities[0].label, "Yao Ming");
        assert_eq!(g.entities[0].description, "basketball player");
        // And its triples must include the birth fact.
        assert!(g.entities[0]
            .triples
            .iter()
            .any(|t| t.p.contains("birth") && t.o == "Shanghai"));
    }

    #[test]
    fn dataset_level_index_unions_questions() {
        let src = source();
        let emb = Embedder::default();
        let base = BaseIndex::for_questions(
            &src,
            &emb,
            &cfg(),
            ["Where was Yao Ming born?", "In which country is Shanghai?"],
        );
        let single = base_for(&src, &emb, "Where was Yao Ming born?");
        assert!(base.len() >= single.len());
    }

    #[test]
    fn parallel_build_matches_serial_build() {
        let src = source();
        let emb = Embedder::default();
        let questions = ["Where was Yao Ming born?", "In which country is Shanghai?"];
        let serial = BaseIndex::for_questions_with_threads(&src, &emb, &cfg(), questions, 1);
        let parallel = BaseIndex::for_questions_with_threads(&src, &emb, &cfg(), questions, 4);
        assert_eq!(serial.verbalised, parallel.verbalised);
        assert_eq!(serial.subjects, parallel.subjects);
        for id in 0..serial.len() {
            assert_eq!(serial.vector(id), parallel.vector(id));
        }
    }

    #[test]
    fn open_or_build_caches_and_reopens_bit_identically() {
        let src = source();
        let emb = Embedder::default();
        let dir = std::env::temp_dir().join(format!("pgg-base-cache-test-{}", std::process::id()));
        // Stale cache files from a previous run would make the first call
        // reopen instead of build, so start from an empty directory.
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut c = cfg();
        c.base_cache_dir = Some(dir.to_string_lossy().into_owned());
        let questions = ["Where was Yao Ming born?", "In which country is Shanghai?"];
        let built = BaseIndex::for_questions(&src, &emb, &c, questions);
        assert!(!built.is_file_backed(), "first run must build");
        let opened = BaseIndex::for_questions(&src, &emb, &c, questions);
        assert!(opened.is_file_backed(), "second run must reopen the cache");
        assert_eq!(opened.build_threads_used(), 0);
        assert_eq!(built.verbalised, opened.verbalised);
        for id in 0..built.len() {
            assert_eq!(built.vector(id), opened.vector(id), "row {id}");
        }
        // Searches through the reopened index are bit-identical.
        let query = "Yao Ming born Shanghai";
        for mode in [RetrievalMode::Pruned, RetrievalMode::Exact] {
            for scoring in [ScoringMode::QuantizedScreen, ScoringMode::ExactF32] {
                let a = built.search(&emb, query, QueryStyle::Folded, 4, 0.3, 7, mode, scoring);
                let b = opened.search(&emb, query, QueryStyle::Folded, 4, 0.3, 7, mode, scoring);
                assert_eq!(a, b, "{mode:?}/{scoring:?}");
            }
        }
        // A corrupted cache file silently falls back to a fresh build.
        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().ends_with(".seg"))
            .expect("cache file written");
        let mut bytes = std::fs::read(entry.path()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(entry.path(), &bytes).unwrap();
        let rebuilt = BaseIndex::for_questions(&src, &emb, &c, questions);
        assert!(!rebuilt.is_file_backed(), "corrupt cache must rebuild");
        for id in 0..built.len() {
            assert_eq!(built.vector(id), rebuilt.vector(id), "row {id}");
        }
    }

    #[test]
    fn pruned_and_exact_modes_agree_on_ground_graphs() {
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "Where was Yao Ming born in Shanghai?");
        let pseudo = vec![
            StrTriple::new("Yao Ming", "BORN_IN", "Shanghai"),
            StrTriple::new("Shanghai", "LOCATED_IN", "China"),
        ];
        let mut exact_cfg = cfg();
        exact_cfg.retrieval_mode = RetrievalMode::Exact;
        let (g_pruned, _) = ground_graph(&src, &base, &emb, &cfg(), &pseudo);
        let (g_exact, _) = ground_graph(&src, &base, &emb, &exact_cfg, &pseudo);
        assert_eq!(g_pruned.entities.len(), g_exact.entities.len());
        for (a, b) in g_pruned.entities.iter().zip(&g_exact.entities) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.score, b.score, "scores must be bit-identical");
            assert_eq!(a.triples, b.triples);
        }
    }

    #[test]
    fn quantized_and_exact_scoring_agree_on_ground_graphs() {
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "Where was Yao Ming born in Shanghai?");
        let pseudo = vec![
            StrTriple::new("Yao Ming", "BORN_IN", "Shanghai"),
            StrTriple::new("Shanghai", "LOCATED_IN", "China"),
        ];
        let mut f32_cfg = cfg();
        f32_cfg.scoring_mode = ScoringMode::ExactF32;
        for mode in [RetrievalMode::Pruned, RetrievalMode::Exact] {
            let mut quant_cfg = cfg();
            quant_cfg.retrieval_mode = mode;
            let mut exact_cfg = f32_cfg.clone();
            exact_cfg.retrieval_mode = mode;
            let (g_quant, _) = ground_graph(&src, &base, &emb, &quant_cfg, &pseudo);
            let (g_exact, _) = ground_graph(&src, &base, &emb, &exact_cfg, &pseudo);
            assert_eq!(g_quant.entities.len(), g_exact.entities.len());
            for (a, b) in g_quant.entities.iter().zip(&g_exact.entities) {
                assert_eq!(a.label, b.label);
                assert_eq!(a.score, b.score, "scores must be bit-identical");
                assert_eq!(a.triples, b.triples);
            }
        }
        let stats = base.scoring_stats();
        assert!(stats.screened > 0, "quantized default path never engaged");
        assert!(stats.reranked <= stats.screened);
    }

    #[test]
    fn query_cache_hits_on_repeat_queries() {
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "Where was Yao Ming born?");
        let pseudo = vec![StrTriple::new("Yao Ming", "BORN_IN", "Beijing")];
        let (first, _) = ground_graph(&src, &base, &emb, &cfg(), &pseudo);
        let after_first = base.cache_stats();
        assert!(after_first.misses >= 1);
        assert!(after_first.entries >= 1);
        let (second, _) = ground_graph(&src, &base, &emb, &cfg(), &pseudo);
        let after_second = base.cache_stats();
        assert!(
            after_second.hits > after_first.hits,
            "repeat query must hit: {after_second:?}"
        );
        assert_eq!(after_second.misses, after_first.misses);
        assert_eq!(first.entities.len(), second.entities.len());
        for (a, b) in first.entities.iter().zip(&second.entities) {
            assert_eq!(a.score, b.score, "cached encode must not change scores");
        }
    }

    #[test]
    fn cache_evicts_per_entry_not_wholesale() {
        let emb = Embedder::default();
        let cache = QueryCache::with_caps(4, 12);
        for i in 0..20 {
            cache.get_or_encode(&emb, &format!("probe query {i}"), QueryStyle::Folded);
        }
        let s = cache.stats();
        // 20 one-shot keys through a 4-slot probation: the segment
        // stays full the whole time — never wiped — shedding exactly
        // one entry per overflowing insert.
        assert_eq!(s.entries, 4, "{s:?}");
        assert_eq!(s.evictions, 16, "{s:?}");
        assert_eq!(s.misses, 20, "{s:?}");
        assert_eq!(s.hits, 0, "{s:?}");
    }

    #[test]
    fn hot_working_set_wider_than_probation_is_not_wiped() {
        let emb = Embedder::default();
        // Probation holds 4, total capacity 16; the hot set is 8 —
        // larger than one segment, smaller than the cache.
        let cache = QueryCache::with_caps(4, 12);
        let keys: Vec<String> = (0..8).map(|i| format!("hot query {i}")).collect();
        // Round 1: all miss into probation; the first half is pushed
        // out (as ghosts) by the second. Round 2: the ghosted half
        // re-misses straight into protected, the rest hit and promote.
        for _ in 0..2 {
            for k in &keys {
                cache.get_or_encode(&emb, k, QueryStyle::Folded);
            }
        }
        let warm = cache.stats();
        // From round 3 on, the working set is resident: every access
        // hits, nothing is evicted.
        for _ in 0..3 {
            for k in &keys {
                cache.get_or_encode(&emb, k, QueryStyle::Folded);
            }
        }
        let s = cache.stats();
        assert_eq!(
            s.hits - warm.hits,
            24,
            "all post-warmup accesses hit: {s:?}"
        );
        assert_eq!(s.misses, warm.misses, "{s:?}");
        assert_eq!(s.evictions, warm.evictions, "{s:?}");
        assert_eq!(s.entries, 8, "whole working set resident: {s:?}");
    }

    #[test]
    fn cache_hit_returns_identical_bits() {
        let emb = Embedder::default();
        let cache = QueryCache::with_caps(4, 12);
        let fresh = emb.encode("Where was Yao Ming born?");
        let a = cache.get_or_encode(&emb, "Where was Yao Ming born?", QueryStyle::Folded);
        let b = cache.get_or_encode(&emb, "Where was Yao Ming born?", QueryStyle::Folded);
        assert!(a
            .iter()
            .zip(fresh.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        assert!(
            Arc::ptr_eq(&a, &b),
            "second lookup must be served from cache"
        );
        // Folded and unfolded are distinct keys.
        cache.get_or_encode(&emb, "Where was Yao Ming born?", QueryStyle::Unfolded);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn k_limits_candidates_to_pseudo_subject_count() {
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "Where was Yao Ming born?");
        let pseudo = vec![StrTriple::new("Yao Ming", "BORN_IN", "Beijing")];
        let (g, _) = ground_graph(&src, &base, &emb, &cfg(), &pseudo);
        assert!(g.entities.len() <= 1);
    }

    #[test]
    fn high_threshold_prunes_everything() {
        // The paper's Figure-7 failure mode: threshold too high → all
        // entities pruned.
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "Where was Yao Ming born?");
        let pseudo = vec![StrTriple::new("Yao Ming", "BORN_IN", "Beijing")];
        let mut c = cfg();
        c.entity_threshold = 0.99;
        let (g, stats) = ground_graph(&src, &base, &emb, &c, &pseudo);
        assert!(g.is_empty());
        assert!(stats.candidate_subjects > 0);
        assert_eq!(stats.surviving_subjects, 0);
    }

    #[test]
    fn empty_pseudo_graph_yields_empty_ground_graph() {
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "Where was Yao Ming born?");
        let (g, _) = ground_graph(&src, &base, &emb, &cfg(), &[]);
        assert!(g.is_empty());
    }

    #[test]
    fn unmatched_question_yields_empty_base() {
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "What is love?");
        let pseudo = vec![StrTriple::new("Nobody", "KNOWS", "Nothing")];
        let (g, stats) = ground_graph(&src, &base, &emb, &cfg(), &pseudo);
        assert_eq!(stats.base_triples, 0);
        assert!(g.is_empty());
    }

    #[test]
    fn ghost_readmission_across_eviction_boundary() {
        let emb = Embedder::default();
        // Probation holds 2: the third one-shot key evicts the first,
        // ghosting it.
        let cache = QueryCache::with_caps(2, 8);
        cache.get_or_encode(&emb, "ghost key", QueryStyle::Folded);
        cache.get_or_encode(&emb, "filler one", QueryStyle::Folded);
        cache.get_or_encode(&emb, "filler two", QueryStyle::Folded);
        let s = cache.stats();
        assert_eq!(s.evictions, 1, "oldest probation entry evicted: {s:?}");
        // Re-missing the ghosted key must insert straight into the
        // protected segment: further probation churn can't touch it.
        cache.get_or_encode(&emb, "ghost key", QueryStyle::Folded);
        let after_readmit = cache.stats();
        assert_eq!(after_readmit.misses, 4, "{after_readmit:?}");
        for i in 0..6 {
            cache.get_or_encode(&emb, &format!("churn {i}"), QueryStyle::Folded);
        }
        cache.get_or_encode(&emb, "ghost key", QueryStyle::Folded);
        let s = cache.stats();
        assert_eq!(
            s.misses,
            after_readmit.misses + 6,
            "re-admitted ghost survives probation churn (hits, not re-misses): {s:?}"
        );
        assert_eq!(s.hits, 1, "{s:?}");
    }

    #[test]
    fn concurrent_get_or_encode_counters_are_monotonic_and_complete() {
        let emb = Embedder::default();
        let cache = Arc::new(QueryCache::with_caps(8, 24));
        const THREADS: usize = 8;
        const PER_THREAD: usize = 100;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = Arc::clone(&cache);
                let emb = &emb;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Shared keys (contended) interleaved with
                        // thread-private keys (guaranteed misses).
                        let text = if i % 2 == 0 {
                            format!("shared {}", i % 8)
                        } else {
                            format!("private {t} {i}")
                        };
                        let v = cache.get_or_encode(emb, &text, QueryStyle::Folded);
                        assert!(!v.is_empty());
                    }
                });
            }
        });
        let s = cache.stats();
        // Every access was classified exactly once, whatever the
        // interleaving.
        assert_eq!(
            s.hits + s.misses,
            (THREADS * PER_THREAD) as u64,
            "each access counts once: {s:?}"
        );
        // The 400 private keys can never hit.
        assert!(s.misses >= (THREADS * PER_THREAD / 2) as u64, "{s:?}");
        // The 8 shared keys were accessed 400 times; at most 8 first
        // encounters (plus concurrent-miss races, bounded by accesses)
        // were misses, so hits must be substantial.
        assert!(s.hits > 0, "{s:?}");
    }

    #[test]
    fn batch_dedup_fans_out_identical_hits() {
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "Where was Yao Ming born in Shanghai?");
        let text_a = "Yao Ming place of birth Shanghai";
        let text_b = "Shanghai country China";
        let salt_a = kgstore::hash::stable_str_hash(text_a);
        let salt_b = kgstore::hash::stable_str_hash(text_b);
        let slots = [
            QuerySlot {
                text: text_a,
                style: QueryStyle::Folded,
                salt: salt_a,
            },
            QuerySlot {
                text: text_b,
                style: QueryStyle::Folded,
                salt: salt_b,
            },
            QuerySlot {
                text: text_a,
                style: QueryStyle::Folded,
                salt: salt_a,
            },
            QuerySlot {
                text: text_a,
                style: QueryStyle::Folded,
                salt: salt_a,
            },
        ];
        for mode in [RetrievalMode::Pruned, RetrievalMode::Exact] {
            for scoring in [ScoringMode::QuantizedScreen, ScoringMode::ExactF32] {
                let results = base.search_batch(&emb, &slots, 5, 0.3, mode, scoring);
                assert_eq!(results.len(), 4);
                assert_eq!(results[0], results[2], "{mode:?}/{scoring:?}");
                assert_eq!(results[0], results[3], "{mode:?}/{scoring:?}");
                // And each slot matches its sequential counterpart.
                for (r, s) in results.iter().zip(&slots) {
                    let seq = base.search(&emb, s.text, s.style, 5, 0.3, s.salt, mode, scoring);
                    assert_eq!(r, &seq, "{mode:?}/{scoring:?}");
                }
            }
        }
        let stats = base.scoring_stats();
        assert_eq!(stats.batches, 4, "{stats:?}");
        assert_eq!(stats.batch_slots, 16, "{stats:?}");
        // Two duplicate slots collapsed per batch.
        assert_eq!(stats.batch_deduped, 8, "{stats:?}");
        assert!(stats.mean_batch_width() == 4.0, "{stats:?}");
        assert!(stats.dedup_rate() == 0.5, "{stats:?}");
    }

    #[test]
    fn batched_and_perquery_modes_agree_on_ground_graphs() {
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "Where was Yao Ming born in Shanghai?");
        // Duplicate pseudo-triples exercise the dedup + fan-out path.
        let pseudo = vec![
            StrTriple::new("Yao Ming", "BORN_IN", "Shanghai"),
            StrTriple::new("Shanghai", "LOCATED_IN", "China"),
            StrTriple::new("Yao Ming", "BORN_IN", "Shanghai"),
        ];
        for mode in [RetrievalMode::Pruned, RetrievalMode::Exact] {
            for scoring in [ScoringMode::QuantizedScreen, ScoringMode::ExactF32] {
                let mut batched_cfg = cfg();
                batched_cfg.retrieval_mode = mode;
                batched_cfg.scoring_mode = scoring;
                batched_cfg.batch_mode = BatchMode::Batched;
                let mut seq_cfg = batched_cfg.clone();
                seq_cfg.batch_mode = BatchMode::PerQuery;
                let (g_b, s_b) = ground_graph(&src, &base, &emb, &batched_cfg, &pseudo);
                let (g_s, s_s) = ground_graph(&src, &base, &emb, &seq_cfg, &pseudo);
                assert_eq!(g_b.entities.len(), g_s.entities.len());
                for (a, b) in g_b.entities.iter().zip(&g_s.entities) {
                    assert_eq!(a.label, b.label, "{mode:?}/{scoring:?}");
                    assert_eq!(a.score, b.score, "scores must be bit-identical");
                    assert_eq!(a.triples, b.triples);
                }
                assert_eq!(s_b.candidate_subjects, s_s.candidate_subjects);
            }
        }
        let stats = base.scoring_stats();
        assert!(stats.batches >= 4, "batched mode engaged: {stats:?}");
        assert!(
            stats.batch_deduped >= 4,
            "duplicate slot collapsed: {stats:?}"
        );
    }

    #[test]
    fn scores_are_sorted_descending() {
        let src = source();
        let emb = Embedder::default();
        let base = base_for(&src, &emb, "Where was Yao Ming born in Shanghai?");
        let pseudo = vec![
            StrTriple::new("Yao Ming", "BORN_IN", "Shanghai"),
            StrTriple::new("Shanghai", "LOCATED_IN", "China"),
        ];
        let (g, _) = ground_graph(&src, &base, &emb, &cfg(), &pseudo);
        for pair in g.entities.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn adaptive_gate_routes_without_changing_hits() {
        let src = source();
        let emb = Embedder::default();
        let query = "Yao Ming born Shanghai";
        // A closed gate (0.0) refuses every overlapping query; a
        // disabled gate (∞) admits every one. Hits must be identical
        // to the exact arm at both extremes and in between.
        for gate in [0.0_f32, 0.05, f32::INFINITY] {
            let base = base_for(&src, &emb, "Where was Yao Ming born?").with_prune_gate(gate);
            for scoring in [ScoringMode::QuantizedScreen, ScoringMode::ExactF32] {
                let pruned = base.search(
                    &emb,
                    query,
                    QueryStyle::Folded,
                    4,
                    0.3,
                    7,
                    RetrievalMode::Pruned,
                    scoring,
                );
                let exact = base.search(
                    &emb,
                    query,
                    QueryStyle::Folded,
                    4,
                    0.3,
                    7,
                    RetrievalMode::Exact,
                    scoring,
                );
                assert_eq!(pruned, exact, "gate {gate} under {scoring:?}");
            }
        }
    }

    #[test]
    fn gate_decisions_are_counted_and_disjoint() {
        let src = source();
        let emb = Embedder::default();
        let query = "Yao Ming born Shanghai";

        // Closed gate: the overlapping query must fall back, and the
        // fallback must NOT count as a pruned query (candidate
        // fraction keeps describing scans that actually pruned).
        let closed = base_for(&src, &emb, "Where was Yao Ming born?").with_prune_gate(0.0);
        closed.search(
            &emb,
            query,
            QueryStyle::Folded,
            4,
            0.3,
            7,
            RetrievalMode::Pruned,
            ScoringMode::QuantizedScreen,
        );
        let s = closed.scoring_stats();
        assert_eq!(s.gate_fallbacks, 1, "{s:?}");
        assert_eq!(s.pruned_queries, 0, "{s:?}");

        // Disabled gate: same query prunes, no fallback.
        let open = base_for(&src, &emb, "Where was Yao Ming born?").with_prune_gate(f32::INFINITY);
        open.search(
            &emb,
            query,
            QueryStyle::Folded,
            4,
            0.3,
            7,
            RetrievalMode::Pruned,
            ScoringMode::QuantizedScreen,
        );
        let s = open.scoring_stats();
        assert_eq!(s.gate_fallbacks, 0, "{s:?}");
        assert_eq!(s.pruned_queries, 1, "{s:?}");

        // Batched path counts the same way (one unique slot per text).
        let batched = base_for(&src, &emb, "Where was Yao Ming born?").with_prune_gate(0.0);
        let slots = [
            QuerySlot {
                text: query,
                style: QueryStyle::Folded,
                salt: 7,
            },
            QuerySlot {
                text: query,
                style: QueryStyle::Folded,
                salt: 7,
            },
        ];
        let hits = batched.search_batch(
            &emb,
            &slots,
            4,
            0.3,
            RetrievalMode::Pruned,
            ScoringMode::QuantizedScreen,
        );
        assert_eq!(hits[0], hits[1], "dedup fans out the fallback result");
        let s = batched.scoring_stats();
        assert_eq!(s.gate_fallbacks, 1, "one unique slot, one decision: {s:?}");
        assert_eq!(s.pruned_queries, 0, "{s:?}");
    }

    #[test]
    fn batch_dedup_credits_the_cache_like_the_per_query_path() {
        let src = source();
        let emb = Embedder::default();
        let pseudo = vec![
            StrTriple::new("Yao Ming", "BORN_IN", "Shanghai"),
            StrTriple::new("Yao Ming", "BORN_IN", "Shanghai"),
            StrTriple::new("Shanghai", "LOCATED_IN", "China"),
        ];
        let run = |batch: BatchMode| {
            let base = base_for(&src, &emb, "Where was Yao Ming born in Shanghai?");
            let mut c = cfg();
            c.batch_mode = batch;
            ground_graph(&src, &base, &emb, &c, &pseudo);
            base.cache_stats()
        };
        let batched = run(BatchMode::Batched);
        let per_query = run(BatchMode::PerQuery);
        assert_eq!(
            batched.hits, per_query.hits,
            "in-batch dedup must be ledgered as hits: {batched:?} vs {per_query:?}"
        );
        assert_eq!(batched.misses, per_query.misses);
    }

    /// Seven namesakes ("7 Yao Mings"): one popular with rich facts,
    /// six sparse, plus a redirect surface. The entity route must fold
    /// the shared surface to all namesakes, rank tier-0 by the
    /// popularity prior, and stay bit-identical to the exact scan.
    fn seven_yao_source() -> KgSource {
        let mut src = KgSource::new("t7", SchemaStyle::WikidataLike);
        for i in 0..7 {
            let pop = if i == 0 { 0.95 } else { 0.05 + i as f64 * 0.01 };
            src.add_entity(
                &format!("Q{}", i + 10),
                EntityMeta {
                    label: "Yao Ming".into(),
                    aliases: vec![],
                    description: format!("namesake {i}"),
                    popularity: pop,
                },
            );
        }
        src.add_entity(
            "Q3",
            EntityMeta {
                label: "Shanghai".into(),
                aliases: vec![],
                description: "city".into(),
                popularity: 0.8,
            },
        );
        src.add_redirect("Shanghai Municipality", "Q3");
        // Popular namesake: rich facts; the rest sparse.
        src.add_fact("Q10", "place of birth", "Q3");
        src.add_fact("Q10", "occupation", "basketball player");
        src.add_fact("Q10", "country of citizenship", "China");
        for i in 1..7 {
            src.add_fact(&format!("Q{}", i + 10), "era", &format!("dynasty {i}"));
        }
        src.add_fact("Q3", "country", "China");
        src
    }

    #[test]
    fn entity_route_disambiguates_namesakes_bit_identically() {
        let src = seven_yao_source();
        let emb = Embedder::default();
        // Saturated gates force the entity route on this tiny base.
        let base = BaseIndex::for_question(&src, &emb, &cfg(), "Where was Yao Ming born?")
            .with_prune_gate(f32::INFINITY)
            .with_entity_gate(f32::INFINITY);
        let ent = base
            .segmented()
            .entity_index()
            .expect("every base carries an entity index");
        assert!(ent.n_entities() >= 8, "namesakes + endpoints indexed");
        // The redirect surface folds to the same entity as the label.
        let via_label = ent.fold(&emb, "Shanghai").entities;
        let via_redirect = ent.fold(&emb, "Shanghai Municipality").entities;
        assert!(!via_label.is_empty());
        assert_eq!(via_label, via_redirect, "redirect folds to its target");
        // The shared surface folds to every namesake, popular first.
        let fold = ent.fold(&emb, "Yao Ming");
        assert_eq!(fold.entities.len(), 7, "all namesakes fold");
        let top_prior = ent.prior(fold.entities[0]);
        assert!(
            fold.entities.iter().all(|&e| ent.prior(e) <= top_prior),
            "fold ranks by popularity prior"
        );
        // Entity-routed retrieval is bit-identical to the exact scan.
        let query = "Yao Ming place of birth Shanghai Municipality";
        for scoring in [ScoringMode::QuantizedScreen, ScoringMode::ExactF32] {
            let pruned = base.search(
                &emb,
                query,
                QueryStyle::Folded,
                5,
                0.3,
                7,
                RetrievalMode::Pruned,
                scoring,
            );
            let exact = base.search(
                &emb,
                query,
                QueryStyle::Folded,
                5,
                0.3,
                7,
                RetrievalMode::Exact,
                scoring,
            );
            assert_eq!(pruned, exact, "{scoring:?}");
        }
        let s = base.scoring_stats();
        assert!(s.entity_queries >= 1, "entity route engaged: {s:?}");
        assert_eq!(s.gate_fallbacks, 0, "{s:?}");
        assert_eq!(
            s.pruned_candidates, s.entity_candidates,
            "tier-0 is the pruned candidate set: {s:?}"
        );
        assert!(s.entity_surfaces >= 1, "{s:?}");
        assert!(s.fold_hit_rate() > 0.0, "{s:?}");
    }

    #[test]
    fn route_memo_decides_each_unique_query_once() {
        let src = source();
        let emb = Embedder::default();
        let query = "Yao Ming born Shanghai";
        let base = base_for(&src, &emb, "Where was Yao Ming born?").with_prune_gate(0.0);
        for _ in 0..3 {
            base.search(
                &emb,
                query,
                QueryStyle::Folded,
                4,
                0.3,
                7,
                RetrievalMode::Pruned,
                ScoringMode::QuantizedScreen,
            );
        }
        let s = base.scoring_stats();
        assert_eq!(s.gate_fallbacks, 1, "decision computed once: {s:?}");
        assert_eq!(s.route_memo_hits, 2, "repeats served from the memo: {s:?}");
        // The f32-relaxed gate is a distinct memo key: same text, new
        // decision.
        base.search(
            &emb,
            query,
            QueryStyle::Folded,
            4,
            0.3,
            7,
            RetrievalMode::Pruned,
            ScoringMode::ExactF32,
        );
        let s = base.scoring_stats();
        assert_eq!(
            s.gate_fallbacks + s.pruned_queries,
            2,
            "distinct relax keys decide separately: {s:?}"
        );
    }

    /// The memoized-routing satellite contract: the batched and
    /// per-query arms report identical gate counters for the same
    /// workload, duplicates and repeats included.
    #[test]
    fn batched_and_per_query_gate_counters_agree() {
        let src = source();
        let emb = Embedder::default();
        let pseudo = vec![
            StrTriple::new("Yao Ming", "BORN_IN", "Shanghai"),
            StrTriple::new("Yao Ming", "BORN_IN", "Shanghai"),
            StrTriple::new("Shanghai", "LOCATED_IN", "China"),
            StrTriple::new("Yao Ming", "BORN_IN", "Shanghai"),
        ];
        let run = |batch: BatchMode| {
            let base = base_for(&src, &emb, "Where was Yao Ming born in Shanghai?");
            let mut c = cfg();
            c.batch_mode = batch;
            // Run the workload twice: in-batch duplicates exercise slot
            // dedup, the repeat exercises the cross-call memo.
            ground_graph(&src, &base, &emb, &c, &pseudo);
            ground_graph(&src, &base, &emb, &c, &pseudo);
            base.scoring_stats()
        };
        let b = run(BatchMode::Batched);
        let p = run(BatchMode::PerQuery);
        assert_eq!(b.gate_fallbacks, p.gate_fallbacks, "{b:?} vs {p:?}");
        assert_eq!(b.pruned_queries, p.pruned_queries, "{b:?} vs {p:?}");
        assert_eq!(b.pruned_candidates, p.pruned_candidates, "{b:?} vs {p:?}");
        assert_eq!(b.entity_queries, p.entity_queries, "{b:?} vs {p:?}");
        assert_eq!(b.entity_candidates, p.entity_candidates, "{b:?} vs {p:?}");
        // Slot dedup collapses duplicates before they reach the memo,
        // so the batched arm sees no more memo traffic than per-query.
        assert!(b.route_memo_hits <= p.route_memo_hits, "{b:?} vs {p:?}");
    }
}
