//! The paper's method: Pseudo-Graph Generation + Atomic Knowledge
//! Verification (+ graph-grounded Answer Generation).
//!
//! `PseudoGraphOnly` is the Table-4/5 ablation: answer straight from
//! the pseudo-graph, skipping retrieval and verification.

use crate::method::{Method, MethodOutput, QaContext, StageTiming, Trace};
use crate::resilience::{best_effort_answer, ResilientLlm};
use crate::retrieval::{ground_graph_with, BaseIndex, GroundBatchFn};
use cypher::{extract_cypher, Executor, Mode, Severity};
use kgstore::StrTriple;
use simllm::{parse_triple_lines, prompt, GroundGraph, LlmTask};
use worldgen::Question;

/// Which stages of the pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stages {
    /// Pseudo-graph generation only (ablation row "Pseudo-Graph").
    PseudoOnly,
    /// Full pipeline (row "Ours" / "Verification").
    Full,
}

/// The pipeline method.
pub struct PseudoGraphPipeline {
    stages: Stages,
}

impl PseudoGraphPipeline {
    /// The full method (the paper's "Ours").
    pub fn full() -> Self {
        Self {
            stages: Stages::Full,
        }
    }

    /// The pseudo-graph-only ablation.
    pub fn pseudo_only() -> Self {
        Self {
            stages: Stages::PseudoOnly,
        }
    }

    /// Step 1: generate + decode the pseudo-graph — see
    /// [`pseudo_graph_stage`].
    fn pseudo_graph(
        &self,
        ctx: &QaContext<'_>,
        rl: &ResilientLlm<'_>,
        q: &Question,
        trace: &mut Trace,
    ) -> Vec<StrTriple> {
        pseudo_graph_stage(ctx, rl, q, trace)
    }

    /// Final step: answer from a graph — see [`answer_stage`].
    fn generate_answer(
        &self,
        rl: &ResilientLlm<'_>,
        q: &Question,
        graph: &[StrTriple],
        trace: &mut Trace,
    ) -> String {
        answer_stage(rl, q, graph, trace)
    }
}

/// Virtual-time prices of the stage breakdown — the same constants the
/// serving layer charges ([`crate::serve::ServeConfig`] defaults), so
/// perf's per-stage virtual columns and serve's latency distributions
/// are in one currency. Unlike the serving executor, the pipeline does
/// NOT advance the shared resilience clock with these charges:
/// mid-question breaker cool-down is a serving-layer behavior, and
/// charging it here would change answers relative to the paper
/// pipeline. The charges land in [`Trace::stages`] only.
pub(crate) const STAGE_OVERHEAD_MS: u64 = 20;
/// Per-transport-attempt virtual price (see [`STAGE_OVERHEAD_MS`]).
pub(crate) const ATTEMPT_COST_MS: u64 = 80;
/// Per-retrieval-query virtual price (see [`STAGE_OVERHEAD_MS`]).
pub(crate) const QUERY_COST_MS: u64 = 2;

/// Accumulates one stage's [`StageTiming`]: wall via the injectable
/// clock (zero in tests), virtual from the cost model applied to the
/// LLM calls recorded since the previous lap plus the resilience
/// clock's backoff delta over the same window.
struct StageTimer {
    wall0: u64,
    charged: usize,
    backoff0: u64,
}

impl StageTimer {
    fn start(rl: &ResilientLlm<'_>, trace: &Trace) -> Self {
        Self {
            wall0: crate::timing::wall_ns(),
            charged: trace.llm_calls.len(),
            backoff0: rl.virtual_elapsed_ms(),
        }
    }

    /// Close the stage that just ran and open the next one. `extra_ms`
    /// carries non-LLM virtual charges (grounding's per-query cost).
    fn lap(&mut self, stage: &str, rl: &ResilientLlm<'_>, trace: &mut Trace, extra_ms: u64) {
        let wall = crate::timing::wall_ns();
        let backoff = rl.virtual_elapsed_ms();
        let attempts: u64 = trace.llm_calls[self.charged..]
            .iter()
            .map(|c| u64::from(c.attempts))
            .sum();
        trace.stages.push(StageTiming {
            stage: stage.to_string(),
            virtual_ms: STAGE_OVERHEAD_MS
                + ATTEMPT_COST_MS * attempts
                + (backoff - self.backoff0)
                + extra_ms,
            wall_ns: wall.saturating_sub(self.wall0),
        });
        self.wall0 = wall;
        self.charged = trace.llm_calls.len();
        self.backoff0 = backoff;
    }
}

/// Step 1: generate + decode the pseudo-graph, with the `cylint`
/// analyze → repair pass in between. `trace.cypher_error` always
/// reflects the *raw* script (so §4.6.1 error counts match the
/// paper); when repair is enabled and rescues a raw failure, the
/// salvaged triples are used and `trace.salvaged` is set. With
/// repair disabled a failing script yields an empty graph and
/// answering degrades to CoT, exactly as in the paper.
///
/// Degradation: a truncated completion is salvaged as raw Cypher
/// (`extract_cypher` already tolerates an unterminated fence); any
/// other exhausted failure yields an empty pseudo-graph, so the
/// question degrades to graph-free answering downstream.
///
/// A free function (not a method) so the serving layer's deadline-aware
/// executor can compose stages with budget checks between them.
pub(crate) fn pseudo_graph_stage(
    ctx: &QaContext<'_>,
    rl: &ResilientLlm<'_>,
    q: &Question,
    trace: &mut Trace,
) -> Vec<StrTriple> {
    let p = prompt::pseudo_graph_prompt(&q.text);
    let (res, call) = rl.complete(&p, &LlmTask::PseudoGraph { question: q });
    trace.llm_calls.push(call);
    let raw = match res {
        Ok(c) => c.text,
        Err(e) => match e.partial_text() {
            Some(t) if !t.is_empty() => {
                trace.degradation.push("pseudo:truncated-salvage".into());
                t.to_string()
            }
            _ => {
                trace.degradation.push("pseudo:empty-graph".into());
                return Vec::new();
            }
        },
    };
    trace.pseudo_raw = Some(raw.clone());
    let src = extract_cypher(&raw);
    let spanned = match cypher::parse_spanned(&src) {
        Ok(s) => s,
        Err(e) => {
            // Not even parseable: nothing for the analyzer to work
            // with, no repair possible.
            trace.cypher_error = Some(e.category().to_string());
            return Vec::new();
        }
    };
    trace.diagnostics = cypher::analyze_spanned(&spanned.script, &spanned.spans);
    if let Some(d) = trace
        .diagnostics
        .iter()
        .find(|d| d.severity == Severity::Error)
    {
        trace.cypher_error = Some(d.code.slug().to_string());
    }
    let raw_failed = trace.cypher_error.is_some();
    let script = if ctx.cfg.repair {
        let outcome = cypher::repair(&spanned.script);
        trace.repairs = outcome.fixes.iter().map(|f| f.to_string()).collect();
        outcome.script
    } else {
        spanned.script
    };
    let mut exec = Executor::new();
    match exec.run(&script, Mode::CreateOnly) {
        Ok(_) => {
            trace.salvaged = raw_failed;
            let triples = exec.into_graph().decode_triples();
            trace.pseudo_triples = triples.clone();
            triples
        }
        Err(e) => {
            trace.cypher_error = Some(e.category().to_string());
            Vec::new()
        }
    }
}

/// Step 2: semantic querying + two-step pruning against the base index,
/// recording the retrieval diagnostics in the trace. `batch_fn`
/// substitutes for the one batched retrieval call grounding makes
/// ([`crate::retrieval::GroundBatchFn`]) — the serving layer's
/// admission batcher hooks in here; `None` queries the base directly.
pub(crate) fn ground_stage(
    ctx: &QaContext<'_>,
    base: &BaseIndex,
    pseudo: &[StrTriple],
    batch_fn: Option<&GroundBatchFn<'_>>,
    trace: &mut Trace,
) -> GroundGraph {
    let source = ctx.source.expect("full pipeline needs a KG source");
    let (ground, stats) = ground_graph_with(source, base, ctx.embedder, ctx.cfg, pseudo, batch_fn);
    trace.base_triples = stats.base_triples;
    trace.ground_entities = ground
        .entities
        .iter()
        .map(|e| (e.label.clone(), e.score))
        .collect();
    trace.ground_triples = ground.triple_count();
    ground
}

/// Step 3: pseudo-graph verification (single pass, or the
/// majority-voted multi-pass extension), yielding the fixed graph.
///
/// Degradation: an empty ground graph (or every pass exhausted) keeps
/// the pseudo-graph unverified rather than losing it; a truncated
/// verifier output is a valid prefix of the fixed-triple list.
pub(crate) fn verify_stage(
    ctx: &QaContext<'_>,
    rl: &ResilientLlm<'_>,
    q: &Question,
    pseudo: &[StrTriple],
    ground: &GroundGraph,
    trace: &mut Trace,
) -> Vec<StrTriple> {
    if ground.is_empty() {
        // Nothing retrieved: the pseudo-graph stands as-is
        // (robustness: upstream emptiness does not abort the run).
        return pseudo.to_vec();
    }
    if ctx.cfg.verify_passes <= 1 {
        let p = prompt::verify_prompt(&q.text, pseudo, &ground.sections());
        let (res, call) = rl.complete(
            &p,
            &LlmTask::VerifyGraph {
                question: q,
                pseudo,
                ground,
            },
        );
        trace.llm_calls.push(call);
        match res {
            Ok(c) => parse_triple_lines(&c.text),
            // A truncated verifier output is a valid prefix of the
            // fixed-triple list; anything else exhausted keeps the
            // pseudo-graph unverified rather than losing it.
            Err(e) => match e.partial_text() {
                Some(t) if !t.is_empty() => {
                    trace.degradation.push("verify:truncated-prefix".into());
                    parse_triple_lines(t)
                }
                _ => {
                    trace.degradation.push("verify:unverified".into());
                    pseudo.to_vec()
                }
            },
        }
    } else {
        let p = prompt::verify_prompt(&q.text, pseudo, &ground.sections());
        let mut runs: Vec<Vec<StrTriple>> = Vec::new();
        let mut dropped = 0u32;
        for i in 0..ctx.cfg.verify_passes {
            let (res, call) = rl.complete(
                &p,
                &LlmTask::VerifyGraphSample {
                    question: q,
                    pseudo,
                    ground,
                    index: i,
                },
            );
            trace.llm_calls.push(call);
            match res {
                Ok(c) => runs.push(parse_triple_lines(&c.text)),
                Err(e) => match e.partial_text() {
                    Some(t) if !t.is_empty() => {
                        trace.degradation.push("verify:truncated-prefix".into());
                        runs.push(parse_triple_lines(t));
                    }
                    // A failed pass is dropped from the tally; the
                    // vote runs over the survivors.
                    _ => dropped += 1,
                },
            }
        }
        if dropped > 0 {
            trace
                .degradation
                .push(format!("verify:dropped-passes:{dropped}"));
        }
        if runs.is_empty() {
            trace.degradation.push("verify:unverified".into());
            pseudo.to_vec()
        } else {
            majority_vote(&runs)
        }
    }
}

/// Final step: answer from a graph (Figure 5). An empty graph makes
/// the model fall back to its own reasoning.
///
/// Degradation: a truncated completion is used as-is; any other
/// exhausted failure assembles a best-effort answer from the graph's
/// object strings — a degraded question is still answered.
pub(crate) fn answer_stage(
    rl: &ResilientLlm<'_>,
    q: &Question,
    graph: &[StrTriple],
    trace: &mut Trace,
) -> String {
    let p = prompt::answer_prompt(&q.text, graph);
    let (res, call) = rl.complete(&p, &LlmTask::AnswerFromGraph { question: q, graph });
    trace.llm_calls.push(call);
    match res {
        Ok(c) => c.text,
        Err(e) => match e.partial_text() {
            Some(t) if !t.is_empty() => {
                trace.degradation.push("answer:truncated".into());
                t.to_string()
            }
            _ => {
                trace.degradation.push("answer:graph-objects".into());
                best_effort_answer(graph)
            }
        },
    }
}

/// Keep the triples present in a strict majority of verification runs,
/// ordered by first appearance. Each triple is normalized exactly once;
/// the tally and emission passes share the precomputed keys instead of
/// re-lowercasing (and re-cloning) per lookup.
fn majority_vote(runs: &[Vec<StrTriple>]) -> Vec<StrTriple> {
    let need = runs.len() as u32 / 2 + 1;
    let normed: Vec<Vec<(String, String, String)>> = runs
        .iter()
        .map(|run| {
            run.iter()
                .map(|t| (t.s.to_lowercase(), t.p.to_lowercase(), t.o.to_lowercase()))
                .collect()
        })
        .collect();
    let mut counts: std::collections::HashMap<&(String, String, String), u32> =
        std::collections::HashMap::new();
    for run in &normed {
        let mut seen = std::collections::HashSet::new();
        for key in run {
            if seen.insert(key) {
                *counts.entry(key).or_default() += 1;
            }
        }
    }
    let mut out = Vec::new();
    let mut emitted = std::collections::HashSet::new();
    for (run, keys) in runs.iter().zip(&normed) {
        for (t, key) in run.iter().zip(keys) {
            if counts.get(key).copied().unwrap_or(0) >= need && emitted.insert(key) {
                out.push(t.clone());
            }
        }
    }
    out
}

impl Method for PseudoGraphPipeline {
    fn name(&self) -> &'static str {
        match self.stages {
            Stages::PseudoOnly => "Pseudo-Graph",
            Stages::Full => "Ours",
        }
    }

    fn needs_kg(&self) -> bool {
        self.stages == Stages::Full
    }

    fn answer(&self, ctx: &QaContext<'_>, q: &Question) -> MethodOutput {
        let mut trace = Trace::default();
        // Question-scoped middleware: breaker state and the virtual
        // backoff clock live and die with this one answer, so a
        // parallel run's schedule matches a serial run's exactly.
        let rl = ResilientLlm::new(ctx.llm, &ctx.cfg.resilience);
        let mut timer = StageTimer::start(&rl, &trace);

        // Step 1 — Pseudo-Graph Generation.
        let pseudo = self.pseudo_graph(ctx, &rl, q, &mut trace);
        timer.lap("pseudo", &rl, &mut trace, 0);

        if self.stages == Stages::PseudoOnly {
            let answer = self.generate_answer(&rl, q, &pseudo, &mut trace);
            timer.lap("answer", &rl, &mut trace, 0);
            return MethodOutput { answer, trace };
        }

        // Step 2 — Semantic Querying + two-step pruning.
        let base = ctx.base_for(&q.text);
        let ground = ground_stage(ctx, &base, &pseudo, None, &mut trace);
        // One query slot per pseudo triple — the same per-query charge
        // the serving executor prices grounding at.
        let ground_queries = if pseudo.is_empty() || base.is_empty() {
            0
        } else {
            pseudo.len() as u64
        };
        timer.lap("ground", &rl, &mut trace, QUERY_COST_MS * ground_queries);

        // Step 3 — Pseudo-Graph Verification (single pass, or the
        // majority-voted multi-pass extension).
        let fixed = verify_stage(ctx, &rl, q, &pseudo, &ground, &mut trace);
        trace.fixed_triples = fixed.clone();
        timer.lap("verify", &rl, &mut trace, 0);

        // Step 4 — Answer Generation.
        let answer = self.generate_answer(&rl, q, &fixed, &mut trace);
        timer.lap("answer", &rl, &mut trace, 0);
        MethodOutput { answer, trace }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use semvec::Embedder;
    use simllm::{LanguageModel, ModelProfile, SimLlm};
    use std::sync::Arc;
    use worldgen::{datasets::simpleq, derive, generate, SourceConfig, WorldConfig};

    fn setup() -> (Arc<worldgen::World>, SimLlm, kgstore::KgSource) {
        let world = Arc::new(generate(&WorldConfig::default()));
        let llm = SimLlm::new(world.clone(), ModelProfile::gpt35_sim());
        let src = derive(&world, &SourceConfig::wikidata());
        (world, llm, src)
    }

    #[test]
    fn full_pipeline_produces_traced_answers() {
        let (world, llm, src) = setup();
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let ctx = QaContext {
            llm: &llm,
            source: Some(&src),
            base: None,
            embedder: &emb,
            cfg: &cfg,
        };
        let ds = simpleq::generate(&world, 10, 1);
        let pipeline = PseudoGraphPipeline::full();
        let mut grounded = 0;
        for q in &ds.questions {
            let out = pipeline.answer(&ctx, q);
            assert!(!out.answer.is_empty());
            assert!(out.trace.pseudo_raw.is_some());
            if !out.trace.ground_entities.is_empty() {
                grounded += 1;
                assert!(!out.trace.fixed_triples.is_empty());
            }
        }
        assert!(grounded >= 5, "most questions should ground: {grounded}/10");
    }

    #[test]
    fn pseudo_only_skips_retrieval() {
        let (world, llm, src) = setup();
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let ctx = QaContext {
            llm: &llm,
            source: Some(&src),
            base: None,
            embedder: &emb,
            cfg: &cfg,
        };
        let ds = simpleq::generate(&world, 5, 2);
        let pipeline = PseudoGraphPipeline::pseudo_only();
        for q in &ds.questions {
            let out = pipeline.answer(&ctx, q);
            assert!(out.trace.ground_entities.is_empty());
            assert_eq!(out.trace.base_triples, 0);
            assert!(!out.answer.is_empty());
        }
    }

    #[test]
    fn pipeline_is_deterministic() {
        let (world, llm, src) = setup();
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let ctx = QaContext {
            llm: &llm,
            source: Some(&src),
            base: None,
            embedder: &emb,
            cfg: &cfg,
        };
        let ds = simpleq::generate(&world, 5, 3);
        let pipeline = PseudoGraphPipeline::full();
        for q in &ds.questions {
            assert_eq!(
                pipeline.answer(&ctx, q).answer,
                pipeline.answer(&ctx, q).answer
            );
        }
    }

    #[test]
    fn cypher_failure_is_recorded_and_survivable() {
        let (world, _, src) = setup();
        let mut p = ModelProfile::gpt35_sim();
        p.cypher_match_rate = 1.0;
        let llm = SimLlm::new(world.clone(), p);
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let ctx = QaContext {
            llm: &llm,
            source: Some(&src),
            base: None,
            embedder: &emb,
            cfg: &cfg,
        };
        let ds = simpleq::generate(&world, 3, 4);
        let pipeline = PseudoGraphPipeline::full();
        for q in &ds.questions {
            let out = pipeline.answer(&ctx, q);
            assert_eq!(out.trace.cypher_error.as_deref(), Some("spurious-match"));
            assert!(!out.answer.is_empty(), "must still answer");
        }
    }

    #[test]
    fn repair_salvages_some_spurious_match_scripts() {
        let (world, _, src) = setup();
        let mut p = ModelProfile::gpt35_sim();
        p.cypher_match_rate = 1.0; // every script fails raw
        let llm = SimLlm::new(world.clone(), p);
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        assert!(cfg.repair, "repair must be on by default");
        let ctx = QaContext {
            llm: &llm,
            source: Some(&src),
            base: None,
            embedder: &emb,
            cfg: &cfg,
        };
        let ds = simpleq::generate(&world, 20, 8);
        let pipeline = PseudoGraphPipeline::full();
        let mut salvaged = 0;
        for q in &ds.questions {
            let out = pipeline.answer(&ctx, q);
            // Raw failure is still recorded (paper's §4.6.1 counts)…
            assert_eq!(out.trace.cypher_error.as_deref(), Some("spurious-match"));
            assert!(
                out.trace
                    .diagnostics
                    .iter()
                    .any(|d| d.code == cypher::Code::SpuriousMatch),
                "CY001 must be among the diagnostics"
            );
            assert!(
                !out.trace.repairs.is_empty(),
                "repair log must record the dropped MATCH"
            );
            // …and repair always makes the script executable.
            assert!(out.trace.salvaged);
            if !out.trace.pseudo_triples.is_empty() {
                salvaged += 1;
            }
        }
        assert!(
            salvaged > 5,
            "mixed outputs must yield salvaged triples: {salvaged}/20"
        );
    }

    #[test]
    fn repair_off_reproduces_paper_discard() {
        let (world, _, src) = setup();
        let mut p = ModelProfile::gpt35_sim();
        p.cypher_match_rate = 1.0;
        let llm = SimLlm::new(world.clone(), p);
        let emb = Embedder::default();
        let cfg = PipelineConfig {
            repair: false,
            ..Default::default()
        };
        let ctx = QaContext {
            llm: &llm,
            source: Some(&src),
            base: None,
            embedder: &emb,
            cfg: &cfg,
        };
        let ds = simpleq::generate(&world, 5, 9);
        let pipeline = PseudoGraphPipeline::full();
        for q in &ds.questions {
            let out = pipeline.answer(&ctx, q);
            assert_eq!(out.trace.cypher_error.as_deref(), Some("spurious-match"));
            assert!(!out.trace.salvaged);
            assert!(out.trace.repairs.is_empty());
            assert!(
                out.trace.pseudo_triples.is_empty(),
                "paper mode discards the whole script"
            );
            assert!(!out.answer.is_empty(), "answering still degrades to CoT");
        }
    }

    #[test]
    fn healthy_scripts_are_not_marked_salvaged() {
        let (world, llm, src) = setup();
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let ctx = QaContext {
            llm: &llm,
            source: Some(&src),
            base: None,
            embedder: &emb,
            cfg: &cfg,
        };
        let ds = simpleq::generate(&world, 10, 10);
        let pipeline = PseudoGraphPipeline::full();
        for q in &ds.questions {
            let out = pipeline.answer(&ctx, q);
            if out.trace.cypher_error.is_none() {
                assert!(!out.trace.salvaged);
            }
        }
    }

    #[test]
    fn majority_vote_keeps_stable_triples() {
        let t = |o: &str| kgstore::StrTriple::new("s", "p", o);
        let runs = vec![
            vec![t("a"), t("b")],
            vec![t("a"), t("c")],
            vec![t("a"), t("b")],
        ];
        let voted = super::majority_vote(&runs);
        assert_eq!(
            voted,
            vec![t("a"), t("b")],
            "a (3/3) and b (2/3) survive; c (1/3) dies"
        );
    }

    #[test]
    fn multi_pass_verification_runs_and_scores() {
        let (world, llm, src) = setup();
        let emb = Embedder::default();
        let cfg = PipelineConfig {
            verify_passes: 3,
            ..Default::default()
        };
        let ctx = QaContext {
            llm: &llm,
            source: Some(&src),
            base: None,
            embedder: &emb,
            cfg: &cfg,
        };
        let ds = simpleq::generate(&world, 5, 6);
        let pipeline = PseudoGraphPipeline::full();
        for q in &ds.questions {
            let out = pipeline.answer(&ctx, q);
            assert!(!out.answer.is_empty());
        }
    }

    #[test]
    fn zero_fault_rate_is_byte_identical_to_the_bare_model() {
        use simllm::{FaultPlan, FaultyLlm};
        let (world, llm, src) = setup();
        let faulty = FaultyLlm::new(
            SimLlm::new(world.clone(), ModelProfile::gpt35_sim()),
            FaultPlan::none(42),
        );
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let plain_ctx = QaContext {
            llm: &llm,
            source: Some(&src),
            base: None,
            embedder: &emb,
            cfg: &cfg,
        };
        let faulty_ctx = QaContext {
            llm: &faulty,
            source: Some(&src),
            base: None,
            embedder: &emb,
            cfg: &cfg,
        };
        let ds = simpleq::generate(&world, 8, 11);
        let pipeline = PseudoGraphPipeline::full();
        for q in &ds.questions {
            let a = pipeline.answer(&plain_ctx, q);
            let b = pipeline.answer(&faulty_ctx, q);
            assert_eq!(a.answer, b.answer, "rate 0 must be transparent");
            assert_eq!(a.trace.fixed_triples, b.trace.fixed_triples);
            assert!(b.trace.degradation.is_empty());
            assert!(b.trace.llm_calls.iter().all(|c| c.attempts == 1));
        }
        assert_eq!(faulty.faults_injected(), 0);
    }

    #[test]
    fn faulty_transport_always_yields_an_answer() {
        use simllm::{FaultPlan, FaultyLlm};
        let (world, _, src) = setup();
        let faulty = FaultyLlm::new(
            SimLlm::new(world.clone(), ModelProfile::gpt35_sim()),
            FaultPlan::uniform(7, 0.5),
        );
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let ctx = QaContext {
            llm: &faulty,
            source: Some(&src),
            base: None,
            embedder: &emb,
            cfg: &cfg,
        };
        let ds = simpleq::generate(&world, 20, 12);
        let pipeline = PseudoGraphPipeline::full();
        let mut degraded = 0;
        for q in &ds.questions {
            let out = pipeline.answer(&ctx, q);
            assert!(!out.answer.is_empty(), "degraded, never missing: {}", q.id);
            assert!(!out.trace.llm_calls.is_empty());
            if !out.trace.degradation.is_empty() {
                degraded += 1;
            }
        }
        assert!(
            faulty.faults_injected() > 0,
            "a 0.5 total rate must inject faults"
        );
        // With retries most faults recover silently; at this rate at
        // least one question should still have taken a degraded path.
        assert!(degraded >= 1, "expected some degradation at rate 0.5");
    }

    #[test]
    fn telemetry_shows_three_llm_calls_for_full_pipeline() {
        let (world, llm, src) = setup();
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let ctx = QaContext {
            llm: &llm,
            source: Some(&src),
            base: None,
            embedder: &emb,
            cfg: &cfg,
        };
        let ds = simpleq::generate(&world, 1, 5);
        let before = llm.call_count();
        let out = PseudoGraphPipeline::full().answer(&ctx, &ds.questions[0]);
        let calls = llm.call_count() - before;
        // pseudo + (verify if grounded) + answer
        if out.trace.ground_entities.is_empty() {
            assert_eq!(calls, 2);
        } else {
            assert_eq!(calls, 3);
        }
    }

    #[test]
    fn stage_breakdown_is_deterministic_and_wall_free() {
        let (world, llm, src) = setup();
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let ctx = QaContext {
            llm: &llm,
            source: Some(&src),
            base: None,
            embedder: &emb,
            cfg: &cfg,
        };
        let ds = simpleq::generate(&world, 4, 9);
        let pipeline = PseudoGraphPipeline::full();
        for q in &ds.questions {
            let a = pipeline.answer(&ctx, q);
            let b = pipeline.answer(&ctx, q);
            assert_eq!(a.trace.stages, b.trace.stages, "stage timing must be pure");
            let names: Vec<&str> = a.trace.stages.iter().map(|s| s.stage.as_str()).collect();
            assert_eq!(names, ["pseudo", "ground", "verify", "answer"]);
            for s in &a.trace.stages {
                // Every stage pays its overhead; no clock installed in
                // tests, so wall readings stay at the zero default.
                assert!(
                    s.virtual_ms >= STAGE_OVERHEAD_MS,
                    "{}: {}",
                    s.stage,
                    s.virtual_ms
                );
                assert_eq!(
                    s.wall_ns, 0,
                    "{}: wall must be zero without a clock",
                    s.stage
                );
            }
            // LLM-bearing stages price their attempts on top.
            assert!(a.trace.stages[0].virtual_ms >= STAGE_OVERHEAD_MS + ATTEMPT_COST_MS);
            assert!(a.trace.stages[3].virtual_ms >= STAGE_OVERHEAD_MS + ATTEMPT_COST_MS);
        }
        // The pseudo-only ablation has exactly its two stages.
        let out = PseudoGraphPipeline::pseudo_only().answer(&ctx, &ds.questions[0]);
        let names: Vec<&str> = out.trace.stages.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(names, ["pseudo", "answer"]);
    }
}
