//! Result persistence: write per-run JSON records and a markdown
//! summary, so experiment outputs are diffable artifacts rather than
//! terminal scrollback.

use crate::runner::RunResult;
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::path::Path;

/// Aggregate summary of one run (the part worth diffing).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSummary {
    /// Method name.
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Questions scored.
    pub questions: usize,
    /// Headline score (Hit@1 % or mean ROUGE-L-F1 %).
    pub score: f64,
    /// Hit@1 numerator (0 for ROUGE datasets).
    pub hits: usize,
    /// Questions with a recorded Cypher failure.
    pub cypher_failures: usize,
    /// Questions whose ground graph was empty.
    pub empty_ground: usize,
    /// Questions whose method panicked (scored as misses).
    #[serde(default)]
    pub errors: usize,
    /// Transport faults observed across the run.
    #[serde(default)]
    pub faults: u64,
    /// Retry attempts spent recovering from transport faults.
    #[serde(default)]
    pub retries: u64,
    /// Questions that took at least one degradation path.
    #[serde(default)]
    pub degraded: usize,
    /// Total virtual service milliseconds across all questions (the
    /// sum of per-stage charges — see [`crate::runner::Record`]).
    #[serde(default)]
    pub virtual_ms: u64,
    /// Per-stage virtual totals in pipeline order, e.g.
    /// `[("pseudo", 1520), …]`. Empty for stage-less baselines run
    /// outside the runner.
    #[serde(default)]
    pub stage_virtual_ms: Vec<(String, u64)>,
}

impl RunSummary {
    /// Summarise a run result.
    pub fn of(run: &RunResult) -> Self {
        Self {
            method: run.method.clone(),
            dataset: run.dataset.clone(),
            questions: run.records.len(),
            score: run.score(),
            hits: run.hit.hits,
            cypher_failures: run
                .records
                .iter()
                .filter(|r| r.trace.cypher_error.is_some())
                .count(),
            empty_ground: run
                .records
                .iter()
                .filter(|r| r.trace.ground_entities.is_empty())
                .count(),
            errors: run.errors,
            faults: run.faults.faults,
            retries: run.faults.retries,
            degraded: run.faults.degraded_questions,
            virtual_ms: run.records.iter().map(|r| r.virtual_ms()).sum(),
            stage_virtual_ms: run
                .stage_totals()
                .into_iter()
                .map(|(name, agg)| (name, agg.virtual_ms))
                .collect(),
        }
    }
}

/// Write the full per-question records as JSON Lines (one record per
/// line — greppable, streamable).
pub fn write_records_jsonl(run: &RunResult, path: &Path) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    for r in &run.records {
        serde_json::to_writer(&mut f, r)?;
        f.write_all(b"\n")?;
    }
    f.flush()
}

/// Write a summary of several runs as a markdown table.
pub fn write_markdown_summary(runs: &[RunSummary], path: &Path) -> std::io::Result<()> {
    let mut out = String::from(
        "| method | dataset | n | score | hits | cypher failures | empty ground | errors | faults | retries | degraded | virtual ms |\n\
         |---|---|---|---|---|---|---|---|---|---|---|---|\n",
    );
    for s in runs {
        out.push_str(&format!(
            "| {} | {} | {} | {:.1} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
            s.method,
            s.dataset,
            s.questions,
            s.score,
            s.hits,
            s.cypher_failures,
            s.empty_ground,
            s.errors,
            s.faults,
            s.retries,
            s.degraded,
            s.virtual_ms
        ));
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Record;
    use evalkit::HitAccumulator;

    fn fake_run() -> RunResult {
        let mut hit = HitAccumulator::default();
        hit.record(true);
        hit.record(false);
        RunResult {
            method: "Ours".into(),
            dataset: "QALD-10".into(),
            hit,
            rouge: Default::default(),
            errors: 0,
            faults: Default::default(),
            records: vec![
                Record {
                    qid: "q0".into(),
                    question: "who?".into(),
                    answer: "x".into(),
                    hit: Some(true),
                    rouge: None,
                    trace: Default::default(),
                },
                Record {
                    qid: "q1".into(),
                    question: "what?".into(),
                    answer: "y".into(),
                    hit: Some(false),
                    rouge: None,
                    trace: crate::method::Trace {
                        cypher_error: Some("spurious-match".into()),
                        ..Default::default()
                    },
                },
            ],
        }
    }

    #[test]
    fn summary_counts() {
        let s = RunSummary::of(&fake_run());
        assert_eq!(s.questions, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.cypher_failures, 1);
        assert_eq!(s.empty_ground, 2);
        assert!((s.score - 50.0).abs() < 1e-9);
        // Stage-less records still carry the 1 ms service floor.
        assert_eq!(s.virtual_ms, 2);
        assert!(s.stage_virtual_ms.is_empty());
    }

    #[test]
    fn jsonl_and_markdown_roundtrip() {
        let dir = std::env::temp_dir().join("pmkg-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let run = fake_run();
        let jsonl = dir.join("records.jsonl");
        write_records_jsonl(&run, &jsonl).unwrap();
        let content = std::fs::read_to_string(&jsonl).unwrap();
        assert_eq!(content.lines().count(), 2);
        let first: Record = serde_json::from_str(content.lines().next().unwrap()).unwrap();
        assert_eq!(first.qid, "q0");

        let md = dir.join("summary.md");
        write_markdown_summary(&[RunSummary::of(&run)], &md).unwrap();
        let content = std::fs::read_to_string(&md).unwrap();
        assert!(content.contains("| Ours | QALD-10 | 2 | 50.0 |"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
