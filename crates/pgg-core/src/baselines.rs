//! The paper's baselines: IO, CoT, Self-Consistency, and Question
//! Semantic Matching.

use crate::method::{Method, MethodOutput, QaContext, Trace};
use crate::resilience::ResilientLlm;
use evalkit::normalize_answer;
use kgstore::hash::FxHashMap;
use kgstore::StrTriple;
use simllm::{prompt, LlmTask};
use worldgen::Question;

/// One resilient single-shot call with the shared text degradation:
/// truncated output is kept, any other exhausted failure yields the
/// `fallback` text and records `degraded` in the trace.
fn complete_or_degrade(
    rl: &ResilientLlm<'_>,
    prompt: &str,
    task: &LlmTask<'_>,
    trace: &mut Trace,
    degraded: &str,
    fallback: &str,
) -> String {
    let (res, call) = rl.complete(prompt, task);
    trace.llm_calls.push(call);
    match res {
        Ok(c) => c.text,
        Err(e) => match e.partial_text() {
            Some(t) if !t.is_empty() => {
                trace.degradation.push(format!("{degraded}:truncated"));
                t.to_string()
            }
            _ => {
                trace.degradation.push(degraded.to_string());
                fallback.to_string()
            }
        },
    }
}

/// The stock "cannot answer" text used when a baseline's only LLM call
/// is exhausted — the question is still answered, just unhelpfully.
const UNANSWERED: &str = "I cannot answer this question.";

/// Standard 6-shot input-output prompting.
pub struct Io;

impl Method for Io {
    fn name(&self) -> &'static str {
        "IO"
    }

    fn answer(&self, ctx: &QaContext<'_>, q: &Question) -> MethodOutput {
        let rl = ResilientLlm::new(ctx.llm, &ctx.cfg.resilience);
        let mut trace = Trace::default();
        let p = prompt::io_prompt(&q.text);
        let answer = complete_or_degrade(
            &rl,
            &p,
            &LlmTask::Io { question: q },
            &mut trace,
            "io:unanswered",
            UNANSWERED,
        );
        MethodOutput { answer, trace }
    }
}

/// 6-shot chain-of-thought prompting.
pub struct Cot;

impl Method for Cot {
    fn name(&self) -> &'static str {
        "CoT"
    }

    fn answer(&self, ctx: &QaContext<'_>, q: &Question) -> MethodOutput {
        let rl = ResilientLlm::new(ctx.llm, &ctx.cfg.resilience);
        let mut trace = Trace::default();
        let p = prompt::cot_prompt(&q.text);
        let answer = complete_or_degrade(
            &rl,
            &p,
            &LlmTask::Cot { question: q },
            &mut trace,
            "cot:unanswered",
            UNANSWERED,
        );
        MethodOutput { answer, trace }
    }
}

/// Self-consistency: sample with temperature 0.7 three times, vote on
/// the normalised answers, return the majority sample.
pub struct SelfConsistency;

impl Method for SelfConsistency {
    fn name(&self) -> &'static str {
        "SC"
    }

    fn answer(&self, ctx: &QaContext<'_>, q: &Question) -> MethodOutput {
        let rl = ResilientLlm::new(ctx.llm, &ctx.cfg.resilience);
        let mut trace = Trace::default();
        let p = prompt::cot_prompt(&q.text);
        let mut samples: Vec<String> = Vec::new();
        let mut dropped = 0u32;
        for i in 0..ctx.cfg.sc_samples {
            let (res, call) = rl.complete(
                &p,
                &LlmTask::CotSample {
                    question: q,
                    index: i,
                },
            );
            trace.llm_calls.push(call);
            match res {
                Ok(c) => samples.push(c.text),
                Err(e) => match e.partial_text() {
                    Some(t) if !t.is_empty() => samples.push(t.to_string()),
                    // A failed sample is dropped from the vote.
                    _ => dropped += 1,
                },
            }
        }
        if dropped > 0 {
            trace
                .degradation
                .push(format!("sc:dropped-samples:{dropped}"));
        }
        if samples.is_empty() {
            trace.degradation.push("sc:unanswered".into());
            return MethodOutput {
                answer: UNANSWERED.to_string(),
                trace,
            };
        }
        let mut votes: FxHashMap<String, usize> = FxHashMap::default();
        for s in &samples {
            *votes.entry(normalize_answer(s)).or_default() += 1;
        }
        let winner_key = votes
            // detlint: allow(DL001) the winner among full (count, len)
            // ties follows the map's deterministic Fx iteration; a new
            // tie-break would silently change published answers.
            .iter()
            .max_by_key(|(k, &v)| (v, std::cmp::Reverse(k.len())))
            .map(|(k, _)| k.clone())
            .unwrap_or_default();
        let answer = samples
            .into_iter()
            .find(|s| normalize_answer(s) == winner_key)
            .unwrap_or_default();
        MethodOutput { answer, trace }
    }
}

/// Question Semantic Matching: retrieve KG triples directly with the
/// question embedding (no pseudo-graph), then answer from them.
pub struct Qsm;

impl Method for Qsm {
    fn name(&self) -> &'static str {
        "QSM"
    }

    fn needs_kg(&self) -> bool {
        true
    }

    fn answer(&self, ctx: &QaContext<'_>, q: &Question) -> MethodOutput {
        let rl = ResilientLlm::new(ctx.llm, &ctx.cfg.resilience);
        let base = ctx.base_for(&q.text);
        let mut trace = crate::method::Trace {
            base_triples: base.len(),
            ..Default::default()
        };
        if base.is_empty() {
            // Nothing retrieved: degrade to direct answering.
            let p = prompt::io_prompt(&q.text);
            let answer = complete_or_degrade(
                &rl,
                &p,
                &LlmTask::Io { question: q },
                &mut trace,
                "qsm:unanswered",
                UNANSWERED,
            );
            return MethodOutput { answer, trace };
        }
        // The question itself is the query — and question-style text
        // does not get the triple-paraphrase alignment (the continuous
        // phrasing vs discrete triple gap the paper highlights), so it
        // is encoded unfolded.
        let salt = kgstore::hash::stable_str_hash(&q.text);
        let hits = match ctx.cfg.batch_mode {
            crate::retrieval::BatchMode::Batched => {
                // A single-slot batch: same hits, through the batch
                // entry point the pipeline uses.
                let slots = [crate::retrieval::QuerySlot {
                    text: &q.text,
                    style: semvec::QueryStyle::Unfolded,
                    salt,
                }];
                base.search_batch(
                    ctx.embedder,
                    &slots,
                    ctx.cfg.top_k,
                    ctx.cfg.retrieval_jitter,
                    ctx.cfg.retrieval_mode,
                    ctx.cfg.scoring_mode,
                )
                .pop()
                .unwrap_or_default()
            }
            crate::retrieval::BatchMode::PerQuery => base.search(
                ctx.embedder,
                &q.text,
                semvec::QueryStyle::Unfolded,
                ctx.cfg.top_k,
                ctx.cfg.retrieval_jitter,
                salt,
                ctx.cfg.retrieval_mode,
                ctx.cfg.scoring_mode,
            ),
        };
        let retrieved: Vec<StrTriple> =
            hits.iter().map(|h| base.verbalised[h.id].clone()).collect();
        trace.ground_triples = retrieved.len();
        let p = prompt::answer_prompt(&q.text, &retrieved);
        let (res, call) = rl.complete(
            &p,
            &LlmTask::AnswerFromGraph {
                question: q,
                graph: &retrieved,
            },
        );
        trace.llm_calls.push(call);
        let answer = match res {
            Ok(c) => c.text,
            Err(e) => match e.partial_text() {
                Some(t) if !t.is_empty() => {
                    trace.degradation.push("qsm:truncated".into());
                    t.to_string()
                }
                _ => {
                    trace.degradation.push("qsm:graph-objects".into());
                    crate::resilience::best_effort_answer(&retrieved)
                }
            },
        };
        MethodOutput { answer, trace }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use semvec::Embedder;
    use simllm::{ModelProfile, SimLlm};
    use std::sync::Arc;
    use worldgen::{datasets::simpleq, derive, generate, SourceConfig, WorldConfig};

    fn setup() -> (Arc<worldgen::World>, SimLlm, kgstore::KgSource) {
        let world = Arc::new(generate(&WorldConfig::default()));
        let llm = SimLlm::new(world.clone(), ModelProfile::gpt35_sim());
        let src = derive(&world, &SourceConfig::wikidata());
        (world, llm, src)
    }

    #[test]
    fn all_baselines_produce_answers() {
        let (world, llm, src) = setup();
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let ctx = QaContext {
            llm: &llm,
            source: Some(&src),
            base: None,
            embedder: &emb,
            cfg: &cfg,
        };
        let ds = simpleq::generate(&world, 5, 1);
        for q in &ds.questions {
            for m in [&Io as &dyn Method, &Cot, &SelfConsistency, &Qsm] {
                let out = m.answer(&ctx, q);
                assert!(!out.answer.is_empty(), "{} empty answer", m.name());
            }
        }
    }

    #[test]
    fn sc_is_deterministic_despite_sampling() {
        let (world, llm, src) = setup();
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let ctx = QaContext {
            llm: &llm,
            source: Some(&src),
            base: None,
            embedder: &emb,
            cfg: &cfg,
        };
        let ds = simpleq::generate(&world, 5, 2);
        for q in &ds.questions {
            let a = SelfConsistency.answer(&ctx, q).answer;
            let b = SelfConsistency.answer(&ctx, q).answer;
            assert_eq!(a, b);
        }
    }

    #[test]
    fn qsm_records_retrieval_trace() {
        let (world, llm, src) = setup();
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let ctx = QaContext {
            llm: &llm,
            source: Some(&src),
            base: None,
            embedder: &emb,
            cfg: &cfg,
        };
        let ds = simpleq::generate(&world, 10, 3);
        let mut some_retrieval = false;
        for q in &ds.questions {
            let out = Qsm.answer(&ctx, q);
            if out.trace.ground_triples > 0 {
                some_retrieval = true;
            }
        }
        assert!(some_retrieval, "QSM should retrieve for some questions");
    }

    #[test]
    fn method_names() {
        assert_eq!(Io.name(), "IO");
        assert_eq!(Cot.name(), "CoT");
        assert_eq!(SelfConsistency.name(), "SC");
        assert_eq!(Qsm.name(), "QSM");
        assert!(Qsm.needs_kg() && !Io.needs_kg());
    }
}
