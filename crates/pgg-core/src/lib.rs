//! # pgg-core — Pseudo-Graph Generation + Atomic Knowledge Verification
//!
//! The paper's contribution: a training-free, linking-free framework
//! that lets an LLM use knowledge graphs for open-ended question
//! answering across KG sources.
//!
//! * [`pipeline`] — the four-step method (pseudo-graph generation,
//!   semantic querying + two-step pruning, verification, answer
//!   generation), with the pseudo-only ablation;
//! * [`retrieval`] — semantic querying and the two pruning steps;
//! * [`baselines`] — IO, CoT, Self-Consistency, QSM;
//! * [`method`] — the shared [`Method`] trait, traces, Table-1
//!   capability rows;
//! * [`runner`] — parallel (method × dataset) evaluation with
//!   per-question records, per-question panic isolation, and
//!   transport-fault telemetry;
//! * [`resilience`] — retry/circuit-breaker middleware over the fallible
//!   LLM transport, plus the per-stage degradation helpers;
//! * [`serve`] — the fault-hardened concurrent QA service: bounded
//!   admission, per-question deadlines, breaker-driven load shedding,
//!   all deterministic on the virtual clock;
//! * [`config`] — pipeline knobs and the paper's experiment constants.

#![warn(missing_docs)]

pub mod baselines;
pub mod config;
pub mod method;
pub mod pipeline;
pub mod prune;
pub mod report;
pub mod resilience;
pub mod retrieval;
pub mod runner;
pub mod serve;
pub mod timing;

pub use baselines::{Cot, Io, Qsm, SelfConsistency};
pub use config::{paper, PipelineConfig};
pub use method::{
    capability_row, BaseRef, Capabilities, Method, MethodOutput, QaContext, StageTiming, Trace,
};
pub use pipeline::{PseudoGraphPipeline, Stages};
pub use prune::{Candidate, PruneStrategy};
pub use report::{write_markdown_summary, write_records_jsonl, RunSummary};
pub use resilience::{
    best_effort_answer, Admit, Breaker, BreakerState, BreakerTransition, ResilienceConfig,
    ResilientLlm, StageCall,
};
pub use retrieval::{
    ground_graph, ground_graph_with, BaseIndex, BatchMode, CacheStats, GroundBatchFn, QuerySlot,
    RetrievalMode, RetrievalStats, ScoringMode, ScoringStats, ENTITY_GATE_DEFAULT,
    PRUNE_GATE_DEFAULT,
};
pub use runner::{run, score_answer, FaultSummary, Record, RunError, RunResult, StageAgg};
pub use serve::{
    serve, Arrival, BatchTelemetry, Disposition, OfferedTrace, Outcome, ServeConfig, ServeReport,
    ShedReason,
};
pub use timing::{install_wall_clock, wall_ns};
