//! Resilient LLM middleware: bounded retries with deterministic
//! exponential backoff, a per-task-kind circuit breaker, and the
//! per-call telemetry the pipeline folds into question traces.
//!
//! [`ResilientLlm`] wraps a `&dyn LanguageModel` for the duration of one
//! question (every [`crate::Method`] creates one at the top of
//! `answer`), so breaker state and the virtual clock are scoped to that
//! question. That scoping is deliberate: a process-wide breaker would
//! make one question's faults change another's behaviour depending on
//! scheduling, and parallel runs would stop matching serial ones. The
//! backoff clock is *simulated* — waits are accumulated as virtual
//! milliseconds for telemetry, never slept, so a chaos sweep over a
//! thousand questions finishes at CPU speed and tests stay instant. A
//! production transport would sleep the same schedule for real.

use kgstore::hash::FxHashMap;
use serde::{Deserialize, Serialize};
use simllm::{Completion, LanguageModel, LlmError, LlmTask};
use std::cell::{Cell, RefCell};

/// Retry / breaker knobs (part of [`crate::PipelineConfig`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// Master switch. `false` = one attempt per call, no breaker — the
    /// chaos bench's "resilience off" arm; degradation policies still
    /// apply (a failed stage degrades, it never aborts the question).
    pub enabled: bool,
    /// Attempts per call including the first (retries = attempts − 1).
    pub max_attempts: u32,
    /// First backoff wait; doubles per retry.
    pub backoff_base_ms: u64,
    /// Ceiling on a single backoff wait.
    pub backoff_cap_ms: u64,
    /// Consecutive attempt failures of one task kind that trip the
    /// breaker; once open, calls of that kind fail fast.
    pub breaker_threshold: u32,
    /// Virtual milliseconds an open breaker stays open before it admits
    /// a single half-open probe (probe success closes it, probe failure
    /// re-opens it for another cooldown).
    #[serde(default = "default_breaker_cooldown_ms")]
    pub breaker_cooldown_ms: u64,
}

fn default_breaker_cooldown_ms() -> u64 {
    1_000
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            max_attempts: 3,
            backoff_base_ms: 100,
            backoff_cap_ms: 2_000,
            breaker_threshold: 5,
            breaker_cooldown_ms: default_breaker_cooldown_ms(),
        }
    }
}

impl ResilienceConfig {
    /// The resilience-off arm: single attempt, no breaker, no backoff.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Default::default()
        }
    }
}

/// What one stage-level LLM call cost: attempts, faults seen, virtual
/// backoff, and whether the breaker short-circuited it.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StageCall {
    /// Task kind (`"pseudo-graph"`, `"verify"`, `"answer"`, …).
    pub stage: String,
    /// Attempts actually made against the transport.
    pub attempts: u32,
    /// Fault kinds observed, in order.
    pub faults: Vec<String>,
    /// Virtual backoff accumulated across retries (ms).
    pub backoff_ms: u64,
    /// The breaker was open and the call failed without reaching the
    /// transport (on its remaining attempts).
    pub fast_failed: bool,
}

/// Observable circuit-breaker state (the classic three-state diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Calls flow; consecutive failures are counted.
    Closed,
    /// Tripped: calls fail fast until the cooldown elapses.
    Open,
    /// Cooldown elapsed: exactly one probe call is admitted; its
    /// outcome decides Closed (success) vs Open again (failure).
    HalfOpen,
}

/// Admission verdict from [`Breaker::admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Breaker closed — proceed normally.
    Yes,
    /// Breaker half-open — this call is the recovery probe.
    Probe,
    /// Breaker open (or a probe is already in flight) — fail fast.
    No,
}

/// One logged state change, stamped with the virtual clock.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerTransition {
    /// Virtual time of the transition (ms).
    pub at_ms: u64,
    /// State left.
    pub from: BreakerState,
    /// State entered.
    pub to: BreakerState,
}

/// A three-state circuit breaker driven entirely by an external virtual
/// clock: closed → (threshold consecutive failures) → open → (cooldown
/// elapses) → half-open → one probe → closed or open again. Shared by
/// [`ResilientLlm`] (one per task kind) and the serving layer's
/// load-shedding breaker ([`crate::serve`]).
#[derive(Debug, Clone)]
pub struct Breaker {
    threshold: u32,
    cooldown_ms: u64,
    consecutive_failures: u32,
    state: BreakerState,
    /// When `Open`, the virtual time the cooldown ends.
    open_until_ms: u64,
    /// When `HalfOpen`, whether the single probe slot is taken.
    probe_in_flight: bool,
    transitions: Vec<BreakerTransition>,
}

impl Breaker {
    /// A closed breaker that trips after `threshold` consecutive
    /// failures and stays open for `cooldown_ms` virtual milliseconds.
    pub fn new(threshold: u32, cooldown_ms: u64) -> Self {
        Self {
            threshold: threshold.max(1),
            cooldown_ms,
            consecutive_failures: 0,
            state: BreakerState::Closed,
            open_until_ms: 0,
            probe_in_flight: false,
            transitions: Vec::new(),
        }
    }

    /// Current state (after any cooldown expiry would apply on the next
    /// `admit`; this is the raw stored state).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Every state change so far, in virtual-time order.
    pub fn transitions(&self) -> &[BreakerTransition] {
        &self.transitions
    }

    fn set_state(&mut self, now_ms: u64, to: BreakerState) {
        if self.state != to {
            self.transitions.push(BreakerTransition {
                at_ms: now_ms,
                from: self.state,
                to,
            });
            self.state = to;
        }
    }

    /// May a call proceed at virtual time `now_ms`? An open breaker
    /// whose cooldown has elapsed flips to half-open here and admits
    /// the caller as the probe.
    pub fn admit(&mut self, now_ms: u64) -> Admit {
        match self.state {
            BreakerState::Closed => Admit::Yes,
            BreakerState::Open => {
                if now_ms >= self.open_until_ms {
                    self.set_state(now_ms, BreakerState::HalfOpen);
                    self.probe_in_flight = true;
                    Admit::Probe
                } else {
                    Admit::No
                }
            }
            BreakerState::HalfOpen => {
                if self.probe_in_flight {
                    Admit::No
                } else {
                    self.probe_in_flight = true;
                    Admit::Probe
                }
            }
        }
    }

    /// Record the outcome of an admitted call (normal or probe).
    pub fn on_result(&mut self, now_ms: u64, ok: bool) {
        match self.state {
            BreakerState::Closed => {
                if ok {
                    self.consecutive_failures = 0;
                } else {
                    self.consecutive_failures += 1;
                    if self.consecutive_failures >= self.threshold {
                        self.open_until_ms = now_ms + self.cooldown_ms;
                        self.set_state(now_ms, BreakerState::Open);
                    }
                }
            }
            BreakerState::HalfOpen => {
                self.probe_in_flight = false;
                if ok {
                    self.consecutive_failures = 0;
                    self.set_state(now_ms, BreakerState::Closed);
                } else {
                    self.open_until_ms = now_ms + self.cooldown_ms;
                    self.set_state(now_ms, BreakerState::Open);
                }
            }
            // A result landing while open (e.g. a call admitted before
            // the trip) neither extends nor shortens the cooldown.
            BreakerState::Open => {}
        }
    }
}

/// Per-question retry/breaker middleware over any [`LanguageModel`].
pub struct ResilientLlm<'a> {
    llm: &'a dyn LanguageModel,
    cfg: &'a ResilienceConfig,
    /// One breaker per task kind, driven by the virtual clock.
    breakers: RefCell<FxHashMap<&'static str, Breaker>>,
    clock_ms: Cell<u64>,
}

impl<'a> ResilientLlm<'a> {
    /// Wrap a model for one question's worth of calls.
    pub fn new(llm: &'a dyn LanguageModel, cfg: &'a ResilienceConfig) -> Self {
        Self {
            llm,
            cfg,
            breakers: RefCell::new(FxHashMap::default()),
            clock_ms: Cell::new(0),
        }
    }

    /// Virtual milliseconds spent backing off so far.
    pub fn virtual_elapsed_ms(&self) -> u64 {
        self.clock_ms.get()
    }

    /// Advance the virtual clock by `ms` without backing off — the
    /// serving layer charges simulated stage/transport time here so
    /// open breakers can cool down and half-open mid-question.
    pub fn advance_clock(&self, ms: u64) {
        self.clock_ms.set(self.clock_ms.get() + ms);
    }

    fn backoff_for(&self, retry: u32, err: &LlmError) -> u64 {
        match err {
            LlmError::RateLimited { retry_after_ms } => *retry_after_ms,
            _ => self
                .cfg
                .backoff_base_ms
                .saturating_mul(1u64 << retry.min(16))
                .min(self.cfg.backoff_cap_ms),
        }
    }

    /// Run one completion with retries and the breaker; returns the
    /// final outcome plus the [`StageCall`] record for the trace.
    pub fn complete(
        &self,
        prompt: &str,
        task: &LlmTask<'_>,
    ) -> (Result<Completion, LlmError>, StageCall) {
        let kind = task.kind();
        let mut call = StageCall {
            stage: kind.to_string(),
            ..Default::default()
        };
        if !self.cfg.enabled {
            call.attempts = 1;
            let res = self.llm.complete(prompt, task);
            if let Err(e) = &res {
                call.faults.push(e.kind().to_string());
            }
            return (res, call);
        }
        let mut last: Option<LlmError> = None;
        for retry in 0..self.cfg.max_attempts {
            let admitted = self
                .breakers
                .borrow_mut()
                .entry(kind)
                .or_insert_with(|| {
                    Breaker::new(self.cfg.breaker_threshold, self.cfg.breaker_cooldown_ms)
                })
                .admit(self.clock_ms.get());
            if admitted == Admit::No {
                call.fast_failed = true;
                break;
            }
            call.attempts += 1;
            match self.llm.complete(prompt, task) {
                Ok(c) => {
                    if let Some(b) = self.breakers.borrow_mut().get_mut(kind) {
                        b.on_result(self.clock_ms.get(), true);
                    }
                    return (Ok(c), call);
                }
                Err(e) => {
                    call.faults.push(e.kind().to_string());
                    if let Some(b) = self.breakers.borrow_mut().get_mut(kind) {
                        b.on_result(self.clock_ms.get(), false);
                    }
                    let budget_left = retry + 1 < self.cfg.max_attempts;
                    if e.is_retryable() && budget_left {
                        let wait = self.backoff_for(retry, &e);
                        call.backoff_ms += wait;
                        self.clock_ms.set(self.clock_ms.get() + wait);
                        last = Some(e);
                    } else {
                        last = Some(e);
                        break;
                    }
                }
            }
        }
        // A pure fast-fail (breaker open before the first attempt) has
        // no transport error of its own; it reports as transient.
        (Err(last.unwrap_or(LlmError::Transient)), call)
    }
}

/// Best-effort answer assembled from a graph's object strings — the
/// answer-stage degradation when every attempt at the model failed.
/// Always non-empty: a degraded question still produces an answer.
pub fn best_effort_answer(graph: &[kgstore::StrTriple]) -> String {
    let mut objs: Vec<&str> = Vec::new();
    for t in graph {
        if !t.o.is_empty() && !objs.iter().any(|o| o.eq_ignore_ascii_case(&t.o)) {
            objs.push(&t.o);
        }
        if objs.len() >= 8 {
            break;
        }
    }
    if objs.is_empty() {
        "Based on the graph above, I cannot determine the answer.".to_string()
    } else {
        format!("Based on the graph, the answer is {}.", objs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgstore::StrTriple;
    use parking_lot::Mutex;
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use worldgen::{datasets::simpleq, generate, WorldConfig};

    /// A model that fails according to a fixed outcome script.
    struct FlakyLlm {
        script: Mutex<VecDeque<Result<String, LlmError>>>,
        calls: AtomicUsize,
    }

    impl FlakyLlm {
        fn new(script: Vec<Result<String, LlmError>>) -> Self {
            Self {
                script: Mutex::new(script.into()),
                calls: AtomicUsize::new(0),
            }
        }
    }

    impl LanguageModel for FlakyLlm {
        fn name(&self) -> &str {
            "flaky"
        }
        fn complete(&self, _p: &str, _t: &LlmTask<'_>) -> Result<Completion, LlmError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            match self.script.lock().pop_front() {
                Some(Ok(text)) => Ok(Completion { text }),
                Some(Err(e)) => Err(e),
                None => Ok(Completion { text: "ok".into() }),
            }
        }
        fn call_count(&self) -> usize {
            self.calls.load(Ordering::Relaxed)
        }
        fn tokens_processed(&self) -> usize {
            0
        }
    }

    fn question() -> worldgen::Question {
        let world = Arc::new(generate(&WorldConfig {
            scale: 0.3,
            ..Default::default()
        }));
        simpleq::generate(&world, 1, 1).questions.pop().unwrap()
    }

    #[test]
    fn retries_recover_from_transient_faults() {
        let q = question();
        let llm = FlakyLlm::new(vec![
            Err(LlmError::Timeout),
            Err(LlmError::Transient),
            Ok("recovered".into()),
        ]);
        let cfg = ResilienceConfig::default();
        let rl = ResilientLlm::new(&llm, &cfg);
        let (res, call) = rl.complete("p", &LlmTask::Io { question: &q });
        assert_eq!(res.unwrap().text, "recovered");
        assert_eq!(call.attempts, 3);
        assert_eq!(call.faults, vec!["timeout", "transient"]);
        assert!(call.backoff_ms > 0);
        assert!(!call.fast_failed);
    }

    #[test]
    fn backoff_doubles_and_respects_retry_after() {
        let q = question();
        let llm = FlakyLlm::new(vec![
            Err(LlmError::Transient),
            Err(LlmError::RateLimited { retry_after_ms: 77 }),
            Err(LlmError::Transient),
        ]);
        let cfg = ResilienceConfig {
            max_attempts: 4,
            ..Default::default()
        };
        let rl = ResilientLlm::new(&llm, &cfg);
        let (_, call) = rl.complete("p", &LlmTask::Io { question: &q });
        // 100 (transient, retry 0) + 77 (rate-limit hint) + 400 (retry 2).
        assert_eq!(call.backoff_ms, 100 + 77 + 400);
        assert_eq!(rl.virtual_elapsed_ms(), call.backoff_ms);
    }

    #[test]
    fn truncation_is_not_retried() {
        let q = question();
        let llm = FlakyLlm::new(vec![Err(LlmError::Truncated {
            text: "part".into(),
        })]);
        let cfg = ResilienceConfig::default();
        let rl = ResilientLlm::new(&llm, &cfg);
        let (res, call) = rl.complete("p", &LlmTask::Io { question: &q });
        assert_eq!(call.attempts, 1, "non-retryable fault must not retry");
        assert_eq!(res.unwrap_err().partial_text(), Some("part"));
    }

    #[test]
    fn breaker_trips_and_fails_fast() {
        let q = question();
        let always: Vec<_> = (0..20).map(|_| Err(LlmError::Transient)).collect();
        let llm = FlakyLlm::new(always);
        let cfg = ResilienceConfig {
            max_attempts: 3,
            breaker_threshold: 4,
            ..Default::default()
        };
        let rl = ResilientLlm::new(&llm, &cfg);
        let task = LlmTask::Io { question: &q };
        let (r1, c1) = rl.complete("p", &task);
        assert!(r1.is_err());
        assert_eq!(c1.attempts, 3);
        // 3 consecutive failures so far; the next call's first failure
        // trips the threshold of 4 and the rest fast-fail.
        let (r2, c2) = rl.complete("p", &task);
        assert!(r2.is_err());
        assert_eq!(c2.attempts, 1);
        assert!(c2.fast_failed);
        // Fully open now: no transport attempts at all.
        let (r3, c3) = rl.complete("p", &task);
        assert!(r3.is_err());
        assert_eq!(c3.attempts, 0);
        assert!(c3.fast_failed);
        assert_eq!(llm.call_count(), 4);
    }

    #[test]
    fn breaker_is_per_task_kind() {
        let q = question();
        let always: Vec<_> = (0..5).map(|_| Err(LlmError::Transient)).collect();
        let llm = FlakyLlm::new(always);
        let cfg = ResilienceConfig {
            max_attempts: 5,
            breaker_threshold: 5,
            ..Default::default()
        };
        let rl = ResilientLlm::new(&llm, &cfg);
        let (_, c1) = rl.complete("p", &LlmTask::Io { question: &q });
        assert_eq!(
            c1.attempts, 5,
            "io burned its budget and tripped its breaker"
        );
        // The io breaker is open: same kind fails without the transport.
        let (r_io, c_io) = rl.complete("p", &LlmTask::Io { question: &q });
        assert!(r_io.is_err());
        assert!(c_io.fast_failed);
        // A different task kind has its own (closed) breaker and the
        // script is exhausted (→ Ok), so it reaches the transport and
        // succeeds on the first attempt.
        let (r2, c2) = rl.complete("p", &LlmTask::Cot { question: &q });
        assert!(r2.is_ok());
        assert!(!c2.fast_failed);
        assert_eq!(c2.attempts, 1);
    }

    #[test]
    fn success_resets_the_breaker_counter() {
        let q = question();
        let llm = FlakyLlm::new(vec![
            Err(LlmError::Transient),
            Err(LlmError::Transient),
            Ok("fine".into()),
            Err(LlmError::Transient),
            Ok("fine again".into()),
        ]);
        let cfg = ResilienceConfig {
            breaker_threshold: 3,
            ..Default::default()
        };
        let rl = ResilientLlm::new(&llm, &cfg);
        let task = LlmTask::Io { question: &q };
        assert!(rl.complete("p", &task).0.is_ok());
        // Counter was reset by the success; one more failure stays
        // under the threshold and the retry succeeds.
        let (r, c) = rl.complete("p", &task);
        assert!(r.is_ok());
        assert!(!c.fast_failed);
    }

    #[test]
    fn disabled_means_single_attempt() {
        let q = question();
        let llm = FlakyLlm::new(vec![Err(LlmError::Timeout), Ok("never reached".into())]);
        let cfg = ResilienceConfig::disabled();
        let rl = ResilientLlm::new(&llm, &cfg);
        let (res, call) = rl.complete("p", &LlmTask::Io { question: &q });
        assert!(res.is_err());
        assert_eq!(call.attempts, 1);
        assert_eq!(call.backoff_ms, 0);
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let mut b = Breaker::new(2, 500);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(0), Admit::Yes);
        b.on_result(0, false);
        assert_eq!(b.admit(10), Admit::Yes);
        b.on_result(10, false);
        // Second consecutive failure trips it.
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(100), Admit::No, "cooling down");
        assert_eq!(b.admit(509), Admit::No, "still cooling (10 + 500)");
        // Cooldown elapsed: exactly one probe is admitted.
        assert_eq!(b.admit(510), Admit::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admit(511), Admit::No, "probe already in flight");
        b.on_result(520, true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(521), Admit::Yes);
        let states: Vec<(u64, BreakerState, BreakerState)> = b
            .transitions()
            .iter()
            .map(|t| (t.at_ms, t.from, t.to))
            .collect();
        assert_eq!(
            states,
            vec![
                (10, BreakerState::Closed, BreakerState::Open),
                (510, BreakerState::Open, BreakerState::HalfOpen),
                (520, BreakerState::HalfOpen, BreakerState::Closed),
            ]
        );
    }

    #[test]
    fn failed_probe_reopens_for_another_cooldown() {
        let mut b = Breaker::new(1, 300);
        b.on_result(0, false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(300), Admit::Probe);
        b.on_result(305, false);
        assert_eq!(b.state(), BreakerState::Open);
        // Fresh cooldown from the probe failure, not the original trip.
        assert_eq!(b.admit(600), Admit::No);
        assert_eq!(b.admit(605), Admit::Probe);
        b.on_result(610, true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.transitions().len(), 5, "O, HO, O, HO, C");
    }

    #[test]
    fn halfopen_probe_slot_frees_after_resolution_only() {
        let mut b = Breaker::new(1, 100);
        b.on_result(0, false);
        assert_eq!(b.admit(100), Admit::Probe);
        assert_eq!(b.admit(150), Admit::No);
        assert_eq!(b.admit(200), Admit::No);
        b.on_result(250, true);
        assert_eq!(b.admit(251), Admit::Yes);
    }

    #[test]
    fn resilient_llm_recovers_through_halfopen_on_the_virtual_clock() {
        let q = question();
        // 4 failures trip the io breaker; the script then yields Ok
        // forever, so the post-cooldown probe succeeds and closes it.
        let always: Vec<_> = (0..4).map(|_| Err(LlmError::Transient)).collect();
        let llm = FlakyLlm::new(always);
        let cfg = ResilienceConfig {
            max_attempts: 3,
            breaker_threshold: 4,
            breaker_cooldown_ms: 1_000,
            ..Default::default()
        };
        let rl = ResilientLlm::new(&llm, &cfg);
        let task = LlmTask::Io { question: &q };
        assert!(rl.complete("p", &task).0.is_err());
        let (r2, c2) = rl.complete("p", &task);
        assert!(r2.is_err());
        assert!(c2.fast_failed, "tripped on this call's first failure");
        // Open: fails fast with zero transport attempts.
        let (_, c3) = rl.complete("p", &task);
        assert_eq!(c3.attempts, 0);
        assert!(c3.fast_failed);
        let before = llm.call_count();
        // The serving layer charges simulated time; the cooldown
        // elapses and the next call is admitted as the probe.
        rl.advance_clock(1_000);
        let (r4, c4) = rl.complete("p", &task);
        assert_eq!(r4.unwrap().text, "ok");
        assert_eq!(c4.attempts, 1);
        assert!(!c4.fast_failed);
        assert_eq!(llm.call_count(), before + 1);
        // Closed again: further calls flow normally.
        let (r5, _) = rl.complete("p", &task);
        assert!(r5.is_ok());
    }

    #[test]
    fn best_effort_answer_is_never_empty() {
        assert!(!best_effort_answer(&[]).is_empty());
        let g = vec![
            StrTriple::new("a", "p", "Peru"),
            StrTriple::new("a", "p", "peru"),
            StrTriple::new("b", "q", "Chile"),
        ];
        let a = best_effort_answer(&g);
        assert!(a.contains("Peru") && a.contains("Chile"));
        assert_eq!(a.matches("eru").count(), 1, "case-insensitive dedup");
    }
}
