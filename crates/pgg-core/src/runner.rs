//! The experiment runner: evaluate a method over a dataset, in
//! parallel, producing per-question records and aggregate scores.

use crate::config::PipelineConfig;
use crate::method::{Method, QaContext, Trace};
use crate::retrieval::BaseIndex;
use evalkit::{is_hit, rouge_l_multi, HitAccumulator, Prf, RougeAccumulator};
use kgstore::KgSource;
use semvec::Embedder;
use serde::{Deserialize, Serialize};
use simllm::LanguageModel;
use worldgen::{Dataset, Gold, Question};

/// One scored question.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Record {
    /// Question id.
    pub qid: String,
    /// Question text.
    pub question: String,
    /// The method's answer.
    pub answer: String,
    /// Hit@1 outcome (None for ROUGE-scored datasets).
    pub hit: Option<bool>,
    /// ROUGE-L scores (None for Hit@1 datasets).
    pub rouge: Option<Prf>,
    /// Stage trace.
    pub trace: Trace,
}

/// Aggregate result of one (method × dataset) run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunResult {
    /// Method name.
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Hit@1 accumulator (empty for ROUGE datasets).
    pub hit: HitAccumulator,
    /// ROUGE accumulator (empty for Hit@1 datasets).
    pub rouge: RougeAccumulator,
    /// Per-question records, in dataset order.
    pub records: Vec<Record>,
}

impl RunResult {
    /// The headline score: Hit@1 percent or mean ROUGE-L-F1 percent,
    /// whichever metric the dataset uses.
    pub fn score(&self) -> f64 {
        if self.hit.total > 0 {
            self.hit.percent()
        } else {
            self.rouge.percent()
        }
    }
}

/// Score one answer against gold.
pub fn score_answer(answer: &str, gold: &Gold) -> (Option<bool>, Option<Prf>) {
    match gold {
        Gold::Accepted(accepted) => (Some(is_hit(answer, accepted)), None),
        Gold::References(refs) => (None, Some(rouge_l_multi(answer, refs))),
    }
}

/// Run `method` over `dataset` with `threads` workers (0 = all cores).
#[allow(clippy::too_many_arguments)] // the experiment axes are exactly these
pub fn run(
    method: &dyn Method,
    llm: &dyn LanguageModel,
    source: Option<&KgSource>,
    base: Option<&BaseIndex>,
    embedder: &Embedder,
    cfg: &PipelineConfig,
    dataset: &Dataset,
    threads: usize,
) -> RunResult {
    assert!(
        !(method.needs_kg() && source.is_none()),
        "{} requires a KG source",
        method.name()
    );
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        threads
    };

    let n = dataset.questions.len();
    let mut records: Vec<Option<Record>> = Vec::with_capacity(n);
    records.resize_with(n, || None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots = std::sync::Mutex::new(&mut records);

    crossbeam::scope(|scope| {
        for _ in 0..threads.min(n.max(1)) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let q: &Question = &dataset.questions[i];
                let ctx = QaContext {
                    llm,
                    source,
                    base,
                    embedder,
                    cfg,
                };
                let out = method.answer(&ctx, q);
                let (hit, rouge) = score_answer(&out.answer, &q.gold);
                let rec = Record {
                    qid: q.id.clone(),
                    question: q.text.clone(),
                    answer: out.answer,
                    hit,
                    rouge,
                    trace: out.trace,
                };
                slots.lock().unwrap()[i] = Some(rec);
            });
        }
    })
    .expect("worker panicked");

    let mut result = RunResult {
        method: method.name().to_string(),
        dataset: dataset.kind.name().to_string(),
        ..Default::default()
    };
    for rec in records.into_iter().map(|r| r.expect("record filled")) {
        if let Some(h) = rec.hit {
            result.hit.record(h);
        }
        if let Some(p) = rec.rouge {
            result.rouge.record(p);
        }
        result.records.push(rec);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{Cot, Io};
    use crate::pipeline::PseudoGraphPipeline;
    use simllm::{ModelProfile, SimLlm};
    use std::sync::Arc;
    use worldgen::{
        datasets::nature, datasets::simpleq, derive, generate, SourceConfig, WorldConfig,
    };

    fn setup() -> (Arc<worldgen::World>, SimLlm, kgstore::KgSource) {
        let world = Arc::new(generate(&WorldConfig::default()));
        let llm = SimLlm::new(world.clone(), ModelProfile::gpt35_sim());
        let src = derive(&world, &SourceConfig::wikidata());
        (world, llm, src)
    }

    #[test]
    fn run_scores_hit_datasets() {
        let (world, llm, src) = setup();
        let ds = simpleq::generate(&world, 40, 1);
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let res = run(&Io, &llm, Some(&src), None, &emb, &cfg, &ds, 4);
        assert_eq!(res.hit.total, 40);
        assert_eq!(res.rouge.total, 0);
        assert_eq!(res.records.len(), 40);
        assert!(res.score() >= 0.0 && res.score() <= 100.0);
    }

    #[test]
    fn run_scores_rouge_datasets() {
        let (world, llm, src) = setup();
        let ds = nature::generate(&world, 10, 2);
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let res = run(&Cot, &llm, Some(&src), None, &emb, &cfg, &ds, 2);
        assert_eq!(res.rouge.total, 10);
        assert_eq!(res.hit.total, 0);
        assert!(res.score() > 0.0, "some lexical overlap expected");
    }

    #[test]
    fn parallel_equals_serial() {
        let (world, llm, src) = setup();
        let ds = simpleq::generate(&world, 20, 3);
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let serial = run(
            &PseudoGraphPipeline::full(),
            &llm,
            Some(&src),
            None,
            &emb,
            &cfg,
            &ds,
            1,
        );
        let parallel = run(
            &PseudoGraphPipeline::full(),
            &llm,
            Some(&src),
            None,
            &emb,
            &cfg,
            &ds,
            8,
        );
        assert_eq!(serial.hit.hits, parallel.hit.hits);
        for (a, b) in serial.records.iter().zip(&parallel.records) {
            assert_eq!(a.qid, b.qid);
            assert_eq!(a.answer, b.answer);
        }
    }

    #[test]
    #[should_panic(expected = "requires a KG source")]
    fn kg_method_without_source_panics() {
        let (world, llm, _) = setup();
        let ds = simpleq::generate(&world, 2, 4);
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        run(
            &PseudoGraphPipeline::full(),
            &llm,
            None,
            None,
            &emb,
            &cfg,
            &ds,
            1,
        );
    }
}
