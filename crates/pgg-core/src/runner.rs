//! The experiment runner: evaluate a method over a dataset, in
//! parallel, producing per-question records and aggregate scores.
//!
//! The runner is the robustness boundary of the harness: a question
//! whose method panics becomes a scored-as-miss [`Record`] (counted in
//! [`RunResult::errors`]) instead of tearing down the whole sweep, and
//! misconfiguration (a KG method with no KG source) is a typed
//! [`RunError`] for the caller rather than an abort.
//!
//! # Determinism contract
//!
//! The worker pool claims questions in chunks off a shared atomic
//! cursor and commits records into index-ordered slots, so the
//! assembled [`RunResult`] is **byte-identical for any thread count**
//! (asserted by [`RunResult::identity_key`], which digests everything
//! deterministic a record carries and deliberately excludes the
//! wall-clock telemetry — the only schedule-dependent bytes). The
//! contract holds because each question's entire mutable state — the
//! resilience middleware, the fault schedule keyed on (question, task,
//! attempt), the trace — is question-scoped: workers share only
//! immutable references plus the atomic cursor (the same pure-worker
//! argument the serving engine documents).

use crate::config::PipelineConfig;
use crate::method::{Method, QaContext, StageTiming, Trace};
use crate::retrieval::BaseIndex;
use evalkit::{is_hit, rouge_l_multi, HitAccumulator, Prf, RougeAccumulator};
use kgstore::KgSource;
use semvec::Embedder;
use serde::{Deserialize, Serialize};
use simllm::LanguageModel;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use worldgen::{Dataset, Gold, Question};

/// Virtual price of the eval stage (answer scoring). Scoring is pure
/// string work with no transport behind it, so it is priced at the
/// floor; the stage exists so every record — including a stage-less
/// baseline's — occupies a worker in the virtual makespan model.
const EVAL_COST_MS: u64 = 1;

/// Questions claimed per work-steal. Chunking cuts shared-state
/// traffic to one atomic claim and one slot-commit lock per chunk
/// instead of per question, without touching results: which worker
/// answers which question is outcome-irrelevant under the pure-worker
/// contract (see the module docs).
const STEAL_CHUNK: usize = 4;

/// One scored question.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Record {
    /// Question id.
    pub qid: String,
    /// Question text.
    pub question: String,
    /// The method's answer.
    pub answer: String,
    /// Hit@1 outcome (None for ROUGE-scored datasets).
    pub hit: Option<bool>,
    /// ROUGE-L scores (None for Hit@1 datasets).
    pub rouge: Option<Prf>,
    /// Stage trace.
    pub trace: Trace,
}

impl Record {
    /// Virtual service time of this question: the sum of its stage
    /// charges, floored at 1 ms so even a record with no stage
    /// breakdown (a panicked question) occupies a worker in the
    /// makespan model.
    pub fn virtual_ms(&self) -> u64 {
        self.trace
            .stages
            .iter()
            .map(|s| s.virtual_ms)
            .sum::<u64>()
            .max(1)
    }
}

/// Aggregated timing of one pipeline stage across a whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageAgg {
    /// Records that entered the stage.
    pub questions: usize,
    /// Total virtual milliseconds charged to the stage.
    pub virtual_ms: u64,
    /// Total wall nanoseconds (0 unless a bench installed the clock —
    /// see [`crate::timing`]).
    pub wall_ns: u64,
}

/// Transport-fault telemetry aggregated over a whole run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Transport attempts across all stage-level LLM calls.
    pub attempts: u64,
    /// Faults observed (every failed attempt, whatever its kind).
    pub faults: u64,
    /// Attempts beyond the first per call (the retry overhead).
    pub retries: u64,
    /// Virtual backoff accumulated (ms; never slept).
    pub backoff_ms: u64,
    /// Calls short-circuited by an open circuit breaker.
    pub fast_fails: u64,
    /// Questions that took at least one degradation path.
    pub degraded_questions: usize,
    /// Fault counts by kind slug (`"timeout"`, `"truncated"`, …).
    pub by_kind: BTreeMap<String, u64>,
}

impl FaultSummary {
    fn absorb(&mut self, trace: &Trace) {
        for call in &trace.llm_calls {
            self.attempts += u64::from(call.attempts);
            self.faults += call.faults.len() as u64;
            self.retries += u64::from(call.attempts.saturating_sub(1));
            self.backoff_ms += call.backoff_ms;
            self.fast_fails += u64::from(call.fast_failed);
            for f in &call.faults {
                *self.by_kind.entry(f.clone()).or_default() += 1;
            }
        }
        if !trace.degradation.is_empty() {
            self.degraded_questions += 1;
        }
    }
}

/// Aggregate result of one (method × dataset) run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunResult {
    /// Method name.
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Hit@1 accumulator (empty for ROUGE datasets).
    pub hit: HitAccumulator,
    /// ROUGE accumulator (empty for Hit@1 datasets).
    pub rouge: RougeAccumulator,
    /// Per-question records, in dataset order.
    pub records: Vec<Record>,
    /// Questions whose method panicked (still present in `records`,
    /// scored as misses with a `panic:…` degradation note).
    #[serde(default)]
    pub errors: usize,
    /// Transport-fault telemetry aggregated over the run.
    #[serde(default)]
    pub faults: FaultSummary,
}

impl RunResult {
    /// The headline score: Hit@1 percent or mean ROUGE-L-F1 percent,
    /// whichever metric the dataset uses.
    pub fn score(&self) -> f64 {
        if self.hit.total > 0 {
            self.hit.percent()
        } else {
            self.rouge.percent()
        }
    }

    /// Per-stage totals over all records, keyed by stage slug in
    /// first-appearance order (pipeline order for pipeline methods).
    pub fn stage_totals(&self) -> Vec<(String, StageAgg)> {
        let mut order: Vec<String> = Vec::new();
        let mut agg: BTreeMap<String, StageAgg> = BTreeMap::new();
        for r in &self.records {
            for s in &r.trace.stages {
                if !agg.contains_key(&s.stage) {
                    order.push(s.stage.clone());
                }
                let e = agg.entry(s.stage.clone()).or_default();
                e.questions += 1;
                e.virtual_ms += s.virtual_ms;
                e.wall_ns += s.wall_ns;
            }
        }
        order
            .into_iter()
            .map(|k| {
                let v = agg.remove(&k).expect("aggregated above");
                (k, v)
            })
            .collect()
    }

    /// Deterministic makespan (virtual ms) of running this result's
    /// per-question service times on `threads` workers under the
    /// runner's in-order list schedule: question `i` goes to the
    /// worker that frees up first, lowest index on ties. The model is
    /// machine-independent — it depends only on the records' virtual
    /// stage charges — which is what lets a single-core CI measure
    /// multi-thread scaling honestly (wall-clock on one core cannot).
    pub fn virtual_makespan_ms(&self, threads: usize) -> u64 {
        let workers = threads.max(1).min(self.records.len().max(1));
        let mut free_at = vec![0u64; workers];
        for r in &self.records {
            let w = (0..workers)
                .min_by_key(|&w| free_at[w])
                .expect("at least one worker");
            free_at[w] += r.virtual_ms();
        }
        free_at.into_iter().max().unwrap_or(0)
    }

    /// Order-sensitive digest of everything deterministic in the run:
    /// answers, scores, degradation notes, per-call transport
    /// telemetry, and the virtual halves of the stage timings. Wall
    /// readings are excluded by design — they are the only
    /// schedule-dependent bytes a record carries — so two runs that
    /// differ only in thread count must produce equal keys.
    pub fn identity_key(&self) -> u64 {
        use kgstore::hash::{mix2, stable_str_hash};
        let mut h = stable_str_hash(&self.method);
        h = mix2(h, stable_str_hash(&self.dataset));
        h = mix2(h, self.errors as u64);
        for r in &self.records {
            h = mix2(h, stable_str_hash(&r.qid));
            h = mix2(h, stable_str_hash(&r.answer));
            h = mix2(
                h,
                match r.hit {
                    None => 2,
                    Some(false) => 0,
                    Some(true) => 1,
                },
            );
            if let Some(p) = &r.rouge {
                h = mix2(h, p.f1.to_bits());
            }
            for d in &r.trace.degradation {
                h = mix2(h, stable_str_hash(d));
            }
            for c in &r.trace.llm_calls {
                h = mix2(h, stable_str_hash(&c.stage));
                h = mix2(h, u64::from(c.attempts));
                h = mix2(h, c.backoff_ms);
                h = mix2(h, c.faults.len() as u64);
            }
            for s in &r.trace.stages {
                h = mix2(h, stable_str_hash(&s.stage));
                h = mix2(h, s.virtual_ms);
            }
        }
        h
    }
}

/// Why a run could not start (or finish).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A method that needs a KG was handed no source.
    MissingKgSource {
        /// The offending method's name.
        method: String,
    },
    /// A worker thread died outside the per-question isolation (a bug
    /// in the runner itself, not in a method).
    WorkerPanicked {
        /// `index:qid` labels of the questions that were in flight when
        /// the scope tore down — the suspects a soak report can name.
        in_flight: Vec<String>,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::MissingKgSource { method } => {
                write!(f, "{method} requires a KG source but none was provided")
            }
            RunError::WorkerPanicked { in_flight } => {
                if in_flight.is_empty() {
                    write!(f, "a runner worker thread panicked (no question in flight)")
                } else {
                    write!(
                        f,
                        "a runner worker thread panicked (in flight: {})",
                        in_flight.join(", ")
                    )
                }
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Score one answer against gold.
pub fn score_answer(answer: &str, gold: &Gold) -> (Option<bool>, Option<Prf>) {
    match gold {
        Gold::Accepted(accepted) => (Some(is_hit(answer, accepted)), None),
        Gold::References(refs) => (None, Some(rouge_l_multi(answer, refs))),
    }
}

/// The scored-as-miss record for a question whose method panicked (or,
/// unreachably, whose slot was never filled).
fn failed_record(q: &Question, note: String) -> Record {
    let (hit, rouge) = score_answer("", &q.gold);
    Record {
        qid: q.id.clone(),
        question: q.text.clone(),
        answer: String::new(),
        hit,
        rouge,
        trace: Trace {
            degradation: vec![note],
            ..Default::default()
        },
    }
}

/// Run `method` over `dataset` with `threads` workers. `0` defers to
/// [`PipelineConfig::runner_threads`], whose own `0` default resolves
/// to the machine's available parallelism — an explicit argument
/// always wins. Outcomes are byte-identical at every thread count
/// (see the module docs).
#[allow(clippy::too_many_arguments)] // the experiment axes are exactly these
pub fn run(
    method: &dyn Method,
    llm: &dyn LanguageModel,
    source: Option<&KgSource>,
    base: Option<&BaseIndex>,
    embedder: &Embedder,
    cfg: &PipelineConfig,
    dataset: &Dataset,
    threads: usize,
) -> Result<RunResult, RunError> {
    if method.needs_kg() && source.is_none() {
        return Err(RunError::MissingKgSource {
            method: method.name().to_string(),
        });
    }
    let threads = match (threads, cfg.runner_threads) {
        (0, 0) => std::thread::available_parallelism().map_or(4, |n| n.get()),
        (0, configured) => configured,
        (explicit, _) => explicit,
    };

    let n = dataset.questions.len();
    let mut records: Vec<Option<Record>> = Vec::with_capacity(n);
    records.resize_with(n, || None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    // parking_lot: a panicking holder cannot poison the lock (and the
    // per-question catch_unwind below keeps panics out of the critical
    // section anyway).
    let slots = parking_lot::Mutex::new(&mut records);
    // Questions currently being answered, as `index:qid` — consulted
    // only if the scope join fails, to name the suspects.
    let in_flight = parking_lot::Mutex::new(std::collections::BTreeSet::<String>::new());

    crossbeam::scope(|scope| {
        for _ in 0..threads.min(n.max(1)) {
            scope.spawn(|_| loop {
                let start = next.fetch_add(STEAL_CHUNK, std::sync::atomic::Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + STEAL_CHUNK).min(n);
                let mut chunk: Vec<(usize, Record)> = Vec::with_capacity(end - start);
                for i in start..end {
                    let q: &Question = &dataset.questions[i];
                    let label = format!("{i}:{}", q.id);
                    in_flight.lock().insert(label.clone());
                    let ctx = QaContext {
                        llm,
                        source,
                        base,
                        embedder,
                        cfg,
                    };
                    // One question's panic becomes one failed record;
                    // the other N−1 questions (and the sweep) are
                    // unaffected.
                    let rec = match catch_unwind(AssertUnwindSafe(|| method.answer(&ctx, q))) {
                        Ok(out) => {
                            let eval0 = crate::timing::wall_ns();
                            let (hit, rouge) = score_answer(&out.answer, &q.gold);
                            let mut trace = out.trace;
                            trace.stages.push(StageTiming {
                                stage: "eval".to_string(),
                                virtual_ms: EVAL_COST_MS,
                                wall_ns: crate::timing::wall_ns().saturating_sub(eval0),
                            });
                            Record {
                                qid: q.id.clone(),
                                question: q.text.clone(),
                                answer: out.answer,
                                hit,
                                rouge,
                                trace,
                            }
                        }
                        Err(payload) => {
                            let msg = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "unknown panic".to_string());
                            failed_record(q, format!("panic:{i}:{}:{msg}", q.id))
                        }
                    };
                    chunk.push((i, rec));
                    in_flight.lock().remove(&label);
                }
                let mut slots = slots.lock();
                for (i, rec) in chunk {
                    slots[i] = Some(rec);
                }
            });
        }
    })
    .map_err(|_| RunError::WorkerPanicked {
        in_flight: in_flight.lock().iter().cloned().collect(),
    })?;

    let mut result = RunResult {
        method: method.name().to_string(),
        dataset: dataset.kind.name().to_string(),
        ..Default::default()
    };
    for (i, slot) in records.into_iter().enumerate() {
        let rec = slot
            .unwrap_or_else(|| failed_record(&dataset.questions[i], "missing-record".to_string()));
        if rec
            .trace
            .degradation
            .iter()
            .any(|d| d.starts_with("panic:") || d == "missing-record")
            && rec.answer.is_empty()
        {
            result.errors += 1;
        }
        if let Some(h) = rec.hit {
            result.hit.record(h);
        }
        if let Some(p) = rec.rouge {
            result.rouge.record(p);
        }
        result.faults.absorb(&rec.trace);
        result.records.push(rec);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{Cot, Io};
    use crate::method::MethodOutput;
    use crate::pipeline::PseudoGraphPipeline;
    use simllm::{FaultPlan, FaultyLlm, ModelProfile, SimLlm};
    use std::sync::Arc;
    use worldgen::{
        datasets::nature, datasets::simpleq, derive, generate, SourceConfig, WorldConfig,
    };

    fn setup() -> (Arc<worldgen::World>, SimLlm, kgstore::KgSource) {
        let world = Arc::new(generate(&WorldConfig::default()));
        let llm = SimLlm::new(world.clone(), ModelProfile::gpt35_sim());
        let src = derive(&world, &SourceConfig::wikidata());
        (world, llm, src)
    }

    #[test]
    fn run_scores_hit_datasets() {
        let (world, llm, src) = setup();
        let ds = simpleq::generate(&world, 40, 1);
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let res = run(&Io, &llm, Some(&src), None, &emb, &cfg, &ds, 4).unwrap();
        assert_eq!(res.hit.total, 40);
        assert_eq!(res.rouge.total, 0);
        assert_eq!(res.records.len(), 40);
        assert_eq!(res.errors, 0);
        assert!(res.score() >= 0.0 && res.score() <= 100.0);
    }

    #[test]
    fn run_scores_rouge_datasets() {
        let (world, llm, src) = setup();
        let ds = nature::generate(&world, 10, 2);
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let res = run(&Cot, &llm, Some(&src), None, &emb, &cfg, &ds, 2).unwrap();
        assert_eq!(res.rouge.total, 10);
        assert_eq!(res.hit.total, 0);
        assert!(res.score() > 0.0, "some lexical overlap expected");
    }

    #[test]
    fn parallel_equals_serial() {
        let (world, llm, src) = setup();
        let ds = simpleq::generate(&world, 20, 3);
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let serial = run(
            &PseudoGraphPipeline::full(),
            &llm,
            Some(&src),
            None,
            &emb,
            &cfg,
            &ds,
            1,
        )
        .unwrap();
        let parallel = run(
            &PseudoGraphPipeline::full(),
            &llm,
            Some(&src),
            None,
            &emb,
            &cfg,
            &ds,
            8,
        )
        .unwrap();
        assert_eq!(serial.hit.hits, parallel.hit.hits);
        for (a, b) in serial.records.iter().zip(&parallel.records) {
            assert_eq!(a.qid, b.qid);
            assert_eq!(a.answer, b.answer);
        }
    }

    #[test]
    fn parallel_equals_serial_under_faults() {
        let (world, _, src) = setup();
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let ds = simpleq::generate(&world, 20, 3);
        let mut results = Vec::new();
        for threads in [1usize, 8] {
            // Fresh decorator per run: attempt counters must start at
            // zero for the schedules to be comparable.
            let faulty = FaultyLlm::new(
                SimLlm::new(world.clone(), ModelProfile::gpt35_sim()),
                FaultPlan::uniform(99, 0.3),
            );
            results.push(
                run(
                    &PseudoGraphPipeline::full(),
                    &faulty,
                    Some(&src),
                    None,
                    &emb,
                    &cfg,
                    &ds,
                    threads,
                )
                .unwrap(),
            );
        }
        let (serial, parallel) = (&results[0], &results[1]);
        assert_eq!(serial.faults, parallel.faults, "identical fault schedule");
        for (a, b) in serial.records.iter().zip(&parallel.records) {
            assert_eq!(a.answer, b.answer);
            assert_eq!(a.trace.llm_calls, b.trace.llm_calls);
            assert_eq!(a.trace.degradation, b.trace.degradation);
        }
    }

    #[test]
    fn fault_telemetry_is_aggregated() {
        let (world, _, src) = setup();
        let faulty = FaultyLlm::new(
            SimLlm::new(world.clone(), ModelProfile::gpt35_sim()),
            FaultPlan::uniform(5, 0.3),
        );
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let ds = simpleq::generate(&world, 30, 6);
        let res = run(
            &PseudoGraphPipeline::full(),
            &faulty,
            Some(&src),
            None,
            &emb,
            &cfg,
            &ds,
            4,
        )
        .unwrap();
        assert!(res.faults.attempts > 0);
        assert!(res.faults.faults > 0, "rate 0.3 must observe faults");
        assert!(res.faults.retries > 0, "retryable faults must retry");
        assert_eq!(
            res.faults.faults,
            res.faults.by_kind.values().sum::<u64>(),
            "by-kind counts must sum to the total"
        );
        assert_eq!(res.errors, 0, "faults degrade, they never panic");
        assert!(
            res.records.iter().all(|r| !r.answer.is_empty()),
            "every question still answered"
        );
    }

    #[test]
    fn kg_method_without_source_is_a_typed_error() {
        let (world, llm, _) = setup();
        let ds = simpleq::generate(&world, 2, 4);
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let err = run(
            &PseudoGraphPipeline::full(),
            &llm,
            None,
            None,
            &emb,
            &cfg,
            &ds,
            1,
        )
        .unwrap_err();
        assert_eq!(
            err,
            RunError::MissingKgSource {
                method: "Ours".into()
            }
        );
        assert!(err.to_string().contains("requires a KG source"));
    }

    /// A method that panics on every third question.
    struct Panicky;

    impl crate::method::Method for Panicky {
        fn name(&self) -> &'static str {
            "Panicky"
        }
        fn answer(&self, _ctx: &QaContext<'_>, q: &Question) -> MethodOutput {
            let idx: usize = q.id.rsplit('-').next().unwrap().parse().unwrap_or(0);
            if idx.is_multiple_of(3) {
                panic!("synthetic failure on {}", q.id);
            }
            MethodOutput {
                answer: "fine".into(),
                trace: Trace::default(),
            }
        }
    }

    #[test]
    fn a_panicking_method_yields_failed_records_not_a_crash() {
        let (world, llm, src) = setup();
        let ds = simpleq::generate(&world, 12, 7);
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let res = run(&Panicky, &llm, Some(&src), None, &emb, &cfg, &ds, 4).unwrap();
        assert_eq!(res.records.len(), 12, "every slot filled");
        assert!(res.errors > 0, "panics are counted");
        assert_eq!(
            res.errors,
            res.records
                .iter()
                .filter(|r| r.trace.degradation.iter().any(|d| d.starts_with("panic:")))
                .count()
        );
        for (i, r) in res.records.iter().enumerate() {
            if r.answer.is_empty() {
                assert_eq!(r.hit, Some(false), "failed records score as misses");
                let note = r
                    .trace
                    .degradation
                    .iter()
                    .find(|d| d.starts_with("panic:"))
                    .expect("failed record carries a panic note");
                assert!(
                    note.starts_with(&format!("panic:{i}:{}:", r.qid)),
                    "panic note names the question: {note}"
                );
            } else {
                assert_eq!(r.answer, "fine");
            }
        }
        // Determinism: the same run again produces the same errors.
        let again = run(&Panicky, &llm, Some(&src), None, &emb, &cfg, &ds, 1).unwrap();
        assert_eq!(res.errors, again.errors);
    }

    #[test]
    fn identity_key_is_thread_count_invariant_under_fault_storms() {
        let (world, _, src) = setup();
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let ds = simpleq::generate(&world, 14, 11);
        for plan in [FaultPlan::uniform(41, 0.35), FaultPlan::storm(41, 0.4, 1.0)] {
            let mut keys = Vec::new();
            for threads in [1usize, 2, 8] {
                let faulty = FaultyLlm::new(
                    SimLlm::new(world.clone(), ModelProfile::gpt35_sim()),
                    plan.clone(),
                );
                let res = run(
                    &PseudoGraphPipeline::full(),
                    &faulty,
                    Some(&src),
                    None,
                    &emb,
                    &cfg,
                    &ds,
                    threads,
                )
                .unwrap();
                keys.push(res.identity_key());
            }
            assert_eq!(keys[0], keys[1], "1 vs 2 threads");
            assert_eq!(keys[0], keys[2], "1 vs 8 threads");
        }
    }

    #[test]
    fn zero_threads_resolves_through_the_config_knob() {
        let (world, llm, src) = setup();
        let emb = Embedder::default();
        let ds = simpleq::generate(&world, 8, 13);
        let cfg = PipelineConfig {
            runner_threads: 2,
            ..PipelineConfig::default()
        };
        // threads=0 defers to the config; an explicit argument wins.
        let via_cfg = run(&Io, &llm, Some(&src), None, &emb, &cfg, &ds, 0).unwrap();
        let explicit = run(&Io, &llm, Some(&src), None, &emb, &cfg, &ds, 5).unwrap();
        assert_eq!(via_cfg.identity_key(), explicit.identity_key());
    }

    #[test]
    fn stage_totals_cover_the_whole_pipeline_plus_eval() {
        let (world, llm, src) = setup();
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let ds = simpleq::generate(&world, 6, 17);
        let res = run(
            &PseudoGraphPipeline::full(),
            &llm,
            Some(&src),
            None,
            &emb,
            &cfg,
            &ds,
            3,
        )
        .unwrap();
        let totals = res.stage_totals();
        let names: Vec<&str> = totals.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["pseudo", "ground", "verify", "answer", "eval"]);
        for (name, agg) in &totals {
            assert_eq!(agg.questions, 6, "{name} entered by every question");
            assert!(agg.virtual_ms > 0, "{name} charged");
            assert_eq!(agg.wall_ns, 0, "{name}: no clock installed in tests");
        }
        // Baselines carry only the runner's eval stage.
        let io = run(&Io, &llm, Some(&src), None, &emb, &cfg, &ds, 3).unwrap();
        let names: Vec<String> = io.stage_totals().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["eval"]);
    }

    #[test]
    fn virtual_makespan_scales_and_bounds_sanely() {
        let (world, llm, src) = setup();
        let emb = Embedder::default();
        let cfg = PipelineConfig::default();
        let ds = simpleq::generate(&world, 16, 19);
        let res = run(
            &PseudoGraphPipeline::full(),
            &llm,
            Some(&src),
            None,
            &emb,
            &cfg,
            &ds,
            4,
        )
        .unwrap();
        let total: u64 = res.records.iter().map(|r| r.virtual_ms()).sum();
        let longest = res
            .records
            .iter()
            .map(|r| r.virtual_ms())
            .max()
            .unwrap_or(0);
        let m1 = res.virtual_makespan_ms(1);
        assert_eq!(m1, total, "one worker serializes everything");
        let mut prev = m1;
        for t in [2usize, 4, 8, 16] {
            let m = res.virtual_makespan_ms(t);
            assert!(m <= prev, "makespan is monotone in workers: {t}");
            assert!(m >= longest, "never beats the critical path: {t}");
            assert!(
                m >= total / t as u64,
                "never beats perfect speedup: {m} < {total}/{t}"
            );
            prev = m;
        }
        // Homogeneous-ish service times: 8 workers must beat 4× over
        // one worker on 16 questions.
        assert!(
            res.virtual_makespan_ms(8) * 4 <= total,
            "8 workers under-deliver: {} vs {total}",
            res.virtual_makespan_ms(8)
        );
    }
}
