//! The [`Method`] abstraction: every baseline and the paper's pipeline
//! implement the same interface, so the runner and the bench harness can
//! sweep (model × method × dataset × KG source) uniformly.

use crate::config::PipelineConfig;
use crate::retrieval::BaseIndex;
use kgstore::{KgSource, StrTriple};
use semvec::Embedder;
use serde::{Deserialize, Serialize};
use simllm::LanguageModel;
use worldgen::Question;

/// Everything a method may use to answer questions. KG-free baselines
/// simply ignore `source`.
pub struct QaContext<'a> {
    /// The language model.
    pub llm: &'a dyn LanguageModel,
    /// The KG source (None for KG-free baselines).
    pub source: Option<&'a KgSource>,
    /// Pre-built dataset-level semantic index over the source (None →
    /// KG methods fall back to question-scoped extraction).
    pub base: Option<&'a BaseIndex>,
    /// The semantic encoder.
    pub embedder: &'a Embedder,
    /// Pipeline knobs.
    pub cfg: &'a PipelineConfig,
}

/// A base index that is either the context's shared dataset-level build
/// or a question-scoped build owned by the caller. Dereferences to
/// [`BaseIndex`] either way.
pub enum BaseRef<'a> {
    /// The prebuilt dataset-level index from the context.
    Shared(&'a BaseIndex),
    /// A question-scoped index built on demand (boxed: a [`BaseIndex`]
    /// is hundreds of bytes of inline state, and the enum is passed
    /// around by value).
    Owned(Box<BaseIndex>),
}

impl std::ops::Deref for BaseRef<'_> {
    type Target = BaseIndex;

    fn deref(&self) -> &BaseIndex {
        match self {
            BaseRef::Shared(b) => b,
            BaseRef::Owned(b) => b,
        }
    }
}

impl<'a> QaContext<'a> {
    /// The single build path every KG method routes through: the shared
    /// dataset-level index when one was prebuilt, else one
    /// question-scoped build (never two for the same answer).
    pub fn base_for(&self, question: &str) -> BaseRef<'a> {
        match self.base {
            Some(b) => BaseRef::Shared(b),
            None => BaseRef::Owned(Box::new(BaseIndex::for_question(
                self.source.expect("KG method needs a source"),
                self.embedder,
                self.cfg,
                question,
            ))),
        }
    }
}

/// Per-question trace of what the pipeline did — the raw material of
/// the §4.6 error analysis and the Figure-1 walk-through.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Raw LLM output of the pseudo-graph step, if run.
    pub pseudo_raw: Option<String>,
    /// Decoded pseudo-graph triples.
    pub pseudo_triples: Vec<StrTriple>,
    /// Cypher failure of the *raw* (pre-repair) script, if any
    /// (`"spurious-match"`, `"parse"`, …). Kept even when repair later
    /// salvages the script, so §4.6.1 error counts match the paper.
    pub cypher_error: Option<String>,
    /// `cylint` diagnostics for the raw pseudo-graph script.
    #[serde(default)]
    pub diagnostics: Vec<cypher::Diagnostic>,
    /// Human-readable log of fixes the repair pass applied.
    #[serde(default)]
    pub repairs: Vec<String>,
    /// True when the raw script failed (`cypher_error` set) but the
    /// repaired script executed — i.e. repair rescued this question.
    #[serde(default)]
    pub salvaged: bool,
    /// Ground-graph entity labels with scores after pruning.
    pub ground_entities: Vec<(String, f32)>,
    /// Number of ground-graph triples shown to the verifier.
    pub ground_triples: usize,
    /// The fixed graph `G_f` after verification.
    pub fixed_triples: Vec<StrTriple>,
    /// `G_base` size (retrieval diagnostics).
    pub base_triples: usize,
    /// Transport telemetry of every stage-level LLM call: attempts,
    /// faults seen, virtual backoff, breaker fast-fails.
    #[serde(default)]
    pub llm_calls: Vec<crate::resilience::StageCall>,
    /// Degradation paths taken when a stage's attempts were exhausted
    /// (`"pseudo:empty-graph"`, `"verify:unverified"`,
    /// `"answer:graph-objects"`, …). Empty on a clean run.
    #[serde(default)]
    pub degradation: Vec<String>,
    /// Per-stage timing breakdown in pipeline order (pseudo / ground /
    /// verify / answer from the pipeline, eval appended by the
    /// runner). Virtual halves are deterministic; wall halves are
    /// telemetry only and zero unless a bench installed the clock.
    #[serde(default)]
    pub stages: Vec<StageTiming>,
}

/// Wall + virtual timing of one pipeline stage of one question.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage slug: `"pseudo"`, `"ground"`, `"verify"`, `"answer"`, or
    /// `"eval"`.
    pub stage: String,
    /// Virtual milliseconds priced on the serve cost model (stage
    /// overhead + per-attempt and per-query charges + retry backoff).
    /// Deterministic: identical across thread counts and machines.
    pub virtual_ms: u64,
    /// Wall nanoseconds via [`crate::timing::wall_ns`] — `0` whenever
    /// no clock is installed (all unit tests), and excluded from every
    /// identity digest because it is schedule-dependent.
    pub wall_ns: u64,
}

impl Trace {
    /// Total transport attempts across all LLM calls of this question.
    pub fn total_attempts(&self) -> u32 {
        self.llm_calls.iter().map(|c| c.attempts).sum()
    }

    /// Total faults observed across all LLM calls of this question.
    pub fn total_faults(&self) -> usize {
        self.llm_calls.iter().map(|c| c.faults.len()).sum()
    }
}

/// A method's final output for one question.
#[derive(Debug, Clone, Default)]
pub struct MethodOutput {
    /// The answer text handed to the scorer.
    pub answer: String,
    /// Stage trace (empty for baselines that have no stages).
    pub trace: Trace,
}

/// A QA method.
pub trait Method: Send + Sync {
    /// Stable name used in report tables ("IO", "CoT", "Ours", …).
    fn name(&self) -> &'static str;
    /// Answer one question.
    fn answer(&self, ctx: &QaContext<'_>, q: &Question) -> MethodOutput;
    /// Whether the method needs a KG source.
    fn needs_kg(&self) -> bool {
        false
    }
}

/// Capability flags reproduced from the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capabilities {
    /// Requires no training / fine-tuning.
    pub no_training: bool,
    /// Requires no explicit entity linking.
    pub no_linking: bool,
    /// Uses external knowledge.
    pub knowledge_enhanced: bool,
    /// Generalises across KG sources.
    pub multi_graph: bool,
    /// Robust to upstream step errors.
    pub robustness: bool,
    /// Can enhance open-ended QA.
    pub open_ended_qa: bool,
}

/// Table-1 capability rows for the methods in this reproduction.
pub fn capability_row(method: &str) -> Option<Capabilities> {
    let c = |a, b, c, d, e, f| Capabilities {
        no_training: a,
        no_linking: b,
        knowledge_enhanced: c,
        multi_graph: d,
        robustness: e,
        open_ended_qa: f,
    };
    match method {
        "CoT" => Some(c(true, true, false, false, false, true)),
        "RAG" | "QSM" => Some(c(true, true, true, false, true, false)),
        "SQL-PALM" => Some(c(false, true, true, false, false, false)),
        "ToG" => Some(c(true, false, true, true, false, false)),
        "KGR" => Some(c(true, false, true, false, true, false)),
        "Ours" => Some(c(true, true, true, true, true, true)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_match_paper() {
        let ours = capability_row("Ours").unwrap();
        assert!(ours.no_training && ours.no_linking && ours.knowledge_enhanced);
        assert!(ours.multi_graph && ours.robustness && ours.open_ended_qa);
        let tog = capability_row("ToG").unwrap();
        assert!(!tog.no_linking && tog.multi_graph && !tog.open_ended_qa);
        assert!(capability_row("Unknown").is_none());
    }

    #[test]
    fn trace_default_is_empty() {
        let t = Trace::default();
        assert!(t.pseudo_triples.is_empty());
        assert!(t.cypher_error.is_none());
    }
}
