//! Property-based tests of the retrieval layer: parallel index builds
//! must be byte-identical to the serial reference for any question
//! subset and thread count, and the pruned search must agree with the
//! exact scan through the public `search` API — plus the determinism
//! contracts of both execution layers: serving outcomes byte-identical
//! for any worker count, and evaluation-runner results byte-identical
//! for any thread count, under any fault weather. The adaptive pruning
//! gate rides the same harness: for any gate setting it may only
//! change *how* a query is scanned, never what it returns.

use pgg_core::{
    paper, serve, BaseIndex, Disposition, OfferedTrace, PipelineConfig, PseudoGraphPipeline,
    QuerySlot, RetrievalMode, RunResult, ScoringMode, ServeConfig,
};
use proptest::prelude::*;
use semvec::{Embedder, QueryStyle};
use simllm::{FaultPlan, FaultyLlm, ModelProfile, SimLlm};
use std::sync::{Arc, OnceLock};
use worldgen::{datasets, derive, generate, SourceConfig, World, WorldConfig};

struct Fixture {
    source: kgstore::KgSource,
    questions: Vec<String>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let world: World = generate(&WorldConfig {
            seed: paper::WORLD_SEED,
            ..Default::default()
        });
        let source = derive(&world, &SourceConfig::wikidata());
        let questions = datasets::qald::generate(&world, 40, paper::QALD_SEED)
            .questions
            .into_iter()
            .map(|q| q.text)
            .collect();
        Fixture { source, questions }
    })
}

proptest! {
    /// `for_questions` builds the same index — same verbalised triples,
    /// subjects, and embedding bytes — no matter how many encoder
    /// threads are used or how the question subset is shaped (overlaps
    /// and duplicates included).
    #[test]
    fn parallel_for_questions_is_byte_identical_to_serial(
        picks in proptest::collection::vec(0usize..40, 1..12),
        threads in 2usize..8,
    ) {
        let fix = fixture();
        let embedder = Embedder::paper();
        let cfg = PipelineConfig::default();
        let qs: Vec<&str> = picks.iter().map(|&i| fix.questions[i].as_str()).collect();
        let serial =
            BaseIndex::for_questions_with_threads(&fix.source, &embedder, &cfg, qs.iter().copied(), 1);
        let parallel =
            BaseIndex::for_questions_with_threads(&fix.source, &embedder, &cfg, qs.iter().copied(), threads);
        prop_assert_eq!(&serial.verbalised, &parallel.verbalised);
        prop_assert_eq!(&serial.subjects, &parallel.subjects);
        prop_assert_eq!(serial.len(), parallel.len());
        for id in 0..serial.len() {
            prop_assert_eq!(serial.vector(id), parallel.vector(id));
        }
    }

    /// Through the public `search` API, pruned retrieval returns hits
    /// bit-identical to the exact scan for any question, k, and salt.
    #[test]
    fn pruned_search_equals_exact_search(
        qi in 0usize..40,
        k in 1usize..20,
        salt in any::<u64>(),
        sigma in 0.0f32..0.6,
    ) {
        let fix = fixture();
        let embedder = Embedder::paper();
        let cfg = PipelineConfig::default();
        let text = fix.questions[qi].as_str();
        let base = BaseIndex::for_question(&fix.source, &embedder, &cfg, text);
        let pruned = base.search(&embedder, text, QueryStyle::Folded, k, sigma, salt, RetrievalMode::Pruned, ScoringMode::ExactF32);
        let exact = base.search(&embedder, text, QueryStyle::Folded, k, sigma, salt, RetrievalMode::Exact, ScoringMode::ExactF32);
        prop_assert_eq!(pruned, exact);
    }

    /// The quantized screen+rerank engine returns hits bit-identical to
    /// the pure-f32 scan through the public `search` API, in both
    /// retrieval modes, at the pipeline's default jitter (sigma = 0.30)
    /// and with noise off (sigma = 0).
    #[test]
    fn quantized_scoring_equals_exact_f32_search(
        qi in 0usize..40,
        k in 1usize..20,
        salt in any::<u64>(),
        noisy in any::<bool>(),
        mode_pruned in any::<bool>(),
    ) {
        let fix = fixture();
        let embedder = Embedder::paper();
        let cfg = PipelineConfig::default();
        let sigma = if noisy { 0.30 } else { 0.0 };
        let mode = if mode_pruned { RetrievalMode::Pruned } else { RetrievalMode::Exact };
        let text = fix.questions[qi].as_str();
        let base = BaseIndex::for_question(&fix.source, &embedder, &cfg, text);
        let quant = base.search(&embedder, text, QueryStyle::Folded, k, sigma, salt, mode, ScoringMode::QuantizedScreen);
        let exact = base.search(&embedder, text, QueryStyle::Folded, k, sigma, salt, mode, ScoringMode::ExactF32);
        prop_assert_eq!(quant, exact);
        let stats = base.scoring_stats();
        prop_assert!(stats.reranked <= stats.screened);
    }

    /// `search_batch` returns, slot for slot, the hits `search` returns
    /// — for arbitrary batch widths (empty and singleton included),
    /// duplicate slots, and the full retrieval × scoring cross product.
    #[test]
    fn batched_search_equals_sequential_search(
        picks in proptest::collection::vec(0usize..40, 0..8),
        dup in any::<bool>(),
        k in 1usize..20,
        sigma in 0.0f32..0.6,
        mode_pruned in any::<bool>(),
        quantized in any::<bool>(),
    ) {
        let fix = fixture();
        let embedder = Embedder::paper();
        let cfg = PipelineConfig::default();
        let mode = if mode_pruned { RetrievalMode::Pruned } else { RetrievalMode::Exact };
        let scoring = if quantized { ScoringMode::QuantizedScreen } else { ScoringMode::ExactF32 };
        let base = BaseIndex::for_questions(
            &fix.source,
            &embedder,
            &cfg,
            fix.questions.iter().take(10).map(|s| s.as_str()),
        );
        let mut texts: Vec<&str> = picks.iter().map(|&i| fix.questions[i].as_str()).collect();
        if dup && !texts.is_empty() {
            texts.push(texts[0]);
        }
        let slots: Vec<QuerySlot<'_>> = texts
            .iter()
            .map(|t| QuerySlot {
                text: t,
                style: QueryStyle::Folded,
                salt: kgstore::hash::stable_str_hash(t),
            })
            .collect();
        let batched = base.search_batch(&embedder, &slots, k, sigma, mode, scoring);
        prop_assert_eq!(batched.len(), slots.len());
        for (got, s) in batched.iter().zip(&slots) {
            let seq = base.search(&embedder, s.text, s.style, k, sigma, s.salt, mode, scoring);
            prop_assert_eq!(got, &seq);
        }
    }
}

/// Deterministic counterpart of the proptest above, so the identity is
/// exercised even where the `proptest` dependency is stubbed out: a
/// seeded sweep over questions, k, salts, and both sigmas, asserting
/// the quantized engine against the f32 reference in both modes.
#[test]
fn quantized_scoring_matches_exact_f32_on_seeded_sweep() {
    let fix = fixture();
    let embedder = Embedder::paper();
    let cfg = PipelineConfig::default();
    for (qi, k, salt) in [
        (0usize, 1usize, 0u64),
        (3, 5, 0x9E3779B97F4A7C15),
        (11, 10, 42),
        (17, 19, u64::MAX),
        (29, 12, 0xC0FFEE),
        (39, 7, 7),
    ] {
        let text = fix.questions[qi].as_str();
        let base = BaseIndex::for_question(&fix.source, &embedder, &cfg, text);
        for sigma in [0.0f32, 0.30] {
            for mode in [RetrievalMode::Exact, RetrievalMode::Pruned] {
                let quant = base.search(
                    &embedder,
                    text,
                    QueryStyle::Folded,
                    k,
                    sigma,
                    salt,
                    mode,
                    ScoringMode::QuantizedScreen,
                );
                let exact = base.search(
                    &embedder,
                    text,
                    QueryStyle::Folded,
                    k,
                    sigma,
                    salt,
                    mode,
                    ScoringMode::ExactF32,
                );
                assert_eq!(
                    quant, exact,
                    "quantized vs exact diverged: qi={qi} k={k} salt={salt} sigma={sigma} mode={mode:?}"
                );
            }
        }
        let stats = base.scoring_stats();
        assert!(stats.reranked <= stats.screened);
        assert!(stats.screened > 0, "quantized path never engaged");
    }
}

/// Seeded counterpart of `batched_search_equals_sequential_search`:
/// batch widths 0, 1, and wider-than-tile (with a duplicate slot) swept
/// over the full retrieval × scoring cross product.
#[test]
fn batched_search_matches_sequential_on_seeded_sweep() {
    let fix = fixture();
    let embedder = Embedder::paper();
    let cfg = PipelineConfig::default();
    let base = BaseIndex::for_questions(
        &fix.source,
        &embedder,
        &cfg,
        fix.questions.iter().take(12).map(|s| s.as_str()),
    );
    for (width, k, sigma) in [
        (0usize, 5usize, 0.30f32),
        (1, 1, 0.0),
        (3, 10, 0.30),
        (6, 19, 0.30),
        (9, 7, 0.0),
    ] {
        let mut texts: Vec<&str> = (0..width)
            .map(|i| fix.questions[(i * 7 + 3) % 40].as_str())
            .collect();
        if width >= 2 {
            texts[width - 1] = texts[0];
        }
        let slots: Vec<QuerySlot<'_>> = texts
            .iter()
            .map(|t| QuerySlot {
                text: t,
                style: QueryStyle::Folded,
                salt: kgstore::hash::stable_str_hash(t),
            })
            .collect();
        for mode in [RetrievalMode::Pruned, RetrievalMode::Exact] {
            for scoring in [ScoringMode::QuantizedScreen, ScoringMode::ExactF32] {
                let batched = base.search_batch(&embedder, &slots, k, sigma, mode, scoring);
                assert_eq!(batched.len(), slots.len());
                for (got, s) in batched.iter().zip(&slots) {
                    let seq =
                        base.search(&embedder, s.text, s.style, k, sigma, s.salt, mode, scoring);
                    assert_eq!(
                        got, &seq,
                        "batched vs sequential diverged: width={width} k={k} sigma={sigma} mode={mode:?} scoring={scoring:?}"
                    );
                }
                if width >= 2 {
                    assert_eq!(batched[0], batched[width - 1], "duplicate slots must agree");
                }
            }
        }
    }
    let stats = base.scoring_stats();
    assert!(stats.batches >= 20, "batch entry engaged: {stats:?}");
    assert!(
        stats.batch_deduped > 0,
        "duplicate slots collapsed: {stats:?}"
    );
}

struct ServeFixture {
    world: Arc<World>,
    source: kgstore::KgSource,
    base: BaseIndex,
    questions: Vec<worldgen::Question>,
    embedder: Embedder,
    cfg: PipelineConfig,
}

fn serve_fixture() -> &'static ServeFixture {
    static FIX: OnceLock<ServeFixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let world = Arc::new(generate(&WorldConfig {
            scale: 0.3,
            ..Default::default()
        }));
        let source = derive(&world, &SourceConfig::wikidata());
        let ds = datasets::simpleq::generate(&world, 12, 77);
        let embedder = Embedder::default();
        let cfg = PipelineConfig::default();
        let base = BaseIndex::for_questions(
            &source,
            &embedder,
            &cfg,
            ds.questions.iter().map(|q| q.text.as_str()),
        );
        ServeFixture {
            world,
            source,
            base,
            questions: ds.questions,
            embedder,
            cfg,
        }
    })
}

/// One [`serve`] run over a seeded Poisson trace with a fresh fault
/// decorator (its attempt counters are state that must not leak
/// between runs).
fn serve_once(
    fix: &ServeFixture,
    seed: u64,
    rate: f64,
    load_qps: f64,
    workers: usize,
) -> pgg_core::ServeReport {
    let offered = OfferedTrace::poisson(seed, load_qps, 16, fix.questions.len());
    let llm = SimLlm::new(fix.world.clone(), ModelProfile::gpt35_sim());
    let faulty = FaultyLlm::new(llm, FaultPlan::uniform(seed ^ 0xFA57, rate));
    let scfg = ServeConfig {
        workers,
        ..ServeConfig::default()
    };
    serve(
        &faulty,
        &fix.source,
        &fix.base,
        &fix.embedder,
        &fix.cfg,
        &scfg,
        &fix.questions,
        &offered,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The serving determinism contract: same seed + same offered
    /// trace ⇒ byte-identical per-question outcomes and breaker log
    /// for 1, 2, and 8 worker threads — under any fault weather — and
    /// every answered outcome carries a non-empty answer.
    #[test]
    fn serve_outcomes_are_identical_across_worker_counts(
        seed in any::<u64>(),
        rate in 0.0f64..0.5,
        load_qps in 2.0f64..12.0,
    ) {
        let fix = serve_fixture();
        let r1 = serve_once(fix, seed, rate, load_qps, 1);
        let r2 = serve_once(fix, seed, rate, load_qps, 2);
        let r8 = serve_once(fix, seed, rate, load_qps, 8);
        prop_assert_eq!(&r1.outcomes, &r2.outcomes);
        prop_assert_eq!(&r1.outcomes, &r8.outcomes);
        prop_assert_eq!(&r1.breaker_transitions, &r2.breaker_transitions);
        prop_assert_eq!(&r1.breaker_transitions, &r8.breaker_transitions);
        prop_assert_eq!(r1.identity_key(), r8.identity_key());
        for o in &r1.outcomes {
            if let Disposition::Answered { answer, degradation, .. } = &o.disposition {
                prop_assert!(!answer.is_empty(), "degraded, never missing");
                prop_assert!(
                    degradation.iter().all(|d| !d.starts_with("panic:")),
                    "no worker panics: {:?}",
                    degradation
                );
            }
        }
    }
}

struct RunnerFixture {
    world: Arc<World>,
    source: kgstore::KgSource,
    base: BaseIndex,
    dataset: worldgen::Dataset,
    embedder: Embedder,
    cfg: PipelineConfig,
}

fn runner_fixture() -> &'static RunnerFixture {
    static FIX: OnceLock<RunnerFixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let world = Arc::new(generate(&WorldConfig {
            scale: 0.3,
            ..Default::default()
        }));
        let source = derive(&world, &SourceConfig::wikidata());
        let dataset = datasets::simpleq::generate(&world, 8, 77);
        let embedder = Embedder::default();
        let cfg = PipelineConfig::default();
        let base = BaseIndex::for_questions(
            &source,
            &embedder,
            &cfg,
            dataset.questions.iter().map(|q| q.text.as_str()),
        );
        RunnerFixture {
            world,
            source,
            base,
            dataset,
            embedder,
            cfg,
        }
    })
}

/// One evaluation-runner pass over the fixture dataset with a fresh
/// fault decorator (its per-slot attempt counters are state that must
/// not leak between runs or thread counts).
fn run_once(fix: &RunnerFixture, plan: FaultPlan, threads: usize) -> RunResult {
    let llm = SimLlm::new(fix.world.clone(), ModelProfile::gpt35_sim());
    let faulty = FaultyLlm::new(llm, plan);
    pgg_core::run(
        &PseudoGraphPipeline::full(),
        &faulty,
        Some(&fix.source),
        Some(&fix.base),
        &fix.embedder,
        &fix.cfg,
        &fix.dataset,
        threads,
    )
    .expect("runner fixture is well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The evaluation runner's determinism contract: the same fault
    /// plan produces a byte-identical result — answers, scores, fault
    /// ledgers, stage timings — at 1, 2, and 8 worker threads, under
    /// uniform fault weather and storms alike.
    #[test]
    fn runner_results_are_identical_across_thread_counts(
        seed in any::<u64>(),
        rate in 0.0f64..0.5,
        storm in any::<bool>(),
    ) {
        let fix = runner_fixture();
        let plan = if storm {
            FaultPlan::storm(seed, rate, 1.0)
        } else {
            FaultPlan::uniform(seed, rate)
        };
        let r1 = run_once(fix, plan.clone(), 1);
        let r2 = run_once(fix, plan.clone(), 2);
        let r8 = run_once(fix, plan, 8);
        prop_assert_eq!(r1.identity_key(), r2.identity_key());
        prop_assert_eq!(r1.identity_key(), r8.identity_key());
        let a1: Vec<&str> = r1.records.iter().map(|r| r.answer.as_str()).collect();
        let a8: Vec<&str> = r8.records.iter().map(|r| r.answer.as_str()).collect();
        prop_assert_eq!(a1, a8);
        prop_assert_eq!(r1.faults.faults, r8.faults.faults);
        prop_assert_eq!(r1.errors, r8.errors);
    }

    /// For any gate setting, the adaptive pruning gate may only choose
    /// *how* a query is scanned (pruned candidates vs exact fallback),
    /// never what it returns: pruned mode stays bit-identical to the
    /// exact scan, and every pruned search is decided exactly once.
    #[test]
    fn adaptive_gate_never_changes_hits(
        qi in 0usize..40,
        k in 1usize..20,
        salt in any::<u64>(),
        gate in 0.0f32..1.5,
        quantized in any::<bool>(),
    ) {
        let fix = fixture();
        let embedder = Embedder::paper();
        let cfg = PipelineConfig::default();
        let text = fix.questions[qi].as_str();
        let base =
            BaseIndex::for_question(&fix.source, &embedder, &cfg, text).with_prune_gate(gate);
        let scoring = if quantized { ScoringMode::QuantizedScreen } else { ScoringMode::ExactF32 };
        let pruned = base.search(
            &embedder, text, QueryStyle::Folded, k, 0.30, salt, RetrievalMode::Pruned, scoring,
        );
        let exact = base.search(
            &embedder, text, QueryStyle::Folded, k, 0.30, salt, RetrievalMode::Exact, scoring,
        );
        prop_assert_eq!(pruned, exact);
        let stats = base.scoring_stats();
        prop_assert_eq!(stats.gate_fallbacks + stats.pruned_queries, 1);
    }
}

/// Deterministic counterpart of the thread-count proptest, so the
/// runner identity is exercised even where the `proptest` dependency
/// is stubbed out: a uniform fault rate and a hard storm, each run
/// with 1, 2, and 8 threads.
#[test]
fn runner_thread_identity_on_seeded_fault_sweep() {
    let fix = runner_fixture();
    for (plan, tag) in [
        (FaultPlan::uniform(41, 0.35), "uniform(0.35)"),
        (FaultPlan::storm(41, 0.4, 1.0), "storm(0.4@1.0)"),
    ] {
        let r1 = run_once(fix, plan.clone(), 1);
        let r2 = run_once(fix, plan.clone(), 2);
        let r8 = run_once(fix, plan, 8);
        assert_eq!(
            r1.identity_key(),
            r2.identity_key(),
            "{tag}: 1 vs 2 threads"
        );
        assert_eq!(
            r1.identity_key(),
            r8.identity_key(),
            "{tag}: 1 vs 8 threads"
        );
        let a1: Vec<&str> = r1.records.iter().map(|r| r.answer.as_str()).collect();
        let a8: Vec<&str> = r8.records.iter().map(|r| r.answer.as_str()).collect();
        assert_eq!(a1, a8, "{tag}: answers must match in question order");
        assert_eq!(r1.records.len(), 8, "every question accounted for");
        assert!(
            r1.records.iter().all(|r| !r.trace.stages.is_empty()),
            "{tag}: every record carries a stage breakdown"
        );
    }
}

/// Deterministic counterpart of the adaptive-gate proptest: a sweep of
/// gate settings from always-fallback (0.0) to always-admit (∞),
/// asserting bit-identical hits against the exact scan in both scoring
/// modes and the decide-exactly-once counter invariant. Both gates
/// (token and entity) sweep together: a foldable query whose mention
/// union overflows the entity cap hard-falls-back by design, so only
/// the joint always-admit point can promise zero fallbacks.
#[test]
fn adaptive_gate_identity_on_seeded_gate_sweep() {
    let fix = fixture();
    let embedder = Embedder::paper();
    let cfg = PipelineConfig::default();
    for gate in [0.0f32, 0.01, 0.05, 0.2, 1.0, f32::INFINITY] {
        let base = BaseIndex::for_questions(
            &fix.source,
            &embedder,
            &cfg,
            fix.questions.iter().take(6).map(|s| s.as_str()),
        )
        .with_prune_gate(gate)
        .with_entity_gate(gate);
        let mut pruned_searches = 0u64;
        for (qi, k, salt) in [(0usize, 5usize, 7u64), (9, 10, 42), (23, 1, u64::MAX)] {
            let text = fix.questions[qi].as_str();
            for scoring in [ScoringMode::ExactF32, ScoringMode::QuantizedScreen] {
                let pruned = base.search(
                    &embedder,
                    text,
                    QueryStyle::Folded,
                    k,
                    0.30,
                    salt,
                    RetrievalMode::Pruned,
                    scoring,
                );
                let exact = base.search(
                    &embedder,
                    text,
                    QueryStyle::Folded,
                    k,
                    0.30,
                    salt,
                    RetrievalMode::Exact,
                    scoring,
                );
                assert_eq!(
                    pruned, exact,
                    "gate={gate} qi={qi} k={k} scoring={scoring:?}: hits diverged"
                );
                pruned_searches += 1;
            }
        }
        let stats = base.scoring_stats();
        assert_eq!(
            stats.gate_fallbacks + stats.pruned_queries,
            pruned_searches,
            "gate={gate}: every pruned search decided exactly once ({stats:?})"
        );
        if gate == 0.0 {
            assert_eq!(stats.pruned_queries, 0, "zero gate admits nothing");
        }
        if gate.is_infinite() {
            assert_eq!(stats.gate_fallbacks, 0, "infinite gate refuses nothing");
        }
    }
}

/// Deterministic counterpart of the worker-count proptest, so the
/// serving identity is exercised even where the `proptest` dependency
/// is stubbed out: calm, faulted, and overloaded points, each run with
/// 1, 2, and 8 workers.
#[test]
fn serve_worker_count_identity_on_seeded_sweep() {
    let fix = serve_fixture();
    for (seed, rate, load_qps) in [(0xA11CEu64, 0.0, 3.0), (7, 0.35, 8.0), (0xBEEF, 0.5, 12.0)] {
        let r1 = serve_once(fix, seed, rate, load_qps, 1);
        let r2 = serve_once(fix, seed, rate, load_qps, 2);
        let r8 = serve_once(fix, seed, rate, load_qps, 8);
        assert_eq!(
            r1.outcomes, r2.outcomes,
            "1 vs 2 workers diverged: seed={seed} rate={rate} load={load_qps}"
        );
        assert_eq!(
            r1.outcomes, r8.outcomes,
            "1 vs 8 workers diverged: seed={seed} rate={rate} load={load_qps}"
        );
        assert_eq!(r1.breaker_transitions, r8.breaker_transitions);
        assert_eq!(r1.identity_key(), r8.identity_key());
        assert_eq!(r1.outcomes.len(), 16, "every offered arrival accounted for");
    }
}
