//! Property-based tests of the storage substrate: index consistency,
//! interning, and property-graph decoding under arbitrary inputs.

use kgstore::{AtomTable, Node, PropertyGraph, TripleStore, Value};
use proptest::prelude::*;

fn small_word() -> impl Strategy<Value = String> {
    "[a-z]{1,6}"
}

proptest! {
    /// Every interned string resolves back to itself, and interning is
    /// idempotent regardless of insertion order.
    #[test]
    fn atom_roundtrip(words in proptest::collection::vec(small_word(), 1..40)) {
        let mut t = AtomTable::new();
        let atoms: Vec<_> = words.iter().map(|w| t.intern(w)).collect();
        for (w, a) in words.iter().zip(&atoms) {
            prop_assert_eq!(t.resolve(*a), w.as_str());
            prop_assert_eq!(t.intern(w), *a);
        }
        // Distinct strings get distinct atoms.
        let unique: std::collections::HashSet<&String> = words.iter().collect();
        let distinct_atoms: std::collections::HashSet<_> = atoms.iter().collect();
        prop_assert_eq!(unique.len(), distinct_atoms.len());
    }

    /// All three posting-list indexes agree with a brute-force scan for
    /// any sequence of insertions (including duplicates).
    #[test]
    fn store_indexes_agree_with_scan(
        triples in proptest::collection::vec(
            (small_word(), small_word(), small_word()),
            1..60,
        )
    ) {
        let mut st = TripleStore::new();
        for (s, p, o) in &triples {
            st.insert_str(s, p, o);
        }
        // Dedup invariant.
        let unique: std::collections::HashSet<_> = triples.iter().collect();
        prop_assert_eq!(st.len(), unique.len());

        let all: Vec<_> = st.iter().collect();
        for &subject in &st.subjects() {
            let via_index: Vec<_> = st.by_subject(subject).collect();
            let via_scan: Vec<_> = all.iter().copied().filter(|t| t.s == subject).collect();
            prop_assert_eq!(via_index, via_scan);
        }
        for &pred in &st.predicates() {
            prop_assert_eq!(
                st.by_predicate(pred).count(),
                all.iter().filter(|t| t.p == pred).count()
            );
        }
    }

    /// `mentioning` returns each matching triple exactly once.
    #[test]
    fn mentioning_has_no_duplicates(
        triples in proptest::collection::vec(
            ("[ab]{1,2}", "[rq]{1}", "[ab]{1,2}"),
            1..30,
        )
    ) {
        let mut st = TripleStore::new();
        for (s, p, o) in &triples {
            st.insert_str(s, p, o);
        }
        for (atom, _) in st.atoms().iter().map(|(a, s)| (a, s.to_string())).collect::<Vec<_>>() {
            let got: Vec<_> = st.mentioning(atom).collect();
            let set: std::collections::HashSet<_> = got.iter().collect();
            prop_assert_eq!(set.len(), got.len(), "duplicate in mentioning()");
            for t in got {
                prop_assert!(t.s == atom || t.o == atom);
            }
        }
    }

    /// Property-graph decode yields one triple per relationship plus one
    /// per non-name node property.
    #[test]
    fn propgraph_decode_counts(
        names in proptest::collection::vec(small_word(), 2..10),
        extra_props in 0usize..3,
        rels in proptest::collection::vec((0usize..9, 0usize..9), 0..12),
    ) {
        let mut g = PropertyGraph::new();
        let ids: Vec<_> = names
            .iter()
            .map(|n| {
                let mut node = Node::default();
                node.props.insert("name".into(), Value::Str(n.clone()));
                for k in 0..extra_props {
                    node.props.insert(format!("p{k}"), Value::Int(k as i64));
                }
                g.add_node(node)
            })
            .collect();
        let mut added = 0;
        for (a, b) in rels {
            if a < ids.len() && b < ids.len() {
                g.add_rel(kgstore::Relationship {
                    src: ids[a],
                    dst: ids[b],
                    rel_type: "R".into(),
                    props: Default::default(),
                });
                added += 1;
            }
        }
        let decoded = g.decode_triples();
        prop_assert_eq!(decoded.len(), names.len() * extra_props + added);
    }

    /// Serialization round-trips the store contents.
    #[test]
    fn store_serde_roundtrip(
        triples in proptest::collection::vec(
            (small_word(), small_word(), small_word()),
            1..20,
        )
    ) {
        let mut st = TripleStore::new();
        for (s, p, o) in &triples {
            st.insert_str(s, p, o);
        }
        let json = serde_json::to_string(&st).unwrap();
        let mut back: TripleStore = serde_json::from_str(&json).unwrap();
        back.rebuild_indexes();
        prop_assert_eq!(back.len(), st.len());
        for (s, p, o) in &triples {
            prop_assert!(back.contains_str(s, p, o));
        }
    }
}
