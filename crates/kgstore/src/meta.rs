//! Entity metadata: labels, aliases, descriptions, popularity.
//!
//! Real KGs attach human-readable labels and descriptions to opaque ids
//! (`Q2066882` → "Yellow River"). The paper's disambiguation step relies
//! on exactly this structure: several entities share the label "Yao Ming"
//! but differ in popularity (triple count) and description.

use crate::atom::Atom;
use crate::hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// Metadata attached to one entity.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EntityMeta {
    /// Canonical human-readable label ("Yao Ming").
    pub label: String,
    /// Alternative surface forms.
    pub aliases: Vec<String>,
    /// Short description ("Chinese basketball player (born 1980)").
    pub description: String,
    /// Relative popularity in `[0, 1]`; drives how often the entity is
    /// mentioned, how much of the KG covers it, and how LLM hallucination
    /// substitutes popular look-alikes.
    pub popularity: f64,
}

/// Registry mapping entities to metadata plus a label → entities inverted
/// index (one label may map to many entities — that is the ambiguity the
/// pruning step must resolve).
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct MetaRegistry {
    meta: FxHashMap<Atom, EntityMeta>,
    /// Redirect surfaces ("Shanghai Municipality" → Shanghai's atom).
    /// Deliberately separate from `by_label`: a redirect is an exact
    /// alternate name of one entity, not an ambiguous surface.
    #[serde(default, rename = "redirects")]
    redirect_map: FxHashMap<String, Atom>,
    #[serde(skip)]
    by_label: FxHashMap<String, Vec<Atom>>,
}

impl MetaRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach metadata to an entity, indexing its label and aliases
    /// (lowercased) for surface lookup.
    pub fn insert(&mut self, entity: Atom, meta: EntityMeta) {
        self.index_surface(&meta.label, entity);
        for alias in &meta.aliases {
            self.index_surface(alias, entity);
        }
        self.meta.insert(entity, meta);
    }

    fn index_surface(&mut self, surface: &str, entity: Atom) {
        let key = surface.to_lowercase();
        let v = self.by_label.entry(key).or_default();
        if !v.contains(&entity) {
            v.push(entity);
        }
    }

    /// Metadata for an entity, if registered.
    pub fn get(&self, entity: Atom) -> Option<&EntityMeta> {
        self.meta.get(&entity)
    }

    /// Popularity, defaulting to 0 for unregistered entities.
    pub fn popularity(&self, entity: Atom) -> f64 {
        self.meta.get(&entity).map_or(0.0, |m| m.popularity)
    }

    /// All entities whose label or alias equals `surface`
    /// (case-insensitive). Order is insertion order.
    pub fn entities_with_surface(&self, surface: &str) -> &[Atom] {
        self.by_label
            .get(&surface.to_lowercase())
            .map_or(&[], |v| v)
    }

    /// Register a redirect: an exact alternate surface (stored
    /// lowercased) resolving to one entity. Redirects stay out of the
    /// ambiguous label index — the last registration for a surface
    /// wins.
    pub fn add_redirect(&mut self, surface: &str, target: Atom) {
        self.redirect_map.insert(surface.to_lowercase(), target);
    }

    /// Resolve a redirect surface (case-insensitive).
    pub fn redirect(&self, surface: &str) -> Option<Atom> {
        self.redirect_map.get(&surface.to_lowercase()).copied()
    }

    /// Number of registered redirects.
    pub fn redirect_count(&self) -> usize {
        self.redirect_map.len()
    }

    /// All redirects in ascending surface order — the deterministic
    /// iteration order (the backing map is hash-ordered).
    pub fn redirects_sorted(&self) -> Vec<(&str, Atom)> {
        let mut v: Vec<(&str, Atom)> = self
            .redirect_map
            .iter()
            .map(|(s, a)| (s.as_str(), *a))
            .collect();
        v.sort_unstable();
        v
    }

    /// Number of registered entities.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether no entities are registered.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Iterate `(entity, meta)` pairs in ascending entity-id order.
    /// The backing map is hash-ordered; sorting here keeps every
    /// consumer off that non-contractual order.
    pub fn iter(&self) -> impl Iterator<Item = (Atom, &EntityMeta)> {
        let mut entries: Vec<(Atom, &EntityMeta)> =
            self.meta.iter().map(|(a, m)| (*a, m)).collect();
        entries.sort_unstable_by_key(|&(a, _)| a);
        entries.into_iter()
    }

    /// Rebuild the surface index after deserialization. Entities are
    /// indexed in ascending id order — the same order `insert` sees
    /// during construction (atoms are interned sequentially), so a
    /// serialize/deserialize round trip reproduces the index exactly.
    pub fn rebuild_index(&mut self) {
        self.by_label.clear();
        let mut entries: Vec<(Atom, String, Vec<String>)> = self
            .meta
            .iter()
            .map(|(a, m)| (*a, m.label.clone(), m.aliases.clone()))
            .collect();
        entries.sort_unstable_by_key(|e| e.0);
        for (a, label, aliases) in entries {
            self.index_surface(&label, a);
            for alias in &aliases {
                self.index_surface(alias, a);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(label: &str, pop: f64) -> EntityMeta {
        EntityMeta {
            label: label.to_string(),
            aliases: vec![],
            description: format!("{label} (test)"),
            popularity: pop,
        }
    }

    #[test]
    fn ambiguous_labels_collect_all_entities() {
        let mut r = MetaRegistry::new();
        r.insert(Atom(0), meta("Yao Ming", 0.9));
        r.insert(Atom(1), meta("Yao Ming", 0.1));
        let hits = r.entities_with_surface("yao ming");
        assert_eq!(hits, &[Atom(0), Atom(1)]);
    }

    #[test]
    fn surface_lookup_is_case_insensitive() {
        let mut r = MetaRegistry::new();
        r.insert(Atom(7), meta("Lake Superior", 0.5));
        assert_eq!(r.entities_with_surface("LAKE SUPERIOR"), &[Atom(7)]);
        assert!(r.entities_with_surface("lake inferior").is_empty());
    }

    #[test]
    fn aliases_are_indexed() {
        let mut r = MetaRegistry::new();
        r.insert(
            Atom(3),
            EntityMeta {
                label: "United States".into(),
                aliases: vec!["USA".into(), "US".into()],
                description: String::new(),
                popularity: 1.0,
            },
        );
        assert_eq!(r.entities_with_surface("usa"), &[Atom(3)]);
        assert_eq!(r.entities_with_surface("us"), &[Atom(3)]);
    }

    #[test]
    fn popularity_defaults_to_zero() {
        let r = MetaRegistry::new();
        assert_eq!(r.popularity(Atom(42)), 0.0);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut r = MetaRegistry::new();
        r.insert(Atom(1), meta("Nile", 0.8));
        let json = serde_json::to_string(&r).unwrap();
        let mut back: MetaRegistry = serde_json::from_str(&json).unwrap();
        assert!(back.entities_with_surface("nile").is_empty());
        back.rebuild_index();
        assert_eq!(back.entities_with_surface("nile"), &[Atom(1)]);
    }

    #[test]
    fn duplicate_insert_does_not_duplicate_index_entry() {
        let mut r = MetaRegistry::new();
        r.insert(Atom(1), meta("Nile", 0.8));
        r.insert(Atom(1), meta("Nile", 0.9));
        assert_eq!(r.entities_with_surface("nile"), &[Atom(1)]);
        assert_eq!(r.popularity(Atom(1)), 0.9);
    }

    #[test]
    fn redirects_resolve_without_joining_the_label_index() {
        let mut r = MetaRegistry::new();
        r.insert(Atom(0), meta("Shanghai", 0.8));
        r.add_redirect("Shanghai Municipality", Atom(0));
        assert_eq!(r.redirect("shanghai municipality"), Some(Atom(0)));
        assert_eq!(r.redirect("SHANGHAI MUNICIPALITY"), Some(Atom(0)));
        assert!(r.redirect("shanghai").is_none());
        assert!(r.entities_with_surface("Shanghai Municipality").is_empty());
        assert_eq!(r.redirect_count(), 1);
        assert_eq!(
            r.redirects_sorted(),
            vec![("shanghai municipality", Atom(0))]
        );
    }

    #[test]
    fn redirects_survive_serialization() {
        let mut r = MetaRegistry::new();
        r.insert(Atom(3), meta("Nile", 0.8));
        r.add_redirect("River Nile", Atom(3));
        // The offline sandbox stubs serde_json (always Err); the round
        // trip runs for real in CI.
        let Ok(json) = serde_json::to_string(&r) else {
            return;
        };
        let back: MetaRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back.redirect("river nile"), Some(Atom(3)));
        // Pre-redirect payloads (no field) still deserialize.
        let legacy: MetaRegistry = serde_json::from_str(r#"{"meta":{}}"#).unwrap();
        assert_eq!(legacy.redirect_count(), 0);
    }
}
