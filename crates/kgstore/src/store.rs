//! The triple store: deduplicated triples with S/P/O posting-list indexes.

use crate::atom::{Atom, AtomTable};
use crate::hash::{FxHashMap, FxHashSet};
use crate::triple::{StrTriple, Triple, TripleId};
use serde::{Deserialize, Serialize};

/// An append-only, deduplicated triple store.
///
/// Three posting-list indexes (by subject, predicate and object) provide
/// O(1) lookup of the candidate list plus O(answer) iteration, which is
/// the access pattern the pipeline needs: "all triples whose subject is
/// X", "all triples mentioning Y anywhere".
///
/// The store owns its [`AtomTable`]; all string-level APIs intern through
/// it so callers never juggle atoms from foreign tables.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct TripleStore {
    atoms: AtomTable,
    triples: Vec<Triple>,
    #[serde(skip)]
    dedup: FxHashSet<Triple>,
    #[serde(skip)]
    by_s: FxHashMap<Atom, Vec<TripleId>>,
    #[serde(skip)]
    by_p: FxHashMap<Atom, Vec<TripleId>>,
    #[serde(skip)]
    by_o: FxHashMap<Atom, Vec<TripleId>>,
}

impl TripleStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Access the interner.
    #[inline]
    pub fn atoms(&self) -> &AtomTable {
        &self.atoms
    }

    /// Intern a string in this store's table.
    pub fn intern(&mut self, s: &str) -> Atom {
        self.atoms.intern(s)
    }

    /// Resolve an atom of this store.
    #[inline]
    pub fn resolve(&self, a: Atom) -> &str {
        self.atoms.resolve(a)
    }

    /// Insert a triple given pre-interned atoms. Returns the id, and
    /// whether the triple was newly inserted (false = duplicate).
    pub fn insert(&mut self, s: Atom, p: Atom, o: Atom) -> (TripleId, bool) {
        let t = Triple::new(s, p, o);
        if self.dedup.contains(&t) {
            // Slow path: find the existing id. Duplicates are rare in the
            // generators, so a linear scan over the subject posting list
            // is fine and avoids a second full map.
            let id = self
                .by_s
                .get(&s)
                .and_then(|ids| {
                    ids.iter()
                        .copied()
                        .find(|&id| self.triples[id.index()] == t)
                })
                .expect("dedup set and index out of sync");
            return (id, false);
        }
        let id = TripleId(u32::try_from(self.triples.len()).expect("triple store overflow"));
        self.triples.push(t);
        self.dedup.insert(t);
        self.by_s.entry(s).or_default().push(id);
        self.by_p.entry(p).or_default().push(id);
        self.by_o.entry(o).or_default().push(id);
        (id, true)
    }

    /// Insert from strings (interning as needed).
    pub fn insert_str(&mut self, s: &str, p: &str, o: &str) -> (TripleId, bool) {
        let (s, p, o) = (self.intern(s), self.intern(p), self.intern(o));
        self.insert(s, p, o)
    }

    /// Insert an owned [`StrTriple`].
    pub fn insert_triple(&mut self, t: &StrTriple) -> (TripleId, bool) {
        self.insert_str(&t.s, &t.p, &t.o)
    }

    /// Number of (distinct) triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Fetch a triple by id.
    #[inline]
    pub fn get(&self, id: TripleId) -> Triple {
        self.triples[id.index()]
    }

    /// Whether the exact triple exists.
    pub fn contains(&self, s: Atom, p: Atom, o: Atom) -> bool {
        self.dedup.contains(&Triple::new(s, p, o))
    }

    /// Whether the exact string triple exists (false if any part is
    /// unknown to the interner).
    pub fn contains_str(&self, s: &str, p: &str, o: &str) -> bool {
        match (self.atoms.get(s), self.atoms.get(p), self.atoms.get(o)) {
            (Some(s), Some(p), Some(o)) => self.contains(s, p, o),
            _ => false,
        }
    }

    /// Triple ids whose subject is `s`.
    pub fn ids_by_subject(&self, s: Atom) -> &[TripleId] {
        self.by_s.get(&s).map_or(&[], |v| v)
    }

    /// Triple ids whose predicate is `p`.
    pub fn ids_by_predicate(&self, p: Atom) -> &[TripleId] {
        self.by_p.get(&p).map_or(&[], |v| v)
    }

    /// Triple ids whose object is `o`.
    pub fn ids_by_object(&self, o: Atom) -> &[TripleId] {
        self.by_o.get(&o).map_or(&[], |v| v)
    }

    /// All triples with subject `s`.
    pub fn by_subject(&self, s: Atom) -> impl Iterator<Item = Triple> + '_ {
        self.ids_by_subject(s).iter().map(|id| self.get(*id))
    }

    /// All triples with predicate `p`.
    pub fn by_predicate(&self, p: Atom) -> impl Iterator<Item = Triple> + '_ {
        self.ids_by_predicate(p).iter().map(|id| self.get(*id))
    }

    /// All triples with object `o`.
    pub fn by_object(&self, o: Atom) -> impl Iterator<Item = Triple> + '_ {
        self.ids_by_object(o).iter().map(|id| self.get(*id))
    }

    /// All triples with subject `s` and predicate `p`.
    pub fn by_sp(&self, s: Atom, p: Atom) -> impl Iterator<Item = Triple> + '_ {
        self.by_subject(s).filter(move |t| t.p == p)
    }

    /// All triples mentioning `a` as subject *or* object (the 1-hop
    /// neighbourhood used during subgraph extraction).
    pub fn mentioning(&self, a: Atom) -> impl Iterator<Item = Triple> + '_ {
        self.by_subject(a)
            .chain(self.by_object(a).filter(move |t| t.s != a))
    }

    /// Iterate all triples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.triples.iter().copied()
    }

    /// Iterate all triples as `(TripleId, Triple)`.
    pub fn iter_ids(&self) -> impl Iterator<Item = (TripleId, Triple)> + '_ {
        self.triples
            .iter()
            .enumerate()
            .map(|(i, t)| (TripleId(i as u32), *t))
    }

    /// Materialise a triple as owned strings.
    pub fn to_str_triple(&self, t: Triple) -> StrTriple {
        StrTriple::new(self.resolve(t.s), self.resolve(t.p), self.resolve(t.o))
    }

    /// Distinct subjects in insertion order of first appearance.
    pub fn subjects(&self) -> Vec<Atom> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for t in &self.triples {
            if seen.insert(t.s) {
                out.push(t.s);
            }
        }
        out
    }

    /// Distinct predicates.
    pub fn predicates(&self) -> Vec<Atom> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for t in &self.triples {
            if seen.insert(t.p) {
                out.push(t.p);
            }
        }
        out
    }

    /// Out-degree of `s` (number of triples with subject `s`).
    pub fn out_degree(&self, s: Atom) -> usize {
        self.ids_by_subject(s).len()
    }

    /// Rebuild indexes after deserialization (serde skips them).
    pub fn rebuild_indexes(&mut self) {
        self.atoms.rebuild_lookup();
        self.dedup.clear();
        self.by_s.clear();
        self.by_p.clear();
        self.by_o.clear();
        for (i, t) in self.triples.iter().enumerate() {
            let id = TripleId(i as u32);
            self.dedup.insert(*t);
            self.by_s.entry(t.s).or_default().push(id);
            self.by_p.entry(t.p).or_default().push(id);
            self.by_o.entry(t.o).or_default().push(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TripleStore {
        let mut st = TripleStore::new();
        st.insert_str("Yao Ming", "born in", "Shanghai");
        st.insert_str("Yao Ming", "occupation", "basketball player");
        st.insert_str("Shanghai", "country", "China");
        st
    }

    #[test]
    fn insert_and_query() {
        let st = sample();
        assert_eq!(st.len(), 3);
        let yao = st.atoms().get("Yao Ming").unwrap();
        assert_eq!(st.by_subject(yao).count(), 2);
        assert!(st.contains_str("Shanghai", "country", "China"));
        assert!(!st.contains_str("Shanghai", "country", "Japan"));
    }

    #[test]
    fn dedup_returns_same_id() {
        let mut st = sample();
        let (id1, fresh1) = st.insert_str("Yao Ming", "born in", "Shanghai");
        assert!(!fresh1);
        let (id2, _) = st.insert_str("Yao Ming", "born in", "Shanghai");
        assert_eq!(id1, id2);
        assert_eq!(st.len(), 3);
    }

    #[test]
    fn mentioning_covers_both_roles_without_double_count() {
        let mut st = sample();
        st.insert_str("NBA", "features", "Yao Ming");
        let yao = st.atoms().get("Yao Ming").unwrap();
        let triples: Vec<_> = st.mentioning(yao).collect();
        assert_eq!(triples.len(), 3);
    }

    #[test]
    fn self_loop_counted_once_in_mentioning() {
        let mut st = TripleStore::new();
        st.insert_str("a", "related to", "a");
        let a = st.atoms().get("a").unwrap();
        assert_eq!(st.mentioning(a).count(), 1);
    }

    #[test]
    fn by_sp_filters() {
        let st = sample();
        let yao = st.atoms().get("Yao Ming").unwrap();
        let born = st.atoms().get("born in").unwrap();
        let res: Vec<_> = st.by_sp(yao, born).collect();
        assert_eq!(res.len(), 1);
        assert_eq!(st.resolve(res[0].o), "Shanghai");
    }

    #[test]
    fn subjects_and_predicates_distinct() {
        let st = sample();
        assert_eq!(st.subjects().len(), 2); // Yao Ming, Shanghai
        assert_eq!(st.predicates().len(), 3);
    }

    #[test]
    fn serde_roundtrip_rebuilds_indexes() {
        let st = sample();
        let json = serde_json::to_string(&st).unwrap();
        let mut back: TripleStore = serde_json::from_str(&json).unwrap();
        back.rebuild_indexes();
        assert_eq!(back.len(), 3);
        assert!(back.contains_str("Yao Ming", "born in", "Shanghai"));
        let yao = back.atoms().get("Yao Ming").unwrap();
        assert_eq!(back.by_subject(yao).count(), 2);
    }

    #[test]
    fn out_degree() {
        let st = sample();
        let yao = st.atoms().get("Yao Ming").unwrap();
        let sh = st.atoms().get("Shanghai").unwrap();
        assert_eq!(st.out_degree(yao), 2);
        assert_eq!(st.out_degree(sh), 1);
    }
}
