//! A Neo4j-style labelled property graph.
//!
//! The paper materialises LLM-generated Cypher `CREATE` statements on
//! Neo4j, then decodes the resulting graph back into triples. This module
//! is the storage half of that substrate; the `cypher` crate is the
//! language half.

use crate::triple::StrTriple;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A property value. The Cypher subset supports the scalar types the
/// paper's prompts actually elicit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// String literal.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
}

impl Value {
    /// Render the value the way it should appear inside a decoded triple
    /// (strings unquoted, numbers/bools via `Display`).
    pub fn as_triple_text(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format_float(*f),
            Value::Bool(b) => b.to_string(),
        }
    }
}

fn format_float(f: f64) -> String {
    if f.fract() == 0.0 && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{}", format_float(*x)),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// Node identifier within one [`PropertyGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// A labelled node with properties.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Labels, e.g. `Lake`, `Country`.
    pub labels: Vec<String>,
    /// Properties; `name` is conventionally the display name.
    pub props: BTreeMap<String, Value>,
}

impl Node {
    /// The display name used when decoding to triples: the `name`
    /// property if present, else the first label, else `node<i>`.
    pub fn display_name(&self, id: NodeId) -> String {
        if let Some(Value::Str(s)) = self.props.get("name") {
            return s.clone();
        }
        if let Some(v) = self.props.get("name") {
            return v.as_triple_text();
        }
        if let Some(l) = self.labels.first() {
            return l.clone();
        }
        format!("node{}", id.0)
    }
}

/// A directed, typed relationship with properties.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Relationship {
    /// Source node.
    pub src: NodeId,
    /// Target node.
    pub dst: NodeId,
    /// Relationship type, e.g. `COVERS`.
    pub rel_type: String,
    /// Relationship properties.
    pub props: BTreeMap<String, Value>,
}

/// An in-memory labelled property graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PropertyGraph {
    nodes: Vec<Node>,
    rels: Vec<Relationship>,
}

impl PropertyGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("property graph overflow"));
        self.nodes.push(node);
        id
    }

    /// Add a relationship.
    pub fn add_rel(&mut self, rel: Relationship) {
        assert!(rel.src.0 < self.nodes.len() as u32, "dangling src");
        assert!(rel.dst.0 < self.nodes.len() as u32, "dangling dst");
        self.rels.push(rel);
    }

    /// Node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Mutable node by id.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0 as usize]
    }

    /// All nodes with ids.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// All relationships.
    pub fn rels(&self) -> &[Relationship] {
        &self.rels
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of relationships.
    pub fn rel_count(&self) -> usize {
        self.rels.len()
    }

    /// Whether the graph is completely empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.rels.is_empty()
    }

    /// Decode the property graph into triples, the way the paper reads
    /// the Neo4j graph back as `G_p`:
    ///
    /// * every relationship becomes `<src name> <REL_TYPE> <dst name>`;
    /// * every node property other than `name` becomes
    ///   `<node name> <property> <value>`.
    pub fn decode_triples(&self) -> Vec<StrTriple> {
        let mut out = Vec::with_capacity(self.rels.len());
        for (id, node) in self.nodes() {
            let name = node.display_name(id);
            for (key, value) in &node.props {
                if key == "name" {
                    continue;
                }
                out.push(StrTriple::new(
                    name.clone(),
                    key.clone(),
                    value.as_triple_text(),
                ));
            }
        }
        for rel in &self.rels {
            let s = self.node(rel.src).display_name(rel.src);
            let o = self.node(rel.dst).display_name(rel.dst);
            out.push(StrTriple::new(s, rel.rel_type.clone(), o));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lake(name: &str, area: i64) -> Node {
        let mut props = BTreeMap::new();
        props.insert("name".to_string(), Value::Str(name.to_string()));
        props.insert("area".to_string(), Value::Int(area));
        Node {
            labels: vec!["Lake".to_string()],
            props,
        }
    }

    #[test]
    fn decode_node_properties() {
        let mut g = PropertyGraph::new();
        g.add_node(lake("Lake Superior", 82000));
        let triples = g.decode_triples();
        assert_eq!(
            triples,
            vec![StrTriple::new("Lake Superior", "area", "82000")]
        );
    }

    #[test]
    fn decode_relationships() {
        let mut g = PropertyGraph::new();
        let andes = g.add_node(Node {
            labels: vec!["MountainRange".into()],
            props: BTreeMap::from([("name".into(), Value::Str("Andes".into()))]),
        });
        let peru = g.add_node(Node {
            labels: vec!["Country".into()],
            props: BTreeMap::from([("name".into(), Value::Str("Peru".into()))]),
        });
        g.add_rel(Relationship {
            src: andes,
            dst: peru,
            rel_type: "COVERS".into(),
            props: BTreeMap::new(),
        });
        let triples = g.decode_triples();
        assert_eq!(triples, vec![StrTriple::new("Andes", "COVERS", "Peru")]);
    }

    #[test]
    fn display_name_fallbacks() {
        let n = Node {
            labels: vec!["Concept".into()],
            props: BTreeMap::new(),
        };
        assert_eq!(n.display_name(NodeId(3)), "Concept");
        let bare = Node::default();
        assert_eq!(bare.display_name(NodeId(3)), "node3");
    }

    #[test]
    #[should_panic(expected = "dangling")]
    fn dangling_rel_panics() {
        let mut g = PropertyGraph::new();
        g.add_rel(Relationship {
            src: NodeId(0),
            dst: NodeId(1),
            rel_type: "X".into(),
            props: BTreeMap::new(),
        });
    }

    #[test]
    fn value_triple_text() {
        assert_eq!(Value::Str("x".into()).as_triple_text(), "x");
        assert_eq!(Value::Int(5).as_triple_text(), "5");
        assert_eq!(Value::Float(2.0).as_triple_text(), "2.0");
        assert_eq!(Value::Float(2.5).as_triple_text(), "2.5");
        assert_eq!(Value::Bool(true).as_triple_text(), "true");
    }

    #[test]
    fn value_display_quotes_strings() {
        assert_eq!(Value::Str("a b".into()).to_string(), "\"a b\"");
        assert_eq!(Value::Int(7).to_string(), "7");
    }
}
