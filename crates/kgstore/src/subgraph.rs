//! Question-scoped subgraph extraction (the paper's `G_base`).
//!
//! The paper extracts, per question, "a subset of subgraphs … from
//! Wikidata or Freebase based on the questions" before semantic
//! querying. We reproduce that by scanning the question for surface
//! forms that match entity labels/aliases (longest-match n-grams), then
//! expanding a bounded breadth-first neighbourhood around the seeds.
//!
//! Note this is *surface* matching, not entity linking: an ambiguous
//! surface ("Yao Ming") seeds *all* matching entities; disambiguation is
//! deferred to the pipeline's pruning step, exactly as in the paper.

use crate::atom::Atom;
use crate::hash::FxHashSet;
use crate::source::KgSource;
use crate::triple::Triple;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Parameters bounding the extraction.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExtractConfig {
    /// Maximum hops to expand from each seed entity.
    pub hops: usize,
    /// Hard cap on extracted triples (keeps `G_base` within what the
    /// encoder must embed per question).
    pub max_triples: usize,
    /// Longest surface n-gram (in words) to try when matching labels.
    pub max_ngram: usize,
    /// Cap on neighbours expanded per entity per hop (protects against
    /// hub entities with huge degree).
    pub max_fanout: usize,
}

impl Default for ExtractConfig {
    fn default() -> Self {
        Self {
            hops: 2,
            max_triples: 4000,
            max_ngram: 4,
            max_fanout: 256,
        }
    }
}

/// The result of extraction: seed entities and the extracted triples
/// (ids refer to the *source's* atom table).
#[derive(Debug, Clone, Default)]
pub struct Subgraph {
    /// Entities whose surface forms appeared in the question.
    pub seeds: Vec<Atom>,
    /// Triples of the extracted neighbourhood.
    pub triples: Vec<Triple>,
}

impl Subgraph {
    /// Number of extracted triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether the extraction found nothing.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }
}

/// Split a question into lowercase word tokens (alphanumeric runs).
pub fn question_tokens(question: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in question.chars() {
        if ch.is_alphanumeric() || ch == '\'' {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Find seed entities by longest-match n-gram scan over the question.
///
/// Greedy: once an n-gram matches, its words are consumed so a shorter
/// sub-span cannot also seed (matching "Lake Superior" suppresses the
/// spurious seed "Superior").
pub fn find_seeds(source: &KgSource, question: &str, cfg: &ExtractConfig) -> Vec<Atom> {
    let tokens = question_tokens(question);
    let mut seeds = Vec::new();
    let mut seen = FxHashSet::default();
    let mut i = 0;
    while i < tokens.len() {
        let mut matched = 0;
        for n in (1..=cfg.max_ngram.min(tokens.len() - i)).rev() {
            let surface = tokens[i..i + n].join(" ");
            let cands = source.meta.entities_with_surface(&surface);
            if !cands.is_empty() {
                for &c in cands {
                    if seen.insert(c) {
                        seeds.push(c);
                    }
                }
                matched = n;
                break;
            }
        }
        i += matched.max(1);
    }
    seeds
}

/// Extract the bounded k-hop neighbourhood of the question's seeds.
pub fn extract(source: &KgSource, question: &str, cfg: &ExtractConfig) -> Subgraph {
    let seeds = find_seeds(source, question, cfg);
    let mut triples = Vec::new();
    let mut seen_triples: FxHashSet<Triple> = FxHashSet::default();
    let mut visited: FxHashSet<Atom> = seeds.iter().copied().collect();
    let mut queue: VecDeque<(Atom, usize)> = seeds.iter().map(|&s| (s, 0)).collect();

    'bfs: while let Some((ent, depth)) = queue.pop_front() {
        for (fanout, t) in source.store.mentioning(ent).enumerate() {
            if fanout >= cfg.max_fanout {
                break;
            }
            if seen_triples.insert(t) {
                triples.push(t);
                if triples.len() >= cfg.max_triples {
                    break 'bfs;
                }
            }
            if depth + 1 < cfg.hops {
                let other = if t.s == ent { t.o } else { t.s };
                if visited.insert(other) {
                    queue.push_back((other, depth + 1));
                }
            }
        }
    }

    Subgraph { seeds, triples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::EntityMeta;
    use crate::source::SchemaStyle;

    fn source() -> KgSource {
        let mut src = KgSource::new("test", SchemaStyle::WikidataLike);
        for (id, label, pop) in [
            ("Q1", "Yao Ming", 0.9),
            ("Q2", "Yao Ming", 0.1),
            ("Q3", "Shanghai", 0.8),
            ("Q4", "China", 0.9),
            ("Q5", "Lake Superior", 0.7),
        ] {
            src.add_entity(
                id,
                EntityMeta {
                    label: label.into(),
                    aliases: vec![],
                    description: String::new(),
                    popularity: pop,
                },
            );
        }
        src.add_fact("Q1", "born in", "Q3");
        src.add_fact("Q2", "era", "Song dynasty");
        src.add_fact("Q3", "country", "Q4");
        src.add_fact("Q4", "capital", "Beijing");
        src
    }

    #[test]
    fn tokenizes_questions() {
        assert_eq!(
            question_tokens("Where was Yao Ming born?"),
            ["where", "was", "yao", "ming", "born"]
        );
    }

    #[test]
    fn finds_all_ambiguous_seeds() {
        let src = source();
        let seeds = find_seeds(&src, "Where was Yao Ming born?", &ExtractConfig::default());
        assert_eq!(seeds.len(), 2, "both Yao Mings must seed");
    }

    #[test]
    fn longest_match_consumes_span() {
        let mut src = source();
        // Add a distractor entity labelled just "Superior".
        src.add_entity(
            "Q9",
            EntityMeta {
                label: "Superior".into(),
                aliases: vec![],
                description: String::new(),
                popularity: 0.2,
            },
        );
        let seeds = find_seeds(&src, "How big is Lake Superior?", &ExtractConfig::default());
        let labels: Vec<_> = seeds.iter().map(|&a| src.label_of(a)).collect();
        assert_eq!(labels, ["Lake Superior"]);
    }

    #[test]
    fn extract_respects_hops() {
        let src = source();
        let one_hop = extract(
            &src,
            "Where was Yao Ming born?",
            &ExtractConfig {
                hops: 1,
                ..Default::default()
            },
        );
        // 1 hop: Q1→Q3 and Q2→Song dynasty, but not Q3→Q4.
        assert_eq!(one_hop.len(), 2);
        let two_hop = extract(
            &src,
            "Where was Yao Ming born?",
            &ExtractConfig {
                hops: 2,
                ..Default::default()
            },
        );
        assert_eq!(two_hop.len(), 3, "2 hops adds Shanghai→China");
    }

    #[test]
    fn extract_caps_triples() {
        let src = source();
        let g = extract(
            &src,
            "Where was Yao Ming born in Shanghai China?",
            &ExtractConfig {
                max_triples: 1,
                ..Default::default()
            },
        );
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn no_seeds_means_empty_subgraph() {
        let src = source();
        let g = extract(
            &src,
            "What is the meaning of life?",
            &ExtractConfig::default(),
        );
        assert!(g.is_empty());
        assert!(g.seeds.is_empty());
    }
}
