//! A knowledge-graph *source*: triples + metadata + schema identity.
//!
//! The paper's central generalisation claim is that its pipeline works
//! unchanged across KG sources with different schemas (Wikidata vs
//! Freebase). We model a source as a named bundle of a [`TripleStore`]
//! and a [`MetaRegistry`], plus a [`SchemaStyle`] tag describing how the
//! source verbalises relations and whether it uses mediator (CVT) nodes.

use crate::atom::Atom;
use crate::meta::{EntityMeta, MetaRegistry};
use crate::store::TripleStore;
use crate::triple::StrTriple;
use serde::{Deserialize, Serialize};

/// How a source's schema renders knowledge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemaStyle {
    /// Wikidata-like: flat property names ("place of birth"), direct
    /// entity-to-entity edges, rich aliases.
    WikidataLike,
    /// Freebase-like: path-style property names
    /// ("/people/person/place_of_birth") and CVT mediator nodes for
    /// n-ary facts, which makes some facts one hop here but two hops in
    /// a Wikidata-like rendering.
    FreebaseLike,
}

impl SchemaStyle {
    /// Short identifier used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SchemaStyle::WikidataLike => "wikidata",
            SchemaStyle::FreebaseLike => "freebase",
        }
    }
}

/// A named knowledge-graph source.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KgSource {
    /// Human-readable source name (e.g. `"wikidata-sim"`).
    pub name: String,
    /// Schema family of this source.
    pub style: SchemaStyle,
    /// The triples.
    pub store: TripleStore,
    /// Entity metadata (labels, aliases, descriptions, popularity).
    pub meta: MetaRegistry,
}

impl KgSource {
    /// Create an empty source.
    pub fn new(name: impl Into<String>, style: SchemaStyle) -> Self {
        Self {
            name: name.into(),
            style,
            store: TripleStore::new(),
            meta: MetaRegistry::new(),
        }
    }

    /// Insert a fact with string parts; returns whether it was new.
    pub fn add_fact(&mut self, s: &str, p: &str, o: &str) -> bool {
        self.store.insert_str(s, p, o).1
    }

    /// Register an entity (by its id string) with metadata.
    pub fn add_entity(&mut self, id: &str, meta: EntityMeta) -> Atom {
        let a = self.store.intern(id);
        self.meta.insert(a, meta);
        a
    }

    /// Register a redirect surface ("Shanghai Municipality") for an
    /// entity id string; the surface resolves through
    /// [`MetaRegistry::redirect`] and never joins the ambiguous label
    /// index.
    pub fn add_redirect(&mut self, surface: &str, target_id: &str) -> Atom {
        let a = self.store.intern(target_id);
        self.meta.add_redirect(surface, a);
        a
    }

    /// Entities matching a surface form, most popular first.
    ///
    /// This is deliberately *not* entity linking — it is the raw surface
    /// index; disambiguation is the pipeline's job (two-step pruning).
    pub fn surface_candidates(&self, surface: &str) -> Vec<Atom> {
        let mut v: Vec<Atom> = self.meta.entities_with_surface(surface).to_vec();
        v.sort_by(|a, b| {
            self.meta
                .popularity(*b)
                .partial_cmp(&self.meta.popularity(*a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(b))
        });
        v
    }

    /// The label of an entity, falling back to its raw interned string.
    pub fn label_of(&self, a: Atom) -> &str {
        self.meta
            .get(a)
            .map(|m| m.label.as_str())
            .filter(|l| !l.is_empty())
            .unwrap_or_else(|| self.store.resolve(a))
    }

    /// Materialise a triple with ids replaced by labels — the "semantic
    /// form" fed to the encoder (`<Yao Ming> <born in> <Shanghai>` rather
    /// than `<Q123> <P19> <Q456>`).
    pub fn verbalize(&self, t: crate::triple::Triple) -> StrTriple {
        StrTriple::new(self.label_of(t.s), self.label_of(t.p), self.label_of(t.o))
    }

    /// Total number of triples.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the source has no triples.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Rebuild skipped indexes after deserialization.
    pub fn rebuild(&mut self) {
        self.store.rebuild_indexes();
        self.meta.rebuild_index();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn yao_source() -> KgSource {
        let mut src = KgSource::new("wikidata-sim", SchemaStyle::WikidataLike);
        src.add_entity(
            "Q1",
            EntityMeta {
                label: "Yao Ming".into(),
                aliases: vec![],
                description: "basketball player".into(),
                popularity: 0.95,
            },
        );
        src.add_entity(
            "Q2",
            EntityMeta {
                label: "Yao Ming".into(),
                aliases: vec![],
                description: "Song dynasty poet".into(),
                popularity: 0.05,
            },
        );
        src.add_fact("Q1", "born in", "Shanghai");
        src
    }

    #[test]
    fn surface_candidates_sorted_by_popularity() {
        let src = yao_source();
        let cands = src.surface_candidates("Yao Ming");
        assert_eq!(cands.len(), 2);
        assert_eq!(
            src.meta.get(cands[0]).unwrap().description,
            "basketball player"
        );
    }

    #[test]
    fn verbalize_replaces_ids_with_labels() {
        let src = yao_source();
        let t = src.store.iter().next().unwrap();
        let v = src.verbalize(t);
        assert_eq!(v.s, "Yao Ming");
        assert_eq!(v.p, "born in");
        assert_eq!(v.o, "Shanghai"); // no meta → raw string
    }

    #[test]
    fn label_falls_back_to_raw_id() {
        let src = yao_source();
        let shanghai = src.store.atoms().get("Shanghai").unwrap();
        assert_eq!(src.label_of(shanghai), "Shanghai");
    }

    #[test]
    fn schema_style_names() {
        assert_eq!(SchemaStyle::WikidataLike.name(), "wikidata");
        assert_eq!(SchemaStyle::FreebaseLike.name(), "freebase");
    }
}
