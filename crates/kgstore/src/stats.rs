//! Descriptive statistics over stores and sources (used by reports and
//! to sanity-check generated KGs).

use crate::source::KgSource;
use crate::store::TripleStore;
use serde::{Deserialize, Serialize};

/// Summary statistics of a triple store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Total triples.
    pub triples: usize,
    /// Distinct subjects.
    pub subjects: usize,
    /// Distinct predicates.
    pub predicates: usize,
    /// Interned strings.
    pub atoms: usize,
    /// Maximum out-degree over subjects.
    pub max_out_degree: usize,
    /// Mean out-degree over subjects.
    pub mean_out_degree: f64,
}

/// Compute [`StoreStats`] for a store.
pub fn store_stats(store: &TripleStore) -> StoreStats {
    let subjects = store.subjects();
    let max_out = subjects
        .iter()
        .map(|&s| store.out_degree(s))
        .max()
        .unwrap_or(0);
    let mean_out = if subjects.is_empty() {
        0.0
    } else {
        store.len() as f64 / subjects.len() as f64
    };
    StoreStats {
        triples: store.len(),
        subjects: subjects.len(),
        predicates: store.predicates().len(),
        atoms: store.atoms().len(),
        max_out_degree: max_out,
        mean_out_degree: mean_out,
    }
}

/// Summary of a KG source (store stats plus metadata counts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceStats {
    /// Source name.
    pub name: String,
    /// Schema family name.
    pub style: String,
    /// Store statistics.
    pub store: StoreStats,
    /// Registered entities.
    pub entities: usize,
    /// Labels shared by more than one entity (ambiguity count).
    pub ambiguous_labels: usize,
}

/// Compute [`SourceStats`] for a source.
pub fn source_stats(src: &KgSource) -> SourceStats {
    let mut labels: Vec<&str> = src.meta.iter().map(|(_, m)| m.label.as_str()).collect();
    labels.sort_unstable();
    let ambiguous_labels = labels
        .chunk_by(|a, b| a == b)
        .filter(|run| run.len() > 1)
        .count();
    SourceStats {
        name: src.name.clone(),
        style: src.style.name().to_string(),
        store: store_stats(&src.store),
        entities: src.meta.len(),
        ambiguous_labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::EntityMeta;
    use crate::source::SchemaStyle;

    #[test]
    fn store_stats_basic() {
        let mut st = TripleStore::new();
        st.insert_str("a", "r", "b");
        st.insert_str("a", "r", "c");
        st.insert_str("b", "q", "c");
        let s = store_stats(&st);
        assert_eq!(s.triples, 3);
        assert_eq!(s.subjects, 2);
        assert_eq!(s.predicates, 2);
        assert_eq!(s.max_out_degree, 2);
        assert!((s.mean_out_degree - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_store_stats() {
        let s = store_stats(&TripleStore::new());
        assert_eq!(s.triples, 0);
        assert_eq!(s.mean_out_degree, 0.0);
    }

    #[test]
    fn ambiguity_counted() {
        let mut src = KgSource::new("t", SchemaStyle::WikidataLike);
        for (id, label) in [("Q1", "Yao Ming"), ("Q2", "Yao Ming"), ("Q3", "Shanghai")] {
            src.add_entity(
                id,
                EntityMeta {
                    label: label.into(),
                    ..Default::default()
                },
            );
        }
        let s = source_stats(&src);
        assert_eq!(s.entities, 3);
        assert_eq!(s.ambiguous_labels, 1);
    }
}
