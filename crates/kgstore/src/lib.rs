//! # kgstore — knowledge-graph storage substrate
//!
//! In-memory triple store, entity metadata, multi-source schema handling,
//! question-scoped subgraph extraction, and a Neo4j-style labelled
//! property graph. This is the substrate under both the "real" KG sources
//! (simulated Wikidata / Freebase) and the LLM-generated pseudo-graphs of
//! the ICDE 2025 paper *Enhancing Large Language Models with Pseudo- and
//! Multisource-Knowledge Graphs for Open-ended Question Answering*.
//!
//! Layers:
//! * [`atom`] / [`triple`] / [`store`] — interned triples with
//!   subject/predicate/object posting-list indexes;
//! * [`meta`] — labels, aliases, descriptions, popularity, and the
//!   ambiguous surface-form index;
//! * [`source`] — a named KG source with a schema style (Wikidata-like
//!   vs Freebase-like);
//! * [`subgraph`] — per-question `G_base` extraction;
//! * [`propgraph`] — the property graph Cypher `CREATE`s materialise
//!   into, plus the decode-to-triples step;
//! * [`hash`] — fast hashing + stable seeded decisions shared by the
//!   whole workspace.

#![warn(missing_docs)]

pub mod atom;
pub mod hash;
pub mod meta;
pub mod propgraph;
pub mod source;
pub mod stats;
pub mod store;
pub mod subgraph;
pub mod triple;

pub use atom::{Atom, AtomTable};
pub use meta::{EntityMeta, MetaRegistry};
pub use propgraph::{Node, NodeId, PropertyGraph, Relationship, Value};
pub use source::{KgSource, SchemaStyle};
pub use store::TripleStore;
pub use subgraph::{extract, ExtractConfig, Subgraph};
pub use triple::{StrTriple, Triple, TripleId};
