//! Triples — the atomic unit of knowledge in this system.

use crate::atom::{Atom, AtomTable};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A `(subject, predicate, object)` fact with interned components.
///
/// Matches the paper's `G = {O, R, T}` formulation: a knowledge graph is a
/// set of triples over subjects `O`, relations `R`, and objects `T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Triple {
    /// Subject entity.
    pub s: Atom,
    /// Predicate / relation.
    pub p: Atom,
    /// Object entity or literal value.
    pub o: Atom,
}

impl Triple {
    /// Construct a triple from its parts.
    #[inline]
    pub fn new(s: Atom, p: Atom, o: Atom) -> Self {
        Self { s, p, o }
    }

    /// Render as the paper's angle-bracket notation:
    /// `<subject> <predicate> <object>`.
    pub fn display<'a>(&self, atoms: &'a AtomTable) -> TripleDisplay<'a> {
        TripleDisplay {
            s: atoms.resolve(self.s),
            p: atoms.resolve(self.p),
            o: atoms.resolve(self.o),
        }
    }
}

/// Stable identifier of a triple within one [`crate::store::TripleStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TripleId(pub u32);

impl TripleId {
    /// Raw index into the store's triple vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Borrowed, human-readable triple form (`<s> <p> <o>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TripleDisplay<'a> {
    /// Subject string.
    pub s: &'a str,
    /// Predicate string.
    pub p: &'a str,
    /// Object string.
    pub o: &'a str,
}

impl fmt::Display for TripleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}> <{}> <{}>", self.s, self.p, self.o)
    }
}

/// An owned string triple, used at API boundaries where interning tables
/// differ (e.g. moving knowledge between a pseudo-graph and a KG source).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StrTriple {
    /// Subject string.
    pub s: String,
    /// Predicate string.
    pub p: String,
    /// Object string.
    pub o: String,
}

impl StrTriple {
    /// Construct from anything string-like.
    pub fn new(s: impl Into<String>, p: impl Into<String>, o: impl Into<String>) -> Self {
        Self {
            s: s.into(),
            p: p.into(),
            o: o.into(),
        }
    }

    /// The paper's verbalised "semantic form": `"s p o"` joined by spaces,
    /// which is what gets fed to the sentence encoder.
    pub fn sentence(&self) -> String {
        let mut out = String::with_capacity(self.s.len() + self.p.len() + self.o.len() + 2);
        out.push_str(&self.s);
        out.push(' ');
        out.push_str(&self.p);
        out.push(' ');
        out.push_str(&self.o);
        out
    }
}

impl fmt::Display for StrTriple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}> <{}> <{}>", self.s, self.p, self.o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        let mut t = AtomTable::new();
        let tr = Triple::new(
            t.intern("Yao Ming"),
            t.intern("born in"),
            t.intern("Shanghai"),
        );
        assert_eq!(
            tr.display(&t).to_string(),
            "<Yao Ming> <born in> <Shanghai>"
        );
    }

    #[test]
    fn str_triple_sentence() {
        let t = StrTriple::new("Andes", "covers", "Peru");
        assert_eq!(t.sentence(), "Andes covers Peru");
        assert_eq!(t.to_string(), "<Andes> <covers> <Peru>");
    }

    #[test]
    fn triple_ordering_is_spo() {
        let mut at = AtomTable::new();
        let a = at.intern("a");
        let b = at.intern("b");
        let t1 = Triple::new(a, a, a);
        let t2 = Triple::new(a, a, b);
        let t3 = Triple::new(a, b, a);
        let t4 = Triple::new(b, a, a);
        assert!(t1 < t2 && t2 < t3 && t3 < t4);
    }
}
