//! A small, fast, non-cryptographic hasher (Fx-style) plus deterministic
//! 64-bit mixing helpers used across the workspace.
//!
//! The standard library's SipHash is DoS-resistant but slow for the short
//! keys (interned atom ids, small strings) that dominate this workload.
//! HashDoS is not a concern for an offline research system, so we use the
//! multiply-xor scheme popularised by rustc's `FxHasher`.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from rustc's FxHasher (64-bit golden-ratio-ish).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fx-style hasher: fast multiply-rotate-xor over input words.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// SplitMix64 step: turns any 64-bit state into a well-mixed output.
///
/// Used everywhere a *stable, seedable* pseudo-random decision is needed
/// (e.g. "does this model know this fact?"), so results are reproducible
/// across runs and platforms.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministically hash a string to 64 bits (stable across runs).
#[inline]
pub fn stable_str_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3); // FNV prime
    }
    splitmix64(h)
}

/// Combine two 64-bit values into one well-mixed value.
#[inline]
pub fn mix2(a: u64, b: u64) -> u64 {
    splitmix64(a ^ splitmix64(b))
}

/// Derive a unit-interval `f64` in `[0, 1)` from a 64-bit hash.
#[inline]
pub fn unit_f64(h: u64) -> f64 {
    // Use the top 53 bits for a uniformly distributed double.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fx_hashmap_works() {
        let mut m: FxHashMap<&str, u32> = FxHashMap::default();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.get("a"), Some(&1));
        assert_eq!(m.get("b"), Some(&2));
        assert_eq!(m.get("c"), None);
    }

    #[test]
    fn stable_hash_is_stable() {
        // Pin exact values so cross-run / cross-platform determinism
        // regressions are caught immediately.
        assert_eq!(stable_str_hash("yao ming"), stable_str_hash("yao ming"));
        assert_ne!(stable_str_hash("yao ming"), stable_str_hash("yao min"));
    }

    #[test]
    fn stable_hash_differs_for_prefixes() {
        assert_ne!(stable_str_hash(""), stable_str_hash("a"));
        assert_ne!(stable_str_hash("a"), stable_str_hash("aa"));
    }

    #[test]
    fn unit_f64_in_range() {
        for i in 0..1000u64 {
            let u = unit_f64(splitmix64(i));
            assert!((0.0..1.0).contains(&u), "out of range: {u}");
        }
    }

    #[test]
    fn unit_f64_roughly_uniform() {
        let n = 10_000u64;
        let mean: f64 = (0..n).map(|i| unit_f64(splitmix64(i))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn mix2_not_commutative() {
        assert_ne!(mix2(1, 2), mix2(2, 1));
    }

    #[test]
    fn hasher_handles_unaligned_tails() {
        use std::hash::Hash;
        fn h<T: Hash>(t: &T) -> u64 {
            let mut hasher = FxHasher::default();
            t.hash(&mut hasher);
            hasher.finish()
        }
        assert_ne!(h(&[1u8, 2, 3]), h(&[1u8, 2, 3, 0]));
        assert_ne!(h(&"abcdefgh"), h(&"abcdefg"));
    }
}
