//! String interning.
//!
//! Knowledge-graph workloads repeat the same entity and relation strings
//! millions of times; interning them to 32-bit [`Atom`]s makes triples
//! 12 bytes, makes equality a register compare, and makes the index maps
//! integer-keyed (fast with the Fx hasher).

use crate::hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// An interned string. Only meaningful together with the [`AtomTable`]
/// that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Atom(pub u32);

impl Atom {
    /// The raw index of this atom in its table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional string ↔ [`Atom`] table.
///
/// Strings are stored once; lookups in both directions are O(1).
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct AtomTable {
    strings: Vec<Box<str>>,
    #[serde(skip)]
    lookup: FxHashMap<Box<str>, Atom>,
}

impl AtomTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its atom (existing or fresh).
    pub fn intern(&mut self, s: &str) -> Atom {
        if let Some(&a) = self.lookup.get(s) {
            return a;
        }
        let a = Atom(u32::try_from(self.strings.len()).expect("atom table overflow"));
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.lookup.insert(boxed, a);
        a
    }

    /// Look up an already-interned string without inserting.
    pub fn get(&self, s: &str) -> Option<Atom> {
        self.lookup.get(s).copied()
    }

    /// Resolve an atom back to its string.
    ///
    /// # Panics
    /// Panics if `a` was not produced by this table.
    #[inline]
    pub fn resolve(&self, a: Atom) -> &str {
        &self.strings[a.index()]
    }

    /// Resolve without panicking.
    pub fn try_resolve(&self, a: Atom) -> Option<&str> {
        self.strings.get(a.index()).map(|s| &**s)
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate `(Atom, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Atom, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Atom(i as u32), &**s))
    }

    /// Rebuild the reverse lookup (needed after deserialization, since the
    /// map is skipped during serde to avoid storing every string twice).
    pub fn rebuild_lookup(&mut self) {
        self.lookup = self
            .strings
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), Atom(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_roundtrip() {
        let mut t = AtomTable::new();
        let a = t.intern("Leonardo da Vinci");
        let b = t.intern("Mona Lisa");
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "Leonardo da Vinci");
        assert_eq!(t.resolve(b), "Mona Lisa");
    }

    #[test]
    fn intern_is_idempotent() {
        let mut t = AtomTable::new();
        let a = t.intern("x");
        let b = t.intern("x");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn get_does_not_insert() {
        let mut t = AtomTable::new();
        assert_eq!(t.get("missing"), None);
        assert!(t.is_empty());
        t.intern("present");
        assert!(t.get("present").is_some());
    }

    #[test]
    fn iter_yields_in_order() {
        let mut t = AtomTable::new();
        t.intern("a");
        t.intern("b");
        t.intern("c");
        let collected: Vec<_> = t.iter().map(|(_, s)| s.to_string()).collect();
        assert_eq!(collected, ["a", "b", "c"]);
    }

    #[test]
    fn serde_roundtrip_with_rebuild() {
        let mut t = AtomTable::new();
        let a = t.intern("hello");
        let json = serde_json::to_string(&t).unwrap();
        let mut back: AtomTable = serde_json::from_str(&json).unwrap();
        back.rebuild_lookup();
        assert_eq!(back.get("hello"), Some(a));
        assert_eq!(back.resolve(a), "hello");
    }
}
