//! # cypher — a Cypher-subset engine over the kgstore property graph
//!
//! The paper uses programming languages "as an intermediary bridge
//! between natural language and triples": the LLM is prompted to write
//! Cypher `CREATE` statements, which are executed on Neo4j and decoded
//! back into triples. This crate is that substrate:
//!
//! * [`lexer`] / [`parser`] / [`ast`] — a recursive-descent front-end for
//!   the subset LLM prompts elicit (`CREATE` node/relationship patterns,
//!   property maps, multi-hop paths, plus `MATCH … RETURN` for the full
//!   engine);
//! * [`exec`] — materialisation into [`kgstore::PropertyGraph`] with
//!   cross-statement variable bindings, and a backtracking matcher;
//! * [`decode`] — the pseudo-graph decode step (graph → `<s> <p> <o>`
//!   triples), including tolerant extraction of Cypher from raw LLM prose;
//! * [`analyze`] / [`diag`] — `cylint`, a static semantic analyzer with
//!   stable `CY00x` diagnostic codes and an auto-[`repair`] pass that
//!   salvages scripts the paper's pipeline would discard;
//! * [`error`] — taxonomy matching the paper's §4.6.1 error analysis
//!   (the spurious-`MATCH` failure mode is a first-class variant).

#![warn(missing_docs)]

pub mod analyze;
pub mod ast;
pub mod decode;
pub mod diag;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;

pub use analyze::{analyze, analyze_spanned, lint, repair, RepairOutcome};
pub use ast::{Direction, NodePattern, PathPattern, RelPattern, ReturnItem, Script, Statement};
pub use decode::{decode_llm_output, decode_script, extract_cypher};
pub use diag::{AppliedFix, Code, Diagnostic, Severity};
pub use error::{CypherError, Pos};
pub use exec::{build_graph, ExecOutput, Executor, Mode};
pub use parser::{parse, parse_spanned, SpannedScript};
