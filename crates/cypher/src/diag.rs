//! Structured diagnostics for the static analyzer (`cylint`).
//!
//! Every finding carries a stable machine-readable code (`CY001`–`CY008`),
//! a severity, and a source position, so the error-analysis harness can
//! aggregate failure modes across a whole benchmark run the same way the
//! paper's §4.6.1 table does — but with finer grain than "the script
//! failed".

use crate::error::Pos;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable diagnostic codes. The numeric ids (`CY001`…) never change
/// meaning; new checks append new codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Code {
    /// CY001: a `MATCH` statement in a construction-only script — the
    /// paper's dominant LLM failure mode.
    SpuriousMatch,
    /// CY002: a relationship endpoint variable that is never declared
    /// with labels or properties anywhere in the script.
    UnboundRelVar,
    /// CY003: a variable re-declared with a label conflicting with its
    /// earlier declaration.
    ConflictingLabel,
    /// CY004: a relationship with no type (`-[]->` or `-[r]->`).
    MissingRelType,
    /// CY005: a node declared but never connected to anything.
    DanglingNode,
    /// CY006: a relationship from a node to itself.
    SelfLoop,
    /// CY007: the same path pattern created twice.
    DuplicateCreate,
    /// CY008: the same property key given values of different types
    /// across declarations of one variable.
    SuspiciousPropType,
}

impl Code {
    /// All codes, in numeric order (handy for table headers).
    pub const ALL: [Code; 8] = [
        Code::SpuriousMatch,
        Code::UnboundRelVar,
        Code::ConflictingLabel,
        Code::MissingRelType,
        Code::DanglingNode,
        Code::SelfLoop,
        Code::DuplicateCreate,
        Code::SuspiciousPropType,
    ];

    /// The stable `CY00x` identifier.
    pub fn id(self) -> &'static str {
        match self {
            Code::SpuriousMatch => "CY001",
            Code::UnboundRelVar => "CY002",
            Code::ConflictingLabel => "CY003",
            Code::MissingRelType => "CY004",
            Code::DanglingNode => "CY005",
            Code::SelfLoop => "CY006",
            Code::DuplicateCreate => "CY007",
            Code::SuspiciousPropType => "CY008",
        }
    }

    /// Kebab-case name, aligned with [`crate::CypherError::category`]
    /// where the two taxonomies overlap (`spurious-match`).
    pub fn slug(self) -> &'static str {
        match self {
            Code::SpuriousMatch => "spurious-match",
            Code::UnboundRelVar => "unbound-relationship-variable",
            Code::ConflictingLabel => "variable-redefined-with-conflicting-label",
            Code::MissingRelType => "empty-or-missing-relationship-type",
            Code::DanglingNode => "dangling-node-never-connected",
            Code::SelfLoop => "self-loop",
            Code::DuplicateCreate => "duplicate-create",
            Code::SuspiciousPropType => "suspicious-property-type",
        }
    }

    /// The severity this code always carries. Only CY001 makes a script
    /// unexecutable in construction mode; everything else is advisory.
    pub fn severity(self) -> Severity {
        match self {
            Code::SpuriousMatch => Severity::Error,
            Code::UnboundRelVar | Code::ConflictingLabel | Code::MissingRelType => Severity::Warn,
            Code::DanglingNode
            | Code::SelfLoop
            | Code::DuplicateCreate
            | Code::SuspiciousPropType => Severity::Lint,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.id(), self.slug())
    }
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Style or redundancy; execution is unaffected.
    Lint,
    /// Likely not what the model meant; execution still succeeds.
    Warn,
    /// The script cannot execute in construction mode.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Lint => write!(f, "lint"),
            Severity::Warn => write!(f, "warn"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// Source position of the offending statement (`col == 0` when the
    /// script was analyzed without source spans).
    pub pos: Pos,
    /// Index of the offending statement in the script.
    pub stmt: usize,
    /// Human-readable explanation.
    pub msg: String,
}

impl Diagnostic {
    /// Build a diagnostic; severity is derived from the code.
    pub fn new(code: Code, pos: Pos, stmt: usize, msg: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            pos,
            stmt,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} [{}] at {}: {}",
            self.code.id(),
            self.code.slug(),
            self.severity,
            self.pos,
            self.msg
        )
    }
}

/// One fix the [`crate::analyze::repair`] pass applied.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppliedFix {
    /// The diagnostic code the fix addresses.
    pub code: Code,
    /// Index of the statement the fix targeted, in the *original* script.
    pub stmt: usize,
    /// What was done.
    pub action: String,
}

impl fmt::Display for AppliedFix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} stmt {}: {}", self.code.id(), self.stmt, self.action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let ids: Vec<&str> = Code::ALL.iter().map(|c| c.id()).collect();
        assert_eq!(
            ids,
            ["CY001", "CY002", "CY003", "CY004", "CY005", "CY006", "CY007", "CY008"]
        );
        let slugs: std::collections::HashSet<&str> = Code::ALL.iter().map(|c| c.slug()).collect();
        assert_eq!(slugs.len(), Code::ALL.len());
    }

    #[test]
    fn cy001_slug_matches_error_category() {
        use crate::error::CypherError;
        let e = CypherError::SpuriousMatch {
            pos: Pos::default(),
        };
        assert_eq!(Code::SpuriousMatch.slug(), e.category());
    }

    #[test]
    fn severity_ordering_puts_error_on_top() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Lint);
    }

    #[test]
    fn diagnostic_display_mentions_code_and_position() {
        let d = Diagnostic::new(Code::SelfLoop, Pos::new(12, 2, 8), 1, "(a)-[:R]->(a)");
        let s = d.to_string();
        assert!(s.contains("CY006"), "{s}");
        assert!(s.contains("self-loop"), "{s}");
        assert!(s.contains("line 2:8"), "{s}");
    }
}
