//! Recursive-descent parser for the Cypher subset.

use crate::ast::*;
use crate::error::{CypherError, Pos, Result};
use crate::lexer::{lex, Spanned, Tok};
use kgstore::Value;

/// Parse a full script.
pub fn parse(src: &str) -> Result<Script> {
    Ok(parse_spanned(src)?.script)
}

/// A parsed script plus the source position of each top-level statement
/// (`spans[i]` is where `script.statements[i]` begins). The analyzer uses
/// these to anchor diagnostics to real source locations.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedScript {
    /// The parsed script.
    pub script: Script,
    /// One position per statement, same order as `script.statements`.
    pub spans: Vec<Pos>,
}

/// Parse a full script, keeping per-statement source positions.
pub fn parse_spanned(src: &str) -> Result<SpannedScript> {
    let toks = lex(src)?;
    Parser { toks, i: 0 }.script()
}

struct Parser {
    toks: Vec<Spanned>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<()> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn unexpected(&self, expected: &str) -> CypherError {
        CypherError::Parse {
            pos: self.pos(),
            expected: expected.to_string(),
            found: self.peek().to_string(),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn script(&mut self) -> Result<SpannedScript> {
        let mut statements = Vec::new();
        let mut spans = Vec::new();
        loop {
            let stmt_pos = self.pos();
            match self.peek() {
                Tok::Eof => break,
                Tok::Create => {
                    self.bump();
                    spans.push(stmt_pos);
                    statements.push(Statement::Create(self.pattern_list()?));
                }
                Tok::Merge => {
                    self.bump();
                    spans.push(stmt_pos);
                    statements.push(Statement::Merge(self.pattern_list()?));
                }
                Tok::Match => {
                    self.bump();
                    spans.push(stmt_pos);
                    let patterns = self.pattern_list()?;
                    let mut conditions = Vec::new();
                    if *self.peek() == Tok::Where {
                        self.bump();
                        loop {
                            let var = self.ident("condition variable")?;
                            self.expect(&Tok::Dot, "'.'")?;
                            let prop = self.ident("property name")?;
                            self.expect(&Tok::Eq, "'='")?;
                            let value = self.value()?;
                            conditions.push(Condition { var, prop, value });
                            if *self.peek() == Tok::And {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    let mut returns = Vec::new();
                    if *self.peek() == Tok::Return {
                        self.bump();
                        loop {
                            let var = self.ident("return variable")?;
                            let prop = if *self.peek() == Tok::Dot {
                                self.bump();
                                Some(self.ident("property name")?)
                            } else {
                                None
                            };
                            returns.push(ReturnItem { var, prop });
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    statements.push(Statement::Match {
                        patterns,
                        conditions,
                        returns,
                    });
                }
                _ => return Err(self.unexpected("CREATE, MERGE, or MATCH")),
            }
        }
        Ok(SpannedScript {
            script: Script { statements },
            spans,
        })
    }

    /// One or more comma-separated path patterns. A comma is only a
    /// pattern separator when followed by `(`; this keeps statements like
    /// `CREATE (a), (b)` working while not requiring commas between
    /// statements.
    fn pattern_list(&mut self) -> Result<Vec<PathPattern>> {
        let mut out = vec![self.path_pattern()?];
        while *self.peek() == Tok::Comma {
            self.bump();
            out.push(self.path_pattern()?);
        }
        Ok(out)
    }

    fn path_pattern(&mut self) -> Result<PathPattern> {
        let start = self.node_pattern()?;
        let mut hops = Vec::new();
        loop {
            match self.peek() {
                Tok::Dash => {
                    self.bump();
                    let rel = self.rel_body(Direction::Out)?;
                    // after `]` expect `->` (directed) or `-` (we treat
                    // undirected as Out; LLM output is always directed)
                    match self.bump() {
                        Tok::Arrow => {}
                        Tok::Dash => {}
                        _ => {
                            self.i -= 1;
                            return Err(self.unexpected("'->' or '-'"));
                        }
                    }
                    let node = self.node_pattern()?;
                    hops.push((rel, node));
                }
                Tok::BackArrow => {
                    self.bump();
                    let rel = self.rel_body(Direction::In)?;
                    self.expect(&Tok::Dash, "'-'")?;
                    let node = self.node_pattern()?;
                    hops.push((rel, node));
                }
                _ => break,
            }
        }
        Ok(PathPattern { start, hops })
    }

    /// Parse `[var:TYPE {props}]` (the brackets included); direction is
    /// supplied by the caller.
    fn rel_body(&mut self, direction: Direction) -> Result<RelPattern> {
        self.expect(&Tok::LBracket, "'['")?;
        let mut rel = RelPattern {
            var: None,
            rel_type: None,
            props: Vec::new(),
            direction,
        };
        if let Tok::Ident(v) = self.peek().clone() {
            rel.var = Some(v);
            self.bump();
        }
        if *self.peek() == Tok::Colon {
            self.bump();
            rel.rel_type = Some(self.ident("relationship type")?);
        }
        if *self.peek() == Tok::LBrace {
            rel.props = self.prop_map()?;
        }
        self.expect(&Tok::RBracket, "']'")?;
        Ok(rel)
    }

    fn node_pattern(&mut self) -> Result<NodePattern> {
        self.expect(&Tok::LParen, "'('")?;
        let mut node = NodePattern::default();
        if let Tok::Ident(v) = self.peek().clone() {
            node.var = Some(v);
            self.bump();
        }
        while *self.peek() == Tok::Colon {
            self.bump();
            node.labels.push(self.ident("label")?);
        }
        if *self.peek() == Tok::LBrace {
            node.props = self.prop_map()?;
        }
        self.expect(&Tok::RParen, "')'")?;
        Ok(node)
    }

    fn prop_map(&mut self) -> Result<Vec<(String, Value)>> {
        self.expect(&Tok::LBrace, "'{'")?;
        let mut props = Vec::new();
        if *self.peek() != Tok::RBrace {
            loop {
                let key = self.ident("property key")?;
                self.expect(&Tok::Colon, "':'")?;
                let value = self.value()?;
                props.push((key, value));
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RBrace, "'}'")?;
        Ok(props)
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek().clone() {
            Tok::Str(s) => {
                self.bump();
                Ok(Value::Str(s))
            }
            Tok::Int(i) => {
                self.bump();
                Ok(Value::Int(i))
            }
            Tok::Float(f) => {
                self.bump();
                Ok(Value::Float(f))
            }
            Tok::Bool(b) => {
                self.bump();
                Ok(Value::Bool(b))
            }
            // Bare identifiers as values (LLMs write {name: Peru}
            // occasionally); treat as string.
            Tok::Ident(s) => {
                self.bump();
                Ok(Value::Str(s))
            }
            _ => Err(self.unexpected("a literal value")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example_nodes() {
        let src = "// Create Great Lakes nodes\n\
                   CREATE (superior:Lake {name: 'Lake Superior', area: 82000})\n\
                   CREATE (michigan:Lake {name: 'Lake Michigan', area: 58000})";
        let script = parse(src).unwrap();
        assert_eq!(script.statements.len(), 2);
        match &script.statements[0] {
            Statement::Create(p) => {
                assert_eq!(p[0].start.var.as_deref(), Some("superior"));
                assert_eq!(p[0].start.labels, ["Lake"]);
                assert_eq!(p[0].start.props.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_paper_example_relationship_chain() {
        let src = "CREATE (andes)-[:COVERS]->(ecuador:Country {name: \"Ecuador\"})";
        let script = parse(src).unwrap();
        match &script.statements[0] {
            Statement::Create(p) => {
                assert_eq!(p[0].hops.len(), 1);
                let (rel, node) = &p[0].hops[0];
                assert_eq!(rel.rel_type.as_deref(), Some("COVERS"));
                assert_eq!(rel.direction, Direction::Out);
                assert_eq!(node.labels, ["Country"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_multi_hop_path() {
        let src = "CREATE (a)-[:R1]->(b)-[:R2]->(c)";
        let script = parse(src).unwrap();
        match &script.statements[0] {
            Statement::Create(p) => assert_eq!(p[0].hops.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_incoming_relationship() {
        let src = "CREATE (a)<-[:IN]-(b)";
        let script = parse(src).unwrap();
        match &script.statements[0] {
            Statement::Create(p) => {
                assert_eq!(p[0].hops[0].0.direction, Direction::In);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_comma_separated_patterns() {
        let src = "CREATE (a:X), (b:Y), (a)-[:R]->(b)";
        let script = parse(src).unwrap();
        match &script.statements[0] {
            Statement::Create(p) => assert_eq!(p.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_match_return() {
        let src = "MATCH (x:Lake) RETURN x.name, x";
        let script = parse(src).unwrap();
        match &script.statements[0] {
            Statement::Match {
                patterns,
                conditions: _,
                returns,
            } => {
                assert_eq!(patterns.len(), 1);
                assert_eq!(returns.len(), 2);
                assert_eq!(returns[0].prop.as_deref(), Some("name"));
                assert_eq!(returns[1].prop, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_merge() {
        let script = parse("MERGE (a:Lake {name: \"Lake Erie\"})").unwrap();
        assert!(matches!(&script.statements[0], Statement::Merge(p) if p.len() == 1));
    }

    #[test]
    fn parses_where_conditions() {
        let script =
            parse("MATCH (x:Lake) WHERE x.area = 82000 AND x.name = \"Erie\" RETURN x").unwrap();
        match &script.statements[0] {
            Statement::Match { conditions, .. } => {
                assert_eq!(conditions.len(), 2);
                assert_eq!(conditions[0].prop, "area");
                assert_eq!(conditions[1].value, Value::Str("Erie".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn spans_track_statement_starts() {
        let src = "// comment\nCREATE (a)\nMATCH (x) RETURN x\nMERGE (b:Y)";
        let spanned = parse_spanned(src).unwrap();
        assert_eq!(spanned.spans.len(), spanned.script.statements.len());
        let lines: Vec<u32> = spanned.spans.iter().map(|p| p.line).collect();
        assert_eq!(lines, [2, 3, 4]);
        assert!(spanned.spans.iter().all(|p| p.col == 1));
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse("CREATE superior:Lake").is_err());
        assert!(parse("CREATE (a").is_err());
        assert!(parse("(a)").is_err());
    }

    #[test]
    fn error_reports_position() {
        let err = parse("CREATE (a:Lake {name: })").unwrap_err();
        match err {
            CypherError::Parse { expected, .. } => assert!(expected.contains("literal")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bare_ident_value_becomes_string() {
        let script = parse("CREATE (a {name: Peru})").unwrap();
        match &script.statements[0] {
            Statement::Create(p) => {
                assert_eq!(p[0].start.props[0].1, Value::Str("Peru".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn print_parse_roundtrip() {
        let srcs = [
            "CREATE (superior:Lake {name: \"Lake Superior\", area: 82000})",
            "CREATE (a)-[:COVERS]->(b:Country {name: \"Peru\"})-[:IN]->(c)",
            "MATCH (x:Lake) RETURN x.name",
            "CREATE (a:X), (b:Y {w: 2.5}), (a)-[:R {since: 1990}]->(b)",
            "MERGE (a:Lake {name: \"Erie\"})",
            "MATCH (x:Lake) WHERE x.area = 82000 RETURN x.name",
        ];
        for src in srcs {
            let ast = parse(src).unwrap();
            let printed = ast.to_string();
            let reparsed = parse(&printed).unwrap();
            assert_eq!(ast, reparsed, "roundtrip failed for {src}");
        }
    }
}
