//! Executor: materialise `CREATE` statements into a
//! [`kgstore::PropertyGraph`] and evaluate `MATCH … RETURN` queries.
//!
//! Semantics follow what the paper's use of Neo4j requires, with one
//! LLM-friendly leniency: re-using a bound variable in a later `CREATE`
//! refers to the existing node (Neo4j would raise on re-declaration with
//! new labels; generated scripts re-mention variables constantly).

use crate::ast::*;
use crate::error::{CypherError, Result};
use kgstore::hash::FxHashMap;
use kgstore::{Node, NodeId, PropertyGraph, Relationship, Value};

/// Execution mode: whether `MATCH` is allowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Full engine: `CREATE` and `MATCH` both work.
    Full,
    /// Pseudo-graph construction: only `CREATE` is legal; a `MATCH`
    /// raises [`CypherError::SpuriousMatch`] (the paper's §4.6.1 error).
    CreateOnly,
}

/// One row of a `MATCH … RETURN` result.
pub type Row = Vec<Value>;

/// The result of running a script.
#[derive(Debug, Default)]
pub struct ExecOutput {
    /// Rows produced by `MATCH … RETURN` statements (empty in
    /// [`Mode::CreateOnly`]).
    pub rows: Vec<Row>,
}

/// A stateful executor holding the graph and variable bindings.
#[derive(Debug, Default)]
pub struct Executor {
    graph: PropertyGraph,
    bindings: FxHashMap<String, NodeId>,
}

impl Executor {
    /// Fresh executor with an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// The graph built so far.
    pub fn graph(&self) -> &PropertyGraph {
        &self.graph
    }

    /// Consume the executor, returning the graph.
    pub fn into_graph(self) -> PropertyGraph {
        self.graph
    }

    /// Run a whole script.
    pub fn run(&mut self, script: &Script, mode: Mode) -> Result<ExecOutput> {
        let mut out = ExecOutput::default();
        for stmt in &script.statements {
            match stmt {
                Statement::Create(patterns) => self.run_create(patterns, false)?,
                Statement::Merge(patterns) => self.run_create(patterns, true)?,
                Statement::Match {
                    patterns,
                    conditions,
                    returns,
                } => {
                    if mode == Mode::CreateOnly {
                        return Err(CypherError::SpuriousMatch {
                            pos: crate::error::Pos::default(),
                        });
                    }
                    out.rows
                        .extend(self.run_match(patterns, conditions, returns)?);
                }
            }
        }
        Ok(out)
    }

    fn run_create(&mut self, patterns: &[PathPattern], merge: bool) -> Result<()> {
        for path in patterns {
            let mut prev = self.materialize_node(&path.start, merge);
            for (rel, node) in &path.hops {
                let next = self.materialize_node(node, merge);
                let (src, dst) = match rel.direction {
                    Direction::Out => (prev, next),
                    Direction::In => (next, prev),
                };
                self.graph.add_rel(Relationship {
                    src,
                    dst,
                    rel_type: rel
                        .rel_type
                        .clone()
                        .unwrap_or_else(|| "RELATED_TO".to_string()),
                    props: rel.props.iter().cloned().collect(),
                });
                prev = next;
            }
        }
        Ok(())
    }

    /// Create or re-use the node a pattern denotes; merge labels/props
    /// into an existing binding. With `merge = true` (the `MERGE`
    /// statement), an unbound pattern first searches the graph for a
    /// structurally matching node before creating one.
    fn materialize_node(&mut self, pat: &NodePattern, merge: bool) -> NodeId {
        if let Some(var) = &pat.var {
            if let Some(&id) = self.bindings.get(var) {
                let node = self.graph.node_mut(id);
                for l in &pat.labels {
                    if !node.labels.contains(l) {
                        node.labels.push(l.clone());
                    }
                }
                for (k, v) in &pat.props {
                    node.props.insert(k.clone(), v.clone());
                }
                return id;
            }
        }
        if merge && (!pat.labels.is_empty() || !pat.props.is_empty()) {
            let found = self
                .graph
                .nodes()
                .find(|(_, node)| {
                    pat.labels.iter().all(|l| node.labels.contains(l))
                        && pat
                            .props
                            .iter()
                            .all(|(k, v)| node.props.get(k).is_some_and(|nv| nv == v))
                })
                .map(|(id, _)| id);
            if let Some(id) = found {
                if let Some(var) = &pat.var {
                    self.bindings.insert(var.clone(), id);
                }
                return id;
            }
        }
        let id = self.graph.add_node(Node {
            labels: pat.labels.clone(),
            props: pat.props.iter().cloned().collect(),
        });
        if let Some(var) = &pat.var {
            self.bindings.insert(var.clone(), id);
        }
        id
    }

    fn run_match(
        &self,
        patterns: &[PathPattern],
        conditions: &[Condition],
        returns: &[ReturnItem],
    ) -> Result<Vec<Row>> {
        // Backtracking match over all patterns jointly, then WHERE
        // filtering at projection time.
        let mut rows = Vec::new();
        let mut env: FxHashMap<String, NodeId> = FxHashMap::default();
        self.match_patterns(patterns, 0, &mut env, conditions, returns, &mut rows)?;
        Ok(rows)
    }

    fn conditions_hold(&self, env: &FxHashMap<String, NodeId>, conditions: &[Condition]) -> bool {
        conditions.iter().all(|c| {
            env.get(&c.var).is_some_and(|&id| {
                self.graph
                    .node(id)
                    .props
                    .get(&c.prop)
                    .is_some_and(|v| *v == c.value)
            })
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn match_patterns(
        &self,
        patterns: &[PathPattern],
        idx: usize,
        env: &mut FxHashMap<String, NodeId>,
        conditions: &[Condition],
        returns: &[ReturnItem],
        rows: &mut Vec<Row>,
    ) -> Result<()> {
        if idx == patterns.len() {
            if self.conditions_hold(env, conditions) {
                rows.push(self.project(env, returns)?);
            }
            return Ok(());
        }
        let path = &patterns[idx];
        let candidates = self.node_candidates(&path.start, env);
        for start in candidates {
            let mut trail = vec![(path.start.var.clone(), start)];
            self.match_hops(
                path, 0, start, env, &mut trail, patterns, idx, conditions, returns, rows,
            )?;
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn match_hops(
        &self,
        path: &PathPattern,
        hop: usize,
        at: NodeId,
        env: &mut FxHashMap<String, NodeId>,
        trail: &mut Vec<(Option<String>, NodeId)>,
        patterns: &[PathPattern],
        idx: usize,
        conditions: &[Condition],
        returns: &[ReturnItem],
        rows: &mut Vec<Row>,
    ) -> Result<()> {
        if hop == path.hops.len() {
            // Commit bindings in the trail, recurse to next pattern.
            let mut added = Vec::new();
            let mut ok = true;
            for (var, id) in trail.iter() {
                if let Some(v) = var {
                    match env.get(v) {
                        Some(&bound) if bound != *id => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            env.insert(v.clone(), *id);
                            added.push(v.clone());
                        }
                    }
                }
            }
            if ok {
                self.match_patterns(patterns, idx + 1, env, conditions, returns, rows)?;
            }
            for v in added {
                env.remove(&v);
            }
            return Ok(());
        }
        let (rel, node_pat) = &path.hops[hop];
        for r in self.graph.rels() {
            let (from, to) = match rel.direction {
                Direction::Out => (r.src, r.dst),
                Direction::In => (r.dst, r.src),
            };
            if from != at {
                continue;
            }
            if let Some(t) = &rel.rel_type {
                if &r.rel_type != t {
                    continue;
                }
            }
            if !self.node_matches(to, node_pat, env) {
                continue;
            }
            trail.push((node_pat.var.clone(), to));
            self.match_hops(
                path,
                hop + 1,
                to,
                env,
                trail,
                patterns,
                idx,
                conditions,
                returns,
                rows,
            )?;
            trail.pop();
        }
        Ok(())
    }

    fn node_candidates(&self, pat: &NodePattern, env: &FxHashMap<String, NodeId>) -> Vec<NodeId> {
        if let Some(var) = &pat.var {
            if let Some(&id) = env.get(var) {
                return if self.node_matches(id, pat, env) {
                    vec![id]
                } else {
                    vec![]
                };
            }
        }
        self.graph
            .nodes()
            .filter(|(id, _)| self.node_matches(*id, pat, env))
            .map(|(id, _)| id)
            .collect()
    }

    fn node_matches(&self, id: NodeId, pat: &NodePattern, env: &FxHashMap<String, NodeId>) -> bool {
        if let Some(var) = &pat.var {
            if let Some(&bound) = env.get(var) {
                if bound != id {
                    return false;
                }
            }
        }
        let node = self.graph.node(id);
        pat.labels.iter().all(|l| node.labels.contains(l))
            && pat
                .props
                .iter()
                .all(|(k, v)| node.props.get(k).is_some_and(|nv| nv == v))
    }

    fn project(&self, env: &FxHashMap<String, NodeId>, returns: &[ReturnItem]) -> Result<Row> {
        let mut row = Vec::with_capacity(returns.len());
        for item in returns {
            let id = *env.get(&item.var).ok_or_else(|| CypherError::Exec {
                msg: format!("unbound return variable '{}'", item.var),
            })?;
            let node = self.graph.node(id);
            match &item.prop {
                Some(p) => row.push(
                    node.props
                        .get(p)
                        .cloned()
                        .unwrap_or_else(|| Value::Str(String::new())),
                ),
                None => row.push(Value::Str(node.display_name(id))),
            }
        }
        Ok(row)
    }
}

/// Parse and run `src` in [`Mode::CreateOnly`], returning the built graph.
/// This is the exact operation the paper performs on LLM pseudo-graph
/// output ("run the Cypher queries on Neo4j and decode them into
/// triples").
pub fn build_graph(src: &str) -> Result<PropertyGraph> {
    let script = crate::parser::parse(src)?;
    let mut exec = Executor::new();
    exec.run(&script, Mode::CreateOnly)?;
    Ok(exec.into_graph())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run_full(src: &str) -> (PropertyGraph, ExecOutput) {
        let script = parse(src).unwrap();
        let mut exec = Executor::new();
        let out = exec.run(&script, Mode::Full).unwrap();
        (exec.into_graph(), out)
    }

    #[test]
    fn create_builds_nodes_and_rels() {
        let (g, _) = run_full(
            "CREATE (andes:MountainRange {name: \"Andes\"})\n\
             CREATE (andes)-[:COVERS]->(peru:Country {name: \"Peru\"})",
        );
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.rel_count(), 1);
        assert_eq!(g.rels()[0].rel_type, "COVERS");
    }

    #[test]
    fn variable_reuse_across_statements() {
        let (g, _) = run_full(
            "CREATE (a:X {name: \"A\"})\n\
             CREATE (a)-[:R]->(b:Y {name: \"B\"})\n\
             CREATE (a)-[:R]->(c:Z {name: \"C\"})",
        );
        assert_eq!(
            g.node_count(),
            3,
            "variable a must be reused, not re-created"
        );
        assert_eq!(g.rel_count(), 2);
    }

    #[test]
    fn rebinding_merges_labels_and_props() {
        let (g, _) = run_full("CREATE (a:X)\nCREATE (a:Y {name: \"A\"})");
        assert_eq!(g.node_count(), 1);
        let (_, node) = g.nodes().next().unwrap();
        assert_eq!(node.labels, ["X", "Y"]);
        assert_eq!(node.props.get("name"), Some(&Value::Str("A".into())));
    }

    #[test]
    fn incoming_direction_reverses_edge() {
        let (g, _) = run_full("CREATE (a {name: \"A\"})<-[:IN]-(b {name: \"B\"})");
        let rel = &g.rels()[0];
        assert_eq!(g.node(rel.src).display_name(rel.src), "B");
        assert_eq!(g.node(rel.dst).display_name(rel.dst), "A");
    }

    #[test]
    fn create_only_mode_rejects_match() {
        let script = parse("MATCH (x) RETURN x").unwrap();
        let mut exec = Executor::new();
        let err = exec.run(&script, Mode::CreateOnly).unwrap_err();
        assert!(err.is_spurious_match());
    }

    #[test]
    fn match_returns_rows() {
        let (_, out) = {
            let script = parse(
                "CREATE (s:Lake {name: \"Lake Superior\", area: 82000})\n\
                 CREATE (m:Lake {name: \"Lake Michigan\", area: 58000})\n\
                 MATCH (x:Lake) RETURN x.name",
            )
            .unwrap();
            let mut exec = Executor::new();
            let out = exec.run(&script, Mode::Full).unwrap();
            (exec.into_graph(), out)
        };
        let mut names: Vec<String> = out
            .rows
            .iter()
            .map(|r| match &r[0] {
                Value::Str(s) => s.clone(),
                other => other.as_triple_text(),
            })
            .collect();
        names.sort();
        assert_eq!(names, ["Lake Michigan", "Lake Superior"]);
    }

    #[test]
    fn match_with_relationship_pattern() {
        let script = parse(
            "CREATE (andes {name: \"Andes\"})-[:COVERS]->(peru {name: \"Peru\"})\n\
             CREATE (andes)-[:COVERS]->(chile {name: \"Chile\"})\n\
             CREATE (himalayas {name: \"Himalayas\"})-[:COVERS]->(nepal {name: \"Nepal\"})\n\
             MATCH (m {name: \"Andes\"})-[:COVERS]->(c) RETURN c.name",
        )
        .unwrap();
        let mut exec = Executor::new();
        let out = exec.run(&script, Mode::Full).unwrap();
        let mut names: Vec<String> = out.rows.iter().map(|r| r[0].as_triple_text()).collect();
        names.sort();
        assert_eq!(names, ["Chile", "Peru"]);
    }

    #[test]
    fn match_respects_property_filters() {
        let script = parse(
            "CREATE (a:Lake {name: \"A\", area: 1})\n\
             CREATE (b:Lake {name: \"B\", area: 2})\n\
             MATCH (x:Lake {area: 2}) RETURN x.name",
        )
        .unwrap();
        let mut exec = Executor::new();
        let out = exec.run(&script, Mode::Full).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0], Value::Str("B".into()));
    }

    #[test]
    fn merge_reuses_matching_nodes() {
        let (g, _) = run_full(
            "CREATE (a:Country {name: \"Peru\"})\n\
             MERGE (b:Country {name: \"Peru\"})\n\
             MERGE (c:Country {name: \"Chile\"})",
        );
        assert_eq!(g.node_count(), 2, "MERGE must reuse the existing Peru node");
    }

    #[test]
    fn merge_in_paths_deduplicates_endpoints() {
        let (g, _) = run_full(
            "CREATE (andes:MountainRange {name: \"Andes\"})\n\
             MERGE (x:MountainRange {name: \"Andes\"})-[:COVERS]->(peru:Country {name: \"Peru\"})",
        );
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.rel_count(), 1);
    }

    #[test]
    fn where_filters_rows() {
        let script = parse(
            "CREATE (a:Lake {name: \"A\", area: 1})\n\
             CREATE (b:Lake {name: \"B\", area: 2})\n\
             MATCH (x:Lake) WHERE x.area = 2 RETURN x.name",
        )
        .unwrap();
        let mut exec = Executor::new();
        let out = exec.run(&script, Mode::Full).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0], Value::Str("B".into()));
    }

    #[test]
    fn where_on_unbound_variable_yields_no_rows() {
        let script = parse(
            "CREATE (a:Lake {name: \"A\"})\n\
             MATCH (x:Lake) WHERE y.area = 2 RETURN x.name",
        )
        .unwrap();
        let mut exec = Executor::new();
        let out = exec.run(&script, Mode::Full).unwrap();
        assert!(out.rows.is_empty());
    }

    #[test]
    fn merge_rejected_in_create_only_is_not_required() {
        // MERGE is construction, so it is legal in CreateOnly mode.
        let script = parse("MERGE (a:Lake {name: \"Erie\"})").unwrap();
        let mut exec = Executor::new();
        exec.run(&script, Mode::CreateOnly).unwrap();
        assert_eq!(exec.graph().node_count(), 1);
    }

    #[test]
    fn build_graph_decodes_paper_example() {
        let g = build_graph(
            "CREATE (visionpro:Device {name: \"Apple Vision Pro\"})\n\
             CREATE (visionpro)-[:COMES_WITH]->(chip:Chip {name: \"M2\"})",
        )
        .unwrap();
        let triples = g.decode_triples();
        assert!(triples
            .iter()
            .any(|t| t.s == "Apple Vision Pro" && t.p == "COMES_WITH" && t.o == "M2"));
    }

    #[test]
    fn unbound_return_variable_is_exec_error() {
        let script = parse("MATCH (x) RETURN y").unwrap();
        let mut exec = Executor::new();
        // empty graph → no rows → project never called; add a node first
        exec.run(&parse("CREATE (a)").unwrap(), Mode::Full).unwrap();
        let err = exec.run(&script, Mode::Full).unwrap_err();
        assert_eq!(err.category(), "exec");
    }
}
