//! Error taxonomy for the Cypher engine.
//!
//! The taxonomy mirrors the paper's §4.6.1 error analysis: the dominant
//! LLM failure when generating pseudo-graph Cypher is emitting `MATCH`
//! (a query) where only `CREATE` (construction) is expected. That case
//! gets its own variant so the harness can count it separately.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Position of an error in the source text (byte offset + line + column).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pos {
    /// Byte offset into the script.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (in characters, not bytes). 0 when unknown, e.g.
    /// for positions attached to in-memory ASTs that never had source.
    pub col: u32,
}

impl Pos {
    /// Build a position.
    pub const fn new(offset: usize, line: u32, col: u32) -> Self {
        Pos { offset, line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col == 0 {
            write!(f, "line {}", self.line)
        } else {
            write!(f, "line {}:{}", self.line, self.col)
        }
    }
}

/// Any error raised while lexing, parsing, or executing Cypher.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CypherError {
    /// A character the lexer cannot start a token with.
    Lex {
        /// Where it happened.
        pos: Pos,
        /// Human-readable message.
        msg: String,
    },
    /// A structural parse failure.
    Parse {
        /// Where it happened.
        pos: Pos,
        /// What the parser expected.
        expected: String,
        /// What it found instead.
        found: String,
    },
    /// A `MATCH` clause appeared in a context where only graph
    /// construction is allowed (pseudo-graph generation). This is the
    /// paper's reported 0.6% GPT-3.5 failure mode.
    SpuriousMatch {
        /// Where the `MATCH` was found.
        pos: Pos,
    },
    /// Execution referenced something inconsistent (e.g. relationship
    /// between patterns that never created a node).
    Exec {
        /// Human-readable message.
        msg: String,
    },
}

impl CypherError {
    /// Whether this error is the spurious-`MATCH` failure mode.
    pub fn is_spurious_match(&self) -> bool {
        matches!(self, CypherError::SpuriousMatch { .. })
    }

    /// Short machine-readable category name (for error-analysis tables).
    pub fn category(&self) -> &'static str {
        match self {
            CypherError::Lex { .. } => "lex",
            CypherError::Parse { .. } => "parse",
            CypherError::SpuriousMatch { .. } => "spurious-match",
            CypherError::Exec { .. } => "exec",
        }
    }
}

impl fmt::Display for CypherError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CypherError::Lex { pos, msg } => write!(f, "lex error at {pos}: {msg}"),
            CypherError::Parse {
                pos,
                expected,
                found,
            } => {
                write!(
                    f,
                    "parse error at {pos}: expected {expected}, found {found}"
                )
            }
            CypherError::SpuriousMatch { pos } => {
                write!(
                    f,
                    "spurious MATCH at {pos}: pseudo-graph scripts must only CREATE"
                )
            }
            CypherError::Exec { msg } => write!(f, "execution error: {msg}"),
        }
    }
}

impl std::error::Error for CypherError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CypherError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories() {
        let p = Pos::new(0, 1, 1);
        assert_eq!(
            CypherError::SpuriousMatch { pos: p }.category(),
            "spurious-match"
        );
        assert!(CypherError::SpuriousMatch { pos: p }.is_spurious_match());
        assert!(!CypherError::Exec { msg: "x".into() }.is_spurious_match());
    }

    #[test]
    fn display_contains_line_and_col() {
        let e = CypherError::Parse {
            pos: Pos::new(10, 3, 5),
            expected: "')'".into(),
            found: "','".into(),
        };
        let s = e.to_string();
        assert!(s.contains("line 3:5") && s.contains("')'"));
    }

    #[test]
    fn display_omits_unknown_col() {
        assert_eq!(
            Pos {
                offset: 7,
                line: 2,
                col: 0
            }
            .to_string(),
            "line 2"
        );
        assert_eq!(Pos::default().to_string(), "line 0");
    }
}
