//! `cylint`: static semantic analysis and auto-repair for LLM-emitted
//! Cypher construction scripts.
//!
//! [`analyze`] inspects a parsed [`Script`] and reports [`Diagnostic`]s
//! with stable `CY00x` codes — without executing anything. [`repair`]
//! rewrites a script so that construction-mode execution is guaranteed to
//! succeed: spurious `MATCH` statements are dropped, duplicate `CREATE`
//! patterns are removed, and undeclared relationship endpoints get a
//! synthesized `name` so decoded triples stay meaningful.
//!
//! The pipeline runs analyze → repair between LLM decoding and graph
//! construction, which turns the paper's §4.6.1 "discard the whole
//! script" failure mode into a salvage opportunity.

use crate::ast::{PathPattern, Script, Statement};
use crate::diag::{AppliedFix, Code, Diagnostic};
use crate::error::Pos;
use crate::parser::parse_spanned;
use kgstore::Value;
use std::collections::{HashMap, HashSet};

/// Coarse value classes for CY008: `Int` and `Float` are both "number"
/// so `area: 82000` vs `area: 82000.5` does not fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ValueClass {
    Num,
    Text,
    Bool,
}

fn class_of(v: &Value) -> ValueClass {
    match v {
        Value::Int(_) | Value::Float(_) => ValueClass::Num,
        Value::Str(_) => ValueClass::Text,
        Value::Bool(_) => ValueClass::Bool,
    }
}

fn class_name(c: ValueClass) -> &'static str {
    match c {
        ValueClass::Num => "number",
        ValueClass::Text => "string",
        ValueClass::Bool => "boolean",
    }
}

/// Identity of a node pattern for connectivity checks: the variable if
/// bound, else the `name` property, else nothing comparable.
fn node_identity(pat: &crate::ast::NodePattern) -> Option<String> {
    if let Some(v) = &pat.var {
        return Some(format!("var:{v}"));
    }
    pat.props.iter().find_map(|(k, v)| {
        (k == "name").then(|| match v {
            Value::Str(s) => format!("name:{s}"),
            other => format!("name:{}", other.as_triple_text()),
        })
    })
}

fn is_bare_ref(pat: &crate::ast::NodePattern) -> bool {
    pat.var.is_some() && pat.labels.is_empty() && pat.props.is_empty()
}

/// Facts gathered in one pass over the construction statements.
#[derive(Default)]
struct Facts {
    /// Variables that carry labels or properties somewhere.
    declared: HashSet<String>,
    /// Variables that participate in at least one relationship.
    connected: HashSet<String>,
}

fn collect_facts(script: &Script) -> Facts {
    let mut facts = Facts::default();
    for stmt in &script.statements {
        let patterns = match stmt {
            Statement::Create(p) | Statement::Merge(p) => p,
            Statement::Match { .. } => continue,
        };
        for path in patterns {
            let nodes = std::iter::once(&path.start).chain(path.hops.iter().map(|(_, n)| n));
            for node in nodes {
                if let Some(v) = &node.var {
                    if !node.labels.is_empty() || !node.props.is_empty() {
                        facts.declared.insert(v.clone());
                    }
                }
            }
            if !path.hops.is_empty() {
                for node in std::iter::once(&path.start).chain(path.hops.iter().map(|(_, n)| n)) {
                    if let Some(v) = &node.var {
                        facts.connected.insert(v.clone());
                    }
                }
            }
        }
    }
    facts
}

/// Analyze a script without source spans; diagnostics carry
/// [`Pos::default`] positions (statement indices are still set).
pub fn analyze(script: &Script) -> Vec<Diagnostic> {
    analyze_spanned(script, &[])
}

/// Analyze a script, anchoring each diagnostic at its statement's source
/// position (`spans` as produced by [`parse_spanned`]). Missing spans
/// degrade to [`Pos::default`].
pub fn analyze_spanned(script: &Script, spans: &[Pos]) -> Vec<Diagnostic> {
    let facts = collect_facts(script);
    let pos_of = |i: usize| spans.get(i).copied().unwrap_or_default();
    let mut diags = Vec::new();

    // Running state for checks that compare an occurrence against earlier
    // ones. Walking statements in order keeps diagnostic order (and the
    // whole pipeline) deterministic.
    let mut first_labels: HashMap<String, Vec<String>> = HashMap::new();
    let mut label_flagged: HashSet<String> = HashSet::new();
    let mut prop_classes: HashMap<(String, String), ValueClass> = HashMap::new();
    let mut prop_flagged: HashSet<(String, String)> = HashSet::new();
    let mut unbound_flagged: HashSet<String> = HashSet::new();
    let mut dangling_flagged: HashSet<String> = HashSet::new();
    let mut seen_create_paths: HashSet<String> = HashSet::new();

    for (i, stmt) in script.statements.iter().enumerate() {
        let pos = pos_of(i);
        let patterns = match stmt {
            Statement::Match { .. } => {
                diags.push(Diagnostic::new(
                    Code::SpuriousMatch,
                    pos,
                    i,
                    "MATCH query in a construction-only script",
                ));
                continue;
            }
            Statement::Create(p) | Statement::Merge(p) => p,
        };
        let is_create = matches!(stmt, Statement::Create(_));

        for path in patterns {
            let nodes: Vec<&crate::ast::NodePattern> = std::iter::once(&path.start)
                .chain(path.hops.iter().map(|(_, n)| n))
                .collect();

            // CY003 / CY008: per-occurrence consistency with earlier uses.
            for node in &nodes {
                let Some(ident) = node_identity(node) else {
                    continue;
                };
                if !node.labels.is_empty() {
                    match first_labels.get(&ident) {
                        None => {
                            first_labels.insert(ident.clone(), node.labels.clone());
                        }
                        Some(prev) => {
                            let conflict = node.labels.iter().find(|l| !prev.contains(l));
                            if let Some(l) = conflict {
                                if label_flagged.insert(ident.clone()) {
                                    diags.push(Diagnostic::new(
                                        Code::ConflictingLabel,
                                        pos,
                                        i,
                                        format!(
                                            "'{}' re-declared with label :{l} (first declared :{})",
                                            ident.trim_start_matches("var:"),
                                            prev.join(":")
                                        ),
                                    ));
                                }
                            }
                        }
                    }
                }
                for (k, v) in &node.props {
                    let key = (ident.clone(), k.clone());
                    let class = class_of(v);
                    match prop_classes.get(&key) {
                        None => {
                            prop_classes.insert(key, class);
                        }
                        Some(&prev) if prev != class => {
                            if prop_flagged.insert(key) {
                                diags.push(Diagnostic::new(
                                    Code::SuspiciousPropType,
                                    pos,
                                    i,
                                    format!(
                                        "property '{k}' of '{}' switches from {} to {}",
                                        ident.trim_start_matches("var:"),
                                        class_name(prev),
                                        class_name(class)
                                    ),
                                ));
                            }
                        }
                        Some(_) => {}
                    }
                }
            }

            // CY002 / CY004 / CY006: relationship-level checks.
            let mut prev = &path.start;
            for (rel, node) in &path.hops {
                if rel.rel_type.as_deref().unwrap_or("").is_empty() {
                    diags.push(Diagnostic::new(
                        Code::MissingRelType,
                        pos,
                        i,
                        format!("relationship between {} and {} has no type", prev, node),
                    ));
                }
                if let (Some(a), Some(b)) = (node_identity(prev), node_identity(node)) {
                    if a == b {
                        diags.push(Diagnostic::new(
                            Code::SelfLoop,
                            pos,
                            i,
                            format!("'{}' relates to itself", a.trim_start_matches("var:")),
                        ));
                    }
                }
                for endpoint in [prev, node] {
                    if is_bare_ref(endpoint) {
                        let var = endpoint.var.as_ref().expect("bare ref has a var");
                        if !facts.declared.contains(var) && unbound_flagged.insert(var.clone()) {
                            diags.push(Diagnostic::new(
                                Code::UnboundRelVar,
                                pos,
                                i,
                                format!(
                                    "relationship endpoint '{var}' is never declared with labels or properties"
                                ),
                            ));
                        }
                    }
                }
                prev = node;
            }

            // CY005: standalone patterns never wired into the graph.
            if path.hops.is_empty() {
                match &path.start.var {
                    Some(v) => {
                        if !facts.connected.contains(v) && dangling_flagged.insert(v.clone()) {
                            diags.push(Diagnostic::new(
                                Code::DanglingNode,
                                pos,
                                i,
                                format!("node '{v}' is declared but never connected"),
                            ));
                        }
                    }
                    None => {
                        diags.push(Diagnostic::new(
                            Code::DanglingNode,
                            pos,
                            i,
                            format!("anonymous node {} can never be connected", path.start),
                        ));
                    }
                }
            }

            // CY007: identical CREATE patterns duplicate edges verbatim
            // (MERGE is exempt: re-merging is idempotent by design).
            if is_create && !seen_create_paths.insert(path.to_string()) {
                diags.push(Diagnostic::new(
                    Code::DuplicateCreate,
                    pos,
                    i,
                    format!("pattern {path} already created"),
                ));
            }
        }
    }
    diags
}

/// Parse `src` and analyze it with source-anchored positions. The
/// one-call entry point for tooling and tests.
pub fn lint(src: &str) -> crate::error::Result<Vec<Diagnostic>> {
    let spanned = parse_spanned(src)?;
    Ok(analyze_spanned(&spanned.script, &spanned.spans))
}

/// The result of [`repair`]: a rewritten script plus the log of what was
/// changed. `fixes[i].stmt` indexes into the *original* script.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairOutcome {
    /// The repaired script. Contains no `MATCH` statements, so running it
    /// in [`crate::Mode::CreateOnly`] cannot fail.
    pub script: Script,
    /// Everything the pass changed, in application order.
    pub fixes: Vec<AppliedFix>,
}

impl RepairOutcome {
    /// Whether the pass changed anything.
    pub fn changed(&self) -> bool {
        !self.fixes.is_empty()
    }
}

/// Rewrite a script so construction-mode execution succeeds:
///
/// 1. drop `MATCH` statements (CY001) — queries have no place in
///    pseudo-graph construction, but the `CREATE`s around them are
///    usually fine and worth salvaging;
/// 2. remove duplicated `CREATE` patterns (CY007) so edges are not
///    inserted twice;
/// 3. give never-declared relationship endpoints (CY002) a synthesized
///    `name` property at their first occurrence, so the node they
///    materialize into decodes to a readable triple instead of a blank.
pub fn repair(script: &Script) -> RepairOutcome {
    let facts = collect_facts(script);
    let mut fixes = Vec::new();
    let mut statements = Vec::new();
    let mut seen_create_paths: HashSet<String> = HashSet::new();

    for (i, stmt) in script.statements.iter().enumerate() {
        match stmt {
            Statement::Match { .. } => {
                fixes.push(AppliedFix {
                    code: Code::SpuriousMatch,
                    stmt: i,
                    action: "dropped spurious MATCH statement".to_string(),
                });
            }
            Statement::Merge(_) => statements.push((i, stmt.clone())),
            Statement::Create(paths) => {
                let mut kept: Vec<PathPattern> = Vec::new();
                for path in paths {
                    if seen_create_paths.insert(path.to_string()) {
                        kept.push(path.clone());
                    } else {
                        fixes.push(AppliedFix {
                            code: Code::DuplicateCreate,
                            stmt: i,
                            action: format!("removed duplicate pattern {path}"),
                        });
                    }
                }
                if !kept.is_empty() {
                    statements.push((i, Statement::Create(kept)));
                }
            }
        }
    }

    // Synthesize declarations for unbound relationship endpoints, in
    // first-appearance order for determinism.
    let mut unbound: Vec<String> = Vec::new();
    let mut seen_unbound: HashSet<String> = HashSet::new();
    for (_, stmt) in &statements {
        let patterns = match stmt {
            Statement::Create(p) | Statement::Merge(p) => p,
            Statement::Match { .. } => unreachable!("MATCH statements were dropped"),
        };
        for path in patterns {
            let mut prev = &path.start;
            for (_, node) in &path.hops {
                for endpoint in [prev, node] {
                    if is_bare_ref(endpoint) {
                        let var = endpoint.var.clone().expect("bare ref has a var");
                        if !facts.declared.contains(&var) && seen_unbound.insert(var.clone()) {
                            unbound.push(var);
                        }
                    }
                }
                prev = node;
            }
        }
    }
    for var in unbound {
        'patch: for (orig_idx, stmt) in statements.iter_mut() {
            let patterns = match stmt {
                Statement::Create(p) | Statement::Merge(p) => p,
                Statement::Match { .. } => unreachable!("MATCH statements were dropped"),
            };
            for path in patterns.iter_mut() {
                let nodes =
                    std::iter::once(&mut path.start).chain(path.hops.iter_mut().map(|(_, n)| n));
                for node in nodes {
                    if node.var.as_deref() == Some(var.as_str()) {
                        node.props
                            .push(("name".to_string(), Value::Str(var.clone())));
                        fixes.push(AppliedFix {
                            code: Code::UnboundRelVar,
                            stmt: *orig_idx,
                            action: format!(
                                "synthesized declaration for endpoint '{var}' (name: \"{var}\")"
                            ),
                        });
                        break 'patch;
                    }
                }
            }
        }
    }

    RepairOutcome {
        script: Script {
            statements: statements.into_iter().map(|(_, s)| s).collect(),
        },
        fixes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Executor, Mode};

    fn codes(src: &str) -> Vec<&'static str> {
        lint(src).unwrap().iter().map(|d| d.code.id()).collect()
    }

    #[test]
    fn clean_script_has_no_diagnostics() {
        let src = "CREATE (a:Lake {name: \"Erie\"})\nCREATE (a)-[:IN]->(b:Country {name: \"USA\"})";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn cy001_spurious_match_with_span() {
        let diags =
            lint("CREATE (a:X {name: \"A\"})-[:R]->(b:Y {name: \"B\"})\nMATCH (n) RETURN n")
                .unwrap();
        assert_eq!(diags.len(), 1);
        let d = &diags[0];
        assert_eq!(d.code, Code::SpuriousMatch);
        assert_eq!(d.severity, crate::diag::Severity::Error);
        assert_eq!((d.pos.line, d.pos.col), (2, 1));
        assert_eq!(d.stmt, 1);
    }

    #[test]
    fn cy002_unbound_endpoint_flagged_once() {
        let src = "CREATE (a {name: \"A\"})-[:R]->(ghost)\nCREATE (ghost)-[:R]->(a)";
        let diags = lint(src).unwrap();
        let unbound: Vec<_> = diags
            .iter()
            .filter(|d| d.code == Code::UnboundRelVar)
            .collect();
        assert_eq!(unbound.len(), 1);
        assert!(unbound[0].msg.contains("ghost"));
        assert_eq!(unbound[0].stmt, 0);
    }

    #[test]
    fn cy002_not_fired_when_declared_later() {
        // Executor semantics merge later declarations into the binding,
        // so a forward reference is fine.
        let src = "CREATE (a {name: \"A\"})-[:R]->(b)\nCREATE (b:Lake {name: \"B\"})";
        assert!(!codes(src).contains(&"CY002"));
    }

    #[test]
    fn cy003_conflicting_label() {
        let src = "CREATE (a:Lake {name: \"A\"})\nCREATE (a:Country)";
        let diags = lint(src).unwrap();
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.code == Code::ConflictingLabel)
                .count(),
            1
        );
        // repeating the original label is not a conflict
        assert!(!codes("CREATE (a:Lake {name: \"A\"})\nCREATE (a:Lake)").contains(&"CY003"));
    }

    #[test]
    fn cy004_missing_rel_type() {
        let src = "CREATE (a {name: \"A\"})-[]->(b {name: \"B\"})";
        assert!(codes(src).contains(&"CY004"));
        let src_var_only = "CREATE (a {name: \"A\"})-[r]->(b {name: \"B\"})";
        assert!(codes(src_var_only).contains(&"CY004"));
    }

    #[test]
    fn cy005_dangling_node() {
        let src = "CREATE (a:X {name: \"A\"})\nCREATE (b {name: \"B\"})-[:R]->(c {name: \"C\"})";
        let diags = lint(src).unwrap();
        let dangling: Vec<_> = diags
            .iter()
            .filter(|d| d.code == Code::DanglingNode)
            .collect();
        assert_eq!(dangling.len(), 1);
        assert!(dangling[0].msg.contains("'a'"));
        // connected later → not dangling
        let src2 = "CREATE (a:X {name: \"A\"})\nCREATE (a)-[:R]->(b {name: \"B\"})";
        assert!(!codes(src2).contains(&"CY005"));
    }

    #[test]
    fn cy005_anonymous_standalone_node() {
        assert!(codes("CREATE ({name: \"orphan\"})").contains(&"CY005"));
    }

    #[test]
    fn cy006_self_loop() {
        assert!(codes("CREATE (a {name: \"A\"})-[:R]->(a)").contains(&"CY006"));
        // name-based identity catches var-less self loops too
        assert!(codes("CREATE ({name: \"A\"})-[:R]->({name: \"A\"})").contains(&"CY006"));
    }

    #[test]
    fn cy007_duplicate_create() {
        let src = "CREATE (a {name: \"A\"})-[:R]->(b {name: \"B\"})\n\
                   CREATE (a {name: \"A\"})-[:R]->(b {name: \"B\"})";
        let diags = lint(src).unwrap();
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.code == Code::DuplicateCreate)
                .count(),
            1
        );
        // MERGE of the same pattern is idempotent, not a duplicate
        let merge = "MERGE (a {name: \"A\"})\nMERGE (a {name: \"A\"})";
        assert!(!codes(merge).contains(&"CY007"));
    }

    #[test]
    fn cy008_suspicious_prop_type() {
        let src = "CREATE (a:Lake {name: \"A\", area: 82000})\nCREATE (a {area: \"big\"})";
        let diags = lint(src).unwrap();
        let sus: Vec<_> = diags
            .iter()
            .filter(|d| d.code == Code::SuspiciousPropType)
            .collect();
        assert_eq!(sus.len(), 1);
        assert!(sus[0].msg.contains("area"));
        // Int → Float is fine
        assert!(!codes("CREATE (a {area: 1})\nCREATE (a {area: 1.5})").contains(&"CY008"));
    }

    #[test]
    fn repair_drops_match_and_keeps_creates() {
        let src = "MATCH (n) RETURN n\nCREATE (a:X {name: \"A\"})";
        let spanned = parse_spanned(src).unwrap();
        let out = repair(&spanned.script);
        assert!(out.changed());
        assert_eq!(out.script.statements.len(), 1);
        assert!(matches!(out.script.statements[0], Statement::Create(_)));
        assert_eq!(out.fixes[0].code, Code::SpuriousMatch);
        assert_eq!(out.fixes[0].stmt, 0);
    }

    #[test]
    fn repair_dedups_creates() {
        let src = "CREATE (a {name: \"A\"})-[:R]->(b {name: \"B\"})\n\
                   CREATE (a {name: \"A\"})-[:R]->(b {name: \"B\"})";
        let out = repair(&parse_spanned(src).unwrap().script);
        let mut exec = Executor::new();
        exec.run(&out.script, Mode::CreateOnly).unwrap();
        assert_eq!(
            exec.graph().rel_count(),
            1,
            "duplicate edge must not be created"
        );
        assert!(out.fixes.iter().any(|f| f.code == Code::DuplicateCreate));
    }

    #[test]
    fn repair_synthesizes_unbound_endpoint() {
        let src = "CREATE (a {name: \"A\"})-[:NEXT_TO]->(ghost)";
        let out = repair(&parse_spanned(src).unwrap().script);
        assert!(out.fixes.iter().any(|f| f.code == Code::UnboundRelVar));
        let mut exec = Executor::new();
        exec.run(&out.script, Mode::CreateOnly).unwrap();
        let triples = exec.into_graph().decode_triples();
        assert!(
            triples
                .iter()
                .any(|t| t.s == "A" && t.p == "NEXT_TO" && t.o == "ghost"),
            "synthesized name must surface in decoded triples: {triples:?}"
        );
    }

    #[test]
    fn repair_of_clean_script_is_identity() {
        let src = "CREATE (a:X {name: \"A\"})\nCREATE (a)-[:R]->(b:Y {name: \"B\"})";
        let script = parse_spanned(src).unwrap().script;
        let out = repair(&script);
        assert!(!out.changed());
        assert_eq!(out.script, script);
    }

    #[test]
    fn repaired_script_always_executes_in_create_only() {
        // The paper's failure case verbatim: a MATCH-only script.
        let out = repair(&parse_spanned("MATCH (n) RETURN n").unwrap().script);
        let mut exec = Executor::new();
        exec.run(&out.script, Mode::CreateOnly).unwrap();
        assert_eq!(exec.graph().node_count(), 0);
    }

    #[test]
    fn analyze_without_spans_uses_default_pos() {
        let script = parse_spanned("MATCH (n) RETURN n").unwrap().script;
        let diags = analyze(&script);
        assert_eq!(diags[0].pos, Pos::default());
        assert_eq!(diags[0].stmt, 0);
    }
}
