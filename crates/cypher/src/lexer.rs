//! Tokenizer for the Cypher subset.

use crate::error::{CypherError, Pos, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Tok {
    /// Keyword `CREATE` (case-insensitive in source).
    Create,
    /// Keyword `MATCH`.
    Match,
    /// Keyword `RETURN`.
    Return,
    /// Keyword `WHERE`.
    Where,
    /// Keyword `MERGE`.
    Merge,
    /// Keyword `AND`.
    And,
    /// Identifier (variable, label, relationship type, property key).
    Ident(String),
    /// String literal (single- or double-quoted in source).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `-`
    Dash,
    /// `->`
    Arrow,
    /// `<-` (reversed relationship head)
    BackArrow,
    /// `=`
    Eq,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Create => write!(f, "CREATE"),
            Tok::Match => write!(f, "MATCH"),
            Tok::Return => write!(f, "RETURN"),
            Tok::Where => write!(f, "WHERE"),
            Tok::Merge => write!(f, "MERGE"),
            Tok::And => write!(f, "AND"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Float(x) => write!(f, "{x}"),
            Tok::Bool(b) => write!(f, "{b}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Colon => write!(f, ":"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::Dash => write!(f, "-"),
            Tok::Arrow => write!(f, "->"),
            Tok::BackArrow => write!(f, "<-"),
            Tok::Eq => write!(f, "="),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token plus its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Tokenize a whole script. `//` line comments are skipped.
pub fn lex(src: &str) -> Result<Vec<Spanned>> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    // Byte offset where the current line begins; columns are counted in
    // chars from here so multibyte identifiers report sane positions.
    let mut line_start: usize = 0;

    macro_rules! pos_at {
        ($off:expr) => {
            Pos::new($off, line, src[line_start..$off].chars().count() as u32 + 1)
        };
    }
    macro_rules! push {
        ($tok:expr, $off:expr) => {
            toks.push(Spanned {
                tok: $tok,
                pos: pos_at!($off),
            })
        };
    }

    while i < bytes.len() {
        // Decode the full char: classifying by first byte would mislabel
        // multibyte characters (e.g. NBSP) and stall the loop.
        let c = src[i..].chars().next().expect("i is on a char boundary");
        let start = i;
        match c {
            '\n' => {
                line += 1;
                i += 1;
                line_start = i;
            }
            c if c.is_whitespace() => i += c.len_utf8(),
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                push!(Tok::LParen, start);
                i += 1;
            }
            ')' => {
                push!(Tok::RParen, start);
                i += 1;
            }
            '{' => {
                push!(Tok::LBrace, start);
                i += 1;
            }
            '}' => {
                push!(Tok::RBrace, start);
                i += 1;
            }
            '[' => {
                push!(Tok::LBracket, start);
                i += 1;
            }
            ']' => {
                push!(Tok::RBracket, start);
                i += 1;
            }
            ':' => {
                push!(Tok::Colon, start);
                i += 1;
            }
            ',' => {
                push!(Tok::Comma, start);
                i += 1;
            }
            '.' => {
                push!(Tok::Dot, start);
                i += 1;
            }
            '=' => {
                push!(Tok::Eq, start);
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    push!(Tok::Arrow, start);
                    i += 2;
                } else if bytes[i + 1..].first().is_some_and(|b| b.is_ascii_digit()) {
                    // negative number literal
                    let (tok, len) =
                        lex_number(&src[i..], true).map_err(|msg| CypherError::Lex {
                            pos: pos_at!(start),
                            msg,
                        })?;
                    push!(tok, start);
                    i += len;
                } else {
                    push!(Tok::Dash, start);
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    push!(Tok::BackArrow, start);
                    i += 2;
                } else {
                    return Err(CypherError::Lex {
                        pos: pos_at!(start),
                        msg: "unexpected '<'".into(),
                    });
                }
            }
            '"' | '\'' => {
                // Capture the opening quote's position before scanning:
                // a multi-line literal must report where it starts, not
                // where it ends (or fails).
                let pos = pos_at!(start);
                let quote = c;
                let mut s = String::new();
                let mut j = i + 1;
                let mut closed = false;
                while j < bytes.len() {
                    let ch = src[j..].chars().next().unwrap();
                    if ch == quote {
                        closed = true;
                        j += 1;
                        break;
                    }
                    if ch == '\\' && j + 1 < bytes.len() {
                        let esc = src[j + 1..].chars().next().unwrap();
                        s.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            other => other,
                        });
                        j += 1 + esc.len_utf8();
                    } else {
                        if ch == '\n' {
                            line += 1;
                            line_start = j + 1;
                        }
                        s.push(ch);
                        j += ch.len_utf8();
                    }
                }
                if !closed {
                    return Err(CypherError::Lex {
                        pos,
                        msg: "unterminated string literal".into(),
                    });
                }
                toks.push(Spanned {
                    tok: Tok::Str(s),
                    pos,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let (tok, len) = lex_number(&src[i..], false).map_err(|msg| CypherError::Lex {
                    pos: pos_at!(start),
                    msg,
                })?;
                push!(tok, start);
                i += len;
            }
            c if c.is_alphanumeric() && !c.is_ascii() => {
                // Non-ASCII alphanumerics start identifiers too.
                let mut j = i;
                while j < bytes.len() {
                    let ch = src[j..].chars().next().unwrap();
                    if ch.is_alphanumeric() || ch == '_' {
                        j += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                push!(Tok::Ident(src[i..j].to_string()), start);
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() {
                    let ch = src[j..].chars().next().unwrap();
                    if ch.is_alphanumeric() || ch == '_' {
                        j += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                let word = &src[i..j];
                let tok = match word.to_ascii_uppercase().as_str() {
                    "CREATE" => Tok::Create,
                    "MATCH" => Tok::Match,
                    "RETURN" => Tok::Return,
                    "WHERE" => Tok::Where,
                    "MERGE" => Tok::Merge,
                    "AND" => Tok::And,
                    "TRUE" => Tok::Bool(true),
                    "FALSE" => Tok::Bool(false),
                    _ => Tok::Ident(word.to_string()),
                };
                push!(tok, start);
                i = j;
            }
            other => {
                let _ = other.len_utf8();
                return Err(CypherError::Lex {
                    pos: pos_at!(start),
                    msg: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    toks.push(Spanned {
        tok: Tok::Eof,
        pos: pos_at!(src.len()),
    });
    Ok(toks)
}

/// Lex a number starting at the beginning of `rest`. Returns the token and
/// consumed byte length. `neg` means a leading '-' is present.
fn lex_number(rest: &str, neg: bool) -> std::result::Result<(Tok, usize), String> {
    let bytes = rest.as_bytes();
    let mut j = usize::from(neg); // skip '-'
    let digits_start = j;
    while j < bytes.len() && bytes[j].is_ascii_digit() {
        j += 1;
    }
    if j == digits_start {
        return Err("expected digits".into());
    }
    let mut is_float = false;
    if j + 1 < bytes.len() && bytes[j] == b'.' && bytes[j + 1].is_ascii_digit() {
        is_float = true;
        j += 1;
        while j < bytes.len() && bytes[j].is_ascii_digit() {
            j += 1;
        }
    }
    let text = &rest[..j];
    if is_float {
        text.parse::<f64>()
            .map(|f| (Tok::Float(f), j))
            .map_err(|e| e.to_string())
    } else {
        text.parse::<i64>()
            .map(|i| (Tok::Int(i), j))
            .map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_create_node() {
        let t = toks("CREATE (superior:Lake {name: 'Lake Superior', area: 82000})");
        assert_eq!(t[0], Tok::Create);
        assert!(t.contains(&Tok::Ident("superior".into())));
        assert!(t.contains(&Tok::Str("Lake Superior".into())));
        assert!(t.contains(&Tok::Int(82000)));
        assert_eq!(*t.last().unwrap(), Tok::Eof);
    }

    #[test]
    fn lexes_relationship_arrow() {
        let t = toks("CREATE (a)-[:COVERS]->(b)");
        assert!(t.contains(&Tok::Arrow));
        assert!(t.contains(&Tok::LBracket));
        assert!(t.contains(&Tok::Ident("COVERS".into())));
    }

    #[test]
    fn lexes_back_arrow() {
        let t = toks("(a)<-[:IN]-(b)");
        assert!(t.contains(&Tok::BackArrow));
        assert!(t.contains(&Tok::Dash));
    }

    #[test]
    fn skips_comments_and_counts_lines() {
        let spanned = lex("// Create Great Lakes nodes\nCREATE (x)").unwrap();
        assert_eq!(spanned[0].tok, Tok::Create);
        assert_eq!(spanned[0].pos.line, 2);
        assert_eq!(spanned[0].pos.col, 1);
    }

    #[test]
    fn tracks_columns() {
        let spanned = lex("CREATE (a)\nCREATE (b)-[:R]->(c)").unwrap();
        let create2 = &spanned[4];
        assert_eq!(create2.tok, Tok::Create);
        assert_eq!((create2.pos.line, create2.pos.col), (2, 1));
        let lparen2 = &spanned[5];
        assert_eq!(lparen2.tok, Tok::LParen);
        assert_eq!((lparen2.pos.line, lparen2.pos.col), (2, 8));
    }

    #[test]
    fn multiline_string_reports_start_and_resumes_columns() {
        let spanned = lex("CREATE (a {name: \"two\nlines\", area: 5})").unwrap();
        let s = spanned
            .iter()
            .find(|t| matches!(t.tok, Tok::Str(_)))
            .unwrap();
        assert_eq!((s.pos.line, s.pos.col), (1, 18));
        // `area` follows the string on source line 2, after `lines", `.
        let area = spanned
            .iter()
            .find(|t| t.tok == Tok::Ident("area".into()))
            .unwrap();
        assert_eq!((area.pos.line, area.pos.col), (2, 9));
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(toks("12")[0], Tok::Int(12));
        assert_eq!(toks("12.5")[0], Tok::Float(12.5));
        assert_eq!(toks("-3")[0], Tok::Int(-3));
        assert_eq!(toks("-3.25")[0], Tok::Float(-3.25));
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(toks("create")[0], Tok::Create);
        assert_eq!(toks("Match")[0], Tok::Match);
        assert_eq!(toks("true")[0], Tok::Bool(true));
    }

    #[test]
    fn double_and_single_quotes() {
        assert_eq!(toks("\"a b\"")[0], Tok::Str("a b".into()));
        assert_eq!(toks("'a b'")[0], Tok::Str("a b".into()));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(toks(r#""a\"b""#)[0], Tok::Str("a\"b".into()));
        assert_eq!(toks(r#""a\nb""#)[0], Tok::Str("a\nb".into()));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(lex("\"oops"), Err(CypherError::Lex { .. })));
    }

    #[test]
    fn bad_char_errors() {
        assert!(matches!(lex("CREATE @"), Err(CypherError::Lex { .. })));
    }
}
