//! The pseudo-graph decode step: Cypher source → triples.
//!
//! This is the paper's step 1 back-end: "we run the Cypher queries on
//! Neo4j and decode them into the form of triples".

use crate::error::Result;
use crate::exec::build_graph;
use kgstore::StrTriple;

/// Run a `CREATE`-only script and decode the resulting property graph
/// into `<s> <p> <o>` triples (the pseudo-graph `G_p`).
pub fn decode_script(src: &str) -> Result<Vec<StrTriple>> {
    Ok(build_graph(src)?.decode_triples())
}

/// Like [`decode_script`] but tolerant: fenced code blocks and prose
/// around the Cypher are stripped first, the way one has to clean real
/// LLM output before running it.
pub fn decode_llm_output(raw: &str) -> Result<Vec<StrTriple>> {
    decode_script(&extract_cypher(raw))
}

/// One complete fenced code block: its (lowercased) language tag and body.
struct Fence<'a> {
    lang: String,
    body: &'a str,
}

/// Collect all *complete* fenced blocks in `raw`. Returns the blocks plus
/// whether a fence was left unterminated at end of input.
fn fenced_blocks(raw: &str) -> (Vec<Fence<'_>>, bool) {
    let mut blocks = Vec::new();
    let mut open: Option<(String, usize)> = None; // (lang, body byte start)
    let mut offset = 0;
    for line in raw.split_inclusive('\n') {
        let line_start = offset;
        offset += line.len();
        let trimmed = line.trim();
        if let Some(rest) = trimmed.strip_prefix("```") {
            match open.take() {
                None => open = Some((rest.trim().to_ascii_lowercase(), offset)),
                Some((lang, body_start)) => blocks.push(Fence {
                    lang,
                    body: &raw[body_start..line_start],
                }),
            }
        }
    }
    (blocks, open.is_some())
}

/// Whether a fence tag marks Cypher. An untagged fence is handled
/// separately (used only when no tagged Cypher fence exists).
fn is_cypher_tag(lang: &str) -> bool {
    matches!(lang, "cypher" | "cql" | "neo4j")
}

/// Heuristically extract Cypher statements from raw LLM output:
/// * the concatenated bodies of all ```cypher (or ```cql / ```neo4j)
///   fenced blocks if any exist — a ```json block before the Cypher no
///   longer wins, and multiple blocks are no longer silently dropped;
/// * else the concatenated bodies of all *untagged* fenced blocks;
/// * else (no usable complete fence, including an unterminated one)
///   every line starting with `CREATE`/`MERGE`/`MATCH`/`//` or
///   continuing an open statement.
pub fn extract_cypher(raw: &str) -> String {
    let (blocks, _unterminated) = fenced_blocks(raw);
    let tagged: Vec<&Fence> = blocks.iter().filter(|b| is_cypher_tag(&b.lang)).collect();
    let chosen: Vec<&Fence> = if !tagged.is_empty() {
        tagged
    } else {
        blocks.iter().filter(|b| b.lang.is_empty()).collect()
    };
    if !chosen.is_empty() {
        let joined: Vec<&str> = chosen.iter().map(|b| b.body.trim()).collect();
        return joined.join("\n");
    }
    // Line-filter path (also the fallback for unterminated fences).
    let mut out = String::new();
    let mut open_parens: i64 = 0;
    for line in raw.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") {
            continue;
        }
        let upper = trimmed.to_ascii_uppercase();
        let is_stmt = upper.starts_with("CREATE")
            || upper.starts_with("MERGE")
            || upper.starts_with("MATCH")
            || trimmed.starts_with("//");
        if is_stmt || open_parens > 0 {
            out.push_str(line);
            out.push('\n');
            for c in line.chars() {
                match c {
                    '(' | '{' | '[' => open_parens += 1,
                    ')' | '}' | ']' => open_parens -= 1,
                    _ => {}
                }
            }
            open_parens = open_parens.max(0);
        }
    }
    out.trim().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_plain_script() {
        let triples =
            decode_script("CREATE (a:Lake {name: \"Lake Superior\", area: 82000})").unwrap();
        assert_eq!(
            triples,
            vec![StrTriple::new("Lake Superior", "area", "82000")]
        );
    }

    #[test]
    fn extracts_fenced_block() {
        let raw = "Here's a knowledge graph:\n```cypher\nCREATE (a {name: \"X\"})\n```\nDone.";
        assert_eq!(extract_cypher(raw), "CREATE (a {name: \"X\"})");
    }

    #[test]
    fn cypher_fence_preferred_over_earlier_foreign_fence() {
        let raw =
            "Plan:\n```json\n{\"steps\": 2}\n```\nGraph:\n```cypher\nCREATE (a {name: \"X\"})\n```";
        assert_eq!(extract_cypher(raw), "CREATE (a {name: \"X\"})");
    }

    #[test]
    fn concatenates_multiple_cypher_fences() {
        let raw = "```cypher\nCREATE (a {name: \"A\"})\n```\nand then\n```cypher\nCREATE (a)-[:R]->(b {name: \"B\"})\n```";
        assert_eq!(
            extract_cypher(raw),
            "CREATE (a {name: \"A\"})\nCREATE (a)-[:R]->(b {name: \"B\"})"
        );
    }

    #[test]
    fn untagged_fence_used_when_no_cypher_tag() {
        let raw = "```\nCREATE (a {name: \"X\"})\n```";
        assert_eq!(extract_cypher(raw), "CREATE (a {name: \"X\"})");
    }

    #[test]
    fn foreign_fences_fall_back_to_line_filter() {
        let raw = "```python\nprint('hi')\n```\nCREATE (a {name: \"X\"})";
        assert_eq!(extract_cypher(raw), "CREATE (a {name: \"X\"})");
    }

    #[test]
    fn unterminated_fence_falls_back_to_line_filter() {
        let raw = "```cypher\nCREATE (a {name: \"X\"})";
        assert_eq!(extract_cypher(raw), "CREATE (a {name: \"X\"})");
    }

    #[test]
    fn line_filter_keeps_merge_statements() {
        let raw = "prose\nMERGE (a:Lake {name: \"Erie\"})\nmore prose";
        assert_eq!(extract_cypher(raw), "MERGE (a:Lake {name: \"Erie\"})");
    }

    #[test]
    fn extracts_bare_statements_between_prose() {
        let raw = "To answer this, I need:\nCREATE (a {name: \"X\"})\nThat should work.";
        assert_eq!(extract_cypher(raw), "CREATE (a {name: \"X\"})");
    }

    #[test]
    fn keeps_multiline_statements() {
        let raw = "CREATE (a {name: \"X\",\n  area: 5})\nunrelated prose";
        let got = extract_cypher(raw);
        assert!(got.contains("area: 5"));
        assert!(!got.contains("unrelated"));
    }

    #[test]
    fn decode_llm_output_end_to_end() {
        let raw = "Sure! Here's the graph:\n\
                   CREATE (andes:MountainRange {name: \"Andes\"})\n\
                   CREATE (andes)-[:COVERS]->(peru:Country {name: \"Peru\"})\n\
                   Hope this helps!";
        let triples = decode_llm_output(raw).unwrap();
        assert_eq!(triples, vec![StrTriple::new("Andes", "COVERS", "Peru")]);
    }

    #[test]
    fn spurious_match_surfaces_as_error() {
        let raw = "MATCH (a:Lake) RETURN a";
        let err = decode_llm_output(raw).unwrap_err();
        assert!(err.is_spurious_match());
    }
}
