//! The pseudo-graph decode step: Cypher source → triples.
//!
//! This is the paper's step 1 back-end: "we run the Cypher queries on
//! Neo4j and decode them into the form of triples".

use crate::error::Result;
use crate::exec::build_graph;
use kgstore::StrTriple;

/// Run a `CREATE`-only script and decode the resulting property graph
/// into `<s> <p> <o>` triples (the pseudo-graph `G_p`).
pub fn decode_script(src: &str) -> Result<Vec<StrTriple>> {
    Ok(build_graph(src)?.decode_triples())
}

/// Like [`decode_script`] but tolerant: fenced code blocks and prose
/// around the Cypher are stripped first, the way one has to clean real
/// LLM output before running it.
pub fn decode_llm_output(raw: &str) -> Result<Vec<StrTriple>> {
    decode_script(&extract_cypher(raw))
}

/// Heuristically extract Cypher statements from raw LLM output:
/// * contents of ```cypher fenced blocks if present, else
/// * every line starting with `CREATE`/`MATCH`/`//` or continuing an
///   open statement.
pub fn extract_cypher(raw: &str) -> String {
    // Fenced block path.
    if let Some(start) = raw.find("```") {
        let after = &raw[start + 3..];
        let body_start = after.find('\n').map(|i| i + 1).unwrap_or(0);
        let body = &after[body_start..];
        if let Some(end) = body.find("```") {
            return body[..end].trim().to_string();
        }
    }
    // Line-filter path.
    let mut out = String::new();
    let mut open_parens: i64 = 0;
    for line in raw.lines() {
        let trimmed = line.trim_start();
        let is_stmt = trimmed.to_ascii_uppercase().starts_with("CREATE")
            || trimmed.to_ascii_uppercase().starts_with("MATCH")
            || trimmed.starts_with("//");
        if is_stmt || open_parens > 0 {
            out.push_str(line);
            out.push('\n');
            for c in line.chars() {
                match c {
                    '(' | '{' | '[' => open_parens += 1,
                    ')' | '}' | ']' => open_parens -= 1,
                    _ => {}
                }
            }
            open_parens = open_parens.max(0);
        }
    }
    out.trim().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_plain_script() {
        let triples = decode_script(
            "CREATE (a:Lake {name: \"Lake Superior\", area: 82000})",
        )
        .unwrap();
        assert_eq!(triples, vec![StrTriple::new("Lake Superior", "area", "82000")]);
    }

    #[test]
    fn extracts_fenced_block() {
        let raw = "Here's a knowledge graph:\n```cypher\nCREATE (a {name: \"X\"})\n```\nDone.";
        assert_eq!(extract_cypher(raw), "CREATE (a {name: \"X\"})");
    }

    #[test]
    fn extracts_bare_statements_between_prose() {
        let raw = "To answer this, I need:\nCREATE (a {name: \"X\"})\nThat should work.";
        assert_eq!(extract_cypher(raw), "CREATE (a {name: \"X\"})");
    }

    #[test]
    fn keeps_multiline_statements() {
        let raw = "CREATE (a {name: \"X\",\n  area: 5})\nunrelated prose";
        let got = extract_cypher(raw);
        assert!(got.contains("area: 5"));
        assert!(!got.contains("unrelated"));
    }

    #[test]
    fn decode_llm_output_end_to_end() {
        let raw = "Sure! Here's the graph:\n\
                   CREATE (andes:MountainRange {name: \"Andes\"})\n\
                   CREATE (andes)-[:COVERS]->(peru:Country {name: \"Peru\"})\n\
                   Hope this helps!";
        let triples = decode_llm_output(raw).unwrap();
        assert_eq!(triples, vec![StrTriple::new("Andes", "COVERS", "Peru")]);
    }

    #[test]
    fn spurious_match_surfaces_as_error() {
        let raw = "MATCH (a:Lake) RETURN a";
        let err = decode_llm_output(raw).unwrap_err();
        assert!(err.is_spurious_match());
    }
}
