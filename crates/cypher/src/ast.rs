//! Abstract syntax tree for the Cypher subset, plus a pretty-printer.
//!
//! The printer produces canonical source that re-parses to the same AST
//! (verified by property tests), which the simulated LLM uses to emit
//! well-formed scripts.

use kgstore::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A full script: a sequence of statements.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Script {
    /// The statements in source order.
    pub statements: Vec<Statement>,
}

/// One statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    /// `CREATE <pattern>, <pattern>, …`
    Create(Vec<PathPattern>),
    /// `MERGE <pattern>, …` — like `CREATE`, but re-uses an existing
    /// node that matches the pattern instead of duplicating it. LLMs
    /// emit `MERGE` freely when building graphs.
    Merge(Vec<PathPattern>),
    /// `MATCH <pattern>, … [WHERE <cond> AND …] RETURN <items>`
    Match {
        /// Patterns to match.
        patterns: Vec<PathPattern>,
        /// Conjunctive `WHERE` conditions (`var.prop = literal`).
        conditions: Vec<Condition>,
        /// Returned items (`var` or `var.prop`).
        returns: Vec<ReturnItem>,
    },
}

/// One `WHERE` conjunct: `var.prop = literal`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Condition {
    /// Bound variable.
    pub var: String,
    /// Property name.
    pub prop: String,
    /// Expected value.
    pub value: Value,
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{} = {}", self.var, self.prop, self.value)
    }
}

/// A path: a node followed by zero or more relationship hops.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathPattern {
    /// The first node.
    pub start: NodePattern,
    /// Subsequent `(rel, node)` hops.
    pub hops: Vec<(RelPattern, NodePattern)>,
}

/// A node pattern: `(var:Label {k: v, …})`, all parts optional.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct NodePattern {
    /// Variable name, if bound.
    pub var: Option<String>,
    /// Labels.
    pub labels: Vec<String>,
    /// Property map.
    pub props: Vec<(String, Value)>,
}

/// Relationship direction relative to reading order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// `-[:R]->` left-to-right.
    Out,
    /// `<-[:R]-` right-to-left.
    In,
}

/// A relationship pattern: `-[var:TYPE {k: v}]->` or `<-[:TYPE]-`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelPattern {
    /// Variable name, if bound.
    pub var: Option<String>,
    /// Relationship type (absent = wildcard in MATCH, default in CREATE).
    pub rel_type: Option<String>,
    /// Property map.
    pub props: Vec<(String, Value)>,
    /// Direction.
    pub direction: Direction,
}

/// A `RETURN` item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReturnItem {
    /// Variable name.
    pub var: String,
    /// Optional property projection (`var.prop`).
    pub prop: Option<String>,
}

impl fmt::Display for Script {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.statements.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Create(patterns) => {
                write!(f, "CREATE ")?;
                write_joined(f, patterns, ", ")
            }
            Statement::Merge(patterns) => {
                write!(f, "MERGE ")?;
                write_joined(f, patterns, ", ")
            }
            Statement::Match {
                patterns,
                conditions,
                returns,
            } => {
                write!(f, "MATCH ")?;
                write_joined(f, patterns, ", ")?;
                if !conditions.is_empty() {
                    write!(f, " WHERE ")?;
                    write_joined(f, conditions, " AND ")?;
                }
                if !returns.is_empty() {
                    write!(f, " RETURN ")?;
                    write_joined(f, returns, ", ")?;
                }
                Ok(())
            }
        }
    }
}

fn write_joined<T: fmt::Display>(
    f: &mut fmt::Formatter<'_>,
    items: &[T],
    sep: &str,
) -> fmt::Result {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            write!(f, "{sep}")?;
        }
        write!(f, "{item}")?;
    }
    Ok(())
}

impl fmt::Display for PathPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)?;
        for (rel, node) in &self.hops {
            write!(f, "{rel}{node}")?;
        }
        Ok(())
    }
}

impl fmt::Display for NodePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        if let Some(v) = &self.var {
            write!(f, "{v}")?;
        }
        for l in &self.labels {
            write!(f, ":{l}")?;
        }
        if !self.props.is_empty() {
            if self.var.is_some() || !self.labels.is_empty() {
                write!(f, " ")?;
            }
            write_props(f, &self.props)?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for RelPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let body = {
            let mut s = String::new();
            if let Some(v) = &self.var {
                s.push_str(v);
            }
            if let Some(t) = &self.rel_type {
                s.push(':');
                s.push_str(t);
            }
            if !self.props.is_empty() {
                if !s.is_empty() {
                    s.push(' ');
                }
                let mut tmp = String::from("{");
                for (i, (k, v)) in self.props.iter().enumerate() {
                    if i > 0 {
                        tmp.push_str(", ");
                    }
                    tmp.push_str(&format!("{k}: {v}"));
                }
                tmp.push('}');
                s.push_str(&tmp);
            }
            s
        };
        match self.direction {
            Direction::Out => write!(f, "-[{body}]->"),
            Direction::In => write!(f, "<-[{body}]-"),
        }
    }
}

fn write_props(f: &mut fmt::Formatter<'_>, props: &[(String, Value)]) -> fmt::Result {
    write!(f, "{{")?;
    for (i, (k, v)) in props.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{k}: {v}")?;
    }
    write!(f, "}}")
}

impl fmt::Display for ReturnItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.prop {
            Some(p) => write!(f, "{}.{p}", self.var),
            None => write!(f, "{}", self.var),
        }
    }
}

/// Builder helpers used heavily by the simulated LLM when it "writes"
/// Cypher.
impl NodePattern {
    /// `(var:Label {name: "name"})`
    pub fn named(
        var: impl Into<String>,
        label: impl Into<String>,
        name: impl Into<String>,
    ) -> Self {
        NodePattern {
            var: Some(var.into()),
            labels: vec![label.into()],
            props: vec![("name".to_string(), Value::Str(name.into()))],
        }
    }

    /// `(var)` — a bare variable reference.
    pub fn var_ref(var: impl Into<String>) -> Self {
        NodePattern {
            var: Some(var.into()),
            ..Default::default()
        }
    }
}

impl RelPattern {
    /// `-[:TYPE]->`
    pub fn out(rel_type: impl Into<String>) -> Self {
        RelPattern {
            var: None,
            rel_type: Some(rel_type.into()),
            props: Vec::new(),
            direction: Direction::Out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_display() {
        let n = NodePattern::named("superior", "Lake", "Lake Superior");
        assert_eq!(n.to_string(), "(superior:Lake {name: \"Lake Superior\"})");
    }

    #[test]
    fn rel_display_both_directions() {
        let mut r = RelPattern::out("COVERS");
        assert_eq!(r.to_string(), "-[:COVERS]->");
        r.direction = Direction::In;
        assert_eq!(r.to_string(), "<-[:COVERS]-");
    }

    #[test]
    fn full_create_display() {
        let stmt = Statement::Create(vec![PathPattern {
            start: NodePattern::named("andes", "MountainRange", "Andes"),
            hops: vec![(
                RelPattern::out("COVERS"),
                NodePattern::named("peru", "Country", "Peru"),
            )],
        }]);
        assert_eq!(
            stmt.to_string(),
            "CREATE (andes:MountainRange {name: \"Andes\"})-[:COVERS]->(peru:Country {name: \"Peru\"})"
        );
    }

    #[test]
    fn match_return_display() {
        let stmt = Statement::Match {
            patterns: vec![PathPattern {
                start: NodePattern::var_ref("x"),
                hops: vec![],
            }],
            conditions: vec![],
            returns: vec![ReturnItem {
                var: "x".into(),
                prop: Some("name".into()),
            }],
        };
        assert_eq!(stmt.to_string(), "MATCH (x) RETURN x.name");

        let cond = Statement::Match {
            patterns: vec![PathPattern {
                start: NodePattern::var_ref("x"),
                hops: vec![],
            }],
            conditions: vec![Condition {
                var: "x".into(),
                prop: "area".into(),
                value: Value::Int(82000),
            }],
            returns: vec![ReturnItem {
                var: "x".into(),
                prop: None,
            }],
        };
        assert_eq!(cond.to_string(), "MATCH (x) WHERE x.area = 82000 RETURN x");

        let merge = Statement::Merge(vec![PathPattern {
            start: NodePattern::named("a", "Lake", "Lake Erie"),
            hops: vec![],
        }]);
        assert_eq!(merge.to_string(), "MERGE (a:Lake {name: \"Lake Erie\"})");
    }

    #[test]
    fn bare_node() {
        assert_eq!(NodePattern::default().to_string(), "()");
    }
}
