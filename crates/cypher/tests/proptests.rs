//! Property-based tests of the Cypher engine: the pretty-printer and
//! parser form a fixpoint, and execution is total on printed scripts.

use cypher::{
    parse, Direction, Executor, Mode, NodePattern, PathPattern, RelPattern, Script, Statement,
};
use kgstore::Value;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}"
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::Str),
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        (-1000i32..1000, 1u32..100).prop_map(|(a, b)| Value::Float(a as f64 + b as f64 / 100.0)),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn node_pattern() -> impl Strategy<Value = NodePattern> {
    (
        proptest::option::of(ident()),
        proptest::collection::vec("[A-Z][a-zA-Z]{0,6}", 0..2),
        proptest::collection::vec((ident(), value()), 0..3),
    )
        .prop_map(|(var, labels, props)| NodePattern { var, labels, props })
}

fn rel_pattern() -> impl Strategy<Value = RelPattern> {
    (
        proptest::option::of("[A-Z_]{1,8}"),
        prop_oneof![Just(Direction::Out), Just(Direction::In)],
        proptest::collection::vec((ident(), value()), 0..2),
    )
        .prop_map(|(rel_type, direction, props)| RelPattern {
            var: None,
            rel_type,
            props,
            direction,
        })
}

fn path_pattern() -> impl Strategy<Value = PathPattern> {
    (
        node_pattern(),
        proptest::collection::vec((rel_pattern(), node_pattern()), 0..3),
    )
        .prop_map(|(start, hops)| PathPattern { start, hops })
}

fn create_script() -> impl Strategy<Value = Script> {
    proptest::collection::vec(
        proptest::collection::vec(path_pattern(), 1..3).prop_map(Statement::Create),
        1..4,
    )
    .prop_map(|statements| Script { statements })
}

proptest! {
    /// print → parse is the identity on ASTs.
    #[test]
    fn print_parse_fixpoint(script in create_script()) {
        let printed = script.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed script failed to parse: {e}\n{printed}"));
        prop_assert_eq!(script, reparsed);
    }

    /// Executing any printed CREATE script succeeds, and node count never
    /// exceeds the number of node patterns.
    #[test]
    fn execution_is_total_on_create_scripts(script in create_script()) {
        let printed = script.to_string();
        let parsed = parse(&printed).unwrap();
        let mut exec = Executor::new();
        exec.run(&parsed, Mode::CreateOnly).expect("CREATE scripts always execute");
        let node_patterns: usize = parsed
            .statements
            .iter()
            .map(|s| match s {
                Statement::Create(paths) => {
                    paths.iter().map(|p| 1 + p.hops.len()).sum::<usize>()
                }
                _ => 0,
            })
            .sum();
        prop_assert!(exec.graph().node_count() <= node_patterns);
        // Decoding never panics.
        let _ = exec.graph().decode_triples();
    }

    /// The lexer+parser never panic on arbitrary input (errors are Err).
    #[test]
    fn parser_never_panics(input in "\\PC{0,200}") {
        let _ = parse(&input);
    }

    /// MATCH in CreateOnly mode is always the spurious-match error.
    #[test]
    fn match_always_rejected_in_create_only(var in ident()) {
        let src = format!("MATCH ({var}) RETURN {var}");
        let parsed = parse(&src).unwrap();
        let mut exec = Executor::new();
        let err = exec.run(&parsed, Mode::CreateOnly).unwrap_err();
        prop_assert!(err.is_spurious_match());
    }
}
