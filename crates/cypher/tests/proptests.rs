//! Property-based tests of the Cypher engine: the pretty-printer and
//! parser form a fixpoint, execution is total on printed scripts, the
//! analyzer never panics, and repaired scripts always execute.

use cypher::{
    parse, Direction, Executor, Mode, NodePattern, PathPattern, RelPattern, ReturnItem, Script,
    Statement,
};
use kgstore::Value;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}"
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::Str),
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        (-1000i32..1000, 1u32..100).prop_map(|(a, b)| Value::Float(a as f64 + b as f64 / 100.0)),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn node_pattern() -> impl Strategy<Value = NodePattern> {
    (
        proptest::option::of(ident()),
        proptest::collection::vec("[A-Z][a-zA-Z]{0,6}", 0..2),
        proptest::collection::vec((ident(), value()), 0..3),
    )
        .prop_map(|(var, labels, props)| NodePattern { var, labels, props })
}

fn rel_pattern() -> impl Strategy<Value = RelPattern> {
    (
        proptest::option::of("[A-Z_]{1,8}"),
        prop_oneof![Just(Direction::Out), Just(Direction::In)],
        proptest::collection::vec((ident(), value()), 0..2),
    )
        .prop_map(|(rel_type, direction, props)| RelPattern {
            var: None,
            rel_type,
            props,
            direction,
        })
}

fn path_pattern() -> impl Strategy<Value = PathPattern> {
    (
        node_pattern(),
        proptest::collection::vec((rel_pattern(), node_pattern()), 0..3),
    )
        .prop_map(|(start, hops)| PathPattern { start, hops })
}

fn create_script() -> impl Strategy<Value = Script> {
    proptest::collection::vec(
        proptest::collection::vec(path_pattern(), 1..3).prop_map(Statement::Create),
        1..4,
    )
    .prop_map(|statements| Script { statements })
}

fn match_statement() -> impl Strategy<Value = Statement> {
    (
        proptest::collection::vec(path_pattern(), 1..3),
        proptest::collection::vec(ident(), 0..3),
    )
        .prop_map(|(patterns, ret_vars)| Statement::Match {
            patterns,
            conditions: vec![],
            returns: ret_vars
                .into_iter()
                .map(|var| ReturnItem { var, prop: None })
                .collect(),
        })
}

/// Scripts mixing construction statements with spurious `MATCH`es — the
/// shape of real (mis)generated LLM output the analyzer has to survive.
fn mixed_script() -> impl Strategy<Value = Script> {
    proptest::collection::vec(
        prop_oneof![
            proptest::collection::vec(path_pattern(), 1..3).prop_map(Statement::Create),
            proptest::collection::vec(path_pattern(), 1..3).prop_map(Statement::Merge),
            match_statement(),
        ],
        1..5,
    )
    .prop_map(|statements| Script { statements })
}

proptest! {
    /// print → parse is the identity on ASTs.
    #[test]
    fn print_parse_fixpoint(script in create_script()) {
        let printed = script.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed script failed to parse: {e}\n{printed}"));
        prop_assert_eq!(script, reparsed);
    }

    /// Executing any printed CREATE script succeeds, and node count never
    /// exceeds the number of node patterns.
    #[test]
    fn execution_is_total_on_create_scripts(script in create_script()) {
        let printed = script.to_string();
        let parsed = parse(&printed).unwrap();
        let mut exec = Executor::new();
        exec.run(&parsed, Mode::CreateOnly).expect("CREATE scripts always execute");
        let node_patterns: usize = parsed
            .statements
            .iter()
            .map(|s| match s {
                Statement::Create(paths) => {
                    paths.iter().map(|p| 1 + p.hops.len()).sum::<usize>()
                }
                _ => 0,
            })
            .sum();
        prop_assert!(exec.graph().node_count() <= node_patterns);
        // Decoding never panics.
        let _ = exec.graph().decode_triples();
    }

    /// The lexer+parser never panic on arbitrary input (errors are Err).
    #[test]
    fn parser_never_panics(input in "\\PC{0,200}") {
        let _ = parse(&input);
    }

    /// MATCH in CreateOnly mode is always the spurious-match error.
    #[test]
    fn match_always_rejected_in_create_only(var in ident()) {
        let src = format!("MATCH ({var}) RETURN {var}");
        let parsed = parse(&src).unwrap();
        let mut exec = Executor::new();
        let err = exec.run(&parsed, Mode::CreateOnly).unwrap_err();
        prop_assert!(err.is_spurious_match());
    }

    /// The analyzer never panics on a parser-accepted script, with or
    /// without spans, and every diagnostic carries a valid stmt index.
    #[test]
    fn analyze_never_panics(script in mixed_script()) {
        for d in cypher::analyze(&script) {
            prop_assert!(d.stmt < script.statements.len());
            prop_assert_eq!(d.severity, d.code.severity());
        }
        let printed = script.to_string();
        if let Ok(spanned) = cypher::parse_spanned(&printed) {
            let _ = cypher::analyze_spanned(&spanned.script, &spanned.spans);
        }
    }

    /// Whatever repair() returns executes without CypherError in
    /// construction mode — no MATCH survives the pass.
    #[test]
    fn repaired_scripts_always_execute(script in mixed_script()) {
        let outcome = cypher::repair(&script);
        prop_assert!(
            !outcome
                .script
                .statements
                .iter()
                .any(|s| matches!(s, Statement::Match { .. })),
            "repair must drop every MATCH"
        );
        let mut exec = Executor::new();
        prop_assert!(exec.run(&outcome.script, Mode::CreateOnly).is_ok());
        let _ = exec.into_graph().decode_triples();
    }

    /// Repair only ever shrinks a pure-CREATE script, and leaves the
    /// statement count alone unless it actually removed duplicates.
    #[test]
    fn repair_preserves_clean_construction(script in create_script()) {
        let outcome = cypher::repair(&script);
        let dup_fixes = outcome
            .fixes
            .iter()
            .filter(|f| f.code == cypher::Code::DuplicateCreate)
            .count();
        if dup_fixes == 0 {
            prop_assert_eq!(outcome.script.statements.len(), script.statements.len());
        } else {
            prop_assert!(outcome.script.statements.len() <= script.statements.len());
        }
    }
}
