//! End-to-end `cylint` fixtures: hand-written raw LLM outputs, one per
//! diagnostic failure mode, run through the same extract → lint →
//! repair → execute path the pipeline uses.

use cypher::{extract_cypher, lint, parse_spanned, repair, Code, Executor, Mode, Severity};

/// Extract, lint, and return the diagnostic codes for a raw LLM output.
fn codes_of(raw: &str) -> Vec<Code> {
    lint(&extract_cypher(raw))
        .unwrap()
        .into_iter()
        .map(|d| d.code)
        .collect()
}

#[test]
fn cy001_fixture_spurious_match_in_prose() {
    let raw = "<step 1> {Knowledge Planning}:\nI need to look this up in the graph.\n\
               <step 2> {Knowledge Graph}:\nMATCH (n) RETURN n // Which lakes are in the US?\n";
    let diags = lint(&extract_cypher(raw)).unwrap();
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, Code::SpuriousMatch);
    assert_eq!(diags[0].severity, Severity::Error);
    assert!(
        diags[0].pos.line >= 1 && diags[0].pos.col >= 1,
        "span must be real: {:?}",
        diags[0].pos
    );
}

#[test]
fn cy002_fixture_unbound_endpoint_in_fenced_output() {
    let raw = "Here is the knowledge graph:\n```cypher\n\
               CREATE (superior:Lake {name: \"Lake Superior\"})\n\
               CREATE (superior)-[:LOCATED_IN]->(usa)\n```";
    assert!(codes_of(raw).contains(&Code::UnboundRelVar));
}

#[test]
fn cy003_fixture_conflicting_relabel() {
    let raw = "CREATE (erie:Lake {name: \"Erie\"})-[:IN]->(us:Country {name: \"USA\"})\n\
               CREATE (erie:City)-[:IN]->(us)";
    assert!(codes_of(raw).contains(&Code::ConflictingLabel));
}

#[test]
fn cy004_fixture_untyped_relationship() {
    let raw = "CREATE (a:Lake {name: \"Erie\"})-[]->(b:Country {name: \"USA\"})";
    assert!(codes_of(raw).contains(&Code::MissingRelType));
}

#[test]
fn cy005_fixture_dangling_node() {
    let raw = "CREATE (a:Lake {name: \"Erie\"})-[:IN]->(b:Country {name: \"USA\"})\n\
               CREATE (orphan:Lake {name: \"Tahoe\"})";
    assert!(codes_of(raw).contains(&Code::DanglingNode));
}

#[test]
fn cy006_fixture_self_loop() {
    let raw = "CREATE (erie:Lake {name: \"Erie\"})-[:NEXT_TO]->(erie)";
    assert!(codes_of(raw).contains(&Code::SelfLoop));
}

#[test]
fn cy007_fixture_duplicate_create() {
    let raw = "CREATE (a:Lake {name: \"Erie\"})-[:IN]->(b:Country {name: \"USA\"})\n\
               CREATE (a:Lake {name: \"Erie\"})-[:IN]->(b:Country {name: \"USA\"})";
    assert!(codes_of(raw).contains(&Code::DuplicateCreate));
}

#[test]
fn cy008_fixture_property_type_flip() {
    let raw = "CREATE (a:Lake {name: \"Erie\", area: 25700})-[:IN]->(b:Country {name: \"USA\"})\n\
               CREATE (a {area: \"large\"})";
    assert!(codes_of(raw).contains(&Code::SuspiciousPropType));
}

/// The headline scenario: a mixed MATCH + CREATE output the paper's
/// pipeline would discard whole is salvaged into usable triples.
#[test]
fn salvage_fixture_mixed_match_and_create() {
    let raw = "<step 2> {Knowledge Graph}:\n\
               MATCH (n) RETURN n // checking first\n\
               CREATE (andes:MountainRange {name: \"Andes\"})\n\
               CREATE (andes)-[:COVERS]->(peru:Country {name: \"Peru\"})\n";
    let src = extract_cypher(raw);
    let spanned = parse_spanned(&src).unwrap();

    // Raw execution fails exactly like the paper reports…
    let mut exec = Executor::new();
    assert!(exec
        .run(&spanned.script, Mode::CreateOnly)
        .unwrap_err()
        .is_spurious_match());

    // …repair drops the MATCH and keeps the frame.
    let outcome = repair(&spanned.script);
    assert_eq!(outcome.fixes.len(), 1);
    assert_eq!(outcome.fixes[0].code, Code::SpuriousMatch);
    let mut exec = Executor::new();
    exec.run(&outcome.script, Mode::CreateOnly).unwrap();
    let triples = exec.into_graph().decode_triples();
    assert!(triples
        .iter()
        .any(|t| t.s == "Andes" && t.p == "COVERS" && t.o == "Peru"));
}

/// Repair composes: one busted script with several failure modes at once
/// still comes out executable, with one fix logged per repairable issue.
#[test]
fn kitchen_sink_fixture() {
    let raw = "MATCH (x:Lake) RETURN x\n\
               CREATE (erie:Lake {name: \"Erie\"})-[:IN]->(us)\n\
               CREATE (erie:Lake {name: \"Erie\"})-[:IN]->(us)\n";
    let src = extract_cypher(raw);
    let spanned = parse_spanned(&src).unwrap();
    let diags = lint(&src).unwrap();
    assert!(diags.iter().any(|d| d.code == Code::SpuriousMatch));
    assert!(diags.iter().any(|d| d.code == Code::UnboundRelVar));
    assert!(diags.iter().any(|d| d.code == Code::DuplicateCreate));

    let outcome = repair(&spanned.script);
    let fixed_codes: Vec<Code> = outcome.fixes.iter().map(|f| f.code).collect();
    assert!(fixed_codes.contains(&Code::SpuriousMatch));
    assert!(fixed_codes.contains(&Code::DuplicateCreate));
    assert!(fixed_codes.contains(&Code::UnboundRelVar));

    let mut exec = Executor::new();
    exec.run(&outcome.script, Mode::CreateOnly).unwrap();
    let g = exec.into_graph();
    assert_eq!(g.rel_count(), 1, "duplicate edges removed: {:?}", g.rels());
}
