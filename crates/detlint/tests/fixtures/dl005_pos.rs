// Positive DL005 fixture: a #[target_feature] fn called without a
// runtime feature check in the enclosing dispatcher.
/// # Safety
/// Caller must verify AVX2 support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn kernel_avx2(xs: &[f32]) -> f32 {
    xs.iter().sum()
}

#[cfg(target_arch = "x86_64")]
pub fn scan(xs: &[f32]) -> f32 {
    // SAFETY: wrong — there is no runtime check; this is the fixture.
    unsafe { kernel_avx2(xs) }
}
