// Inline-allow fixture: the DL001 finding exists but is suppressed by
// a reasoned directive, so it must not count as active.
use std::collections::HashMap;

pub fn pinned(counts: &HashMap<String, usize>) -> Vec<String> {
    let mut out = Vec::new();
    // detlint: allow(DL001) output order is pinned by the golden file
    for (k, v) in counts.iter() {
        out.push(format!("{k}={v}"));
    }
    out
}
