// Positive DL004 fixture: unseeded randomness.
pub fn noise() -> f64 {
    let mut rng = rand::thread_rng();
    rand::Rng::r#gen(&mut rng)
}

pub fn seeded_badly() -> u64 {
    let mut r = rand::rngs::StdRng::from_entropy();
    rand::RngCore::next_u64(&mut r)
}
