// Positive DL006 fixture: a float accumulator mutated inside a
// thread::scope region — the schedule becomes observable.
pub fn parallel_sum(xs: &[f32]) -> f32 {
    let mut total: f32 = 0.0;
    std::thread::scope(|s| {
        s.spawn(|| {
            for x in xs {
                total += x;
            }
        });
    });
    total
}
