// Negative DL004 fixture: explicit seeds everywhere; a user-defined
// `rng(state)` helper with arguments is not the thread-local one.
pub fn seeded(seed: u64) -> u64 {
    use rand::{RngCore, SeedableRng};
    let mut r = rand::rngs::StdRng::seed_from_u64(seed);
    r.next_u64()
}

fn rng(state: u64) -> u64 {
    state.wrapping_mul(6364136223846793005).wrapping_add(1)
}

pub fn step(s: u64) -> u64 {
    rng(s)
}
