// Negative DL001 fixture: every hash iteration flows into an
// order-insensitive sink (sort next statement, integer sum, BTree
// collect, count) and must not be flagged.
use std::collections::{BTreeMap, HashMap};

pub fn sorted_report(counts: &HashMap<String, usize>) -> Vec<String> {
    let mut entries: Vec<(&String, &usize)> = counts.iter().collect();
    entries.sort_by_key(|&(k, _)| k.clone());
    entries.iter().map(|(k, c)| format!("{k}: {c}")).collect()
}

pub fn total(counts: &HashMap<String, usize>) -> usize {
    counts.values().sum::<usize>()
}

pub fn as_btree(counts: &HashMap<String, usize>) -> BTreeMap<String, usize> {
    counts
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect::<BTreeMap<_, _>>()
}

pub fn how_many(counts: &HashMap<String, usize>) -> usize {
    counts.keys().count()
}
