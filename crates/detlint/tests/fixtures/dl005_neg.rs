// Negative DL005 fixture: the dispatcher verifies the feature before
// calling the #[target_feature] instantiation.
/// # Safety
/// Caller must verify AVX2 support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn kernel_avx2(xs: &[f32]) -> f32 {
    xs.iter().sum()
}

#[cfg(target_arch = "x86_64")]
pub fn scan(xs: &[f32]) -> f32 {
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 feature was just verified at runtime.
        return unsafe { kernel_avx2(xs) };
    }
    xs.iter().sum()
}
