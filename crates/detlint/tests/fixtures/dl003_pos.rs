// Positive DL003 fixture: wall-clock reads in non-bench code.
pub fn stamp() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn epoch() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
