// Positive DL001 fixture: hash iteration feeding an output path with
// no order-insensitive sink and no justification.
use std::collections::HashMap;

pub fn label_report(names: &[String]) -> Vec<String> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    for n in names {
        *counts.entry(n.clone()).or_default() += 1;
    }
    let mut out = Vec::new();
    for (name, c) in counts.iter() {
        out.push(format!("{name}: {c}"));
    }
    out
}
