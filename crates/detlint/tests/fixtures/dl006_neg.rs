// Negative DL006 fixture: per-worker partials, reduced in a fixed
// order after the scope — no float accumulation under the scheduler.
pub fn parallel_sum(chunks: &[&[f32]]) -> f32 {
    let mut partials: Vec<f32> = vec![0.0; chunks.len()];
    std::thread::scope(|s| {
        for (slot, chunk) in partials.iter_mut().zip(chunks) {
            s.spawn(move || {
                *slot = chunk.iter().sum::<f32>();
            });
        }
    });
    let mut total: f32 = 0.0;
    for p in &partials {
        total += p;
    }
    total
}
