// Positive DL000 fixture: an allow directive without a reason is a
// malformed suppression — it is reported and suppresses nothing.
use std::collections::HashMap;

pub fn bad(counts: &HashMap<String, usize>) -> usize {
    // detlint: allow(DL001)
    let mut n = 0;
    for (_k, v) in counts.iter() {
        n += v;
    }
    n
}
