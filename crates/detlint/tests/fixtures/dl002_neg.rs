// Negative DL002 fixture: every unsafe site carries its contract.
pub fn read_first(xs: &[u32]) -> u32 {
    assert!(!xs.is_empty());
    // SAFETY: asserted non-empty above, so the pointer is valid.
    unsafe { *xs.as_ptr() }
}

/// Reads through a raw pointer.
///
/// # Safety
/// `p` must be valid for reads.
pub unsafe fn peek(p: *const u32) -> u32 {
    // SAFETY: validity is the caller's contract (see `# Safety`).
    unsafe { *p }
}
