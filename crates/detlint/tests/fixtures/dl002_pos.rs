// Positive DL002 fixture: unsafe without a written contract.
pub fn read_first(xs: &[u32]) -> u32 {
    unsafe { *xs.as_ptr() }
}

pub unsafe fn peek(p: *const u32) -> u32 {
    *p
}
