// Negative DL003 fixture: wall-clock reads are fine inside
// `#[cfg(test)]` / `#[test]` items.
pub fn pure(x: u64) -> u64 {
    x.wrapping_mul(3)
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_is_fine_in_tests() {
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_nanos() < u128::MAX);
    }
}
