//! Fixture tests: each DL code demonstrated by a positive snippet (the
//! finding fires, with a real span) and refuted by a negative one.
//!
//! The snippets live under `tests/fixtures/` — a directory the
//! workspace walker deliberately skips, so the deliberate violations
//! never fail the repo's own gate.

use detlint::{analyze, Code, Diagnostic, FileClass, Suppression};

/// Lint a fixture as if it were ordinary (non-test) crate code.
fn lint(src: &str) -> Vec<Diagnostic> {
    let class = FileClass::from_path("crates/fixture/src/lib.rs");
    analyze(&class, src)
}

fn active(src: &str, code: Code) -> Vec<Diagnostic> {
    lint(src)
        .into_iter()
        .filter(|d| d.code == code && d.is_active())
        .collect()
}

fn assert_spanned(d: &Diagnostic, src: &str) {
    let lines = src.lines().count() as u32;
    assert!(d.line >= 1 && d.line <= lines, "line {} of {lines}", d.line);
    assert!(d.col >= 1, "column must be 1-based");
    assert!(!d.message.is_empty());
}

#[test]
fn dl001_fires_on_unsunk_hash_iteration() {
    let src = include_str!("fixtures/dl001_pos.rs");
    let hits = active(src, Code::HashOrderIteration);
    assert_eq!(hits.len(), 1, "exactly the report loop: {hits:?}");
    assert_spanned(&hits[0], src);
    assert!(hits[0].message.contains("counts"), "{}", hits[0].message);
}

#[test]
fn dl001_quiet_on_order_insensitive_sinks() {
    let src = include_str!("fixtures/dl001_neg.rs");
    assert_eq!(active(src, Code::HashOrderIteration), vec![]);
}

#[test]
fn dl001_inline_allow_suppresses_with_reason() {
    let src = include_str!("fixtures/dl001_allow.rs");
    assert_eq!(active(src, Code::HashOrderIteration), vec![]);
    let suppressed: Vec<Diagnostic> = lint(src)
        .into_iter()
        .filter(|d| d.code == Code::HashOrderIteration)
        .collect();
    assert_eq!(suppressed.len(), 1, "the finding still exists");
    match &suppressed[0].suppression {
        Some(Suppression::Inline { reason }) => {
            assert!(reason.contains("golden file"), "{reason}");
        }
        other => panic!("expected inline suppression, got {other:?}"),
    }
}

#[test]
fn dl000_fires_on_reasonless_directive() {
    let src = include_str!("fixtures/dl000_pos.rs");
    let bad = active(src, Code::BadAllowDirective);
    assert_eq!(bad.len(), 1, "{bad:?}");
    assert_spanned(&bad[0], src);
    assert!(bad[0].message.contains("reason"), "{}", bad[0].message);
    // The reasonless directive suppresses nothing.
    assert_eq!(active(src, Code::HashOrderIteration).len(), 1);
}

#[test]
fn dl002_fires_on_uncontracted_unsafe() {
    let src = include_str!("fixtures/dl002_pos.rs");
    let hits = active(src, Code::UnsafeWithoutContract);
    assert_eq!(hits.len(), 2, "one block, one fn: {hits:?}");
    for d in &hits {
        assert_spanned(d, src);
    }
}

#[test]
fn dl002_quiet_on_safety_comments_and_doc_sections() {
    let src = include_str!("fixtures/dl002_neg.rs");
    assert_eq!(active(src, Code::UnsafeWithoutContract), vec![]);
}

#[test]
fn dl003_fires_on_wall_clock_reads() {
    let src = include_str!("fixtures/dl003_pos.rs");
    let hits = active(src, Code::WallClock);
    assert_eq!(hits.len(), 2, "Instant and SystemTime: {hits:?}");
    for d in &hits {
        assert_spanned(d, src);
    }
}

#[test]
fn dl003_quiet_inside_cfg_test_items() {
    let src = include_str!("fixtures/dl003_neg.rs");
    assert_eq!(active(src, Code::WallClock), vec![]);
}

#[test]
fn dl004_fires_on_unseeded_generators() {
    let src = include_str!("fixtures/dl004_pos.rs");
    let hits = active(src, Code::UnseededRandomness);
    assert_eq!(hits.len(), 2, "thread_rng and from_entropy: {hits:?}");
    for d in &hits {
        assert_spanned(d, src);
    }
}

#[test]
fn dl004_quiet_on_seeded_and_user_defined_rng() {
    let src = include_str!("fixtures/dl004_neg.rs");
    assert_eq!(active(src, Code::UnseededRandomness), vec![]);
}

#[test]
fn dl005_fires_on_ungated_target_feature_call() {
    let src = include_str!("fixtures/dl005_pos.rs");
    let hits = active(src, Code::UngatedTargetFeature);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_spanned(&hits[0], src);
    assert!(
        hits[0].message.contains("kernel_avx2"),
        "{}",
        hits[0].message
    );
    // The SAFETY comments keep DL002 quiet, so this fixture isolates DL005.
    assert_eq!(active(src, Code::UnsafeWithoutContract), vec![]);
}

#[test]
fn dl005_quiet_on_detected_dispatch() {
    let src = include_str!("fixtures/dl005_neg.rs");
    assert_eq!(active(src, Code::UngatedTargetFeature), vec![]);
}

#[test]
fn dl006_fires_on_float_accumulation_under_scope() {
    let src = include_str!("fixtures/dl006_pos.rs");
    let hits = active(src, Code::ParallelFloatAccumulation);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_spanned(&hits[0], src);
    assert!(hits[0].message.contains("total"), "{}", hits[0].message);
}

#[test]
fn dl006_quiet_on_per_worker_partials() {
    let src = include_str!("fixtures/dl006_neg.rs");
    assert_eq!(active(src, Code::ParallelFloatAccumulation), vec![]);
}

#[test]
fn fixtures_under_test_paths_skip_test_scoped_codes() {
    // The same DL001 source analyzed as a test file produces nothing:
    // hash order in tests cannot leak into published results.
    let src = include_str!("fixtures/dl001_pos.rs");
    let class = FileClass::from_path("crates/fixture/tests/it.rs");
    let diags = analyze(&class, src);
    assert!(
        !diags.iter().any(|d| d.code == Code::HashOrderIteration),
        "{diags:?}"
    );
}
