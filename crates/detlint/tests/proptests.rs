//! Property tests: the analyzer is total. It must never panic — not on
//! arbitrary text (unterminated strings, stray quotes, non-ASCII), and
//! not on arbitrary well-formed items — and every diagnostic it emits
//! must carry an in-range 1-based span.

use detlint::{analyze, Code, Diagnostic, FileClass};
use proptest::prelude::*;

fn class() -> FileClass {
    FileClass::from_path("crates/fixture/src/lib.rs")
}

fn check_spans(src: &str, diags: &[Diagnostic]) {
    let lines = src.lines().count().max(1) as u32;
    for d in diags {
        assert!(d.line >= 1 && d.line <= lines, "line {} of {lines}", d.line);
        assert!(d.col >= 1, "col must be 1-based, got {}", d.col);
        assert!(!d.message.is_empty());
        assert_ne!(d.path, "");
    }
}

/// An identifier the item templates below can splice anywhere.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,7}".prop_filter("keywords break templates", |s| {
        !matches!(
            s.as_str(),
            "fn" | "let"
                | "mut"
                | "for"
                | "in"
                | "unsafe"
                | "pub"
                | "use"
                | "as"
                | "if"
                | "else"
                | "loop"
                | "while"
                | "match"
                | "mod"
                | "struct"
                | "enum"
                | "union"
                | "impl"
                | "trait"
                | "true"
                | "false"
                | "const"
                | "static"
                | "ref"
                | "move"
                | "return"
                | "where"
                | "type"
                | "dyn"
                | "extern"
                | "crate"
                | "self"
                | "super"
                | "box"
                | "async"
                | "await"
        )
    })
}

/// One syntactically well-formed item, spanning the shapes the checks
/// care about: hash decls + iteration, unsafe blocks/fns, clocks,
/// randomness, target features, threaded float accumulation, allow
/// directives, comments, strings.
fn item() -> impl Strategy<Value = String> {
    let i = ident;
    prop_oneof![
        (i(), i()).prop_map(|(f, m)| format!(
            "fn {f}() -> usize {{\n    let mut {m}: HashMap<u64, u64> = HashMap::new();\n    \
             {m}.insert(1, 2);\n    for (k, v) in {m}.iter() {{\n        \
             println!(\"{{k}} {{v}}\");\n    }}\n    {m}.len()\n}}\n"
        )),
        (i(), i()).prop_map(|(f, m)| format!(
            "fn {f}(xs: &FxHashMap<String, i32>) -> i32 {{\n    \
             let mut {m}: Vec<i32> = xs.values().copied().collect();\n    \
             {m}.sort_unstable();\n    {m}.first().copied().unwrap_or(0)\n}}\n"
        )),
        (i(), "[ -~]{0,24}").prop_map(|(f, s)| {
            let s = s.replace(['"', '\\'], "_");
            format!("fn {f}() -> &'static str {{\n    \"{s}\"\n}}\n")
        }),
        i().prop_map(|f| format!(
            "/// Docs with a stray detlint: allow(DL001) mention.\nfn {f}(p: *const u8) -> u8 {{\n    \
             // SAFETY: fixture pointer is valid by construction.\n    unsafe {{ *p }}\n}}\n"
        )),
        i().prop_map(|f| format!(
            "fn {f}() -> u128 {{\n    std::time::Instant::now().elapsed().as_nanos()\n}}\n"
        )),
        i().prop_map(|f| format!(
            "fn {f}() -> f64 {{\n    let mut rng = rand::thread_rng();\n    rng.r#gen()\n}}\n"
        )),
        (i(), i()).prop_map(|(f, g)| format!(
            "#[target_feature(enable = \"avx2\")]\nunsafe fn {g}_avx2() {{}}\n\n\
             fn {f}() {{\n    unsafe {{ {g}_avx2() }}\n}}\n"
        )),
        (i(), i()).prop_map(|(f, t)| format!(
            "fn {f}(xs: &[f32]) -> f32 {{\n    let mut {t}: f32 = 0.0;\n    \
             std::thread::scope(|s| {{\n        s.spawn(|| {{\n            \
             for x in xs {{\n                {t} += x;\n            }}\n        \
             }});\n    }});\n    {t}\n}}\n"
        )),
        (i(), i()).prop_map(|(f, m)| format!(
            "fn {f}(xs: &HashSet<u32>) -> u32 {{\n    \
             // detlint: allow(DL001) {m} fixture reason\n    \
             let mut acc = 0;\n    for x in xs.iter() {{\n        acc ^= x;\n    }}\n    acc\n}}\n"
        )),
        i().prop_map(|m| format!(
            "#[cfg(test)]\nmod {m} {{\n    #[test]\n    fn t() {{\n        \
             let now = std::time::Instant::now();\n        let _ = now.elapsed();\n    }}\n}}\n"
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Total on arbitrary printable text — including unbalanced
    /// delimiters, stray quotes, and half-written directives.
    #[test]
    fn never_panics_on_arbitrary_text(src in "[ -~\n]{0,400}") {
        let diags = analyze(&class(), &src);
        check_spans(&src, &diags);
    }

    /// Total on arbitrary Unicode.
    #[test]
    fn never_panics_on_arbitrary_unicode(src in "\\PC{0,200}") {
        let diags = analyze(&class(), &src);
        check_spans(&src, &diags);
    }

    /// On arbitrary sequences of well-formed items: no panic, valid
    /// spans, deterministic output, and inline-allowed findings carry
    /// their reasons.
    #[test]
    fn spanned_and_deterministic_on_wellformed_items(items in proptest::collection::vec(item(), 0..6)) {
        let src = items.concat();
        let diags = analyze(&class(), &src);
        check_spans(&src, &diags);
        let again = analyze(&class(), &src);
        prop_assert_eq!(&diags, &again, "analysis must be deterministic");
        for d in &diags {
            if let Some(s) = &d.suppression {
                prop_assert!(!s.reason().trim().is_empty());
            }
            if d.code == Code::BadAllowDirective {
                prop_assert!(d.is_active(), "DL000 is never suppressible");
            }
        }
    }
}
