//! The `detlint` binary: lint the workspace (or listed files) and exit
//! nonzero on any unsuppressed finding.
//!
//! ```text
//! cargo run -p detlint -- --workspace          # lint every member crate
//! cargo run -p detlint -- --json --workspace   # machine-readable report
//! cargo run -p detlint -- crates/semvec/src/quant.rs
//! ```
//!
//! Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/IO errors
//! (including a malformed allowlist — a suppression without a reason
//! is a configuration error, never a pass).

use detlint::{analyze_with, hash_field_names, workspace, FileClass, Report};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut quiet = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => {} // the default; kept for explicitness
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--root" => match args.next() {
                Some(r) => root_arg = Some(PathBuf::from(r)),
                None => return usage("--root requires a directory"),
            },
            "--help" | "-h" => {
                println!("{HELP}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                return usage(&format!("unknown flag `{flag}`"));
            }
            path => paths.push(path.to_string()),
        }
    }

    let root = match root_arg.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| workspace::find_root(&d))
    }) {
        Some(r) => r,
        None => return usage("no workspace root found (run inside the repo or pass --root)"),
    };

    let report = if paths.is_empty() {
        detlint::run_workspace(&root)
    } else {
        lint_paths(&root, &paths)
    };

    for e in &report.errors {
        eprintln!("detlint: error: {e}");
    }
    if json {
        print!("{}", report.to_json());
    } else if !quiet {
        render_text(&report);
    }
    if !report.errors.is_empty() {
        ExitCode::from(2)
    } else if report.active().next().is_some() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn lint_paths(root: &std::path::Path, paths: &[String]) -> Report {
    let mut report = Report::default();
    // Same two-pass shape as the workspace run, scoped to the listed
    // files: hash-typed declarations in any of them are visible to all.
    let mut loaded: Vec<(FileClass, String)> = Vec::new();
    let mut field_names = std::collections::BTreeSet::new();
    for p in paths {
        let display = p.replace('\\', "/");
        let class = FileClass::from_path(&display);
        let full = if std::path::Path::new(p).is_absolute() {
            PathBuf::from(p)
        } else {
            root.join(p)
        };
        match std::fs::read_to_string(&full) {
            Ok(src) => {
                field_names.extend(hash_field_names(&src));
                loaded.push((class, src));
            }
            Err(e) => report
                .errors
                .push(format!("cannot read {}: {e}", full.display())),
        }
    }
    for (class, src) in &loaded {
        report.files += 1;
        report
            .diagnostics
            .extend(analyze_with(class, src, &field_names));
    }
    report
}

fn render_text(report: &Report) {
    for d in &report.diagnostics {
        if d.is_active() {
            println!("{d}");
        }
    }
    let active = report.active().count();
    let suppressed = report.suppressed_count();
    if active == 0 {
        println!(
            "detlint: clean — {} files, 0 active findings ({suppressed} suppressed with reasons)",
            report.files
        );
    } else {
        println!(
            "detlint: {active} active finding(s) across {} files ({suppressed} suppressed)",
            report.files
        );
        for (code, a, s) in report.counts() {
            println!("  {code}: {a} active, {s} suppressed");
        }
    }
    for s in &report.stale_allowlist {
        println!("detlint: note: stale allowlist entry matches nothing: {s}");
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("detlint: {msg}\n\n{HELP}");
    ExitCode::from(2)
}

const HELP: &str = "\
detlint — workspace determinism & unsafe-invariant analyzer (DL001-DL006)

USAGE:
    detlint [--workspace] [--json] [--quiet] [--root DIR] [FILES...]

With no FILES, lints every workspace member crate. Findings are
suppressed only by an inline `// detlint: allow(DLxxx) <reason>` or a
reasoned entry in detlint.toml; either without a reason is an error.

CODES:
    DL001 hash-order-iteration        DL004 unseeded-randomness
    DL002 unsafe-without-safety       DL005 ungated-target-feature-call
    DL003 wall-clock-read             DL006 parallel-float-accumulation";
