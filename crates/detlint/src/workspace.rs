//! Workspace discovery: member crates from the root `Cargo.toml`, the
//! `.rs` files of each, and per-file scope classification.
//!
//! Like everything in detlint this is dependency-free: the manifest
//! parsing understands exactly the `members = [...]` shape (including
//! `crates/*` globs) that cargo workspaces use.

use crate::analyze::FileClass;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories that are never analyzed. `fixtures` holds deliberately
/// violating snippets for detlint's own tests; `target` is build
/// output.
const SKIP_DIRS: [&str; 3] = ["target", "fixtures", ".git"];

/// Read the workspace members out of `<root>/Cargo.toml`.
pub fn members(root: &Path) -> io::Result<Vec<PathBuf>> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut members = Vec::new();
    let mut in_members = false;
    for raw in manifest.lines() {
        let line = raw.trim();
        if !in_members {
            if let Some(rest) = line.strip_prefix("members") {
                let rest = rest.trim_start();
                if let Some(list) = rest.strip_prefix('=') {
                    in_members = true;
                    collect_member_patterns(list, root, &mut members);
                    if list.contains(']') {
                        in_members = false;
                    }
                }
            }
        } else {
            collect_member_patterns(line, root, &mut members);
            if line.contains(']') {
                in_members = false;
            }
        }
    }
    // The root package itself (a workspace can also be a package).
    if manifest.contains("[package]") {
        members.push(root.to_path_buf());
    }
    members.sort();
    members.dedup();
    Ok(members)
}

fn collect_member_patterns(segment: &str, root: &Path, out: &mut Vec<PathBuf>) {
    for piece in segment.split(',') {
        let piece = piece.trim().trim_matches(|c| "[]\" ".contains(c));
        if piece.is_empty() {
            continue;
        }
        if let Some(dir) = piece.strip_suffix("/*") {
            let base = root.join(dir);
            let Ok(read) = fs::read_dir(&base) else {
                continue;
            };
            let mut found: Vec<PathBuf> = read
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.is_dir() && p.join("Cargo.toml").exists())
                .collect();
            found.sort();
            out.extend(found);
        } else {
            let p = root.join(piece);
            if p.join("Cargo.toml").exists() {
                out.push(p);
            }
        }
    }
}

/// Every `.rs` file of a member crate, as repo-relative paths.
pub fn crate_sources(root: &Path, member: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for sub in ["src", "tests", "benches", "examples"] {
        walk(&member.join(sub), &mut files);
    }
    let build = member.join("build.rs");
    if build.exists() {
        files.push(build);
    }
    files.sort();
    files
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(Path::to_path_buf))
        .collect()
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(read) = fs::read_dir(dir) else { return };
    let mut entries: Vec<PathBuf> = read.flatten().map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            walk(&p, out);
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
}

/// All workspace sources with their scope classification, repo-relative
/// and sorted for deterministic reports.
pub fn workspace_files(root: &Path) -> io::Result<Vec<FileClass>> {
    let mut out = Vec::new();
    for member in members(root)? {
        for rel in crate_sources(root, &member) {
            let display = rel.to_string_lossy().replace('\\', "/");
            out.push(FileClass::from_path(&display));
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    out.dedup_by(|a, b| a.path == b.path);
    Ok(out)
}

/// Find the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_classification() {
        let f = FileClass::from_path("crates/semvec/src/quant.rs");
        assert!(!f.test_scope && !f.bench_scope);
        let f = FileClass::from_path("crates/semvec/tests/proptests.rs");
        assert!(f.test_scope && !f.bench_scope);
        let f = FileClass::from_path("crates/bench/src/bin/perf.rs");
        assert!(f.test_scope && f.bench_scope);
        let f = FileClass::from_path("tests/integration.rs");
        assert!(f.test_scope);
    }

    #[test]
    fn finds_this_workspace() {
        let here = std::env::current_dir().unwrap();
        let root = find_root(&here).expect("detlint runs inside its own workspace");
        assert!(root.join("Cargo.toml").exists());
        let members = members(&root).unwrap();
        assert!(
            members.iter().any(|m| m.ends_with("crates/detlint")),
            "workspace members must include detlint itself: {members:?}"
        );
        let files = workspace_files(&root).unwrap();
        assert!(files.iter().any(|f| f.path == "crates/semvec/src/quant.rs"));
        assert!(
            !files.iter().any(|f| f.path.contains("/fixtures/")),
            "fixture snippets must not be analyzed as workspace code"
        );
    }
}
