//! The checked-in allowlist (`detlint.toml`).
//!
//! detlint is dependency-free, so this is a hand-rolled parser for the
//! small TOML subset the allowlist needs: `[[allow]]` tables with
//! string keys `code`, `path`, `reason` and an optional integer
//! `line`. Every entry MUST carry a non-empty `reason` — an entry
//! without one is a hard error (exit 2), not a finding, so the "every
//! suppression is justified" rule cannot be ratcheted away.
//!
//! Matching: an entry suppresses findings of its `code` whose path
//! equals `path` exactly, or falls under it when `path` ends with `/`
//! (directory prefix). When `line` is present the finding's line must
//! match exactly — precise, but brittle against edits; prefer
//! file-level entries with tight reasons.

use crate::diag::{Code, Diagnostic, Suppression};

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub code: Code,
    pub path: String,
    pub line: Option<u32>,
    pub reason: String,
}

impl AllowEntry {
    /// Whether this entry suppresses the given finding.
    pub fn matches(&self, d: &Diagnostic) -> bool {
        if d.code != self.code {
            return false;
        }
        let path_ok = if let Some(dir) = self.path.strip_suffix('/') {
            d.path.starts_with(dir) && d.path[dir.len()..].starts_with('/')
        } else {
            d.path == self.path
        };
        path_ok && self.line.is_none_or(|l| l == d.line)
    }
}

/// Parse `detlint.toml` content. Returns the entries or a list of
/// human-readable errors (file:line prefixed).
pub fn parse(src: &str, display_path: &str) -> Result<Vec<AllowEntry>, Vec<String>> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    let mut current: Option<PartialEntry> = None;

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_toml_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            finish(&mut current, &mut entries, &mut errors, display_path);
            current = Some(PartialEntry::new(lineno));
            continue;
        }
        if line.starts_with('[') {
            errors.push(format!(
                "{display_path}:{lineno}: unknown table `{line}` (only [[allow]] is supported)"
            ));
            current = None;
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            errors.push(format!("{display_path}:{lineno}: expected `key = value`"));
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        let Some(entry) = current.as_mut() else {
            errors.push(format!(
                "{display_path}:{lineno}: `{key}` outside an [[allow]] table"
            ));
            continue;
        };
        match key {
            "code" => match unquote(value) {
                Some(v) => match Code::parse(v) {
                    Some(c) => entry.code = Some(c),
                    None => errors.push(format!(
                        "{display_path}:{lineno}: unknown or unsuppressible code `{v}`"
                    )),
                },
                None => errors.push(format!(
                    "{display_path}:{lineno}: `code` must be a quoted string"
                )),
            },
            "path" => match unquote(value) {
                Some(v) => entry.path = Some(v.to_string()),
                None => errors.push(format!(
                    "{display_path}:{lineno}: `path` must be a quoted string"
                )),
            },
            "reason" => match unquote(value) {
                Some(v) if !v.trim().is_empty() => entry.reason = Some(v.to_string()),
                Some(_) => errors.push(format!(
                    "{display_path}:{lineno}: `reason` must not be empty — every suppression \
                     says why"
                )),
                None => errors.push(format!(
                    "{display_path}:{lineno}: `reason` must be a quoted string"
                )),
            },
            "line" => match value.parse::<u32>() {
                Ok(v) => entry.line = Some(v),
                Err(_) => errors.push(format!(
                    "{display_path}:{lineno}: `line` must be an integer"
                )),
            },
            other => errors.push(format!(
                "{display_path}:{lineno}: unknown key `{other}` (expected code/path/line/reason)"
            )),
        }
    }
    finish(&mut current, &mut entries, &mut errors, display_path);

    if errors.is_empty() {
        Ok(entries)
    } else {
        Err(errors)
    }
}

/// Apply the allowlist: mark matching findings as suppressed. Returns
/// the indices of entries that matched nothing (stale entries — the
/// gate reports them so the allowlist can only shrink over time).
pub fn apply(entries: &[AllowEntry], diags: &mut [Diagnostic]) -> Vec<usize> {
    let mut used = vec![false; entries.len()];
    for d in diags.iter_mut() {
        if d.suppression.is_some() || d.code == Code::BadAllowDirective {
            continue;
        }
        for (i, e) in entries.iter().enumerate() {
            if e.matches(d) {
                used[i] = true;
                d.suppression = Some(Suppression::Allowlist {
                    reason: e.reason.clone(),
                });
                break;
            }
        }
    }
    used.iter()
        .enumerate()
        .filter_map(|(i, &u)| (!u).then_some(i))
        .collect()
}

struct PartialEntry {
    lineno: usize,
    code: Option<Code>,
    path: Option<String>,
    line: Option<u32>,
    reason: Option<String>,
}

impl PartialEntry {
    fn new(lineno: usize) -> Self {
        Self {
            lineno,
            code: None,
            path: None,
            line: None,
            reason: None,
        }
    }
}

fn finish(
    current: &mut Option<PartialEntry>,
    entries: &mut Vec<AllowEntry>,
    errors: &mut Vec<String>,
    display_path: &str,
) {
    let Some(p) = current.take() else { return };
    match (p.code, p.path, p.reason) {
        (Some(code), Some(path), Some(reason)) => entries.push(AllowEntry {
            code,
            path,
            line: p.line,
            reason,
        }),
        (code, path, reason) => {
            let mut missing = Vec::new();
            if code.is_none() {
                missing.push("code");
            }
            if path.is_none() {
                missing.push("path");
            }
            if reason.is_none() {
                missing.push("reason");
            }
            errors.push(format!(
                "{display_path}:{}: [[allow]] entry missing required key(s): {}",
                p.lineno,
                missing.join(", ")
            ));
        }
    }
}

fn strip_toml_comment(line: &str) -> &str {
    // A `#` outside quotes starts a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote(v: &str) -> Option<&str> {
    v.strip_prefix('"').and_then(|s| s.strip_suffix('"'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: Code, path: &str, line: u32) -> Diagnostic {
        Diagnostic {
            code,
            path: path.into(),
            line,
            col: 1,
            message: String::new(),
            suppression: None,
        }
    }

    #[test]
    fn parses_entries_and_matches() {
        let toml = r#"
# workspace allowlist
[[allow]]
code = "DL003"  # trailing comment
path = "crates/x/src/a.rs"
reason = "progress logging only, never feeds results"

[[allow]]
code = "DL001"
path = "crates/y/"
line = 12
reason = "counted into an integer histogram"
"#;
        let entries = parse(toml, "detlint.toml").unwrap();
        assert_eq!(entries.len(), 2);
        assert!(entries[0].matches(&diag(Code::WallClock, "crates/x/src/a.rs", 99)));
        assert!(!entries[0].matches(&diag(Code::WallClock, "crates/x/src/b.rs", 99)));
        assert!(entries[1].matches(&diag(Code::HashOrderIteration, "crates/y/src/m.rs", 12)));
        assert!(!entries[1].matches(&diag(Code::HashOrderIteration, "crates/y/src/m.rs", 13)));
        assert!(!entries[1].matches(&diag(Code::HashOrderIteration, "crates/yy/src/m.rs", 12)));
    }

    #[test]
    fn reason_is_mandatory() {
        let toml = "[[allow]]\ncode = \"DL001\"\npath = \"x.rs\"\n";
        let errs = parse(toml, "detlint.toml").unwrap_err();
        assert!(
            errs[0].contains("missing required key(s): reason"),
            "{errs:?}"
        );

        let toml = "[[allow]]\ncode = \"DL001\"\npath = \"x.rs\"\nreason = \"  \"\n";
        let errs = parse(toml, "detlint.toml").unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("must not be empty")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_unknown_keys_and_codes() {
        let toml =
            "[[allow]]\ncode = \"DL000\"\npath = \"x.rs\"\nreason = \"r\"\nseverity = \"high\"\n";
        let errs = parse(toml, "detlint.toml").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("unsuppressible code")));
        assert!(errs.iter().any(|e| e.contains("unknown key `severity`")));
    }

    #[test]
    fn apply_reports_stale_entries() {
        let entries = vec![
            AllowEntry {
                code: Code::WallClock,
                path: "a.rs".into(),
                line: None,
                reason: "r".into(),
            },
            AllowEntry {
                code: Code::WallClock,
                path: "never.rs".into(),
                line: None,
                reason: "r".into(),
            },
        ];
        let mut diags = vec![diag(Code::WallClock, "a.rs", 3)];
        let stale = apply(&entries, &mut diags);
        assert_eq!(stale, vec![1]);
        assert!(diags[0].suppression.is_some());
    }
}
