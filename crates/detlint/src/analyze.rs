//! The determinism & unsafe-invariant checks (DL001–DL006).
//!
//! Every check is a *token-shape* invariant over the output of
//! [`crate::lexer`]: no type inference, no name resolution. That makes
//! the analyzer fast and dependency-free, at the price of
//! approximation — identifiers are classified as hash-ordered or
//! float-typed by local declaration patterns (`let m: FxHashMap<…>`,
//! `= HashMap::new()`, `sum: f64`, struct fields), so a map that
//! enters a file only through an untyped helper return can slip
//! through. The workspace gate treats the analyzer as a ratchet:
//! everything it *does* see must be fixed or carry a written reason.
//!
//! Scoping rules:
//! - DL001 (hash-order iteration) and DL003 (wall-clock) skip test
//!   code — files under `tests/`, `benches/`, `examples/`, and
//!   `#[cfg(test)]` / `#[test]` items. DL003 additionally skips
//!   `crates/bench`, the only place wall-clock reads are legitimate.
//! - DL002 (SAFETY contracts), DL004 (unseeded randomness), DL005
//!   (ungated `#[target_feature]` calls) and DL006 (parallel float
//!   accumulation) apply everywhere, including tests: an undocumented
//!   unsafe block or an unseeded generator is just as wrong in a test.

use crate::diag::{Code, Diagnostic, Suppression};
use crate::lexer::{lex, Comment, Tok, TokKind};
use std::collections::BTreeSet;

/// Where a file sits in the workspace, which decides check scoping.
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// Repo-relative display path.
    pub path: String,
    /// Whole file is test/bench/example code (path-derived).
    pub test_scope: bool,
    /// File belongs to `crates/bench` (wall-clock allowed).
    pub bench_scope: bool,
}

impl FileClass {
    /// Classify a repo-relative path.
    pub fn from_path(path: &str) -> FileClass {
        let bench_scope = path.starts_with("crates/bench/");
        let test_scope = bench_scope
            || path.contains("/tests/")
            || path.contains("/benches/")
            || path.contains("/examples/")
            || path.starts_with("tests/")
            || path.starts_with("examples/");
        FileClass {
            path: path.to_string(),
            test_scope,
            bench_scope,
        }
    }
}

const HASH_TYPES: [&str; 4] = ["HashMap", "HashSet", "FxHashMap", "FxHashSet"];
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_keys",
    "into_values",
];
const FLOAT_TYPES: [&str; 2] = ["f32", "f64"];
/// Order-insensitive chain terminators: reductions whose result cannot
/// observe iteration order (on the integer/Ord element types they are
/// callable with).
const SINK_TERMINATORS: [&str; 5] = ["count", "max", "min", "all", "any"];
const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Methods that pass a container through unchanged, so a dotted chain
/// like `self.cache.lock().iter()` still iterates the declared
/// collection. Any *other* call in the chain (`get`, `entry`, …)
/// changes the type, so classification stops there.
const PASSTHROUGH_CALLS: [&str; 10] = [
    "lock",
    "borrow",
    "borrow_mut",
    "read",
    "write",
    "as_ref",
    "as_mut",
    "unwrap",
    "expect",
    "clone",
];

/// Analyze one source file. Inline `// detlint: allow(…)` suppression
/// is applied here; allowlist suppression happens in the runner.
pub fn analyze(class: &FileClass, src: &str) -> Vec<Diagnostic> {
    analyze_with(class, src, &BTreeSet::new())
}

/// [`analyze`] with an extra set of identifiers known (from the rest
/// of the workspace) to name hash-ordered collections — typically
/// struct fields declared in other files. See [`hash_field_names`].
pub fn analyze_with(
    class: &FileClass,
    src: &str,
    workspace_hash_idents: &BTreeSet<String>,
) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let mut a = FileAnalysis::new(class, &lexed.tokens, &lexed.comments);
    a.global_hash_fields
        .extend(workspace_hash_idents.iter().cloned());
    a.run()
}

/// Identifiers declared with a hash-ordered type (`name: FxHashMap<…>`
/// and friends) in one file — the workspace pre-pass feeds the union
/// of these back into [`analyze_with`] so that a field declared in
/// `source.rs` is still recognized when `stats.rs` iterates it.
pub fn hash_field_names(src: &str) -> BTreeSet<String> {
    let lexed = lex(src);
    let class = FileClass::default();
    let a = FileAnalysis::new(&class, &lexed.tokens, &lexed.comments);
    a.hash_fields
}

struct AllowDirective {
    code: Code,
    reason: String,
    /// Last line the directive's comment occupies.
    end_line: u32,
    used: std::cell::Cell<bool>,
}

struct FileAnalysis<'a> {
    class: &'a FileClass,
    toks: &'a [Tok],
    comments: &'a [Comment],
    /// Parens+brackets depth *before* each token.
    pb_depth: Vec<u32>,
    /// Matching close index for every `(`/`[`/`{` token.
    match_close: Vec<usize>,
    /// Token index ranges (inclusive) that belong to `#[cfg(test)]`,
    /// `#[test]`, … items.
    test_ranges: Vec<(usize, usize)>,
    /// Token index ranges covered by attributes (`#[…]` / `#![…]`).
    attr_ranges: Vec<(usize, usize)>,
    /// Function definitions in the file.
    fns: Vec<FnDef>,
    hash_idents: BTreeSet<String>,
    /// The subset of `hash_idents` declared as struct/enum fields —
    /// the only names worth exporting workspace-wide (local `let`s
    /// would pollute every other file).
    hash_fields: BTreeSet<String>,
    /// Field names imported from the rest of the workspace. These only
    /// match *field accesses* (`x.meta.iter()`), never bare locals — a
    /// local `Vec` that happens to share a field's name stays clean.
    global_hash_fields: BTreeSet<String>,
    float_idents: BTreeSet<String>,
    /// Token ranges `(open_brace, close_brace)` of struct/enum bodies.
    adt_bodies: Vec<(usize, usize)>,
    allows: Vec<AllowDirective>,
}

struct FnDef {
    name: String,
    name_idx: usize,
    /// Body token range `(open_brace_idx, close_brace_idx)`, if any.
    body: Option<(usize, usize)>,
    target_feature: bool,
}

impl<'a> FileAnalysis<'a> {
    fn new(class: &'a FileClass, toks: &'a [Tok], comments: &'a [Comment]) -> Self {
        let mut a = FileAnalysis {
            class,
            toks,
            comments,
            pb_depth: Vec::new(),
            match_close: Vec::new(),
            test_ranges: Vec::new(),
            attr_ranges: Vec::new(),
            fns: Vec::new(),
            hash_idents: BTreeSet::new(),
            hash_fields: BTreeSet::new(),
            global_hash_fields: BTreeSet::new(),
            float_idents: BTreeSet::new(),
            adt_bodies: Vec::new(),
            allows: Vec::new(),
        };
        a.compute_depths();
        a.collect_attr_ranges();
        a.collect_test_ranges();
        a.collect_fns();
        a.collect_adt_bodies();
        a.collect_typed_idents();
        a
    }

    fn run(mut self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        self.parse_allow_directives(&mut diags);
        self.check_hash_iteration(&mut diags);
        self.check_unsafe_contracts(&mut diags);
        self.check_wall_clock(&mut diags);
        self.check_unseeded_randomness(&mut diags);
        self.check_target_feature_gating(&mut diags);
        self.check_parallel_float_accumulation(&mut diags);
        self.apply_inline_allows(&mut diags);
        diags.sort_by_key(|x| (x.line, x.col, x.code));
        diags
    }

    // ---- shared structure -------------------------------------------------

    fn compute_depths(&mut self) {
        let n = self.toks.len();
        self.pb_depth = vec![0; n];
        self.match_close = vec![usize::MAX; n];
        let mut pb = 0u32;
        let mut stack: Vec<usize> = Vec::new();
        for (i, t) in self.toks.iter().enumerate() {
            self.pb_depth[i] = pb;
            match t.kind {
                TokKind::Punct('(') | TokKind::Punct('[') => {
                    pb += 1;
                    stack.push(i);
                }
                TokKind::Punct(')') | TokKind::Punct(']') => {
                    pb = pb.saturating_sub(1);
                    if let Some(open) = stack.pop() {
                        self.match_close[open] = i;
                    }
                }
                TokKind::Punct('{') => stack.push(i),
                TokKind::Punct('}') => {
                    if let Some(open) = stack.pop() {
                        self.match_close[open] = i;
                    }
                }
                _ => {}
            }
        }
    }

    /// True when `toks[i]` and `toks[i+1]` are the two halves of `::`.
    fn is_path_sep(&self, i: usize) -> bool {
        self.toks[i].is_punct(':')
            && self
                .toks
                .get(i + 1)
                .is_some_and(|t| t.is_punct(':') && t.off == self.toks[i].off + 1)
    }

    /// True when `toks[i]` is a lone type-ascription colon.
    fn is_single_colon(&self, i: usize) -> bool {
        self.toks[i].is_punct(':') && !self.is_path_sep(i) && !(i > 0 && self.is_path_sep(i - 1))
    }

    fn collect_attr_ranges(&mut self) {
        let mut i = 0;
        while i < self.toks.len() {
            if self.toks[i].is_punct('#') {
                let mut j = i + 1;
                if self.toks.get(j).is_some_and(|t| t.is_punct('!')) {
                    j += 1;
                }
                if self.toks.get(j).is_some_and(|t| t.is_punct('[')) {
                    let close = self.match_close[j];
                    if close != usize::MAX {
                        self.attr_ranges.push((i, close));
                        i = close + 1;
                        continue;
                    }
                }
            }
            i += 1;
        }
    }

    fn in_attr(&self, idx: usize) -> bool {
        self.attr_ranges.iter().any(|&(s, e)| idx >= s && idx <= e)
    }

    /// Mark the token range of the item following each test-marking
    /// attribute (`#[cfg(test)]`, `#[test]`, `#[bench]`, …).
    fn collect_test_ranges(&mut self) {
        let mut ranges = Vec::new();
        for &(start, end) in &self.attr_ranges {
            let attr = &self.toks[start..=end];
            // `#[cfg(test)]`, `#[test]`, `#[bench]`, `#[cfg(any(test, …))]`
            // — but not `#[cfg(not(test))]`.
            let is_test_attr = (attr.iter().any(|t| t.is_ident("test"))
                || attr.iter().any(|t| t.is_ident("bench")))
                && !attr.iter().any(|t| t.is_ident("not"));
            if !is_test_attr {
                continue;
            }
            // Skip any further attributes between this one and the item.
            let mut item = end + 1;
            while item < self.toks.len() {
                if let Some(&(_, e)) = self.attr_ranges.iter().find(|&&(s, _)| s == item) {
                    item = e + 1;
                } else {
                    break;
                }
            }
            // The item ends at the first `;` at base depth, or at the
            // close of its first base-depth brace block.
            let base = self.pb_depth.get(item).copied().unwrap_or(0);
            let mut j = item;
            let mut item_end = self.toks.len().saturating_sub(1);
            while j < self.toks.len() {
                let t = &self.toks[j];
                if self.pb_depth[j] == base && t.is_punct(';') {
                    item_end = j;
                    break;
                }
                if self.pb_depth[j] == base && t.is_punct('{') {
                    let close = self.match_close[j];
                    item_end = if close == usize::MAX {
                        self.toks.len().saturating_sub(1)
                    } else {
                        close
                    };
                    break;
                }
                j += 1;
            }
            ranges.push((item, item_end));
        }
        self.test_ranges = ranges;
    }

    fn in_test_code(&self, idx: usize) -> bool {
        self.class.test_scope || self.test_ranges.iter().any(|&(s, e)| idx >= s && idx <= e)
    }

    fn collect_fns(&mut self) {
        let mut fns = Vec::new();
        for i in 0..self.toks.len() {
            if !self.toks[i].is_ident("fn") || self.in_attr(i) {
                continue;
            }
            let Some(name_tok) = self.toks.get(i + 1) else {
                continue;
            };
            let Some(name) = name_tok.ident() else {
                continue;
            };
            // Attributes directly above the `fn` (skipping qualifiers
            // such as `pub`, `unsafe`, `extern "C"`, `const`).
            let mut k = i;
            while k > 0 {
                let prev = &self.toks[k - 1];
                let qualifier = prev
                    .ident()
                    .is_some_and(|s| matches!(s, "pub" | "unsafe" | "const" | "extern" | "async"))
                    || prev.is_punct(')')
                    || prev.is_punct('(')
                    || prev.ident().is_some_and(|s| s == "crate")
                    || matches!(prev.kind, TokKind::Str);
                if qualifier {
                    k -= 1;
                } else {
                    break;
                }
            }
            let mut target_feature = false;
            // Walk attribute groups immediately above.
            let mut above = k;
            while above > 0 {
                let attr = self
                    .attr_ranges
                    .iter()
                    .find(|&&(_, e)| e == above - 1)
                    .copied();
                match attr {
                    Some((s, e)) => {
                        if self.toks[s..=e]
                            .iter()
                            .any(|t| t.is_ident("target_feature"))
                        {
                            target_feature = true;
                        }
                        above = s;
                    }
                    None => break,
                }
            }
            // Find the body: first base-depth `{` before a base-depth `;`.
            let base = self.pb_depth[i];
            let mut j = i + 2;
            let mut body = None;
            while j < self.toks.len() {
                let t = &self.toks[j];
                if self.pb_depth[j] == base && t.is_punct(';') {
                    break;
                }
                if self.pb_depth[j] == base && t.is_punct('{') {
                    let close = self.match_close[j];
                    if close != usize::MAX {
                        body = Some((j, close));
                    }
                    break;
                }
                j += 1;
            }
            fns.push(FnDef {
                name: name.to_string(),
                name_idx: i + 1,
                body,
                target_feature,
            });
        }
        self.fns = fns;
    }

    /// The function whose body most tightly encloses `idx`.
    fn enclosing_fn(&self, idx: usize) -> Option<&FnDef> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(s, e)| idx > s && idx < e))
            .min_by_key(|f| {
                let (s, e) = f.body.unwrap();
                e - s
            })
    }

    /// Body brace ranges of `struct`/`enum`/`union` definitions, so
    /// field declarations can be told apart from `let`s and params.
    fn collect_adt_bodies(&mut self) {
        for i in 0..self.toks.len() {
            let is_adt = self.toks[i]
                .ident()
                .is_some_and(|s| matches!(s, "struct" | "enum" | "union"));
            if !is_adt || self.in_attr(i) {
                continue;
            }
            // Body = first `{` at this depth before a terminating `;`
            // (tuple/unit structs have no named fields).
            let base = self.pb_depth[i];
            let mut j = i + 1;
            while j < self.toks.len() {
                let t = &self.toks[j];
                if self.pb_depth[j] == base && t.is_punct(';') {
                    break;
                }
                if self.pb_depth[j] == base && t.is_punct('{') {
                    let close = self.match_close[j];
                    if close != usize::MAX {
                        self.adt_bodies.push((j, close));
                    }
                    break;
                }
                j += 1;
            }
        }
    }

    fn in_adt_body(&self, idx: usize) -> bool {
        self.adt_bodies.iter().any(|&(s, e)| idx > s && idx < e)
    }

    /// Track identifiers declared with hash-ordered or float types.
    fn collect_typed_idents(&mut self) {
        let toks = self.toks;
        for i in 0..toks.len() {
            // `name: <type>` — let bindings, params, struct fields.
            if i > 0 && self.is_single_colon(i) && !self.in_attr(i) {
                if let Some(name) = toks[i - 1].ident() {
                    let mut j = i + 1;
                    // Skip `&`, `&&`, `mut`, lifetimes.
                    while j < toks.len() {
                        let t = &toks[j];
                        if t.is_punct('&')
                            || t.is_ident("mut")
                            || matches!(t.kind, TokKind::Lifetime(_))
                        {
                            j += 1;
                        } else {
                            break;
                        }
                    }
                    // Walk a path `a::b::C`, keeping the last segment.
                    let mut last_seg: Option<&str> = None;
                    while j < toks.len() {
                        if let Some(seg) = toks[j].ident() {
                            last_seg = Some(seg);
                            if j + 2 < toks.len() && self.is_path_sep(j + 1) {
                                j += 3;
                                continue;
                            }
                        }
                        break;
                    }
                    if let Some(seg) = last_seg {
                        if HASH_TYPES.contains(&seg) {
                            self.hash_idents.insert(name.to_string());
                            if self.in_adt_body(i) {
                                self.hash_fields.insert(name.to_string());
                            }
                        } else if FLOAT_TYPES.contains(&seg) {
                            self.float_idents.insert(name.to_string());
                        }
                    }
                }
            }
            // `let [mut] name = <rhs>;` — classify by the initializer.
            if toks[i].is_ident("let") {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                let Some(name) = toks.get(j).and_then(|t| t.ident()) else {
                    continue;
                };
                if !toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                    continue;
                }
                // Scan the initializer up to the terminating `;`.
                let base = self.pb_depth[i];
                let mut k = j + 2;
                let mut saw_hash = false;
                let mut first = true;
                while k < toks.len() {
                    let t = &toks[k];
                    if self.pb_depth[k] == base && (t.is_punct(';') || t.is_punct('{')) {
                        break;
                    }
                    if let Some(s) = t.ident() {
                        if HASH_TYPES.contains(&s) {
                            saw_hash = true;
                        }
                    }
                    if first {
                        if let TokKind::Num { float: true } = t.kind {
                            self.float_idents.insert(name.to_string());
                        }
                        first = false;
                    }
                    k += 1;
                }
                if saw_hash {
                    self.hash_idents.insert(name.to_string());
                }
            }
        }
    }

    // ---- suppression ------------------------------------------------------

    fn parse_allow_directives(&mut self, diags: &mut Vec<Diagnostic>) {
        for c in self.comments {
            // Suppression is a code annotation, never documentation:
            // doc comments (which may *describe* the directive syntax)
            // are not parsed as directives.
            if c.text.starts_with("///")
                || c.text.starts_with("//!")
                || c.text.starts_with("/**")
                || c.text.starts_with("/*!")
            {
                continue;
            }
            let Some(pos) = c.text.find("detlint:") else {
                continue;
            };
            let rest = c.text[pos + "detlint:".len()..].trim_start();
            let Some(rest) = rest.strip_prefix("allow(") else {
                diags.push(self.bad_allow(c, "expected `detlint: allow(DLxxx) <reason>`"));
                continue;
            };
            let Some(close) = rest.find(')') else {
                diags.push(self.bad_allow(c, "unclosed `allow(` directive"));
                continue;
            };
            let code_str = rest[..close].trim();
            let Some(code) = Code::parse(code_str) else {
                diags.push(self.bad_allow(
                    c,
                    &format!("unknown or unsuppressible code `{code_str}` in allow directive"),
                ));
                continue;
            };
            let reason = rest[close + 1..].trim();
            if reason.is_empty() {
                diags.push(self.bad_allow(
                    c,
                    &format!(
                        "allow({}) carries no reason — every suppression must say why",
                        code.id()
                    ),
                ));
                continue;
            }
            self.allows.push(AllowDirective {
                code,
                reason: reason.to_string(),
                end_line: c.end_line,
                used: std::cell::Cell::new(false),
            });
        }
    }

    fn bad_allow(&self, c: &Comment, msg: &str) -> Diagnostic {
        Diagnostic {
            code: Code::BadAllowDirective,
            path: self.class.path.clone(),
            line: c.line,
            col: c.col,
            message: msg.to_string(),
            suppression: None,
        }
    }

    /// Lines that contain at least one non-attribute token.
    fn code_lines(&self) -> BTreeSet<u32> {
        let mut lines = BTreeSet::new();
        for (i, t) in self.toks.iter().enumerate() {
            if !self.in_attr(i) {
                lines.insert(t.line);
            }
        }
        lines
    }

    fn apply_inline_allows(&self, diags: &mut [Diagnostic]) {
        let code_lines = self.code_lines();
        for d in diags.iter_mut() {
            if d.code == Code::BadAllowDirective || d.suppression.is_some() {
                continue;
            }
            // A directive applies on the same line, or from a comment
            // block whose last line sits directly above the finding
            // (with only comment/attribute lines in between).
            let mut candidate_lines: Vec<u32> = vec![d.line];
            let mut l = d.line;
            while l > 1 {
                l -= 1;
                if code_lines.contains(&l) {
                    break;
                }
                let has_comment = self.comments.iter().any(|c| c.end_line == l);
                let has_attr_tokens = self
                    .toks
                    .iter()
                    .enumerate()
                    .any(|(i, t)| t.line == l && self.in_attr(i));
                if has_comment || has_attr_tokens {
                    candidate_lines.push(l);
                } else {
                    break; // blank line terminates the comment block
                }
            }
            for a in &self.allows {
                if a.code == d.code && candidate_lines.contains(&a.end_line) {
                    a.used.set(true);
                    d.suppression = Some(Suppression::Inline {
                        reason: a.reason.clone(),
                    });
                    break;
                }
            }
        }
        // An allow directive that matched nothing is itself suspicious,
        // but not fatal: the finding it used to justify may have been
        // fixed. It is reported by the runner in verbose mode only.
    }

    // ---- DL001 ------------------------------------------------------------

    fn check_hash_iteration(&self, diags: &mut Vec<Diagnostic>) {
        let toks = self.toks;
        // Method-call form: `<chain>.iter()` where the chain mentions a
        // hash-typed identifier.
        for k in 0..toks.len() {
            let Some(m) = toks[k].ident() else { continue };
            let is_iter = ITER_METHODS.contains(&m)
                || (m == "into_iter" && k >= 1 && toks[k - 1].is_punct('.'));
            if !is_iter
                || k == 0
                || !toks[k - 1].is_punct('.')
                || !toks.get(k + 1).is_some_and(|t| t.is_punct('('))
            {
                continue;
            }
            if self.in_test_code(k) {
                continue;
            }
            let chain = self.receiver_chain(k - 1);
            let local_hit = chain.iter().any(|n| self.hash_idents.contains(*n));
            // Everything but the outermost chain element is a field
            // projection — only those may match workspace field names.
            let field_hit = chain.len() > 1
                && chain[..chain.len() - 1]
                    .iter()
                    .any(|n| self.global_hash_fields.contains(*n));
            if !local_hit && !field_hit {
                continue;
            }
            if self.statement_has_sink(k) {
                continue;
            }
            let receiver = chain
                .iter()
                .find(|n| self.hash_idents.contains(**n) || self.global_hash_fields.contains(**n))
                .copied()
                .unwrap_or("<expr>");
            diags.push(Diagnostic {
                code: Code::HashOrderIteration,
                path: self.class.path.clone(),
                line: toks[k].line,
                col: toks[k].col,
                message: format!(
                    "iteration over hash-ordered collection `{receiver}` via `.{m}()` — order is \
                     not a contract; sort first, collect into a BTree*, or justify with \
                     `// detlint: allow(DL001) <reason>`"
                ),
                suppression: None,
            });
        }
        // For-loop form: `for pat in [&][mut] <ident-chain>` where the
        // chain ends at a hash-typed identifier.
        for i in 0..toks.len() {
            if !toks[i].is_ident("for") || self.in_test_code(i) {
                continue;
            }
            if toks.get(i + 1).is_some_and(|t| t.is_punct('<')) {
                continue; // `for<'a>` higher-ranked bound
            }
            let base = self.pb_depth[i];
            // Find `in` at the same depth before the body brace.
            let mut j = i + 1;
            let mut in_idx = None;
            while j < toks.len() {
                if self.pb_depth[j] == base && toks[j].is_punct('{') {
                    break;
                }
                if self.pb_depth[j] == base && toks[j].is_ident("in") {
                    in_idx = Some(j);
                    break;
                }
                j += 1;
            }
            let Some(in_idx) = in_idx else { continue };
            let mut body_open = in_idx + 1;
            while body_open < toks.len() {
                if self.pb_depth[body_open] == base && toks[body_open].is_punct('{') {
                    break;
                }
                body_open += 1;
            }
            // Bare-chain iteration: every expr token is `&`/`mut`/ident/`.`/`::`.
            let expr = &toks[in_idx + 1..body_open.min(toks.len())];
            if expr.is_empty() {
                continue;
            }
            let mut bare = true;
            let mut last_ident: Option<&str> = None;
            for (e, t) in expr.iter().enumerate() {
                match &t.kind {
                    TokKind::Ident(s) if s != "mut" => last_ident = Some(s),
                    TokKind::Ident(_) => {}
                    TokKind::Punct('&') | TokKind::Punct('.') => {}
                    TokKind::Punct(':') => {
                        let global = in_idx + 1 + e;
                        if !(self.is_path_sep(global)
                            || (global > 0 && self.is_path_sep(global - 1)))
                        {
                            bare = false;
                            break;
                        }
                    }
                    _ => {
                        bare = false;
                        break;
                    }
                }
            }
            let Some(last) = last_ident else { continue };
            let dotted = expr.iter().any(|t| t.is_punct('.'));
            let hit = self.hash_idents.contains(last)
                || (dotted && self.global_hash_fields.contains(last));
            if bare && hit {
                diags.push(Diagnostic {
                    code: Code::HashOrderIteration,
                    path: self.class.path.clone(),
                    line: toks[i].line,
                    col: toks[i].col,
                    message: format!(
                        "for-loop over hash-ordered collection `{last}` — order is not a \
                         contract; sort first, collect into a BTree*, or justify with \
                         `// detlint: allow(DL001) <reason>`"
                    ),
                    suppression: None,
                });
            }
        }
    }

    /// Identifiers of the dotted receiver chain ending at the `.` token
    /// `dot_idx` (e.g. `self.cache.map` → `["map", "cache", "self"]`,
    /// innermost first).
    fn receiver_chain(&self, dot_idx: usize) -> Vec<&str> {
        let toks = self.toks;
        let mut chain = Vec::new();
        let mut j = dot_idx as isize - 1;
        while j >= 0 {
            let i = j as usize;
            match &toks[i].kind {
                TokKind::Ident(name) => {
                    chain.push(name.as_str());
                    // Continue through `.` or `::` to the left.
                    if i >= 1 && toks[i - 1].is_punct('.') {
                        j = i as isize - 2;
                    } else if i >= 2 && self.is_path_sep(i - 2) {
                        j = i as isize - 3;
                    } else {
                        break;
                    }
                }
                TokKind::Punct(')') | TokKind::Punct(']') => {
                    // A call or index in the chain. Only pass-through
                    // methods keep the receiver's type; anything else
                    // (`get`, `entry`, …) yields a new value, so the
                    // identifiers behind it are not what is iterated.
                    let open = (0..i).rev().find(|&o| self.match_close[o] == i);
                    match open {
                        Some(o)
                            if o >= 2
                                && self.toks[i].is_punct(')')
                                && self.toks[o - 1]
                                    .ident()
                                    .is_some_and(|m| PASSTHROUGH_CALLS.contains(&m))
                                && self.toks[o - 2].is_punct('.') =>
                        {
                            j = o as isize - 2; // continue behind `.lock(`
                        }
                        Some(o) if o >= 1 && self.toks[i].is_punct(']') => {
                            j = o as isize - 1; // indexing keeps the base
                        }
                        _ => break,
                    }
                }
                _ => break,
            }
        }
        chain
    }

    /// Whether the statement containing token `idx` pipes the iterator
    /// into an order-insensitive sink, or binds a variable that the
    /// *next* statement immediately sorts.
    fn statement_has_sink(&self, idx: usize) -> bool {
        let toks = self.toks;
        let d0 = self.pb_depth[idx];
        // Statement bounds at depth <= d0.
        let mut start = idx;
        while start > 0 {
            let p = start - 1;
            if self.pb_depth[p] <= d0
                && (toks[p].is_punct(';') || toks[p].is_punct('{') || toks[p].is_punct('}'))
            {
                break;
            }
            start -= 1;
        }
        let mut end = idx;
        while end + 1 < toks.len() {
            let n = end + 1;
            if self.pb_depth[n] <= d0
                && (toks[n].is_punct(';') || toks[n].is_punct('{') || toks[n].is_punct('}'))
            {
                break;
            }
            end += 1;
        }
        let window = &toks[start..=end];
        if self.window_has_sink(start, window) {
            return true;
        }
        // `let [mut] v = …;` immediately followed by `v.sort…(…)`.
        let mut w = 0;
        if window.first().is_some_and(|t| t.is_ident("let")) {
            w += 1;
            if window.get(w).is_some_and(|t| t.is_ident("mut")) {
                w += 1;
            }
            if let Some(bound) = window.get(w).and_then(|t| t.ident()) {
                let after = end + 2; // token after the `;`
                if toks.get(after).is_some_and(|t| t.is_ident(bound))
                    && toks.get(after + 1).is_some_and(|t| t.is_punct('.'))
                    && toks
                        .get(after + 2)
                        .and_then(|t| t.ident())
                        .is_some_and(|m| m.starts_with("sort"))
                {
                    return true;
                }
            }
        }
        false
    }

    fn window_has_sink(&self, start: usize, window: &[Tok]) -> bool {
        for (w, t) in window.iter().enumerate() {
            let Some(name) = t.ident() else { continue };
            let global = start + w;
            let after_dot = global > 0 && self.toks[global - 1].is_punct('.');
            if name.starts_with("sort") {
                return true;
            }
            // Terminators must be *calls* (`.count()`, `.max::<_>(…)`)
            // — a field access like `c.count` is not a sink.
            if after_dot && SINK_TERMINATORS.contains(&name) {
                let callish = window
                    .get(w + 1)
                    .is_some_and(|t| t.is_punct('(') || t.is_punct(':'));
                if callish {
                    return true;
                }
            }
            // `.sum::<usize>()` / `.product::<u64>()` — integer
            // reductions are order-insensitive; float ones are not.
            if after_dot && (name == "sum" || name == "product") {
                let turbofish_int = window
                    .get(w + 1..w.saturating_add(6).min(window.len()))
                    .is_some_and(|peek| {
                        peek.iter()
                            .any(|t| t.ident().is_some_and(|s| INT_TYPES.contains(&s)))
                    });
                if turbofish_int {
                    return true;
                }
            }
            // `collect::<BTreeMap<…>>()`, `BTreeSet::from_iter(…)`.
            if name.starts_with("BTree") {
                return true;
            }
        }
        false
    }

    // ---- DL002 ------------------------------------------------------------

    fn check_unsafe_contracts(&self, diags: &mut Vec<Diagnostic>) {
        let toks = self.toks;
        for i in 0..toks.len() {
            if !toks[i].is_ident("unsafe") || self.in_attr(i) {
                continue;
            }
            // What does this `unsafe` introduce?
            let next = toks.get(i + 1);
            let what = match next {
                Some(t) if t.is_punct('{') => "block",
                Some(t) if t.is_ident("fn") => "fn",
                Some(t) if t.is_ident("impl") => "impl",
                Some(t) if t.is_ident("trait") => "trait",
                // `unsafe extern "C" fn`, `pub unsafe fn` orderings land
                // on `fn` within a couple of tokens.
                Some(t) if t.is_ident("extern") => "fn",
                _ => continue, // `unsafe` in attr position or malformed
            };
            if self.has_safety_comment(toks[i].line) {
                continue;
            }
            let msg = match what {
                "block" => "`unsafe` block without an adjacent `// SAFETY:` comment".to_string(),
                "fn" => "`unsafe fn` without a `# Safety` doc section or `// SAFETY:` comment"
                    .to_string(),
                w => format!("`unsafe {w}` without an adjacent `// SAFETY:` comment"),
            };
            diags.push(Diagnostic {
                code: Code::UnsafeWithoutContract,
                path: self.class.path.clone(),
                line: toks[i].line,
                col: toks[i].col,
                message: msg,
                suppression: None,
            });
        }
    }

    /// A `SAFETY:` / `# Safety` comment counts when it is on the same
    /// line, or in the contiguous comment/attribute block directly
    /// above (doc comments included — `/// # Safety` sections pass).
    fn has_safety_comment(&self, line: u32) -> bool {
        let marker = |c: &Comment| c.text.contains("SAFETY") || c.text.contains("# Safety");
        if self
            .comments
            .iter()
            .any(|c| c.line <= line && c.end_line >= line && marker(c))
        {
            return true;
        }
        let code_lines = self.code_lines();
        let mut l = line;
        while l > 1 {
            l -= 1;
            // A code line terminates the walk — even when it carries a
            // trailing comment, that comment annotates *that* line, so
            // it only counts if it is the SAFETY marker itself.
            if code_lines.contains(&l) {
                return self.comments.iter().any(|c| c.end_line == l && marker(c));
            }
            if let Some(c) = self.comments.iter().find(|c| c.end_line == l) {
                if marker(c) {
                    return true;
                }
                continue; // keep climbing through the comment block
            }
            // Attribute-only lines (`#[target_feature(…)]`) are
            // climbed through; a blank line terminates the walk.
            let has_attr = self
                .toks
                .iter()
                .enumerate()
                .any(|(i, t)| t.line == l && self.in_attr(i));
            if !has_attr {
                return false;
            }
        }
        false
    }

    // ---- DL003 ------------------------------------------------------------

    fn check_wall_clock(&self, diags: &mut Vec<Diagnostic>) {
        if self.class.bench_scope {
            return;
        }
        let toks = self.toks;
        for i in 0..toks.len() {
            let Some(name) = toks[i].ident() else {
                continue;
            };
            if name != "Instant" && name != "SystemTime" {
                continue;
            }
            if !(i + 3 < toks.len() && self.is_path_sep(i + 1) && toks[i + 3].is_ident("now")) {
                continue;
            }
            if self.in_test_code(i) {
                continue;
            }
            diags.push(Diagnostic {
                code: Code::WallClock,
                path: self.class.path.clone(),
                line: toks[i].line,
                col: toks[i].col,
                message: format!(
                    "wall-clock read `{name}::now()` outside crates/bench — time must never \
                     influence results"
                ),
                suppression: None,
            });
        }
    }

    // ---- DL004 ------------------------------------------------------------

    fn check_unseeded_randomness(&self, diags: &mut Vec<Diagnostic>) {
        let toks = self.toks;
        for i in 0..toks.len() {
            let Some(name) = toks[i].ident() else {
                continue;
            };
            let finding = match name {
                "thread_rng" if toks.get(i + 1).is_some_and(|t| t.is_punct('(')) => {
                    Some("`thread_rng()` draws an unseeded OS-keyed generator")
                }
                "from_entropy" => Some("`from_entropy` seeds from the OS entropy pool"),
                "rng"
                    if toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                        && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
                        && !(i > 0 && toks[i - 1].is_ident("fn")) =>
                {
                    Some("argless `rng()` is the unseeded thread-local generator")
                }
                _ => None,
            };
            let Some(msg) = finding else { continue };
            diags.push(Diagnostic {
                code: Code::UnseededRandomness,
                path: self.class.path.clone(),
                line: toks[i].line,
                col: toks[i].col,
                message: format!("{msg} — derive state from an explicit seed instead"),
                suppression: None,
            });
        }
    }

    // ---- DL005 ------------------------------------------------------------

    fn check_target_feature_gating(&self, diags: &mut Vec<Diagnostic>) {
        let toks = self.toks;
        let tf_names: BTreeSet<&str> = self
            .fns
            .iter()
            .filter(|f| f.target_feature)
            .map(|f| f.name.as_str())
            .collect();
        if tf_names.is_empty() {
            return;
        }
        let def_name_idxs: BTreeSet<usize> = self
            .fns
            .iter()
            .filter(|f| f.target_feature)
            .map(|f| f.name_idx)
            .collect();
        for i in 0..toks.len() {
            let Some(name) = toks[i].ident() else {
                continue;
            };
            if !tf_names.contains(name)
                || def_name_idxs.contains(&i)
                || !toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                || (i > 0 && toks[i - 1].is_ident("fn"))
                || self.in_attr(i)
            {
                continue;
            }
            let gated = match self.enclosing_fn(i) {
                Some(f) if f.target_feature => true,
                Some(f) => {
                    let (open, _) = f.body.unwrap();
                    toks[open..i]
                        .iter()
                        .any(|t| t.is_ident("is_x86_feature_detected"))
                }
                None => false,
            };
            if gated {
                continue;
            }
            diags.push(Diagnostic {
                code: Code::UngatedTargetFeature,
                path: self.class.path.clone(),
                line: toks[i].line,
                col: toks[i].col,
                message: format!(
                    "call to `#[target_feature]` fn `{name}` outside an \
                     `is_x86_feature_detected!`-gated dispatcher"
                ),
                suppression: None,
            });
        }
    }

    // ---- DL006 ------------------------------------------------------------

    fn check_parallel_float_accumulation(&self, diags: &mut Vec<Diagnostic>) {
        let toks = self.toks;
        // Argument ranges of `thread::scope(…)` / `<x>.spawn(…)` calls.
        let mut regions: Vec<(usize, usize)> = Vec::new();
        for i in 0..toks.len() {
            let Some(name) = toks[i].ident() else {
                continue;
            };
            let open = i + 1;
            if !toks.get(open).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            let spawnish = name == "spawn"
                || (name == "scope"
                    && i >= 2
                    && toks[i - 1].is_punct(':')
                    && toks[i - 2].is_punct(':')
                    && i >= 3
                    && toks[i - 3].is_ident("thread"));
            if !spawnish {
                continue;
            }
            let close = self.match_close[open];
            if close != usize::MAX {
                regions.push((open, close));
            }
        }
        if regions.is_empty() {
            return;
        }
        for j in 1..toks.len() {
            if !(toks[j].is_punct('+')
                && toks
                    .get(j + 1)
                    .is_some_and(|t| t.is_punct('=') && t.off == toks[j].off + 1))
            {
                continue;
            }
            if !regions.iter().any(|&(s, e)| j > s && j < e) {
                continue;
            }
            // Walk the left-hand side back to its base identifiers.
            let mut k = j as isize - 1;
            let mut lhs: Vec<&str> = Vec::new();
            while k >= 0 {
                let i = k as usize;
                match &toks[i].kind {
                    TokKind::Ident(n) if n != "mut" => {
                        lhs.push(n.as_str());
                        if i >= 1 && (toks[i - 1].is_punct('.') || toks[i - 1].is_punct('*')) {
                            k = i as isize - if toks[i - 1].is_punct('.') { 2 } else { 1 };
                            if toks[i - 1].is_punct('*') {
                                break;
                            }
                        } else {
                            break;
                        }
                    }
                    TokKind::Punct(']') => {
                        let open = (0..i).rev().find(|&o| self.match_close[o] == i);
                        match open {
                            Some(o) if o >= 1 => k = o as isize - 1,
                            _ => break,
                        }
                    }
                    TokKind::Punct('*') => k -= 1,
                    _ => break,
                }
            }
            if !lhs.iter().any(|n| self.float_idents.contains(*n)) {
                continue;
            }
            let target = lhs.first().copied().unwrap_or("<expr>");
            diags.push(Diagnostic {
                code: Code::ParallelFloatAccumulation,
                path: self.class.path.clone(),
                line: toks[j].line,
                col: toks[j].col,
                message: format!(
                    "float `+=` on `{target}` inside a thread::scope/spawn region — float \
                     addition is not associative, so the schedule becomes observable; accumulate \
                     per-worker and reduce in a fixed order"
                ),
                suppression: None,
            });
        }
    }
}
